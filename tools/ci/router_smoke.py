"""End-to-end smoke for the 2-shard serving router (CI).

Drives 200 NDJSON predict requests through a running
`qgnn_serve --demo --listen <port> --shards 2` front end, then asserts via
{"cmd":"stats"} that the shard caches are disjoint: every distinct graph
was computed on exactly one shard (one miss per key tier-wide) and all
revisits were cache hits.

Usage: router_smoke.py <port>
"""

import json
import socket
import sys

port = int(sys.argv[1])
sock = socket.create_connection(("127.0.0.1", port))
f = sock.makefile("rw", encoding="utf-8", newline="\n")


def request(doc):
    f.write(json.dumps(doc) + "\n")
    f.flush()
    return json.loads(f.readline())


# 20 distinct graphs within the demo model's max_nodes=15 cap: cycles on
# 4..15 nodes plus paths on 4..11 (a path is never isomorphic to a cycle).
pool = []
for n in range(4, 16):
    pool.append((n, [[v, (v + 1) % n] for v in range(n)]))
for n in range(4, 12):
    pool.append((n, [[v, v + 1] for v in range(n - 1)]))

# 10 sweeps over the pool: sweep 1 misses, the rest hit.
DISTINCT, SWEEPS = len(pool), 10
assert DISTINCT == 20
for i in range(DISTINCT * SWEEPS):
    n, edges = pool[i % DISTINCT]
    resp = request({"id": i, "nodes": n, "edges": edges})
    assert resp["ok"], f"request {i} failed: {resp}"

stats = request({"cmd": "stats", "id": 9999})
assert stats["ok"], stats
shards = stats["stats"]["shards"]
assert len(shards) == 2, shards
hits = [int(s["stats"]["cache_hits"]) for s in shards]
misses = [int(s["stats"]["cache_misses"]) for s in shards]
print(f"shard hits={hits} misses={misses}")
# Disjoint shard caches: each of the 20 keys was computed on exactly one
# shard (one miss per key across the whole tier), everything else hit.
assert sum(misses) == DISTINCT, misses
assert sum(hits) == DISTINCT * (SWEEPS - 1), hits
assert all(m > 0 for m in misses), f"degenerate routing: {misses}"
print("router smoke OK")
