"""End-to-end smoke for the closed-loop hard-example miner (CI).

Drives low-AR traffic through a running
`qgnn_serve --demo --listen <port> --shards 2 --mine ...` tier (the demo
model is untrained, so verified requests fall below the mining
threshold), then polls {"cmd":"stats"} until the per-shard "mine"
sub-objects show at least one full cycle: buffer -> spill -> relabel ->
fine-tune -> gate. Finally asserts that repeated identical requests
answered by the same model generation return bit-identical values.

Usage: mining_smoke.py <port>
"""

import json
import socket
import sys
import time

port = int(sys.argv[1])
sock = socket.create_connection(("127.0.0.1", port))
f = sock.makefile("rw", encoding="utf-8", newline="\n")


def request(doc):
    f.write(json.dumps(doc) + "\n")
    f.flush()
    return json.loads(f.readline())


# Distinct graphs within the demo model's max_nodes=15 cap: cycles on
# 4..15 nodes plus paths on 4..11. Non-isomorphic, so each is its own
# canonical class in the mining buffer's dedup set.
pool = []
for n in range(4, 16):
    pool.append((n, [[v, (v + 1) % n] for v in range(n)]))
for n in range(4, 12):
    pool.append((n, [[v, v + 1] for v in range(n - 1)]))

for i, (n, edges) in enumerate(pool):
    resp = request({"id": i, "nodes": n, "edges": edges})
    assert resp["ok"], f"request {i} failed: {resp}"


def mine_stats():
    stats = request({"cmd": "stats", "id": 9999})
    assert stats["ok"], stats
    return [s["stats"]["mine"] for s in stats["stats"]["shards"]]


# Each shard mines its slice of the pool independently; wait for the
# whole tier to finish at least one cycle (spill + relabel + gate).
# `relabeled == spilled` also gates the loop so a poll cannot land in
# the middle of another shard's in-flight cycle.
deadline = time.monotonic() + 120
while True:
    shards = mine_stats()
    assert sum(int(s["cycle_errors"]) for s in shards) == 0, shards
    cycles = sum(int(s["cycles"]) for s in shards)
    gated = sum(int(s["gate_promoted"]) + int(s["gate_rejected"])
                for s in shards)
    spilled = sum(int(s["spilled"]) for s in shards)
    relabeled = sum(int(s["relabeled"]) for s in shards)
    if cycles >= 1 and gated >= 1 and spilled >= 1 and relabeled == spilled:
        break
    assert time.monotonic() < deadline, f"no mining cycle completed: {shards}"
    time.sleep(0.5)

observed = sum(int(s["observed"]) for s in shards)
print(f"mine: observed={observed} spilled={spilled} "
      f"relabeled={relabeled} cycles={cycles} gated={gated}")
assert observed >= len(pool), shards

# Serving stayed coherent across any hot-swap: back-to-back identical
# requests answered by the same generation are bit-identical.
for i, (n, edges) in enumerate(pool):
    a = request({"id": 2000 + i, "nodes": n, "edges": edges})
    b = request({"id": 3000 + i, "nodes": n, "edges": edges})
    assert a["ok"] and b["ok"], (a, b)
    if a["generation"] == b["generation"]:
        assert a["values"] == b["values"], f"graph {i}: {a} vs {b}"

print("mining smoke OK")
