#include "qgnn_lint/baseline.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "qgnn_lint/sarif.hpp"  // json_escape

namespace qgnn::lint {

namespace {

std::string normalize(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  if (out.rfind("./", 0) == 0) out = out.substr(2);
  return out;
}

/// Tiny JSON reader for the baseline's fixed shape. Accepts arbitrary
/// whitespace and any key order; rejects everything else loudly.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Baseline read() {
    Baseline baseline;
    bool saw_version = false;
    bool saw_findings = false;
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = read_string();
      expect(':');
      if (key == "version") {
        (void)read_number();
        saw_version = true;
      } else if (key == "findings") {
        read_findings(&baseline);
        saw_findings = true;
      } else {
        fail("unknown top-level key '" + key + "'");
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    if (!saw_version) fail("missing required key 'version'");
    if (!saw_findings) fail("missing required key 'findings'");
    return baseline;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("baseline: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                value |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("bad \\u escape digit");
            }
            if (value > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(value);
            break;
          }
          default:
            fail(std::string("unsupported escape '\\") + e + "'");
        }
        continue;
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  long read_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    return std::stol(text_.substr(start, pos_ - start));
  }

  void read_findings(Baseline* baseline) {
    expect('[');
    bool first = true;
    while (!try_consume(']')) {
      if (!first) expect(',');
      first = false;
      expect('{');
      BaselineKey key;
      long count = 1;
      bool obj_first = true;
      while (!try_consume('}')) {
        if (!obj_first) expect(',');
        obj_first = false;
        const std::string field = read_string();
        expect(':');
        if (field == "check") {
          key.check = read_string();
        } else if (field == "file") {
          key.file = normalize(read_string());
        } else if (field == "message") {
          key.message = read_string();
        } else if (field == "count") {
          count = read_number();
        } else {
          fail("unknown finding key '" + field + "'");
        }
      }
      if (key.check.empty() || key.file.empty()) {
        fail("finding entry missing check/file");
      }
      if (count < 1) fail("finding count must be >= 1");
      (*baseline)[key] += static_cast<int>(count);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Baseline collect_baseline(const std::vector<Finding>& findings) {
  Baseline baseline;
  for (const Finding& f : findings) {
    ++baseline[BaselineKey{f.check, normalize(f.file), f.message}];
  }
  return baseline;
}

std::string serialize_baseline(const Baseline& baseline) {
  std::string out = "{\n  \"version\": 1,\n  \"findings\": [";
  bool first = true;
  for (const auto& [key, count] : baseline) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"check\": \"" + json_escape(key.check) +
           "\", \"file\": \"" + json_escape(key.file) +
           "\", \"count\": " + std::to_string(count) +
           ",\n     \"message\": \"" + json_escape(key.message) + "\"}";
  }
  out += baseline.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Baseline parse_baseline(const std::string& json) {
  return JsonReader(json).read();
}

BaselineDiff diff_baseline(const std::vector<Finding>& findings,
                           const Baseline& baseline) {
  BaselineDiff diff;
  Baseline remaining = baseline;
  for (const Finding& f : findings) {
    const BaselineKey key{f.check, normalize(f.file), f.message};
    const auto it = remaining.find(key);
    if (it != remaining.end() && it->second > 0) {
      if (--it->second == 0) remaining.erase(it);
      continue;
    }
    diff.fresh.push_back(f);
  }
  for (const auto& [key, count] : remaining) {
    diff.stale.push_back(key.check + "|" + key.file + "|" + key.message +
                         " (x" + std::to_string(count) + ")");
  }
  return diff;
}

}  // namespace qgnn::lint
