#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "qgnn_lint/checks.hpp"

namespace qgnn::lint {

/// Project-wide semantic model: every translation unit lexed once, the
/// project-internal include graph, a symbol index of functions and
/// annotated class members, and a lightweight call graph. It is not a
/// compiler front end — symbols are matched by name, overloads collapse
/// onto one node, and calls through std::function or virtual dispatch
/// are invisible — but it is enough for the flow-lite checkers
/// (flow_checks.hpp) to follow locks, event-loop reachability, and
/// bit-identity surfaces across files, which no per-file lexical pass
/// can do.

/// One function (declaration or definition) found in the token stream.
struct FunctionInfo {
  int file = -1;            ///< index into ProjectModel::files
  std::string name;         ///< simple name, e.g. "drain_submits"
  std::string class_name;   ///< enclosing/qualifying class, "" for free
  int line = 0;             ///< line of the declarator
  bool has_body = false;
  std::size_t body_begin = 0;  ///< token index of the body '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  bool is_ctor_dtor = false;   ///< constructor/destructor of class_name

  // Annotations (src/util/annotations.hpp), merged across a function's
  // declaration and definition by (class_name, name).
  std::set<std::string> requires_mutexes;  ///< QGNN_REQUIRES args
  std::set<std::string> excludes_mutexes;  ///< QGNN_EXCLUDES args
  bool event_loop_only = false;            ///< QGNN_EVENT_LOOP_ONLY
  bool bit_identical = false;              ///< QGNN_BIT_IDENTICAL_PATH

  std::string qualified() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

/// One call site inside a function body.
struct CallSite {
  int callee = -1;  ///< index into ProjectModel::functions
  int line = 0;
  std::size_t token = 0;  ///< index of the callee-name token
  /// True when the call is written inside a lambda body. The lambda runs
  /// whenever (and on whatever thread) its holder invokes it — a thread
  /// entry point, a queued task — so reachability walks that model the
  /// *calling* thread (event-loop-blocking) must not follow deferred
  /// edges as if they executed inline.
  bool deferred = false;
};

/// A class member tagged QGNN_GUARDED_BY.
struct GuardedMember {
  int file = -1;
  std::string class_name;
  std::string member;  ///< e.g. "submit_queue_"
  std::string mutex;   ///< e.g. "submit_mutex_"
  int line = 0;
};

struct ProjectModel {
  /// Lexed files, sorted by path; FileContext::options is not set here
  /// (the driver owns options).
  std::vector<FileContext> files;

  /// Per-file indices of project-internal includes (resolved from
  /// #include "..." directives against the scanned file set).
  std::vector<std::vector<int>> includes;

  std::vector<FunctionInfo> functions;
  /// Parallel to `functions`: resolved call sites within each body.
  std::vector<std::vector<CallSite>> calls;

  std::vector<GuardedMember> guarded;

  /// Every mutex name that appears in any QGNN_GUARDED_BY / QGNN_REQUIRES
  /// / QGNN_EXCLUDES annotation. The event-loop checker treats acquiring
  /// these as non-blocking-by-contract (annotated mutexes only guard
  /// short critical sections); locking anything else from the loop is a
  /// finding.
  std::set<std::string> annotated_mutexes;

  /// Function indices by simple name (call-graph resolution).
  std::multimap<std::string, int> functions_by_name;

  /// Index into files for a normalized path, or -1.
  int file_index(const std::string& normalized) const;
};

/// Build the model from pre-lexed files. `files` must be sorted by path
/// (collect order); the vector is moved into the model.
ProjectModel build_model(std::vector<FileContext> files);

}  // namespace qgnn::lint
