#include "qgnn_lint/lexer.hpp"

#include <cctype>

namespace qgnn::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Raw-string prefixes: the identifier immediately before a '"' that
/// switches the literal into raw mode.
bool is_raw_prefix(const std::string& id) {
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

/// Encoding prefixes for ordinary literals ("u8", "u", "U", "L").
bool is_encoding_prefix(const std::string& id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          line_comment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          block_comment();
          continue;
        }
      }
      if (c == '#' && at_line_start()) {
        directive();
        continue;
      }
      if (is_ident_start(c)) {
        identifier_or_literal_prefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal(false);
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return std::move(result_);
  }

 private:
  bool at_line_start() const {
    std::size_t i = pos_;
    while (i > 0) {
      const char p = src_[i - 1];
      if (p == '\n') return true;
      if (p != ' ' && p != '\t' && p != '\r') return false;
      --i;
    }
    return true;
  }

  void emit(TokenKind kind, std::string text, int line) {
    emit_span(kind, std::move(text), line, line);
  }

  /// Emit a token that spans [line, end_line]: every covered physical
  /// line is marked as code so a comment on the closing line of a
  /// multi-line raw string (or continued directive) is not mistaken for
  /// a standalone comment — that mistake made suppressions after raw
  /// strings also cover the following line.
  void emit_span(TokenKind kind, std::string text, int line, int end_line) {
    for (int l = line; l <= end_line; ++l) mark_code_line(l);
    result_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void mark_code_line(int line) {
    const auto idx = static_cast<std::size_t>(line);
    if (idx >= code_on_line_.size()) code_on_line_.resize(idx + 1, false);
    code_on_line_[idx] = true;
  }

  bool code_on_line(int line) const {
    const auto idx = static_cast<std::size_t>(line);
    return idx < code_on_line_.size() && code_on_line_[idx];
  }

  void line_comment() {
    const int start_line = line_;
    const bool owns = !code_on_line(start_line);
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        // Phase-2 line splicing happens before comments are recognized:
        // a trailing backslash (optionally followed by \r) continues the
        // comment onto the next physical line. Before this was handled,
        // the continued line was lexed as code, shifting line attribution
        // for every suppression that followed.
        std::size_t tail = text.size();
        while (tail > 0 && text[tail - 1] == '\r') --tail;
        if (tail > 0 && text[tail - 1] == '\\') {
          text.resize(tail - 1);
          text += ' ';
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      text += src_[pos_++];
    }
    result_.comments.push_back(Comment{std::move(text), start_line, line_,
                                       owns});
  }

  void block_comment() {
    const int start_line = line_;
    const bool owns = !code_on_line(start_line);
    pos_ += 2;
    std::string text;
    while (pos_ + 1 < src_.size() &&
           !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    pos_ = pos_ + 1 < src_.size() ? pos_ + 2 : src_.size();
    result_.comments.push_back(Comment{std::move(text), start_line, line_,
                                       owns});
  }

  /// Swallow one preprocessor directive, honoring backslash-newline
  /// continuations, and emit it as a single token whose text is the
  /// directive with runs of whitespace collapsed.
  void directive() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
        text += ' ';
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        // Trailing line comment belongs to the comment stream, not the
        // directive text (suppressions may ride on directive lines).
        break;
      }
      text += c;
      ++pos_;
    }
    // Collapse whitespace runs so checks can match "#pragma once" textually.
    std::string collapsed;
    bool in_ws = false;
    for (char c : text) {
      if (c == ' ' || c == '\t' || c == '\r') {
        in_ws = true;
        continue;
      }
      if (in_ws && !collapsed.empty()) collapsed += ' ';
      in_ws = false;
      collapsed += c;
    }
    emit_span(TokenKind::kDirective, std::move(collapsed), start_line, line_);
  }

  void identifier_or_literal_prefix() {
    const int start_line = line_;
    std::string id;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) {
      id += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (is_raw_prefix(id) || is_encoding_prefix(id))) {
      string_literal(is_raw_prefix(id));
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' && is_encoding_prefix(id)) {
      char_literal();
      return;
    }
    emit(TokenKind::kIdentifier, std::move(id), start_line);
  }

  /// pp-number: digits plus identifier chars, '.', digit separators, and
  /// sign characters directly after an exponent marker.
  void number() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        text += c;
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text += c;
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokenKind::kNumber, std::move(text), start_line);
  }

  void string_literal(bool raw) {
    const int start_line = line_;
    std::string text;
    ++pos_;  // opening quote
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') {
        if (src_[pos_] == '\n') ++line_;  // malformed delim; keep attribution
        delim += src_[pos_++];
      }
      if (pos_ < src_.size()) ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer)) {
        if (src_[pos_] == '\n') ++line_;
        text += src_[pos_++];
      }
      pos_ = std::min(src_.size(), pos_ + closer.size());
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          // A backslash-newline splice continues the literal on the next
          // physical line; not counting it shifted every later line.
          if (src_[pos_ + 1] == '\n') ++line_;
          text += src_[pos_];
          text += src_[pos_ + 1];
          pos_ += 2;
          continue;
        }
        if (src_[pos_] == '\n') break;  // unterminated; stop at EOL
        text += src_[pos_++];
      }
      if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    }
    emit_span(TokenKind::kString, std::move(text), start_line, line_);
  }

  void char_literal() {
    const int start_line = line_;
    std::string text;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(TokenKind::kCharLit, std::move(text), start_line);
  }

  void punct() {
    const int start_line = line_;
    const char c = src_[pos_];
    if (pos_ + 1 < src_.size()) {
      const char n = src_[pos_ + 1];
      if ((c == ':' && n == ':') || (c == '-' && n == '>')) {
        pos_ += 2;
        emit(TokenKind::kPunct, std::string{c, n}, start_line);
        return;
      }
    }
    ++pos_;
    emit(TokenKind::kPunct, std::string(1, c), start_line);
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  LexResult result_;
  std::vector<bool> code_on_line_;
};

}  // namespace

LexResult lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace qgnn::lint
