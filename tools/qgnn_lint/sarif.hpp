#pragma once

#include <string>
#include <vector>

#include "qgnn_lint/checks.hpp"

namespace qgnn::lint {

/// Render findings as a SARIF 2.1.0 log (one run, one result per
/// finding, rules populated from the check catalogues) so CI systems and
/// code-scanning UIs can ingest qgnn_lint output directly. Findings are
/// emitted in the order given; the driver sorts them first, so the
/// report is byte-identical for a given finding set at any --jobs value.
std::string to_sarif(const std::vector<Finding>& findings);

/// JSON string escaping (also used by the baseline writer).
std::string json_escape(const std::string& s);

}  // namespace qgnn::lint
