#include "qgnn_lint/flow_checks.hpp"

#include <cctype>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace qgnn::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_id(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool path_contains(const ProjectModel& model, int file,
                   const std::string& needle) {
  return model.files[static_cast<std::size_t>(file)].normalized.find(
             needle) != std::string::npos;
}

const Tokens& file_tokens(const ProjectModel& model, int file) {
  return model.files[static_cast<std::size_t>(file)].lex.tokens;
}

bool is_guard_type(const Token& t) {
  return is_id(t, "lock_guard") || is_id(t, "unique_lock") ||
         is_id(t, "scoped_lock");
}

/// One past a balanced group opened at `i` (or i when ts[i] != open).
std::size_t skip_balanced(const Tokens& ts, std::size_t i, const char* open,
                          const char* close) {
  if (i >= ts.size() || !is_punct(ts[i], open)) return i;
  int depth = 0;
  for (std::size_t j = i; j < ts.size(); ++j) {
    if (is_punct(ts[j], open)) ++depth;
    if (is_punct(ts[j], close)) {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return ts.size();
}

/// Skip `<...>` template arguments starting at `i` when present.
std::size_t skip_template_args(const Tokens& ts, std::size_t i) {
  if (i >= ts.size() || !is_punct(ts[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < ts.size() && j < i + 64; ++j) {
    if (is_punct(ts[j], "<")) ++depth;
    if (is_punct(ts[j], ">")) {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (is_punct(ts[j], ";")) break;  // not template args after all
  }
  return i;
}

/// Identifiers inside a balanced paren group starting at `open`.
std::vector<std::string> idents_in_group(const Tokens& ts,
                                         std::size_t open) {
  std::vector<std::string> out;
  const std::size_t end = skip_balanced(ts, open, "(", ")");
  for (std::size_t j = open + 1; j + 1 < end; ++j) {
    if (is_ident(ts[j])) out.push_back(ts[j].text);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared per-body scan: which mutexes are lexically held at each token.
//
// Tracks lock_guard/unique_lock/scoped_lock declarations (held until
// their enclosing '}') and manual mutex_.lock()/.unlock() pairs (held
// until unlocked or function end). This is a lexical approximation:
// unique_lock::unlock()/condition-wait relocking is not modelled, which
// errs on the side of "held" — acceptable for a lint whose remedy is an
// annotation, fatal for nothing.

struct HeldGuard {
  std::set<std::string> mutexes;
  int depth = 0;  // brace depth the guard lives at; popped when we leave
};

class HeldScanner {
 public:
  HeldScanner(const Tokens& ts, const FunctionInfo& fn)
      : ts_(ts), pos_(fn.body_begin + 1), end_(fn.body_end) {
    entry_.mutexes = fn.requires_mutexes;
    entry_.depth = 0;
  }

  /// Advance to token index `target` (monotonic), updating held state.
  void advance_to(std::size_t target) {
    while (pos_ < target && pos_ < end_) step();
  }

  bool holds(const std::string& mutex) const {
    if (entry_.mutexes.count(mutex) > 0) return true;
    if (manual_.count(mutex) > 0) return true;
    for (const HeldGuard& g : guards_) {
      if (g.mutexes.count(mutex) > 0) return true;
    }
    return false;
  }

  std::set<std::string> held() const {
    std::set<std::string> all = entry_.mutexes;
    all.insert(manual_.begin(), manual_.end());
    for (const HeldGuard& g : guards_) {
      all.insert(g.mutexes.begin(), g.mutexes.end());
    }
    return all;
  }

 private:
  void step() {
    const Token& t = ts_[pos_];
    if (is_punct(t, "{")) {
      ++depth_;
      ++pos_;
      return;
    }
    if (is_punct(t, "}")) {
      while (!guards_.empty() && guards_.back().depth >= depth_) {
        guards_.pop_back();
      }
      --depth_;
      ++pos_;
      return;
    }
    if (is_guard_type(t)) {
      // lock_guard<...> name(mutexes...)  /  scoped_lock name(m1, m2)
      std::size_t j = skip_template_args(ts_, pos_ + 1);
      if (j < end_ && is_ident(ts_[j]) && j + 1 < end_ &&
          is_punct(ts_[j + 1], "(")) {
        HeldGuard g;
        for (const std::string& id : idents_in_group(ts_, j + 1)) {
          g.mutexes.insert(id);
        }
        // The guard lives in the scope where it is declared: it dies when
        // the '}' closing *this* depth is reached, not when a nested
        // block (if/for/lambda) closes.
        g.depth = depth_;
        if (!g.mutexes.empty()) guards_.push_back(std::move(g));
        pos_ = skip_balanced(ts_, j + 1, "(", ")");
        return;
      }
    }
    // mutex_.lock() / mutex_.unlock()
    if (is_ident(t) && pos_ + 3 < end_ && is_punct(ts_[pos_ + 1], ".") &&
        (is_id(ts_[pos_ + 2], "lock") || is_id(ts_[pos_ + 2], "unlock")) &&
        is_punct(ts_[pos_ + 3], "(")) {
      if (is_id(ts_[pos_ + 2], "lock")) {
        manual_.insert(t.text);
      } else {
        manual_.erase(t.text);
      }
      pos_ += 4;
      return;
    }
    ++pos_;
  }

  const Tokens& ts_;
  std::size_t pos_;
  std::size_t end_;
  int depth_ = 1;  // inside the body '{'
  HeldGuard entry_;
  std::set<std::string> manual_;
  std::vector<HeldGuard> guards_;
};

// ---------------------------------------------------------------------------
// lock-discipline

struct Access {
  std::size_t fn = 0;   // index into model.functions
  std::string member;
  std::string mutex;
  int line = 0;
};

void check_lock_discipline_impl(const ProjectModel& model,
                                std::vector<Finding>& out) {
  if (model.guarded.empty()) return;

  // Guarded members by class for quick lookup.
  std::map<std::string, std::vector<const GuardedMember*>> by_class;
  for (const GuardedMember& gm : model.guarded) {
    by_class[gm.class_name].push_back(&gm);
  }

  // Pass 1: per function, find unguarded accesses and record the held
  // set at every project call site (for one-level propagation).
  std::vector<Access> unguarded;
  // (callee function index) -> held sets observed at its call sites.
  std::map<int, std::vector<std::set<std::string>>> callsite_held;

  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    const FunctionInfo& fn = model.functions[f];
    if (!fn.has_body) continue;
    const Tokens& ts = file_tokens(model, fn.file);

    const auto it = by_class.find(fn.class_name);
    const std::vector<const GuardedMember*>* members =
        it == by_class.end() ? nullptr : &it->second;

    HeldScanner held(ts, fn);

    // Walk call sites and member accesses in token order.
    std::size_t next_call = 0;
    const std::vector<CallSite>& calls = model.calls[f];
    for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
      held.advance_to(k);
      while (next_call < calls.size() && calls[next_call].token <= k) {
        if (calls[next_call].token == k) {
          // A deferred (in-lambda) call runs later, possibly on another
          // thread: whatever is held *here* is not held *then*.
          callsite_held[calls[next_call].callee].push_back(
              calls[next_call].deferred ? std::set<std::string>{}
                                        : held.held());
        }
        ++next_call;
      }
      if (!members || fn.is_ctor_dtor) continue;
      if (!is_ident(ts[k])) continue;
      // Skip other-object accesses (`other.m_`); `this->m_` still counts.
      if (k >= 2 && (is_punct(ts[k - 1], ".") || is_punct(ts[k - 1], "->")) &&
          !is_id(ts[k - 2], "this")) {
        continue;
      }
      for (const GuardedMember* gm : *members) {
        if (ts[k].text != gm->member) continue;
        if (held.holds(gm->mutex)) continue;
        unguarded.push_back(
            Access{f, gm->member, gm->mutex, ts[k].line});
      }
    }
  }

  // Pass 2: one-level call-graph propagation — an access is fine when
  // every project call site of the enclosing function holds the mutex
  // (the function is de-facto QGNN_REQUIRES; we still suggest writing it).
  for (const Access& a : unguarded) {
    const FunctionInfo& fn = model.functions[a.fn];
    const auto sites = callsite_held.find(static_cast<int>(a.fn));
    bool all_callers_hold = false;
    if (sites != callsite_held.end() && !sites->second.empty()) {
      all_callers_hold = true;
      for (const std::set<std::string>& held_set : sites->second) {
        if (held_set.count(a.mutex) == 0) {
          all_callers_hold = false;
          break;
        }
      }
    }
    if (all_callers_hold) continue;
    out.push_back(Finding{
        model.files[static_cast<std::size_t>(fn.file)].path, a.line,
        "lock-discipline",
        "'" + a.member + "' is QGNN_GUARDED_BY(" + a.mutex +
            ") but '" + fn.qualified() +
            "' touches it without the lock held; acquire " + a.mutex +
            " or annotate the function QGNN_REQUIRES(" + a.mutex + ")"});
  }
}

// ---------------------------------------------------------------------------
// event-loop-blocking

struct Blocking {
  int line = 0;
  std::string what;
};

/// Blocking operations lexically visible in `fn`'s body.
std::vector<Blocking> blocking_ops(const ProjectModel& model,
                                   const FunctionInfo& fn) {
  std::vector<Blocking> ops;
  const Tokens& ts = file_tokens(model, fn.file);
  const bool in_net = path_contains(model, fn.file, "src/net/");
  for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
    const Token& t = ts[k];
    if (!is_ident(t)) continue;
    const bool call = k + 1 < ts.size() && is_punct(ts[k + 1], "(");
    const bool member =
        k >= 1 && (is_punct(ts[k - 1], ".") || is_punct(ts[k - 1], "->"));

    if (call && !member &&
        (t.text == "sleep_for" || t.text == "sleep_until" ||
         t.text == "usleep" || t.text == "nanosleep" ||
         t.text == "sleep")) {
      ops.push_back({t.line, t.text + "()"});
      continue;
    }
    if (call && !member && t.text == "connect") {
      ops.push_back({t.line, "connect() (blocking TCP connect)"});
      continue;
    }
    if (call && !member && !in_net &&
        (t.text == "read" || t.text == "recv")) {
      // The loop's own edge-triggered reads live in src/net and are
      // non-blocking by construction; raw reads anywhere else are not.
      ops.push_back({t.line, t.text + "() on a non-loop fd"});
      continue;
    }
    if (call && member &&
        (t.text == "wait" || t.text == "wait_for" ||
         t.text == "wait_until")) {
      ops.push_back({t.line, "condition wait '." + t.text + "()'"});
      continue;
    }
    if (call && member && t.text == "lock" && k >= 2 && is_ident(ts[k - 2]) &&
        model.annotated_mutexes.count(ts[k - 2].text) == 0) {
      ops.push_back({t.line, "lock of unannotated mutex '" +
                                 ts[k - 2].text + "'"});
      continue;
    }
    if (is_guard_type(t)) {
      const std::size_t j = skip_template_args(ts, k + 1);
      if (j < fn.body_end && is_ident(ts[j]) && j + 1 < fn.body_end &&
          is_punct(ts[j + 1], "(")) {
        for (const std::string& id : idents_in_group(ts, j + 1)) {
          if (id == "std" || id == "adopt_lock" || id == "defer_lock") {
            continue;
          }
          if (model.annotated_mutexes.count(id) == 0) {
            ops.push_back({t.line, "lock of unannotated mutex '" + id +
                                       "' via " + t.text});
          }
        }
      }
    }
  }
  return ops;
}

void check_event_loop_blocking_impl(const ProjectModel& model,
                                    std::vector<Finding>& out) {
  // BFS from every QGNN_EVENT_LOOP_ONLY entry point; remember one
  // predecessor per reached function to print the call chain.
  std::map<int, int> pred;    // function -> caller it was reached from
  std::map<int, int> origin;  // function -> entry point index
  std::deque<int> queue;
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    if (model.functions[f].event_loop_only && model.functions[f].has_body) {
      const int fi = static_cast<int>(f);
      if (origin.emplace(fi, fi).second) {
        pred[fi] = -1;
        queue.push_back(fi);
      }
    }
  }
  while (!queue.empty()) {
    const int f = queue.front();
    queue.pop_front();
    for (const CallSite& cs : model.calls[static_cast<std::size_t>(f)]) {
      if (!model.functions[static_cast<std::size_t>(cs.callee)].has_body) {
        continue;
      }
      // Deferred edges (calls inside lambdas) leave the loop thread: the
      // lambda is a worker entry point or queued task, not inline code.
      if (cs.deferred) continue;
      if (origin.emplace(cs.callee, origin[f]).second) {
        pred[cs.callee] = f;
        queue.push_back(cs.callee);
      }
    }
  }

  for (const auto& [f, entry] : origin) {
    const FunctionInfo& fn = model.functions[static_cast<std::size_t>(f)];
    for (const Blocking& op : blocking_ops(model, fn)) {
      std::string chain = fn.qualified();
      for (int p = pred[f]; p != -1;
           p = pred[p]) {
        chain = model.functions[static_cast<std::size_t>(p)].qualified() +
                " -> " + chain;
      }
      std::string msg = "'";
      msg += fn.qualified();
      msg += "' calls ";
      msg += op.what;
      if (f == entry) {
        msg += " but is QGNN_EVENT_LOOP_ONLY";
      } else {
        msg += " but is reachable from event-loop entry '" +
               model.functions[static_cast<std::size_t>(entry)].qualified() +
               "' (" + chain + ")";
      }
      msg += "; the loop thread must never block";
      out.push_back(Finding{
          model.files[static_cast<std::size_t>(fn.file)].path, op.line,
          "event-loop-blocking", msg});
    }
  }
}

// ---------------------------------------------------------------------------
// bit-identical-path

/// Names of variables in `file` declared as unordered containers.
std::set<std::string> unordered_vars_in_file(const ProjectModel& model,
                                             int file) {
  std::set<std::string> vars;
  const Tokens& ts = file_tokens(model, file);
  for (std::size_t k = 0; k + 1 < ts.size(); ++k) {
    if (!is_ident(ts[k])) continue;
    if (ts[k].text != "unordered_map" && ts[k].text != "unordered_set" &&
        ts[k].text != "unordered_multimap" &&
        ts[k].text != "unordered_multiset") {
      continue;
    }
    std::size_t j = skip_template_args(ts, k + 1);
    if (j == k + 1) continue;  // no template args: a using-decl etc.
    while (j < ts.size() && (is_punct(ts[j], "&") || is_punct(ts[j], "*") ||
                             is_id(ts[j], "const"))) {
      ++j;
    }
    if (j < ts.size() && is_ident(ts[j])) vars.insert(ts[j].text);
  }
  return vars;
}

void scan_bit_identical_body(const ProjectModel& model,
                             const FunctionInfo& fn,
                             const std::string& reached_via,
                             std::vector<Finding>& out) {
  const Tokens& ts = file_tokens(model, fn.file);
  const bool in_dispatch = path_contains(model, fn.file, "src/simd/dispatch");
  const std::set<std::string> unordered =
      unordered_vars_in_file(model, fn.file);
  static const std::set<std::string> kIsaState = {
      "active_isa",    "active_isa_name", "best_supported_isa",
      "cpu_supports",  "set_active_isa",  "isa_name",
      "kernel_config", "getenv"};

  const std::string& path =
      model.files[static_cast<std::size_t>(fn.file)].path;
  std::string who = "'";
  who += fn.qualified();
  who += "'";
  who += reached_via;

  for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
    const Token& t = ts[k];
    if (!is_ident(t)) continue;
    const bool call = k + 1 < ts.size() && is_punct(ts[k + 1], "(");
    if (call && (t.text == "fma" || t.text == "fmaf" || t.text == "fmal")) {
      out.push_back(Finding{
          path, t.line, "bit-identical-path",
          who + " calls std::" + t.text +
              "; FMA contraction differs across ISAs — use explicit "
              "mul+add on the bit-identical path"});
      continue;
    }
    if (!in_dispatch && kIsaState.count(t.text) > 0) {
      out.push_back(Finding{
          path, t.line, "bit-identical-path",
          who + " reads ISA-dependent state ('" + t.text +
              "') outside src/simd/dispatch; byte-stable output must not "
              "depend on the host CPU"});
      continue;
    }
    if (is_id(t, "for") && k + 1 < ts.size() && is_punct(ts[k + 1], "(")) {
      // Range-for over an unordered container: iteration order is
      // hash-seed dependent, so anything emitted from the loop is not
      // byte-stable.
      const std::size_t close = skip_balanced(ts, k + 1, "(", ")");
      for (std::size_t j = k + 2; j + 1 < close; ++j) {
        if (is_punct(ts[j], ":") && j + 1 < close && is_ident(ts[j + 1]) &&
            unordered.count(ts[j + 1].text) > 0) {
          out.push_back(Finding{
              path, ts[j + 1].line, "bit-identical-path",
              who + " iterates unordered container '" + ts[j + 1].text +
                  "'; order is hash-seed dependent — copy to a sorted "
                  "vector first"});
        }
      }
    }
  }
}

void check_bit_identical_path_impl(const ProjectModel& model,
                                   std::vector<Finding>& out) {
  // Annotated functions, then their direct callees (one level deep).
  std::set<int> annotated;
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    if (model.functions[f].bit_identical && model.functions[f].has_body) {
      annotated.insert(static_cast<int>(f));
    }
  }
  std::set<int> scanned;
  for (const int f : annotated) {
    if (scanned.insert(f).second) {
      scan_bit_identical_body(model,
                              model.functions[static_cast<std::size_t>(f)],
                              "", out);
    }
  }
  for (const int f : annotated) {
    for (const CallSite& cs : model.calls[static_cast<std::size_t>(f)]) {
      const FunctionInfo& callee =
          model.functions[static_cast<std::size_t>(cs.callee)];
      if (!callee.has_body) continue;
      if (!scanned.insert(cs.callee).second) continue;
      scan_bit_identical_body(
          model, callee,
          " (called from bit-identical '" +
              model.functions[static_cast<std::size_t>(f)].qualified() +
              "')",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// error-path

bool has_context_token(const Tokens& ts, std::size_t open) {
  static const std::vector<std::string> kHints = {
      "path", "file", "dir", "offset", "name", "manifest", "shard",
      "tmp",  "uri"};
  const std::size_t end = skip_balanced(ts, open, "(", ")");
  for (std::size_t j = open + 1; j + 1 < end; ++j) {
    if (!is_ident(ts[j]) && ts[j].kind != TokenKind::kString) continue;
    std::string lower;
    for (char c : ts[j].text) {
      lower += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    }
    for (const std::string& hint : kHints) {
      if (lower.find(hint) != std::string::npos) return true;
    }
  }
  return false;
}

void check_error_path_impl(const ProjectModel& model,
                           std::vector<Finding>& out) {
  for (std::size_t f = 0; f < model.files.size(); ++f) {
    const FileContext& ctx = model.files[f];
    const bool covered = ctx.normalized.find("src/dataset") !=
                             std::string::npos ||
                         ctx.normalized.find("src/gnn") !=
                             std::string::npos ||
                         ctx.normalized.find("src/mine") != std::string::npos;
    if (!covered) continue;
    const Tokens& ts = ctx.lex.tokens;
    for (std::size_t k = 0; k + 2 < ts.size(); ++k) {
      if (!is_id(ts[k], "throw")) continue;
      std::size_t j = k + 1;
      // throw IoError(...) / throw qgnn::IoError(...)
      while (j < ts.size() && (is_ident(ts[j]) || is_punct(ts[j], "::")) &&
             !is_id(ts[j], "IoError")) {
        ++j;
        if (j > k + 4) break;
      }
      if (j >= ts.size() || !is_id(ts[j], "IoError")) continue;
      if (j + 1 >= ts.size() || !is_punct(ts[j + 1], "(")) continue;
      if (has_context_token(ts, j + 1)) continue;
      out.push_back(Finding{
          ctx.path, ts[j].line, "error-path",
          "IoError thrown without file/offset context; a corrupt shard "
          "must name the file (and byte offset where known) so the "
          "operator can find it"});
    }
  }
}

}  // namespace

void check_lock_discipline(const ProjectModel& model,
                           std::vector<Finding>& out) {
  check_lock_discipline_impl(model, out);
}

void check_event_loop_blocking(const ProjectModel& model,
                               std::vector<Finding>& out) {
  check_event_loop_blocking_impl(model, out);
}

void check_bit_identical_path(const ProjectModel& model,
                              std::vector<Finding>& out) {
  check_bit_identical_path_impl(model, out);
}

void check_error_path(const ProjectModel& model, std::vector<Finding>& out) {
  check_error_path_impl(model, out);
}

const std::vector<FlowCheckInfo>& all_flow_checks() {
  static const std::vector<FlowCheckInfo> kChecks = {
      {"lock-discipline",
       "QGNN_GUARDED_BY members only touched with the named mutex held",
       "A member annotated QGNN_GUARDED_BY(m) documents that every read "
       "and write happens under m. The checker verifies each access sits "
       "under a lexically visible lock_guard/unique_lock/scoped_lock of "
       "m, inside a QGNN_REQUIRES(m) function, or inside a function whose "
       "every project call site holds m. Fix: take the lock, or annotate "
       "the accessor QGNN_REQUIRES(m) and fix its callers.",
       &check_lock_discipline},
      {"event-loop-blocking",
       "no blocking primitive reachable from a QGNN_EVENT_LOOP_ONLY entry",
       "The epoll loop thread multiplexes every connection; one blocking "
       "call stalls all of them. The checker walks the call graph from "
       "each QGNN_EVENT_LOOP_ONLY entry and flags connect(), raw read() "
       "outside src/net, sleeps, condition waits, and locks of mutexes "
       "no annotation names. Fix: move the work to the thread pool, or "
       "annotate the mutex if the critical section is provably short.",
       &check_event_loop_blocking},
      {"bit-identical-path",
       "no FMA, unordered iteration, or ISA probing on byte-stable paths",
       "QGNN_BIT_IDENTICAL_PATH marks functions whose output must be "
       "byte-identical across machines (canonical hashes, packed shards, "
       "checkpoints). The checker scans them and their direct callees "
       "for std::fma (contraction differs per ISA), range-for over "
       "unordered containers (hash-seed order), and ISA-dependent state "
       "reads outside src/simd/dispatch. Fix: explicit mul+add, sort "
       "before emitting, or hoist the ISA decision out of the path.",
       &check_bit_identical_path},
      {"error-path",
       "IoError in dataset/gnn/mine code must carry file context",
       "A deserialization error that says only 'bad magic' costs an "
       "on-call engineer the night. In src/dataset, src/gnn, and "
       "src/mine, every `throw IoError(...)` must mention the file path "
       "(and byte offset where known). The checker accepts any argument "
       "token whose name or content references a path/file/offset. Fix: "
       "thread the path into the message.",
       &check_error_path},
  };
  return kChecks;
}

}  // namespace qgnn::lint
