#pragma once

#include <string>
#include <vector>

#include "qgnn_lint/model.hpp"

namespace qgnn::lint {

/// Flow-lite checkers: project-wide checks that consume the ProjectModel
/// (symbol index + call graph) instead of a single file's token stream.
/// "Flow-lite" is a statement of scope — lexically visible locks, call
/// propagation one level deep, BFS reachability — not interprocedural
/// dataflow. The point is to catch the concurrency and determinism
/// mistakes that per-file checks structurally cannot see: a guarded
/// member touched from a helper defined in another file, a blocking
/// primitive three calls below an event-loop handler, an FMA contraction
/// inside a byte-stable serialization path.

using FlowCheckFn = void (*)(const ProjectModel&, std::vector<Finding>&);

struct FlowCheckInfo {
  const char* name;
  const char* description;
  const char* explain;  // rationale + fix guidance for --explain
  FlowCheckFn fn;
};

/// The flow-check catalogue, in reporting order. Names share the
/// namespace of all_checks() ids (suppressions, --check/--skip-check).
const std::vector<FlowCheckInfo>& all_flow_checks();

/// QGNN_GUARDED_BY members may only be touched while the named mutex is
/// lexically held (lock_guard/unique_lock/scoped_lock in an enclosing
/// scope, or a manual .lock()), from a QGNN_REQUIRES(mutex) function, or
/// from a function whose every project call site holds the mutex
/// (call-graph propagation one level deep). Constructors/destructors are
/// exempt: no concurrent access can exist yet/anymore.
void check_lock_discipline(const ProjectModel& model,
                           std::vector<Finding>& out);

/// Nothing reachable from a QGNN_EVENT_LOOP_ONLY entry point may block:
/// connect(), raw read() outside src/net, sleeps, condition_variable
/// waits, or locking a mutex that no annotation names (annotated mutexes
/// guard short critical sections by contract; anything else is a licence
/// to stall the loop).
void check_event_loop_blocking(const ProjectModel& model,
                               std::vector<Finding>& out);

/// QGNN_BIT_IDENTICAL_PATH functions (and their direct callees) may not
/// call std::fma, iterate an unordered container into their output, or
/// read ISA-dependent state outside src/simd/dispatch.
void check_bit_identical_path(const ProjectModel& model,
                              std::vector<Finding>& out);

/// IoError thrown under src/dataset, src/gnn, or src/mine must carry
/// file/offset context in its message so a corrupt shard names the shard.
void check_error_path(const ProjectModel& model, std::vector<Finding>& out);

}  // namespace qgnn::lint
