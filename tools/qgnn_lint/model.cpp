#include "qgnn_lint/model.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace qgnn::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_id(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

/// Identifiers that can never be a function name at a declaration site
/// (type keywords and storage specifiers the signature matcher would
/// otherwise mistake for a declarator name).
const std::set<std::string>& non_name_keywords() {
  static const std::set<std::string> kWords = {
      "void",     "int",      "char",   "bool",     "double",  "float",
      "auto",     "long",     "short",  "unsigned", "signed",  "const",
      "constexpr", "static",  "inline", "virtual",  "explicit", "mutable",
      "volatile", "typename", "return", "operator", "throw",   "new",
      "delete",   "sizeof",   "if",     "while",    "for",     "switch",
      "catch",    "decltype", "alignas", "alignof", "noexcept",
      "co_return", "co_await", "co_yield", "requires", "this"};
  return kWords;
}

/// Identifiers that introduce control flow or builtins, never project
/// functions, at a call site inside a body.
const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string> kWords = {
      "if",       "for",     "while",    "switch",      "catch",
      "return",   "sizeof",  "alignof",  "alignas",     "decltype",
      "static_assert",       "assert",   "defined",     "new",
      "delete",   "throw",   "co_await", "co_return",   "co_yield",
      "noexcept", "typeid",  "requires", "static_cast", "dynamic_cast",
      "const_cast",          "reinterpret_cast"};
  return kWords;
}

/// Skip a balanced group starting at `i` (which must point at `open`).
/// Returns the index one past the matching closer, or ts.size() when the
/// group never closes.
std::size_t skip_balanced(const Tokens& ts, std::size_t i, const char* open,
                          const char* close) {
  if (i >= ts.size() || !is_punct(ts[i], open)) return i;
  int depth = 0;
  for (std::size_t j = i; j < ts.size(); ++j) {
    if (is_punct(ts[j], open)) ++depth;
    if (is_punct(ts[j], close)) {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return ts.size();
}

/// Token ranges [open_brace, close_brace] of lambda bodies within
/// [begin, end). A capture list `[` starts a primary expression, so the
/// token before it is never an identifier, `)`, `]`, or `>` — that shape
/// is array indexing. After the capture list we accept an optional
/// parameter list, then skip specifier tokens (mutable, noexcept(...),
/// trailing return types) until the body `{`.
std::vector<std::pair<std::size_t, std::size_t>> lambda_body_regions(
    const Tokens& ts, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  for (std::size_t k = begin; k < end && k < ts.size(); ++k) {
    if (!is_punct(ts[k], "[")) continue;
    if (k > begin && (is_ident(ts[k - 1]) || is_punct(ts[k - 1], ")") ||
                      is_punct(ts[k - 1], "]") || is_punct(ts[k - 1], ">"))) {
      continue;  // indexing or attribute-after-declarator, not a capture
    }
    std::size_t j = skip_balanced(ts, k, "[", "]");
    if (j >= ts.size()) break;
    if (j < ts.size() && is_punct(ts[j], "(")) {
      j = skip_balanced(ts, j, "(", ")");
    }
    // Specifiers / trailing return type: identifiers, ::, ->, <...> and
    // noexcept(...) groups may precede the body.
    std::size_t guard = 0;
    while (j < ts.size() && !is_punct(ts[j], "{") && guard++ < 64) {
      if (is_ident(ts[j]) || is_punct(ts[j], "::") || is_punct(ts[j], "->") ||
          is_punct(ts[j], "*") || is_punct(ts[j], "&")) {
        ++j;
      } else if (is_punct(ts[j], "<")) {
        int depth = 0;
        std::size_t m = j;
        for (; m < ts.size(); ++m) {
          if (is_punct(ts[m], "<")) ++depth;
          if (is_punct(ts[m], ">") && --depth == 0) break;
          if (is_punct(ts[m], ";") || is_punct(ts[m], "{")) break;
        }
        if (m >= ts.size() || !is_punct(ts[m], ">")) break;
        j = m + 1;
      } else if (is_punct(ts[j], "(")) {
        j = skip_balanced(ts, j, "(", ")");
      } else {
        break;
      }
    }
    if (j < ts.size() && is_punct(ts[j], "{")) {
      const std::size_t close = skip_balanced(ts, j, "{", "}");
      if (close > j) regions.emplace_back(j, close - 1);
    }
  }
  return regions;
}

/// Annotation macro names whose argument lists name mutexes.
bool is_mutex_annotation(const Token& t, bool* requires_out) {
  if (is_id(t, "QGNN_REQUIRES")) {
    *requires_out = true;
    return true;
  }
  if (is_id(t, "QGNN_EXCLUDES")) {
    *requires_out = false;
    return true;
  }
  return false;
}

/// Collect the mutex names from an annotation argument list starting at
/// `open` (the '(' token): one name per comma-separated argument, taken
/// as the last identifier of the argument expression (so `handle_->mu_`
/// and `mu_` both yield "mu_"). Returns one past the ')'.
std::size_t collect_mutex_args(const Tokens& ts, std::size_t open,
                               std::set<std::string>* out) {
  const std::size_t end = skip_balanced(ts, open, "(", ")");
  std::string last;
  for (std::size_t j = open + 1; j + 1 < end + 1 && j < ts.size(); ++j) {
    if (j == end - 1 || is_punct(ts[j], ",")) {
      if (!last.empty()) out->insert(last);
      last.clear();
      continue;
    }
    if (is_ident(ts[j])) last = ts[j].text;
  }
  return end;
}

// ---------------------------------------------------------------------------
// Pass 1: structure scan (namespaces, classes, functions, annotations)

struct Scope {
  enum class Kind { kNamespace, kClass, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;  // class name for kClass
};

class StructureScanner {
 public:
  StructureScanner(const Tokens& ts, int file, ProjectModel* model)
      : ts_(ts), file_(file), model_(model) {}

  void run() {
    std::size_t i = 0;
    while (i < ts_.size()) {
      i = statement(i);
    }
  }

 private:
  std::string current_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
      if (it->kind == Scope::Kind::kBlock) return "";
    }
    return "";
  }

  /// Parse one construct starting at `i`; returns the index to resume at.
  /// Always makes progress.
  std::size_t statement(std::size_t i) {
    const Token& t = ts_[i];
    if (t.kind == TokenKind::kDirective) return i + 1;
    if (is_punct(t, "}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      return i + 1;
    }
    if (is_punct(t, "{")) {
      scopes_.push_back({Scope::Kind::kBlock, ""});
      return i + 1;
    }
    if (is_id(t, "namespace")) return namespace_decl(i);
    if (is_id(t, "enum")) return enum_decl(i);
    if (is_id(t, "template")) return template_header(i);
    if (is_id(t, "using") || is_id(t, "typedef") || is_id(t, "friend")) {
      return skip_to_semicolon(i);
    }
    if ((is_id(t, "public") || is_id(t, "private") ||
         is_id(t, "protected")) &&
        i + 1 < ts_.size() && is_punct(ts_[i + 1], ":")) {
      return i + 2;
    }
    if ((is_id(t, "class") || is_id(t, "struct") || is_id(t, "union")) &&
        !prev_is_template_param(i)) {
      return class_decl(i);
    }
    return declaration(i);
  }

  bool prev_is_template_param(std::size_t i) const {
    if (i == 0) return false;
    const Token& p = ts_[i - 1];
    return is_punct(p, "<") || is_punct(p, ",");
  }

  std::size_t namespace_decl(std::size_t i) {
    std::size_t j = i + 1;
    while (j < ts_.size() &&
           (is_ident(ts_[j]) || is_punct(ts_[j], "::"))) {
      ++j;
    }
    if (j < ts_.size() && is_punct(ts_[j], "{")) {
      scopes_.push_back({Scope::Kind::kNamespace, ""});
      return j + 1;
    }
    return skip_to_semicolon(i);  // namespace alias
  }

  std::size_t enum_decl(std::size_t i) {
    std::size_t j = i + 1;
    while (j < ts_.size() && !is_punct(ts_[j], "{") &&
           !is_punct(ts_[j], ";")) {
      ++j;
    }
    if (j < ts_.size() && is_punct(ts_[j], "{")) {
      j = skip_balanced(ts_, j, "{", "}");
    }
    if (j < ts_.size() && is_punct(ts_[j], ";")) ++j;
    return j;
  }

  std::size_t template_header(std::size_t i) {
    std::size_t j = i + 1;
    if (j < ts_.size() && is_punct(ts_[j], "<")) {
      int depth = 0;
      for (; j < ts_.size(); ++j) {
        if (is_punct(ts_[j], "<")) ++depth;
        if (is_punct(ts_[j], ">")) {
          --depth;
          if (depth == 0) {
            ++j;
            break;
          }
        }
      }
    }
    return j;  // the templated declaration parses next
  }

  std::size_t class_decl(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    // Optional attributes / macro names before the class name; take the
    // last identifier before the terminator as the name.
    while (j < ts_.size() && !is_punct(ts_[j], "{") &&
           !is_punct(ts_[j], ";") && !is_punct(ts_[j], ":") &&
           !is_punct(ts_[j], "(")) {
      if (is_ident(ts_[j]) && ts_[j].text != "final" &&
          ts_[j].text != "alignas") {
        name = ts_[j].text;
      }
      ++j;
    }
    if (j >= ts_.size()) return ts_.size();
    if (is_punct(ts_[j], ":")) {  // base clause
      while (j < ts_.size() && !is_punct(ts_[j], "{") &&
             !is_punct(ts_[j], ";")) {
        if (is_punct(ts_[j], "(")) {
          j = skip_balanced(ts_, j, "(", ")");
          continue;
        }
        ++j;
      }
    }
    if (j < ts_.size() && is_punct(ts_[j], "{")) {
      scopes_.push_back({Scope::Kind::kClass, name});
      return j + 1;
    }
    return j < ts_.size() ? j + 1 : ts_.size();  // forward declaration
  }

  std::size_t skip_to_semicolon(std::size_t i) {
    std::size_t j = i;
    int brace = 0;
    while (j < ts_.size()) {
      if (is_punct(ts_[j], "(")) {
        j = skip_balanced(ts_, j, "(", ")");
        continue;
      }
      if (is_punct(ts_[j], "{")) {
        ++brace;
        ++j;
        continue;
      }
      if (is_punct(ts_[j], "}")) {
        if (brace == 0) return j;  // stray close: let statement() pop it
        --brace;
        ++j;
        continue;
      }
      if (brace == 0 && is_punct(ts_[j], ";")) return j + 1;
      ++j;
    }
    return ts_.size();
  }

  /// Parse a declaration statement at class/namespace scope: detect a
  /// function signature `name ( params )` at depth 0, its annotations,
  /// and its body; or a (possibly QGNN_GUARDED_BY-annotated) member.
  std::size_t declaration(std::size_t i) {
    std::size_t j = i;
    std::size_t name_idx = 0;
    std::size_t params_end = 0;
    bool have_sig = false;

    // Head scan: up to '=', ';', '{', or a signature's parameter list.
    while (j < ts_.size()) {
      const Token& t = ts_[j];
      if (is_punct(t, ";")) return finish_member(i, j, j + 1);
      if (is_punct(t, "=")) {
        // Variable initializer; skip balanced to the ';'.
        const std::size_t end = skip_to_semicolon(j);
        return finish_member(i, end > 0 ? end - 1 : j, end);
      }
      if (is_punct(t, "{")) {
        // Brace-initialized member (`std::mutex m{};`) — skip the braces,
        // then the ';'.
        std::size_t end = skip_balanced(ts_, j, "{", "}");
        if (end < ts_.size() && is_punct(ts_[end], ";")) ++end;
        return finish_member(i, j, end);
      }
      if (is_punct(t, "}")) return j;  // malformed; resync on the brace
      if (is_punct(t, "(")) {
        // Candidate parameter list when preceded by a plausible name.
        // Annotation macros are not declarator names — `int x_
        // QGNN_GUARDED_BY(m);` is a member, not a function.
        if (j > i && is_ident(ts_[j - 1]) &&
            non_name_keywords().count(ts_[j - 1].text) == 0 &&
            ts_[j - 1].text.rfind("QGNN_", 0) != 0) {
          name_idx = j - 1;
          params_end = skip_balanced(ts_, j, "(", ")");
          have_sig = true;
          j = params_end;
          break;
        }
        j = skip_balanced(ts_, j, "(", ")");
        continue;
      }
      ++j;
    }
    if (!have_sig) return j < ts_.size() ? j + 1 : ts_.size();

    // Post-signature scan: qualifiers, annotations, trailing return,
    // then ';' (declaration), '=' (default/delete/0), ':' (ctor-init),
    // or '{' (body).
    FunctionInfo fn;
    fn.file = file_;
    fn.name = ts_[name_idx].text;
    fn.line = ts_[name_idx].line;
    if (name_idx > 0 && is_punct(ts_[name_idx - 1], "~")) {
      fn.name = "~" + fn.name;
      fn.is_ctor_dtor = true;
    }
    // Qualification: `Foo::bar` takes Foo; otherwise the enclosing class.
    if (name_idx >= 2 && is_punct(ts_[name_idx - 1], "::") &&
        is_ident(ts_[name_idx - 2])) {
      fn.class_name = ts_[name_idx - 2].text;
    } else {
      fn.class_name = current_class();
    }
    if (!fn.class_name.empty() &&
        (fn.name == fn.class_name || fn.name == "~" + fn.class_name)) {
      fn.is_ctor_dtor = true;
    }

    j = params_end;
    while (j < ts_.size()) {
      const Token& t = ts_[j];
      bool requires_kind = false;
      if (is_mutex_annotation(t, &requires_kind) && j + 1 < ts_.size() &&
          is_punct(ts_[j + 1], "(")) {
        j = collect_mutex_args(
            ts_, j + 1,
            requires_kind ? &fn.requires_mutexes : &fn.excludes_mutexes);
        continue;
      }
      if (is_id(t, "QGNN_EVENT_LOOP_ONLY")) {
        fn.event_loop_only = true;
        ++j;
        continue;
      }
      if (is_id(t, "QGNN_BIT_IDENTICAL_PATH")) {
        fn.bit_identical = true;
        ++j;
        continue;
      }
      if (is_punct(t, "(")) {  // noexcept(...), decltype(...)
        j = skip_balanced(ts_, j, "(", ")");
        continue;
      }
      if (is_punct(t, ";")) {
        record(std::move(fn));
        return j + 1;
      }
      if (is_punct(t, "=")) {  // = default / = delete / = 0
        record(std::move(fn));
        return skip_to_semicolon(j);
      }
      if (is_punct(t, ":")) return ctor_init(std::move(fn), j);
      if (is_punct(t, "{")) return body(std::move(fn), j);
      if (is_punct(t, "}")) return j;  // malformed; resync
      ++j;
    }
    return ts_.size();
  }

  /// Skip a constructor initializer list starting at the ':' and hand
  /// the body brace to body(). Initializer braces (`b_{2}`) are
  /// recognized by their preceding token being part of an initializer
  /// expression, the body brace by following a completed initializer.
  std::size_t ctor_init(FunctionInfo fn, std::size_t colon) {
    std::size_t j = colon + 1;
    while (j < ts_.size()) {
      if (is_punct(ts_[j], "(")) {
        j = skip_balanced(ts_, j, "(", ")");
        continue;
      }
      if (is_punct(ts_[j], "{")) {
        const Token& prev = ts_[j - 1];
        if (is_ident(prev) || is_punct(prev, ">")) {
          j = skip_balanced(ts_, j, "{", "}");  // brace initializer
          continue;
        }
        return body(std::move(fn), j);
      }
      if (is_punct(ts_[j], ";") || is_punct(ts_[j], "}")) return j;
      ++j;
    }
    return ts_.size();
  }

  std::size_t body(FunctionInfo fn, std::size_t lbrace) {
    const std::size_t end = skip_balanced(ts_, lbrace, "{", "}");
    fn.has_body = true;
    fn.body_begin = lbrace;
    fn.body_end = end > lbrace ? end - 1 : lbrace;
    record(std::move(fn));
    return end;
  }

  /// A statement without a function signature: check it for a
  /// QGNN_GUARDED_BY member annotation. [begin, end_tok) is the
  /// declaration's token range.
  std::size_t finish_member(std::size_t begin, std::size_t end_tok,
                            std::size_t resume) {
    for (std::size_t j = begin; j < end_tok && j < ts_.size(); ++j) {
      if (!is_id(ts_[j], "QGNN_GUARDED_BY")) continue;
      if (j + 1 >= ts_.size() || !is_punct(ts_[j + 1], "(")) continue;
      // The member name is the identifier before the macro; for array
      // members (`halves_[2] QGNN_GUARDED_BY(m)`) it sits before the
      // bracket group.
      std::size_t name_idx = j;
      if (name_idx > begin && is_punct(ts_[name_idx - 1], "]")) {
        while (name_idx > begin && !is_punct(ts_[name_idx - 1], "[")) {
          --name_idx;
        }
        if (name_idx > begin) --name_idx;  // the '['
      }
      if (name_idx == begin || !is_ident(ts_[name_idx - 1])) continue;
      GuardedMember gm;
      gm.file = file_;
      gm.class_name = current_class();
      gm.member = ts_[name_idx - 1].text;
      gm.line = ts_[name_idx - 1].line;
      std::set<std::string> mutexes;
      collect_mutex_args(ts_, j + 1, &mutexes);
      if (mutexes.empty()) continue;
      gm.mutex = *mutexes.begin();
      model_->guarded.push_back(std::move(gm));
    }
    return resume;
  }

  void record(FunctionInfo fn) {
    model_->functions.push_back(std::move(fn));
  }

  const Tokens& ts_;
  int file_;
  ProjectModel* model_;
  std::vector<Scope> scopes_;
};

// ---------------------------------------------------------------------------
// Pass 2: declaration/definition annotation merge + call graph

std::string group_key(const FunctionInfo& fn) {
  return fn.class_name + "::" + fn.name;
}

void merge_annotations(ProjectModel* model) {
  struct Group {
    std::set<std::string> requires_mutexes;
    std::set<std::string> excludes_mutexes;
    bool event_loop_only = false;
    bool bit_identical = false;
  };
  std::map<std::string, Group> groups;
  for (const FunctionInfo& fn : model->functions) {
    Group& g = groups[group_key(fn)];
    g.requires_mutexes.insert(fn.requires_mutexes.begin(),
                              fn.requires_mutexes.end());
    g.excludes_mutexes.insert(fn.excludes_mutexes.begin(),
                              fn.excludes_mutexes.end());
    g.event_loop_only |= fn.event_loop_only;
    g.bit_identical |= fn.bit_identical;
  }
  for (FunctionInfo& fn : model->functions) {
    const Group& g = groups[group_key(fn)];
    fn.requires_mutexes = g.requires_mutexes;
    fn.excludes_mutexes = g.excludes_mutexes;
    fn.event_loop_only = g.event_loop_only;
    fn.bit_identical = g.bit_identical;
  }
}

void build_call_graph(ProjectModel* model) {
  // Name index over definitions (call targets are bodies; a declaration
  // node has nothing to scan).
  std::multimap<std::string, int> defs_by_name;
  std::set<std::string> class_names;
  for (std::size_t f = 0; f < model->functions.size(); ++f) {
    const FunctionInfo& fn = model->functions[f];
    model->functions_by_name.emplace(fn.name, static_cast<int>(f));
    if (fn.has_body) defs_by_name.emplace(fn.name, static_cast<int>(f));
    if (!fn.class_name.empty()) class_names.insert(fn.class_name);
  }

  model->calls.assign(model->functions.size(), {});
  for (std::size_t f = 0; f < model->functions.size(); ++f) {
    const FunctionInfo& fn = model->functions[f];
    if (!fn.has_body) continue;
    const Tokens& ts = model->files[static_cast<std::size_t>(fn.file)]
                           .lex.tokens;
    const auto lambdas =
        lambda_body_regions(ts, fn.body_begin + 1, fn.body_end);
    const auto in_lambda = [&lambdas](std::size_t k) {
      for (const auto& r : lambdas) {
        if (k > r.first && k < r.second) return true;
      }
      return false;
    };
    for (std::size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
      if (!is_ident(ts[k]) || k + 1 >= ts.size() ||
          !is_punct(ts[k + 1], "(")) {
        continue;
      }
      if (non_call_keywords().count(ts[k].text) > 0) continue;

      // Qualifier shape.
      std::string class_qual;
      bool qualified = false;
      if (k >= 1 && is_punct(ts[k - 1], "::") && k >= 2 &&
          is_ident(ts[k - 2])) {
        class_qual = ts[k - 2].text;
        qualified = true;
      }

      const auto range = defs_by_name.equal_range(ts[k].text);
      std::vector<int> candidates;
      for (auto it = range.first; it != range.second; ++it) {
        candidates.push_back(it->second);
      }
      if (candidates.empty()) continue;

      std::vector<int> chosen;
      if (qualified) {
        // `Foo::bar(...)` — only class-qualified matches. Namespace
        // qualifiers (std::, net::) match nothing here by design.
        if (class_names.count(class_qual) > 0) {
          for (int c : candidates) {
            if (model->functions[static_cast<std::size_t>(c)].class_name ==
                class_qual) {
              chosen.push_back(c);
            }
          }
        }
      } else {
        // Prefer same-class members; otherwise accept only when every
        // candidate shares one (class, name) identity — ambiguity makes
        // no edge rather than a wrong one.
        for (int c : candidates) {
          if (!fn.class_name.empty() &&
              model->functions[static_cast<std::size_t>(c)].class_name ==
                  fn.class_name) {
            chosen.push_back(c);
          }
        }
        if (chosen.empty()) {
          std::set<std::string> identities;
          for (int c : candidates) {
            identities.insert(
                group_key(model->functions[static_cast<std::size_t>(c)]));
          }
          if (identities.size() == 1) chosen = candidates;
        }
      }
      for (int c : chosen) {
        model->calls[f].push_back(CallSite{c, ts[k].line, k, in_lambda(k)});
      }
    }
  }
}

void collect_annotated_mutexes(ProjectModel* model) {
  for (const GuardedMember& gm : model->guarded) {
    model->annotated_mutexes.insert(gm.mutex);
  }
  for (const FunctionInfo& fn : model->functions) {
    model->annotated_mutexes.insert(fn.requires_mutexes.begin(),
                                    fn.requires_mutexes.end());
    model->annotated_mutexes.insert(fn.excludes_mutexes.begin(),
                                    fn.excludes_mutexes.end());
  }
}

void build_include_graph(ProjectModel* model) {
  // Suffix index: resolve `#include "a/b.hpp"` to the scanned file whose
  // normalized path ends with "/a/b.hpp" (or equals it).
  model->includes.assign(model->files.size(), {});
  for (std::size_t f = 0; f < model->files.size(); ++f) {
    for (const Token& t : model->files[f].lex.tokens) {
      if (t.kind != TokenKind::kDirective) continue;
      if (t.text.rfind("#include", 0) != 0) continue;
      const std::size_t open = t.text.find('"');
      if (open == std::string::npos) continue;
      const std::size_t close = t.text.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string inc = t.text.substr(open + 1, close - open - 1);
      for (std::size_t g = 0; g < model->files.size(); ++g) {
        const std::string& p = model->files[g].normalized;
        if (p == inc || (p.size() > inc.size() + 1 &&
                         p.compare(p.size() - inc.size() - 1, 1, "/") == 0 &&
                         p.compare(p.size() - inc.size(), inc.size(), inc) ==
                             0)) {
          model->includes[f].push_back(static_cast<int>(g));
        }
      }
    }
  }
}

}  // namespace

int ProjectModel::file_index(const std::string& normalized) const {
  for (std::size_t f = 0; f < files.size(); ++f) {
    if (files[f].normalized == normalized) return static_cast<int>(f);
  }
  return -1;
}

ProjectModel build_model(std::vector<FileContext> files) {
  ProjectModel model;
  model.files = std::move(files);
  for (std::size_t f = 0; f < model.files.size(); ++f) {
    StructureScanner(model.files[f].lex.tokens, static_cast<int>(f), &model)
        .run();
  }
  merge_annotations(&model);
  collect_annotated_mutexes(&model);
  build_call_graph(&model);
  build_include_graph(&model);
  return model;
}

}  // namespace qgnn::lint
