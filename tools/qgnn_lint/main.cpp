// qgnn_lint — from-scratch static analysis enforcing the project's
// determinism, observability-naming, concurrency, and hygiene invariants.
//
// Usage:
//   qgnn_lint [--obs-names <path>] <path>...   lint files/directories
//   qgnn_lint --list-checks                    print the check catalogue
//
// Findings print one per line as `file:line: [check] message`; the exit
// code is 1 when there are findings, 0 on a clean tree, 2 on usage or I/O
// errors. Suppress a finding with `// qgnn-lint: allow(<check>)` on (or
// directly above) the offending line.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "qgnn_lint/lint.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: qgnn_lint [--obs-names <path>] <path>...\n"
         "       qgnn_lint --list-checks\n"
         "\n"
         "Lints .hpp/.cpp files (directories are walked recursively;\n"
         "lint_fixtures/, build*/ and dot-directories are skipped).\n"
         "Suppress with // qgnn-lint: allow(<check>) on or above the line.\n";
}

void print_checks(std::ostream& out) {
  for (const qgnn::lint::CheckInfo& check : qgnn::lint::all_checks()) {
    out << check.name << "\n    " << check.description << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  qgnn::lint::LintConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--list-checks") {
      print_checks(std::cout);
      return 0;
    }
    if (arg == "--obs-names") {
      if (i + 1 >= argc) {
        std::cerr << "qgnn_lint: --obs-names needs a path\n";
        return 2;
      }
      config.obs_names_path = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qgnn_lint: unknown flag " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    }
    config.paths.push_back(arg);
  }
  if (config.paths.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  std::vector<qgnn::lint::Finding> findings;
  try {
    findings = qgnn::lint::run_lint(config);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  for (const qgnn::lint::Finding& finding : findings) {
    std::cout << qgnn::lint::format_finding(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "qgnn_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
