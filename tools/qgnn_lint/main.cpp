// qgnn_lint — from-scratch static analysis enforcing the project's
// determinism, observability-naming, concurrency, and hygiene invariants.
// Per-file lexical checks run in parallel; four flow-lite checkers
// (lock-discipline, event-loop-blocking, bit-identical-path, error-path)
// run over a project-wide model of every translation unit.
//
// Usage:
//   qgnn_lint [options] <path>...      lint files/directories
//   qgnn_lint --list-checks            print the check catalogue
//   qgnn_lint --explain <check>        rationale + fix guidance
//
// Findings print one per line as `file:line: [check] message`; the exit
// code is 1 when there are findings (or stale baseline entries), 0 on a
// clean tree, 2 on usage or I/O errors. Suppress a finding with
// `// qgnn-lint: allow(<check>)` on (or directly above) the offending
// line.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qgnn_lint/baseline.hpp"
#include "qgnn_lint/flow_checks.hpp"
#include "qgnn_lint/lint.hpp"
#include "qgnn_lint/sarif.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: qgnn_lint [options] <path>...\n"
         "       qgnn_lint --list-checks\n"
         "       qgnn_lint --explain <check>\n"
         "\n"
         "options:\n"
         "  --obs-names <path>      obs name registry (src/obs/names.hpp)\n"
         "  --check=<name>          run only this check (repeatable)\n"
         "  --skip-check=<name>     skip this check (repeatable)\n"
         "  --jobs <n>              worker threads (default:\n"
         "                          QGNN_NUM_THREADS, else hardware);\n"
         "                          output is byte-identical at any value\n"
         "  --sarif-out <path>      also write findings as SARIF 2.1.0\n"
         "  --baseline <path>       accepted-findings file: only NEW\n"
         "                          findings fail; fixed findings must be\n"
         "                          removed from the baseline\n"
         "  --write-baseline <path> write the current findings as a\n"
         "                          baseline and exit 0\n"
         "\n"
         "Lints .hpp/.cpp files (directories are walked recursively;\n"
         "lint_fixtures/, build*/ and dot-directories are skipped).\n"
         "Suppress with // qgnn-lint: allow(<check>) on or above the line.\n";
}

void print_checks(std::ostream& out) {
  out << "per-file checks:\n";
  for (const qgnn::lint::CheckInfo& check : qgnn::lint::all_checks()) {
    out << "  " << check.name << "\n      " << check.description << "\n";
  }
  out << "flow checks (project-wide, need the whole tree):\n";
  for (const qgnn::lint::FlowCheckInfo& check :
       qgnn::lint::all_flow_checks()) {
    out << "  " << check.name << "\n      " << check.description << "\n";
  }
}

int explain_check(const std::string& name) {
  const char* description = nullptr;
  const char* explain = nullptr;
  for (const qgnn::lint::CheckInfo& check : qgnn::lint::all_checks()) {
    if (name == check.name) {
      description = check.description;
      explain = check.explain;
    }
  }
  for (const qgnn::lint::FlowCheckInfo& check :
       qgnn::lint::all_flow_checks()) {
    if (name == check.name) {
      description = check.description;
      explain = check.explain;
    }
  }
  if (description == nullptr) {
    std::cerr << "qgnn_lint: unknown check '" << name
              << "' (see --list-checks)\n";
    return 2;
  }
  std::cout << name << ": " << description << "\n\n"
            << explain << "\n\n"
            << "Suppress one site with `// qgnn-lint: allow(" << name
            << ")` on (or directly above) the line; accept existing debt "
               "with --baseline.\n";
  return 0;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  qgnn::lint::LintConfig config;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qgnn_lint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--list-checks") {
      print_checks(std::cout);
      return 0;
    }
    if (arg == "--explain") {
      const char* name = value_of("--explain");
      if (name == nullptr) return 2;
      return explain_check(name);
    }
    if (arg == "--obs-names") {
      const char* v = value_of("--obs-names");
      if (v == nullptr) return 2;
      config.obs_names_path = v;
      continue;
    }
    if (arg.rfind("--check=", 0) == 0) {
      const std::string name = arg.substr(std::strlen("--check="));
      if (!qgnn::lint::known_check(name)) {
        std::cerr << "qgnn_lint: unknown check '" << name
                  << "' (see --list-checks)\n";
        return 2;
      }
      config.only_checks.insert(name);
      continue;
    }
    if (arg.rfind("--skip-check=", 0) == 0) {
      const std::string name = arg.substr(std::strlen("--skip-check="));
      if (!qgnn::lint::known_check(name)) {
        std::cerr << "qgnn_lint: unknown check '" << name
                  << "' (see --list-checks)\n";
        return 2;
      }
      config.skip_checks.insert(name);
      continue;
    }
    if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      std::string v;
      if (arg == "--jobs") {
        const char* raw = value_of("--jobs");
        if (raw == nullptr) return 2;
        v = raw;
      } else {
        v = arg.substr(std::strlen("--jobs="));
      }
      try {
        std::size_t used = 0;
        config.jobs = std::stoi(v, &used);
        if (used != v.size() || config.jobs < 1 || config.jobs > 256) {
          throw std::invalid_argument(v);
        }
      } catch (const std::exception&) {
        std::cerr << "qgnn_lint: --jobs needs an integer in [1, 256], got '"
                  << v << "'\n";
        return 2;
      }
      continue;
    }
    if (arg == "--sarif-out") {
      const char* v = value_of("--sarif-out");
      if (v == nullptr) return 2;
      sarif_path = v;
      continue;
    }
    if (arg == "--baseline") {
      const char* v = value_of("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
      continue;
    }
    if (arg == "--write-baseline") {
      const char* v = value_of("--write-baseline");
      if (v == nullptr) return 2;
      write_baseline_path = v;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qgnn_lint: unknown flag " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    }
    config.paths.push_back(arg);
  }
  if (config.paths.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  const auto started = std::chrono::steady_clock::now();
  std::vector<qgnn::lint::Finding> findings;
  try {
    findings = qgnn::lint::run_lint(config);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);

  if (!sarif_path.empty() &&
      !write_text_file(sarif_path, qgnn::lint::to_sarif(findings))) {
    std::cerr << "qgnn_lint: cannot write " << sarif_path << "\n";
    return 2;
  }
  if (!write_baseline_path.empty()) {
    const std::string text = qgnn::lint::serialize_baseline(
        qgnn::lint::collect_baseline(findings));
    if (!write_text_file(write_baseline_path, text)) {
      std::cerr << "qgnn_lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    std::cerr << "qgnn_lint: wrote " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " to "
              << write_baseline_path << " (" << elapsed.count() << " ms)\n";
    return 0;
  }

  std::vector<std::string> stale;
  if (!baseline_path.empty()) {
    qgnn::lint::Baseline baseline;
    try {
      std::ifstream in(baseline_path, std::ios::binary);
      if (!in) {
        std::cerr << "qgnn_lint: cannot read " << baseline_path << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      baseline = qgnn::lint::parse_baseline(buf.str());
    } catch (const std::exception& e) {
      std::cerr << "qgnn_lint: " << baseline_path << ": " << e.what()
                << "\n";
      return 2;
    }
    qgnn::lint::BaselineDiff diff =
        qgnn::lint::diff_baseline(findings, baseline);
    findings = std::move(diff.fresh);
    stale = std::move(diff.stale);
  }

  for (const qgnn::lint::Finding& finding : findings) {
    std::cout << qgnn::lint::format_finding(finding) << "\n";
  }
  for (const std::string& entry : stale) {
    std::cout << "stale baseline entry (fixed — remove it from "
              << baseline_path << "): " << entry << "\n";
  }
  std::cerr << "qgnn_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s")
            << (baseline_path.empty() ? "" : " not in baseline");
  if (!stale.empty()) {
    std::cerr << ", " << stale.size() << " stale baseline entr"
              << (stale.size() == 1 ? "y" : "ies");
  }
  std::cerr << " (" << elapsed.count() << " ms)\n";
  return findings.empty() && stale.empty() ? 0 : 1;
}
