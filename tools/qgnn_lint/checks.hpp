#pragma once

#include <set>
#include <string>
#include <vector>

#include "qgnn_lint/lexer.hpp"

namespace qgnn::lint {

/// One reported violation. Rendered as `file:line: [check] message`.
struct Finding {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
};

/// Cross-file inputs shared by every check.
struct LintOptions {
  /// Metric/span names registered in src/obs/names.hpp. When
  /// enforce_obs_registry is true, string literals handed to
  /// QGNN_TRACE_SPAN / counter / gauge / histogram inside src/ must be
  /// members of this set.
  std::set<std::string> obs_names;
  bool enforce_obs_registry = false;
};

/// Everything a check may look at for one file.
struct FileContext {
  std::string path;        // path as reported in findings
  std::string normalized;  // path with '/' separators, for classification
  LexResult lex;
  bool is_header = false;
  bool in_src = false;  // library code (under a src/ directory)
  /// True for files on a serialization / hashing / dataset-emission path
  /// (classified by path substring; see serialization_path_hints()).
  bool serialization_path = false;
  const LintOptions* options = nullptr;
};

using CheckFn = void (*)(const FileContext&, std::vector<Finding>&);

struct CheckInfo {
  const char* name;
  const char* description;
  const char* explain;  // rationale + fix guidance for --explain
  CheckFn fn;
};

/// The catalogue of checks, in reporting order. Names are the ids used in
/// `// qgnn-lint: allow(<name>)` suppression comments.
const std::vector<CheckInfo>& all_checks();

/// Path substrings that mark a file as a serialization/hashing path for
/// the determinism-iteration check. Exposed for tests and docs.
const std::vector<std::string>& serialization_path_hints();

/// `subsystem.metric[_unit]` name shape: lower-case alnum subsystem, one
/// dot, metric of [a-z][a-z0-9_]* not ending in '_'.
bool valid_obs_name(const std::string& name);

// Individual checks (see all_checks() for the id each registers under).
void check_determinism_call(const FileContext& ctx,
                            std::vector<Finding>& out);
void check_determinism_iteration(const FileContext& ctx,
                                 std::vector<Finding>& out);
void check_obs_name(const FileContext& ctx, std::vector<Finding>& out);
void check_lock_across_submit(const FileContext& ctx,
                              std::vector<Finding>& out);
void check_mutable_global(const FileContext& ctx, std::vector<Finding>& out);
void check_pragma_once(const FileContext& ctx, std::vector<Finding>& out);
void check_banned_function(const FileContext& ctx,
                           std::vector<Finding>& out);
void check_raw_io(const FileContext& ctx, std::vector<Finding>& out);
void check_raw_socket(const FileContext& ctx, std::vector<Finding>& out);
void check_unguarded_intrinsics(const FileContext& ctx,
                                std::vector<Finding>& out);

}  // namespace qgnn::lint
