#include "qgnn_lint/sarif.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "qgnn_lint/flow_checks.hpp"

namespace qgnn::lint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string sarif_uri(const std::string& path) {
  std::string uri = path;
  std::replace(uri.begin(), uri.end(), '\\', '/');
  // Relative URIs only: strip a leading "./".
  if (uri.rfind("./", 0) == 0) uri = uri.substr(2);
  return uri;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"qgnn_lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/qgnn/tools/qgnn_lint\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const CheckInfo& c : all_checks()) {
    if (!first) out += ",\n";
    first = false;
    out += "            {\"id\": \"" + json_escape(c.name) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(c.description) + "\"}}";
  }
  for (const FlowCheckInfo& c : all_flow_checks()) {
    if (!first) out += ",\n";
    first = false;
    out += "            {\"id\": \"" + json_escape(c.name) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(c.description) + "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",\n";
    first = false;
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(f.check) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"},\n";
    out +=
        "          \"locations\": [\n"
        "            {\n"
        "              \"physicalLocation\": {\n"
        "                \"artifactLocation\": {\"uri\": \"" +
        json_escape(sarif_uri(f.file)) +
        "\"},\n"
        "                \"region\": {\"startLine\": " +
        std::to_string(f.line) +
        "}\n"
        "              }\n"
        "            }\n"
        "          ]\n";
    out += "        }";
  }
  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace qgnn::lint
