#include "qgnn_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace qgnn::lint {

namespace fs = std::filesystem;

namespace {

std::string normalize_path(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("qgnn_lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Suppressions parsed from `// qgnn-lint: allow(check-a, check-b)`
/// comments: line -> suppressed check names ("all" suppresses anything).
/// A comment standing alone on its line also covers the next line.
std::map<int, std::set<std::string>> parse_suppressions(
    const std::vector<Comment>& comments) {
  std::map<int, std::set<std::string>> by_line;
  for (const Comment& comment : comments) {
    const std::string& text = comment.text;
    const std::size_t tag = text.find("qgnn-lint:");
    if (tag == std::string::npos) continue;
    const std::size_t allow = text.find("allow", tag);
    if (allow == std::string::npos) continue;
    const std::size_t open = text.find('(', allow);
    if (open == std::string::npos) continue;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) continue;
    std::set<std::string> checks;
    std::string current;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const char c = i < close ? text[i] : ',';
      if (c == ',' || c == ' ' || c == '\t') {
        if (!current.empty()) checks.insert(current);
        current.clear();
        continue;
      }
      current += c;
    }
    if (checks.empty()) continue;
    by_line[comment.line].insert(checks.begin(), checks.end());
    if (comment.owns_line) {
      by_line[comment.line + 1].insert(checks.begin(), checks.end());
    }
  }
  return by_line;
}

bool suppressed(const std::map<int, std::set<std::string>>& suppressions,
                const Finding& finding) {
  const auto it = suppressions.find(finding.line);
  if (it == suppressions.end()) return false;
  return it->second.count(finding.check) > 0 || it->second.count("all") > 0;
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  if (name.empty()) return false;
  if (name.front() == '.') return true;               // .git, .cache, ...
  if (name == "lint_fixtures") return true;           // seeded violations
  if (name.rfind("build", 0) == 0) return true;       // build trees
  return false;
}

bool lintable_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> collect_files(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path path(p);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(
          path, fs::directory_options::skip_permission_denied);
      const fs::recursive_directory_iterator end;
      while (it != end) {
        if (it->is_directory() && skip_directory(it->path())) {
          it.disable_recursion_pending();
        } else if (it->is_regular_file() && lintable_file(it->path())) {
          files.push_back(it->path().string());
        }
        ++it;
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(p);
    } else {
      throw std::runtime_error("qgnn_lint: no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

std::set<std::string> parse_obs_names(const std::string& source) {
  std::set<std::string> names;
  for (const Token& t : lex(source).tokens) {
    if (t.kind == TokenKind::kString) names.insert(t.text);
  }
  return names;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const LintOptions& options) {
  FileContext ctx;
  ctx.path = path;
  ctx.normalized = normalize_path(path);
  ctx.lex = lex(source);
  ctx.is_header = has_suffix(ctx.normalized, ".hpp") ||
                  has_suffix(ctx.normalized, ".h");
  ctx.in_src = ctx.normalized.find("src/") != std::string::npos;
  ctx.serialization_path = false;
  for (const std::string& hint : serialization_path_hints()) {
    if (ctx.normalized.find(hint) != std::string::npos) {
      ctx.serialization_path = true;
      break;
    }
  }
  ctx.options = &options;

  std::vector<Finding> findings;
  for (const CheckInfo& check : all_checks()) {
    check.fn(ctx, findings);
  }

  const auto suppressions = parse_suppressions(ctx.lex.comments);
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return suppressed(suppressions, f);
                                }),
                 findings.end());
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> run_lint(const LintConfig& config) {
  const std::vector<std::string> files = collect_files(config.paths);

  LintOptions options;
  std::string registry_path = config.obs_names_path;
  if (registry_path.empty()) {
    for (const std::string& f : files) {
      if (has_suffix(normalize_path(f), "obs/names.hpp")) {
        registry_path = f;
        break;
      }
    }
  }
  if (!registry_path.empty()) {
    options.obs_names = parse_obs_names(read_file(registry_path));
    options.enforce_obs_registry = true;
  }

  std::vector<Finding> findings;
  for (const std::string& f : files) {
    std::vector<Finding> file_findings =
        lint_source(f, read_file(f), options);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.check + "] " + finding.message;
}

}  // namespace qgnn::lint
