#include "qgnn_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "qgnn_lint/flow_checks.hpp"
#include "qgnn_lint/model.hpp"
#include "util/thread_pool.hpp"

namespace qgnn::lint {

namespace fs = std::filesystem;

namespace {

std::string normalize_path(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("qgnn_lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Suppressions parsed from `// qgnn-lint: allow(check-a, check-b)`
/// comments: line -> suppressed check names ("all" suppresses anything).
/// A suppression covers every line its comment spans; a comment standing
/// alone on its line also covers the line after it ends.
std::map<int, std::set<std::string>> parse_suppressions(
    const std::vector<Comment>& comments) {
  std::map<int, std::set<std::string>> by_line;
  for (const Comment& comment : comments) {
    const std::string& text = comment.text;
    const std::size_t tag = text.find("qgnn-lint:");
    if (tag == std::string::npos) continue;
    const std::size_t allow = text.find("allow", tag);
    if (allow == std::string::npos) continue;
    const std::size_t open = text.find('(', allow);
    if (open == std::string::npos) continue;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) continue;
    std::set<std::string> checks;
    std::string current;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const char c = i < close ? text[i] : ',';
      if (c == ',' || c == ' ' || c == '\t') {
        if (!current.empty()) checks.insert(current);
        current.clear();
        continue;
      }
      current += c;
    }
    if (checks.empty()) continue;
    const int last = std::max(comment.line, comment.end_line);
    for (int l = comment.line; l <= last; ++l) {
      by_line[l].insert(checks.begin(), checks.end());
    }
    if (comment.owns_line) {
      by_line[last + 1].insert(checks.begin(), checks.end());
    }
  }
  return by_line;
}

bool suppressed(const std::map<int, std::set<std::string>>& suppressions,
                const Finding& finding) {
  const auto it = suppressions.find(finding.line);
  if (it == suppressions.end()) return false;
  return it->second.count(finding.check) > 0 || it->second.count("all") > 0;
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  if (name.empty()) return false;
  if (name.front() == '.') return true;               // .git, .cache, ...
  if (name == "lint_fixtures") return true;           // seeded violations
  if (name.rfind("build", 0) == 0) return true;       // build trees
  return false;
}

bool lintable_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> collect_files(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path path(p);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(
          path, fs::directory_options::skip_permission_denied);
      const fs::recursive_directory_iterator end;
      while (it != end) {
        if (it->is_directory() && skip_directory(it->path())) {
          it.disable_recursion_pending();
        } else if (it->is_regular_file() && lintable_file(it->path())) {
          files.push_back(it->path().string());
        }
        ++it;
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(p);
    } else {
      throw std::runtime_error("qgnn_lint: no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool check_enabled(const LintConfig& config, const std::string& name) {
  if (!config.only_checks.empty() && config.only_checks.count(name) == 0) {
    return false;
  }
  return config.skip_checks.count(name) == 0;
}

FileContext make_context(const std::string& path, const std::string& source,
                         const LintOptions& options) {
  FileContext ctx;
  ctx.path = path;
  ctx.normalized = normalize_path(path);
  ctx.lex = lex(source);
  ctx.is_header = has_suffix(ctx.normalized, ".hpp") ||
                  has_suffix(ctx.normalized, ".h");
  ctx.in_src = ctx.normalized.find("src/") != std::string::npos;
  ctx.serialization_path = false;
  for (const std::string& hint : serialization_path_hints()) {
    if (ctx.normalized.find(hint) != std::string::npos) {
      ctx.serialization_path = true;
      break;
    }
  }
  ctx.options = &options;
  return ctx;
}

/// Deterministic total order: path, then line, then check id, then
/// message. This — not arrival order — defines the output, which is why
/// --jobs N is byte-identical to --jobs 1.
void sort_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
}

}  // namespace

bool known_check(const std::string& name) {
  for (const CheckInfo& c : all_checks()) {
    if (name == c.name) return true;
  }
  for (const FlowCheckInfo& c : all_flow_checks()) {
    if (name == c.name) return true;
  }
  return false;
}

std::set<std::string> parse_obs_names(const std::string& source) {
  std::set<std::string> names;
  for (const Token& t : lex(source).tokens) {
    if (t.kind == TokenKind::kString) names.insert(t.text);
  }
  return names;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const LintOptions& options) {
  const FileContext ctx = make_context(path, source, options);

  std::vector<Finding> findings;
  for (const CheckInfo& check : all_checks()) {
    check.fn(ctx, findings);
  }

  const auto suppressions = parse_suppressions(ctx.lex.comments);
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return suppressed(suppressions, f);
                                }),
                 findings.end());
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> run_lint(const LintConfig& config) {
  const std::vector<std::string> files = collect_files(config.paths);

  LintOptions options;
  std::string registry_path = config.obs_names_path;
  if (registry_path.empty()) {
    for (const std::string& f : files) {
      if (has_suffix(normalize_path(f), "obs/names.hpp")) {
        registry_path = f;
        break;
      }
    }
  }
  if (!registry_path.empty()) {
    options.obs_names = parse_obs_names(read_file(registry_path));
    options.enforce_obs_registry = true;
  }

  const int jobs = config.jobs > 0 ? config.jobs
                                   : ThreadPool::configured_threads();
  ThreadPool pool(std::max(1, jobs));

  // Phase 1 (parallel): read + lex every file into its slot. Slot order
  // is the sorted file order, so nothing downstream depends on thread
  // scheduling. Exceptions (unreadable file mid-walk) propagate from
  // parallel_for on the calling thread.
  std::vector<FileContext> contexts(files.size());
  pool.parallel_for(0, files.size(), 1,
                    [&](std::uint64_t begin, std::uint64_t end) {
                      for (std::uint64_t i = begin; i < end; ++i) {
                        contexts[i] = make_context(
                            files[i], read_file(files[i]), options);
                      }
                    });

  // Phase 2 (parallel): per-file checks into per-file slots, suppression
  // filtering applied file-locally.
  std::vector<std::vector<Finding>> per_file(files.size());
  pool.parallel_for(
      0, files.size(), 1, [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
          std::vector<Finding> findings;
          for (const CheckInfo& check : all_checks()) {
            if (!check_enabled(config, check.name)) continue;
            check.fn(contexts[i], findings);
          }
          const auto suppressions =
              parse_suppressions(contexts[i].lex.comments);
          findings.erase(
              std::remove_if(findings.begin(), findings.end(),
                             [&](const Finding& f) {
                               return suppressed(suppressions, f);
                             }),
              findings.end());
          per_file[i] = std::move(findings);
        }
      });

  // Phase 3 (serial): project model + flow checks. The model needs every
  // file's tokens at once; the flow checks are a few percent of total
  // runtime, so they stay single-threaded and trivially deterministic.
  std::vector<Finding> flow_findings;
  bool any_flow = false;
  for (const FlowCheckInfo& check : all_flow_checks()) {
    any_flow = any_flow || check_enabled(config, check.name);
  }
  ProjectModel model;
  if (any_flow) {
    model = build_model(std::move(contexts));
    for (const FlowCheckInfo& check : all_flow_checks()) {
      if (!check_enabled(config, check.name)) continue;
      check.fn(model, flow_findings);
    }
    // Flow findings honor the same suppression comments, keyed by the
    // file each finding landed in.
    std::map<std::string, std::map<int, std::set<std::string>>> by_file;
    for (const FileContext& ctx : model.files) {
      by_file[ctx.path] = parse_suppressions(ctx.lex.comments);
    }
    flow_findings.erase(
        std::remove_if(flow_findings.begin(), flow_findings.end(),
                       [&](const Finding& f) {
                         const auto it = by_file.find(f.file);
                         return it != by_file.end() &&
                                suppressed(it->second, f);
                       }),
        flow_findings.end());
  }

  std::vector<Finding> findings;
  for (std::vector<Finding>& file_findings : per_file) {
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  findings.insert(findings.end(),
                  std::make_move_iterator(flow_findings.begin()),
                  std::make_move_iterator(flow_findings.end()));
  sort_findings(&findings);
  return findings;
}

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.check + "] " + finding.message;
}

}  // namespace qgnn::lint
