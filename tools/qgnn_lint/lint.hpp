#pragma once

#include <set>
#include <string>
#include <vector>

#include "qgnn_lint/checks.hpp"

namespace qgnn::lint {

/// Driver configuration: which paths to lint and where the obs name
/// registry lives.
struct LintConfig {
  /// Files and/or directories. Directories are walked recursively for
  /// .hpp/.cpp files, skipping any directory named `lint_fixtures`,
  /// `build*`, or starting with '.'. Files passed explicitly are always
  /// linted, fixtures included.
  std::vector<std::string> paths;
  /// Explicit path to src/obs/names.hpp. When empty, the driver uses the
  /// first scanned file whose path ends in "obs/names.hpp". If no
  /// registry is found, the obs-name registry cross-reference is skipped
  /// (the naming-convention part of the check still runs).
  std::string obs_names_path;
};

/// Parse the obs name registry: every string literal in the file becomes
/// a registered name.
std::set<std::string> parse_obs_names(const std::string& source);

/// Lint one in-memory file. Suppression comments are already applied;
/// findings come back sorted by line.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const LintOptions& options);

/// Walk the configured paths and lint every file. Throws std::runtime_error
/// for unreadable paths.
std::vector<Finding> run_lint(const LintConfig& config);

/// `file:line: [check] message` — the one true output format.
std::string format_finding(const Finding& finding);

}  // namespace qgnn::lint
