#pragma once

#include <set>
#include <string>
#include <vector>

#include "qgnn_lint/checks.hpp"

namespace qgnn::lint {

/// Driver configuration: which paths to lint, which checks to run, how
/// many worker threads, and where the obs name registry lives.
struct LintConfig {
  /// Files and/or directories. Directories are walked recursively for
  /// .hpp/.cpp files, skipping any directory named `lint_fixtures`,
  /// `build*`, or starting with '.'. Files passed explicitly are always
  /// linted, fixtures included.
  std::vector<std::string> paths;
  /// Explicit path to src/obs/names.hpp. When empty, the driver uses the
  /// first scanned file whose path ends in "obs/names.hpp". If no
  /// registry is found, the obs-name registry cross-reference is skipped
  /// (the naming-convention part of the check still runs).
  std::string obs_names_path;
  /// When non-empty, run only these checks (per-file and flow names
  /// share one namespace). Applied before skip_checks.
  std::set<std::string> only_checks;
  /// Checks to skip.
  std::set<std::string> skip_checks;
  /// Worker threads for lexing and per-file checks; 0 means
  /// QGNN_NUM_THREADS (ThreadPool::configured_threads()). Findings are
  /// merged in deterministic (file, line, check, message) order, so the
  /// output is byte-identical at any job count.
  int jobs = 0;
};

/// True when `name` names a known per-file or flow check.
bool known_check(const std::string& name);

/// Parse the obs name registry: every string literal in the file becomes
/// a registered name.
std::set<std::string> parse_obs_names(const std::string& source);

/// Lint one in-memory file with the per-file checks only (flow checks
/// need the project model; see run_lint). Suppression comments are
/// already applied; findings come back sorted by line.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const LintOptions& options);

/// Walk the configured paths, lint every file (in parallel when
/// config.jobs != 1), build the project model, and run the flow checks.
/// Throws std::runtime_error for unreadable paths. Findings are sorted
/// by (file, line, check, message).
std::vector<Finding> run_lint(const LintConfig& config);

/// `file:line: [check] message` — the one true output format.
std::string format_finding(const Finding& finding);

}  // namespace qgnn::lint
