#pragma once

#include <map>
#include <string>
#include <vector>

#include "qgnn_lint/checks.hpp"

namespace qgnn::lint {

/// Baseline of accepted findings (tools/qgnn_lint/baseline.json).
///
/// The baseline makes the linter adoptable on a codebase with existing
/// debt while staying a ratchet: a finding is keyed by
/// (check, file, message) with a count, so
///   - a NEW finding (key absent, or more occurrences than baselined)
///     fails the run, and
///   - a FIXED finding (baselined key no longer present, or fewer
///     occurrences) also fails until the entry is removed — the file is
///     a record of debt, not a landfill.
/// Line numbers are deliberately not part of the key: unrelated edits
/// shift lines constantly and would churn the file.

struct BaselineKey {
  std::string check;
  std::string file;  // normalized ('/' separators)
  std::string message;

  bool operator<(const BaselineKey& o) const {
    if (check != o.check) return check < o.check;
    if (file != o.file) return file < o.file;
    return message < o.message;
  }
  bool operator==(const BaselineKey& o) const {
    return check == o.check && file == o.file && message == o.message;
  }
};

using Baseline = std::map<BaselineKey, int>;

/// Result of matching live findings against a baseline.
struct BaselineDiff {
  /// Findings not covered by the baseline (fail the run).
  std::vector<Finding> fresh;
  /// Baseline entries no longer matched by any finding, rendered as
  /// "check|file|message (xN)" (fail the run: remove them).
  std::vector<std::string> stale;
};

/// Count findings into a baseline.
Baseline collect_baseline(const std::vector<Finding>& findings);

/// Serialize in canonical form (sorted keys, 2-space indent, trailing
/// newline) — committed to the repo, so the bytes must be stable.
std::string serialize_baseline(const Baseline& baseline);

/// Parse baseline JSON. Throws std::runtime_error with a description on
/// malformed input.
Baseline parse_baseline(const std::string& json);

/// Match findings against the baseline: covered findings are consumed,
/// extras become `fresh`, unconsumed entries become `stale`.
BaselineDiff diff_baseline(const std::vector<Finding>& findings,
                           const Baseline& baseline);

}  // namespace qgnn::lint
