#include "qgnn_lint/checks.hpp"

#include <algorithm>
#include <cctype>
#include <map>

namespace qgnn::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_id(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool id_in(const Token& t, const std::set<std::string>& names) {
  return t.kind == TokenKind::kIdentifier && names.count(t.text) > 0;
}

/// Skip a balanced template argument list starting at `i` (which must
/// point at '<'). Returns the index one past the closing '>', or `i`
/// unchanged if the brackets never balance within a sane window (shift
/// operators and comparisons can fool a token-level matcher; bailing out
/// simply makes the caller skip the pattern).
std::size_t skip_angle_brackets(const Tokens& ts, std::size_t i) {
  if (i >= ts.size() || !is_punct(ts[i], "<")) return i;
  int depth = 0;
  const std::size_t limit = std::min(ts.size(), i + 256);
  for (std::size_t j = i; j < limit; ++j) {
    if (is_punct(ts[j], "<")) ++depth;
    if (is_punct(ts[j], ">")) {
      --depth;
      if (depth == 0) return j + 1;
    }
    // A ';' inside a would-be template argument list means we were
    // actually looking at a comparison; give up.
    if (is_punct(ts[j], ";")) return i;
  }
  return i;
}

// ---------------------------------------------------------------------------
// determinism-call

struct BannedCall {
  const char* ident;
  bool call_only;  // require a following '(' (plain functions)
  const char* why;
};

constexpr BannedCall kBannedCalls[] = {
    {"rand", true, "unseeded C RNG; use qgnn::Rng"},
    {"srand", true, "global RNG seeding; use qgnn::Rng"},
    {"drand48", true, "unseeded C RNG; use qgnn::Rng"},
    {"rand_r", true, "C RNG; use qgnn::Rng / derive_seed"},
    {"random_device", false,
     "nondeterministic seed source; derive seeds with qgnn::derive_seed"},
    {"system_clock", false,
     "wall clock; use steady_clock for durations, pass timestamps in"},
    {"gettimeofday", true, "wall clock; use std::chrono::steady_clock"},
    {"localtime", true, "wall-clock formatting in library code"},
    {"gmtime", true, "wall-clock formatting in library code"},
};

/// Files allowed to touch entropy/wall-clock primitives: the seeded RNG
/// wrapper itself (the one place a real entropy source may ever be
/// plumbed through).
bool determinism_exempt_file(const std::string& normalized) {
  return normalized.size() >= 12 &&
         normalized.rfind("util/rng.hpp") == normalized.size() - 12;
}

void determinism_call_impl(const FileContext& ctx,
                           std::vector<Finding>& out) {
  if (determinism_exempt_file(ctx.normalized)) return;
  const Tokens& ts = ctx.lex.tokens;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    for (const BannedCall& banned : kBannedCalls) {
      if (!is_id(ts[i], banned.ident)) continue;
      if (banned.call_only &&
          (i + 1 >= ts.size() || !is_punct(ts[i + 1], "("))) {
        continue;
      }
      // Member access `x.rand(...)` is someone else's method, not the
      // C library function.
      if (i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"))) {
        continue;
      }
      out.push_back(Finding{
          ctx.path, ts[i].line, "determinism-call",
          std::string(banned.ident) + ": " + banned.why});
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-iteration

const std::set<std::string>& unordered_container_names() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

/// Collect identifiers declared with an unordered container type in this
/// file: `std::unordered_map<K, V> name`, members and locals alike.
std::set<std::string> collect_unordered_vars(const Tokens& ts) {
  std::set<std::string> vars;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!id_in(ts[i], unordered_container_names())) continue;
    std::size_t j = skip_angle_brackets(ts, i + 1);
    if (j == i + 1) continue;  // no template args: a using-decl or include
    // Optional reference/pointer/const between type and name.
    while (j < ts.size() &&
           (is_punct(ts[j], "&") || is_punct(ts[j], "*") ||
            is_id(ts[j], "const"))) {
      ++j;
    }
    if (j >= ts.size() || ts[j].kind != TokenKind::kIdentifier) continue;
    const std::string& name = ts[j].text;
    if (j + 1 >= ts.size()) continue;
    const Token& after = ts[j + 1];
    // Declaration shapes: `T x;`, `T x = ...`, `T x{...}`, `T x, ...`,
    // parameters `T x)` / `T x,`. `T f(...)` is a function returning T.
    if (is_punct(after, ";") || is_punct(after, "=") ||
        is_punct(after, "{") || is_punct(after, ",") ||
        is_punct(after, ")")) {
      vars.insert(name);
    }
  }
  return vars;
}

void determinism_iteration_impl(const FileContext& ctx,
                                std::vector<Finding>& out) {
  if (!ctx.serialization_path) return;
  const Tokens& ts = ctx.lex.tokens;
  const std::set<std::string> vars = collect_unordered_vars(ts);

  for (std::size_t i = 0; i < ts.size(); ++i) {
    // Range-for whose range expression names an unordered container.
    if (is_id(ts[i], "for") && i + 1 < ts.size() &&
        is_punct(ts[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        if (is_punct(ts[j], "(")) ++depth;
        if (is_punct(ts[j], ")")) {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && is_punct(ts[j], ":")) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      bool over_unordered = false;
      std::string which;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (id_in(ts[j], vars) || id_in(ts[j], unordered_container_names())) {
          over_unordered = true;
          which = ts[j].text;
          break;
        }
      }
      if (over_unordered) {
        out.push_back(Finding{
            ctx.path, ts[i].line, "determinism-iteration",
            "range-for over unordered container '" + which +
                "' in a serialization/hashing path; iteration order is "
                "unspecified — use sorted or index-ordered traversal"});
      }
    }
    // Explicit iterator walks: `x.begin()` / `x.cbegin()` on an
    // unordered container.
    if (id_in(ts[i], vars) && i + 2 < ts.size() &&
        (is_punct(ts[i + 1], ".") || is_punct(ts[i + 1], "->")) &&
        (is_id(ts[i + 2], "begin") || is_id(ts[i + 2], "cbegin"))) {
      out.push_back(Finding{
          ctx.path, ts[i].line, "determinism-iteration",
          "iterator over unordered container '" + ts[i].text +
              "' in a serialization/hashing path; iteration order is "
              "unspecified — use sorted or index-ordered traversal"});
    }
  }
}

// ---------------------------------------------------------------------------
// obs-name

bool is_obs_registry_file(const std::string& normalized) {
  return normalized.size() >= 13 &&
         normalized.rfind("obs/names.hpp") == normalized.size() - 13;
}

void obs_name_impl(const FileContext& ctx, std::vector<Finding>& out) {
  const Tokens& ts = ctx.lex.tokens;

  // The registry itself: every constant must follow the convention.
  if (is_obs_registry_file(ctx.normalized)) {
    for (const Token& t : ts) {
      if (t.kind == TokenKind::kString && !valid_obs_name(t.text)) {
        out.push_back(Finding{
            ctx.path, t.line, "obs-name",
            "registered name \"" + t.text +
                "\" does not match the subsystem.name_unit convention"});
      }
    }
    return;
  }

  const LintOptions* opts = ctx.options;
  for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
    bool site = false;
    if (is_id(ts[i], "QGNN_TRACE_SPAN") && is_punct(ts[i + 1], "(")) {
      site = true;
    } else if ((is_id(ts[i], "counter") || is_id(ts[i], "gauge") ||
                is_id(ts[i], "histogram")) &&
               is_punct(ts[i + 1], "(") && i > 0 &&
               (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"))) {
      site = true;
    }
    if (!site) continue;
    const Token& arg = ts[i + 2];
    if (arg.kind != TokenKind::kString) continue;  // names:: constant — the
                                                   // compiler checks those
    if (!valid_obs_name(arg.text)) {
      out.push_back(Finding{
          ctx.path, arg.line, "obs-name",
          "metric/span name \"" + arg.text +
              "\" does not match the subsystem.name_unit convention"});
      continue;
    }
    if (opts != nullptr && opts->enforce_obs_registry && ctx.in_src &&
        opts->obs_names.count(arg.text) == 0) {
      out.push_back(Finding{
          ctx.path, arg.line, "obs-name",
          "metric/span name \"" + arg.text +
              "\" is not registered in src/obs/names.hpp; add a constant "
              "there and use it at the call site"});
    }
  }
}

// ---------------------------------------------------------------------------
// lock-across-submit

void lock_across_submit_impl(const FileContext& ctx,
                             std::vector<Finding>& out) {
  const Tokens& ts = ctx.lex.tokens;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!is_id(ts[i], "lock_guard") && !is_id(ts[i], "unique_lock") &&
        !is_id(ts[i], "scoped_lock")) {
      continue;
    }
    // Declaration shape: [std::]lock_guard[<...>] name ( ... | { ... | = ...
    std::size_t j = skip_angle_brackets(ts, i + 1);
    if (j >= ts.size() || ts[j].kind != TokenKind::kIdentifier) continue;
    if (j + 1 >= ts.size()) continue;
    const Token& after = ts[j + 1];
    if (!is_punct(after, "(") && !is_punct(after, "{") &&
        !is_punct(after, "=")) {
      continue;  // parameter, using-decl, template argument, ...
    }
    const int lock_line = ts[i].line;
    // The guard lives until the end of its enclosing block: scan forward
    // until the brace depth drops below the level at the declaration.
    int depth = 0;
    for (std::size_t k = j + 1; k < ts.size(); ++k) {
      if (is_punct(ts[k], "{")) ++depth;
      if (is_punct(ts[k], "}")) {
        --depth;
        if (depth < 0) break;
      }
      if ((is_id(ts[k], "submit") || is_id(ts[k], "parallel_for") ||
           is_id(ts[k], "parallel_reduce")) &&
          k > 0 &&
          (is_punct(ts[k - 1], ".") || is_punct(ts[k - 1], "->")) &&
          k + 1 < ts.size() && is_punct(ts[k + 1], "(")) {
        out.push_back(Finding{
            ctx.path, ts[k].line, "lock-across-submit",
            "thread-pool " + ts[k].text + "() while the lock from line " +
                std::to_string(lock_line) +
                " is held; submitting under a mutex serializes the pool "
                "and risks deadlock with pool-internal locking"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mutable-global

/// Types whose namespace-scope instances are process-wide mutable state
/// even without the `static` keyword (anonymous-namespace globals).
const std::set<std::string>& mutable_global_types() {
  static const std::set<std::string> kTypes = {
      "mutex", "recursive_mutex", "shared_mutex", "condition_variable",
      "unique_ptr", "shared_ptr", "vector", "string", "map", "set",
      "deque", "unordered_map", "unordered_set"};
  return kTypes;
}

/// Scope tracking: classify every '{' so checks know whether a position
/// is at namespace scope (the only scope where a plain declaration is a
/// global).
enum class ScopeKind { kNamespace, kClassLike, kOther };

class ScopeTracker {
 public:
  explicit ScopeTracker(const Tokens& ts) : ts_(ts) {}

  /// Advance over token i, updating the scope stack. Call once per token
  /// in order.
  void feed(std::size_t i) {
    if (is_punct(ts_[i], "{")) {
      stack_.push_back(classify(i));
    } else if (is_punct(ts_[i], "}")) {
      if (!stack_.empty()) stack_.pop_back();
    }
  }

  bool at_namespace_scope() const {
    return std::all_of(stack_.begin(), stack_.end(), [](ScopeKind k) {
      return k == ScopeKind::kNamespace;
    });
  }

 private:
  ScopeKind classify(std::size_t open) const {
    // Walk back to the start of the construct that owns this brace.
    for (std::size_t back = open; back > 0;) {
      --back;
      const Token& t = ts_[back];
      if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") ||
          is_punct(t, ")")) {
        // `) {` is a function (or control-flow) body; a statement
        // terminator means this brace starts an initializer or compound
        // statement. Either way: not a namespace, not a class.
        return ScopeKind::kOther;
      }
      if (is_id(t, "namespace")) return ScopeKind::kNamespace;
      if (is_id(t, "class") || is_id(t, "struct") || is_id(t, "union") ||
          is_id(t, "enum")) {
        return ScopeKind::kClassLike;
      }
      if (is_punct(t, "=") || is_id(t, "return")) return ScopeKind::kOther;
    }
    return ScopeKind::kOther;
  }

  const Tokens& ts_;
  std::vector<ScopeKind> stack_;
};

/// Tokens from `start` back to the previous statement boundary contain
/// `using`/`typedef`/`extern template`? Then this is not a variable
/// declaration.
bool statement_is_alias(const Tokens& ts, std::size_t start) {
  for (std::size_t back = start; back > 0;) {
    --back;
    const Token& t = ts[back];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
    if (is_id(t, "using") || is_id(t, "typedef") || is_id(t, "friend")) {
      return true;
    }
  }
  return false;
}

void mutable_global_impl(const FileContext& ctx, std::vector<Finding>& out) {
  if (!ctx.in_src) return;  // library-code check; tests/bench may keep state
  const Tokens& ts = ctx.lex.tokens;
  ScopeTracker scopes(ts);

  for (std::size_t i = 0; i < ts.size(); ++i) {
    scopes.feed(i);
    if (!scopes.at_namespace_scope()) continue;

    // Form 1: explicit `static` declarations that are not const,
    // constexpr, or thread_local and are not functions.
    if (is_id(ts[i], "static")) {
      bool exempt = false;
      bool is_function = false;
      std::size_t j = i + 1;
      for (; j < ts.size(); ++j) {
        if (is_id(ts[j], "const") || is_id(ts[j], "constexpr") ||
            is_id(ts[j], "constinit") || is_id(ts[j], "thread_local")) {
          exempt = true;
          break;
        }
        if (is_punct(ts[j], "(")) {
          is_function = true;
          break;
        }
        if (is_punct(ts[j], ";") || is_punct(ts[j], "=") ||
            is_punct(ts[j], "{")) {
          break;
        }
      }
      if (!exempt && !is_function && j < ts.size()) {
        out.push_back(Finding{
            ctx.path, ts[i].line, "mutable-global",
            "non-const static at namespace scope in library code; "
            "process-wide mutable state breaks thread-count invariance — "
            "make it const/constexpr or scope it into a class"});
      }
      continue;
    }

    // Form 2: anonymous/named-namespace globals of known stateful types
    // (`std::mutex g_m;`, `std::unique_ptr<T> g_p;`).
    if (id_in(ts[i], mutable_global_types())) {
      if (statement_is_alias(ts, i)) continue;
      std::size_t j = skip_angle_brackets(ts, i + 1);
      if (j >= ts.size() || ts[j].kind != TokenKind::kIdentifier) continue;
      if (j + 1 >= ts.size()) continue;
      const Token& after = ts[j + 1];
      if (!is_punct(after, ";") && !is_punct(after, "=") &&
          !is_punct(after, "{")) {
        continue;  // function declaration returning the type, etc.
      }
      // `const std::vector<...> kTable = ...` is immutable; look back for
      // const/constexpr in the same statement.
      bool is_const = false;
      for (std::size_t back = i; back > 0;) {
        --back;
        const Token& t = ts[back];
        if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
        if (is_id(t, "const") || is_id(t, "constexpr") ||
            is_id(t, "constinit") || is_id(t, "thread_local")) {
          is_const = true;
          break;
        }
      }
      if (is_const) continue;
      out.push_back(Finding{
          ctx.path, ts[i].line, "mutable-global",
          "mutable global '" + ts[j].text + "' of type " + ts[i].text +
              " at namespace scope in library code; process-wide mutable "
              "state breaks thread-count invariance — scope it into a "
              "class or justify with a suppression"});
    }
  }
}

// ---------------------------------------------------------------------------
// pragma-once

void pragma_once_impl(const FileContext& ctx, std::vector<Finding>& out) {
  if (!ctx.is_header) return;
  const Tokens& ts = ctx.lex.tokens;
  if (ts.empty()) {
    out.push_back(Finding{ctx.path, 1, "pragma-once",
                          "header is empty and has no #pragma once"});
    return;
  }
  const Token& first = ts.front();
  if (first.kind == TokenKind::kDirective &&
      first.text.rfind("#pragma once", 0) == 0) {
    return;
  }
  // Tolerate a traditional include guard as the opening construct.
  if (first.kind == TokenKind::kDirective &&
      first.text.rfind("#ifndef", 0) == 0) {
    return;
  }
  out.push_back(Finding{
      ctx.path, first.line, "pragma-once",
      "header does not start with #pragma once (or an include guard)"});
}

// ---------------------------------------------------------------------------
// banned-function

struct BannedFunction {
  const char* ident;
  const char* replacement;
};

constexpr BannedFunction kBannedFunctions[] = {
    {"strtok", "std::string_view splitting (not thread-safe)"},
    {"sprintf", "snprintf or std::format-style formatting"},
    {"vsprintf", "vsnprintf"},
    {"gets", "std::getline"},
    {"atoi", "std::stoi or std::from_chars (atoi hides errors as 0)"},
    {"atol", "std::stol or std::from_chars"},
    {"atoll", "std::stoll or std::from_chars"},
    {"atof", "std::stod or std::from_chars"},
};

void banned_function_impl(const FileContext& ctx,
                          std::vector<Finding>& out) {
  const Tokens& ts = ctx.lex.tokens;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_punct(ts[i + 1], "(")) continue;
    if (i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"))) {
      continue;  // member function that happens to share the name
    }
    for (const BannedFunction& banned : kBannedFunctions) {
      if (is_id(ts[i], banned.ident)) {
        out.push_back(Finding{
            ctx.path, ts[i].line, "banned-function",
            std::string(banned.ident) + " is banned; use " +
                banned.replacement});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// raw-io

constexpr const char* kRawIoIdents[] = {
    "fopen", "fread", "fwrite", "mmap", "munmap", "pread", "pwrite",
};

/// Files allowed to use raw file I/O primitives: the packed binary
/// container and the legacy text storage layer own every byte that hits
/// disk (and carry the CRC/validation logic that makes raw I/O safe).
/// Everything else must route through them or through iostreams.
bool raw_io_exempt_file(const std::string& normalized) {
  const auto ends_with = [&](const std::string& suffix) {
    return normalized.size() >= suffix.size() &&
           normalized.compare(normalized.size() - suffix.size(),
                              suffix.size(), suffix) == 0;
  };
  return ends_with("dataset/packed.cpp") || ends_with("dataset/storage.cpp");
}

void raw_io_impl(const FileContext& ctx, std::vector<Finding>& out) {
  if (!ctx.in_src) return;  // tests/bench/tools may use stdio directly
  if (raw_io_exempt_file(ctx.normalized)) return;
  const Tokens& ts = ctx.lex.tokens;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_punct(ts[i + 1], "(")) continue;
    if (i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"))) {
      continue;  // member function sharing the name
    }
    for (const char* ident : kRawIoIdents) {
      if (is_id(ts[i], ident)) {
        out.push_back(Finding{
            ctx.path, ts[i].line, "raw-io",
            std::string(ident) +
                ": raw file I/O in library code; route bytes through the "
                "dataset storage layer (dataset/packed.hpp, "
                "dataset/storage.hpp) or iostreams so validation and "
                "atomic-write discipline stay in one place"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// raw-socket

/// Socket / event-loop syscalls that must stay inside src/net: every
/// other subsystem routes bytes through the net wrappers so non-blocking
/// discipline, EINTR retries, and SIGPIPE suppression live in one place.
constexpr const char* kRawSocketIdents[] = {
    "socket",       "accept",     "accept4",    "bind",       "listen",
    "connect",      "recv",       "send",       "recvfrom",   "sendto",
    "setsockopt",   "getsockopt", "getsockname", "getpeername",
    "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait",
    "poll",         "ppoll",      "pipe",       "pipe2",
};

/// read/write/close are too common as plain identifiers to ban outright;
/// only the explicitly global-qualified syscall spelling (`::read(...)`)
/// is a finding.
constexpr const char* kGlobalOnlyIdents[] = {"read", "write", "close"};

/// Files allowed to touch socket and fd syscalls directly: the net layer
/// owns them (src/net/socket.cpp, event_loop.cpp, tcp_server.cpp, ...).
/// The dataset storage layer is raw-io-exempt and may also close its own
/// file descriptors.
bool raw_socket_exempt_file(const std::string& normalized) {
  return normalized.find("src/net/") != std::string::npos ||
         raw_io_exempt_file(normalized);
}

/// Call sites come in three shapes:
///   member      `x.send(...)` / `x->connect(...)`   — someone's method
///   qualified   `std::bind(...)` / `net::poll(...)` — a wrapped API
///   global      `::socket(...)` or plain `socket(...)` — the syscall
/// Only the last shape is a finding.
bool is_direct_syscall(const Tokens& ts, std::size_t i) {
  if (i + 1 >= ts.size() || !is_punct(ts[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = ts[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (is_punct(prev, "::")) {
    // `ns::name(...)` is a namespaced wrapper; `::name(...)` (no
    // identifier before the '::') is the global-scope syscall.
    return i < 2 || ts[i - 2].kind != TokenKind::kIdentifier;
  }
  if (prev.kind == TokenKind::kIdentifier) {
    // `long send(...)` declares a function of that name rather than
    // calling the syscall; two adjacent identifiers only form an
    // expression after a control keyword (`return send(...)`).
    static const std::set<std::string> kExprKeywords = {
        "return", "co_return", "co_yield", "co_await", "throw", "case",
        "else",   "do"};
    return kExprKeywords.count(prev.text) > 0;
  }
  return true;
}

void raw_socket_impl(const FileContext& ctx, std::vector<Finding>& out) {
  if (!ctx.in_src) return;  // tests/bench/tools may open sockets directly
  if (raw_socket_exempt_file(ctx.normalized)) return;
  const Tokens& ts = ctx.lex.tokens;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != TokenKind::kIdentifier) continue;
    if (!is_direct_syscall(ts, i)) continue;
    for (const char* ident : kRawSocketIdents) {
      if (ts[i].text == ident) {
        out.push_back(Finding{
            ctx.path, ts[i].line, "raw-socket",
            std::string(ident) +
                ": raw socket/event syscall outside src/net; route it "
                "through the net wrappers (net/socket.hpp, "
                "net/event_loop.hpp) so fd discipline stays in one place"});
      }
    }
    // Global-qualified fd syscalls (`::read(fd, ...)`).
    if (i >= 1 && is_punct(ts[i - 1], "::") &&
        (i < 2 || ts[i - 2].kind != TokenKind::kIdentifier)) {
      for (const char* ident : kGlobalOnlyIdents) {
        if (ts[i].text == ident) {
          out.push_back(Finding{
              ctx.path, ts[i].line, "raw-socket",
              "::" + std::string(ident) +
                  ": raw fd syscall outside src/net; use net::read_some / "
                  "net::write_some / net::Fd so EINTR and SIGPIPE handling "
                  "stay in one place"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unguarded-intrinsics

/// The SIMD kernel layer owns every translation unit built with extra
/// ISA flags; it is the only place raw vector intrinsics may appear.
bool intrinsics_exempt_file(const std::string& normalized) {
  return normalized.find("src/simd/") != std::string::npos;
}

/// x86 vector intrinsic spellings: _mm_/_mm256_/_mm512_ functions and
/// the __m128/__m256/__m512 register types (plus integer/float
/// suffixed forms, which share the prefixes).
bool is_intrinsic_ident(const std::string& text) {
  return text.rfind("_mm", 0) == 0 || text.rfind("__m128", 0) == 0 ||
         text.rfind("__m256", 0) == 0 || text.rfind("__m512", 0) == 0;
}

void unguarded_intrinsics_impl(const FileContext& ctx,
                               std::vector<Finding>& out) {
  if (!ctx.in_src) return;  // tests/bench/tools may probe intrinsics
  if (intrinsics_exempt_file(ctx.normalized)) return;
  for (const Token& t : ctx.lex.tokens) {
    if (t.kind == TokenKind::kDirective &&
        (t.text.find("immintrin.h") != std::string::npos ||
         t.text.find("x86intrin.h") != std::string::npos)) {
      out.push_back(Finding{
          ctx.path, t.line, "unguarded-intrinsics",
          "intrinsics header included outside src/simd; SIMD kernels live "
          "behind the dispatch layer (simd/kernels.hpp) so ISA selection, "
          "equivalence tiers, and -ffp-contract discipline stay in one "
          "place"});
      continue;
    }
    if (t.kind == TokenKind::kIdentifier && is_intrinsic_ident(t.text)) {
      out.push_back(Finding{
          ctx.path, t.line, "unguarded-intrinsics",
          t.text +
              ": raw SIMD intrinsic outside src/simd; add a kernel to the "
              "dispatch layer (simd/kernels.hpp) instead of open-coding "
              "vector widths in library code"});
    }
  }
}

}  // namespace

bool valid_obs_name(const std::string& name) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= name.size()) {
    return false;
  }
  if (name.find('.', dot + 1) != std::string::npos) return false;
  // subsystem: [a-z][a-z0-9]*
  if (!std::islower(static_cast<unsigned char>(name[0]))) return false;
  for (std::size_t i = 0; i < dot; ++i) {
    const char c = name[i];
    if (!std::islower(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  // metric: [a-z][a-z0-9_]*, no trailing underscore
  if (!std::islower(static_cast<unsigned char>(name[dot + 1]))) return false;
  for (std::size_t i = dot + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!std::islower(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return name.back() != '_';
}

const std::vector<std::string>& serialization_path_hints() {
  static const std::vector<std::string> kHints = {
      "storage", "/io.",     "hash",     "canonical", "serial",
      "checkpoint", "export", "protocol", "features",  "dataset",
      "model."};
  return kHints;
}

const std::vector<CheckInfo>& all_checks() {
  static const std::vector<CheckInfo> kChecks = {
      {"determinism-call",
       "entropy sources / wall clocks outside the seeded RNG wrapper",
       "Dataset generation, training, and replay verification all assume "
       "a run is reproducible from its seed. rand()/random_device/"
       "system_clock inject host state into that path. Fix: take a "
       "qgnn::Rng (derive_seed for substreams) and steady_clock for "
       "durations.",
       &check_determinism_call},
      {"determinism-iteration",
       "unordered-container iteration in serialization/hashing paths",
       "Unordered-container iteration order depends on the hash seed and "
       "libstdc++ version, so anything serialized or hashed from it is "
       "not byte-stable. Fix: copy keys to a vector and sort before "
       "emitting, or use std::map on output paths.",
       &check_determinism_iteration},
      {"obs-name",
       "metric/span names must follow subsystem.name_unit and be "
       "registered in src/obs/names.hpp",
       "Dashboards and alerts key on exact metric names; a typo ships a "
       "silent gap. Names must match subsystem.metric[_unit] and appear "
       "in src/obs/names.hpp. Fix: add the constant to the registry and "
       "reference it.",
       &check_obs_name},
      {"lock-across-submit",
       "thread-pool submit/parallel_for while holding a lock guard",
       "parallel_for blocks the caller until every chunk completes; "
       "holding a lock across it serializes the pool behind that lock "
       "and risks deadlock when a chunk takes the same lock. Fix: copy "
       "what the chunks need, drop the guard, then submit.",
       &check_lock_across_submit},
      {"mutable-global",
       "non-const namespace-scope state in library code",
       "Mutable globals are invisible cross-thread coupling and make "
       "replay nondeterministic. Fix: pass state explicitly, or wrap it "
       "in a function-local static behind an accessor with a documented "
       "lock.",
       &check_mutable_global},
      {"pragma-once", "headers must start with #pragma once",
       "Every header in this repo uses #pragma once; a missing guard "
       "turns refactors into ODR archaeology. Fix: add #pragma once as "
       "the first non-comment line.",
       &check_pragma_once},
      {"banned-function",
       "strtok/sprintf/atoi-family calls",
       "strtok is not thread-safe, sprintf has no bounds, and the atoi "
       "family reports errors as 0 — all three have bitten serving code. "
       "Fix: string_view splitting, snprintf, std::from_chars/stoi.",
       &check_banned_function},
      {"raw-io",
       "direct fread/fwrite/mmap outside the dataset storage layer",
       "All shard bytes flow through the storage layer so checksums, "
       "offsets, and error context stay consistent. Fix: use the "
       "dataset storage readers/writers instead of raw stdio/mmap.",
       &check_raw_io},
      {"raw-socket",
       "direct socket/accept/epoll syscalls outside src/net",
       "Socket setup (non-blocking flags, TCP_NODELAY, epoll "
       "registration) is centralized in src/net; a stray raw socket "
       "bypasses the event loop's invariants. Fix: go through src/net.",
       &check_raw_socket},
      {"unguarded-intrinsics",
       "raw _mm*/__m256/__m512 intrinsics outside src/simd",
       "ISA-specific intrinsics outside src/simd break the generic "
       "build and dodge runtime dispatch. Fix: add a kernel under "
       "src/simd with a generic fallback and route through the "
       "dispatcher.",
       &check_unguarded_intrinsics},
  };
  return kChecks;
}

void check_determinism_call(const FileContext& ctx,
                            std::vector<Finding>& out) {
  determinism_call_impl(ctx, out);
}
void check_determinism_iteration(const FileContext& ctx,
                                 std::vector<Finding>& out) {
  determinism_iteration_impl(ctx, out);
}
void check_obs_name(const FileContext& ctx, std::vector<Finding>& out) {
  obs_name_impl(ctx, out);
}
void check_lock_across_submit(const FileContext& ctx,
                              std::vector<Finding>& out) {
  lock_across_submit_impl(ctx, out);
}
void check_mutable_global(const FileContext& ctx,
                          std::vector<Finding>& out) {
  mutable_global_impl(ctx, out);
}
void check_pragma_once(const FileContext& ctx, std::vector<Finding>& out) {
  pragma_once_impl(ctx, out);
}
void check_banned_function(const FileContext& ctx,
                           std::vector<Finding>& out) {
  banned_function_impl(ctx, out);
}
void check_raw_io(const FileContext& ctx, std::vector<Finding>& out) {
  raw_io_impl(ctx, out);
}
void check_raw_socket(const FileContext& ctx, std::vector<Finding>& out) {
  raw_socket_impl(ctx, out);
}
void check_unguarded_intrinsics(const FileContext& ctx,
                                std::vector<Finding>& out) {
  unguarded_intrinsics_impl(ctx, out);
}

}  // namespace qgnn::lint
