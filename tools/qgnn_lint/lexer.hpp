#pragma once

#include <string>
#include <vector>

namespace qgnn::lint {

/// A lightweight C++ tokenizer, sufficient for the pattern-level static
/// analysis qgnn_lint performs. It is not a compiler front end: tokens
/// carry no types, and preprocessor directives are swallowed whole. What
/// it does guarantee:
///  - string/char literals (including raw strings) never leak their
///    contents into the code token stream, so a `rand(` inside a JSON
///    fixture string is not a finding;
///  - comments are collected separately with enough position information
///    to implement `// qgnn-lint: allow(<check>)` suppressions;
///  - `::` and `->` are single tokens, so checks can distinguish
///    qualified names and member calls without lookahead gymnastics.

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,      // pp-number (integer/float literal, any base/suffix)
  kString,      // string literal; text holds the contents (no quotes)
  kCharLit,     // character literal; text holds the contents
  kPunct,       // one punctuation token ("::" and "->" are single tokens)
  kDirective,   // a whole preprocessor line; text is the trimmed directive
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based line the token starts on
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  int line = 0;      // 1-based line the comment starts on
  /// 1-based line the comment ends on. Differs from `line` for block
  /// comments and for line comments continued with a trailing backslash
  /// (phase-2 line splicing makes the next physical line part of the
  /// comment, exactly as the compiler sees it).
  int end_line = 0;
  /// True when no code token precedes the comment on its line, i.e. the
  /// comment stands alone; suppressions in such comments also cover the
  /// line following end_line.
  bool owns_line = false;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize a translation unit. Never throws on malformed input: an
/// unterminated literal or comment simply ends at end-of-file.
LexResult lex(const std::string& source);

}  // namespace qgnn::lint
