#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "ising/ising.hpp"
#include "maxcut/maxcut.hpp"
#include "qaoa/ansatz.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(IsingModel, EnergyOfSimplePair) {
  // E = J s0 s1 with J = 1: aligned spins cost +1, anti-aligned -1.
  IsingModel model(2);
  model.add_coupling(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(model.energy(0b00), 1.0);   // ++
  EXPECT_DOUBLE_EQ(model.energy(0b11), 1.0);   // --
  EXPECT_DOUBLE_EQ(model.energy(0b01), -1.0);  // -+
  EXPECT_DOUBLE_EQ(model.energy(0b10), -1.0);
}

TEST(IsingModel, FieldsAndOffset) {
  IsingModel model(2);
  model.set_field(0, 0.5);
  model.set_field(1, -0.25);
  model.set_offset(10.0);
  // bits 0 -> s = +1.
  EXPECT_DOUBLE_EQ(model.energy(0b00), 10.0 + 0.5 - 0.25);
  EXPECT_DOUBLE_EQ(model.energy(0b01), 10.0 - 0.5 - 0.25);
  EXPECT_DOUBLE_EQ(model.field(0), 0.5);
}

TEST(IsingModel, CouplingsAccumulate) {
  IsingModel model(3);
  model.add_coupling(0, 2, 1.0);
  model.add_coupling(2, 0, 0.5);  // same pair, either order
  EXPECT_DOUBLE_EQ(model.coupling(0, 2), 1.5);
  EXPECT_THROW(model.add_coupling(1, 1, 1.0), InvalidArgument);
  EXPECT_THROW(model.coupling(0, 3), InvalidArgument);
}

TEST(IsingModel, GroundStateByScan) {
  // Anti-ferromagnetic triangle is frustrated: ground energy -1 (two
  // bonds satisfied, one violated).
  IsingModel model(3);
  model.add_coupling(0, 1, 1.0);
  model.add_coupling(1, 2, 1.0);
  model.add_coupling(0, 2, 1.0);
  const auto gs = model.ground_state();
  EXPECT_DOUBLE_EQ(gs.energy, -1.0);
  EXPECT_DOUBLE_EQ(model.energy(gs.configuration), gs.energy);
}

class MaxcutIsingTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxcutIsingTest, GroundEnergyEqualsMinusMaxCut) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Graph g = erdos_renyi_graph(GetParam(), 0.5, rng);
  if (g.num_edges() == 0) g.add_edge(0, 1);
  const IsingModel model = maxcut_to_ising(g);
  const auto gs = model.ground_state();
  const Cut opt = max_cut_brute_force(g);
  EXPECT_NEAR(gs.energy, -opt.value, 1e-9);
  // Every configuration satisfies E(x) = -cut(x).
  for (std::uint64_t k = 0; k < (std::uint64_t{1} << g.num_nodes());
       k += 3) {
    EXPECT_NEAR(model.energy(k), -cut_value(g, k), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, MaxcutIsingTest,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(NumberPartitioning, PerfectPartitionHasZeroGroundEnergy) {
  // {3, 1, 1, 2, 2, 1}: total 10, perfect split 5/5 exists.
  const IsingModel model =
      number_partitioning_ising({3.0, 1.0, 1.0, 2.0, 2.0, 1.0});
  const auto gs = model.ground_state();
  EXPECT_NEAR(gs.energy, 0.0, 1e-9);
}

TEST(NumberPartitioning, ImbalanceIsSquaredDifference) {
  // {3, 1, 1}: best split |3 - 2| = 1 -> ground energy 1.
  const IsingModel model = number_partitioning_ising({3.0, 1.0, 1.0});
  EXPECT_NEAR(model.ground_state().energy, 1.0, 1e-9);
  // And E of any configuration equals (sum s_i w_i)^2.
  EXPECT_NEAR(model.energy(0b000), 25.0, 1e-9);  // all same side
  EXPECT_NEAR(model.energy(0b001), 1.0, 1e-9);   // {1,1} vs {3}
}

TEST(RandomSpinGlass, RespectsStructureParameters) {
  Rng rng(5);
  const IsingModel dense = random_spin_glass(6, 1.0, 0.5, rng);
  int couplings = 0;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      if (dense.coupling(i, j) != 0.0) ++couplings;
    }
  }
  EXPECT_EQ(couplings, 15);
  const IsingModel empty = random_spin_glass(6, 0.0, 0.0, rng);
  EXPECT_DOUBLE_EQ(empty.energy(0b101010), 0.0);
}

TEST(DiagonalQaoaTest, MatchesGraphAnsatzOnMaxcut) {
  // maxcut_to_ising gives E(x) = -cut(x) exactly, so the generic
  // diagonal path (maximizing -E) must agree with the Max-Cut-specific
  // ansatz at every parameter point.
  Rng rng(7);
  const Graph g = random_regular_graph(6, 3, rng);
  const QaoaAnsatz graph_ansatz(g);
  const DiagonalQaoa diag = maxcut_to_ising(g).to_qaoa();
  for (double gamma : {0.2, 0.7, 1.9}) {
    for (double beta : {0.1, 0.39, 1.0}) {
      const QaoaParams params = QaoaParams::single(gamma, beta);
      EXPECT_NEAR(diag.expectation(params),
                  graph_ansatz.expectation(params), 1e-9);
    }
  }
}

TEST(DiagonalQaoaTest, ArgmaxIsGroundState) {
  Rng rng(9);
  const IsingModel model = random_spin_glass(7, 0.6, 0.3, rng);
  const DiagonalQaoa qaoa = model.to_qaoa();
  const auto gs = model.ground_state();
  EXPECT_EQ(qaoa.argmax(), gs.configuration);
  EXPECT_NEAR(qaoa.max_value(), -gs.energy, 1e-12);
}

TEST(SolveIsingQaoa, FindsPerfectPartition) {
  Rng rng(11);
  const IsingModel model =
      number_partitioning_ising({4.0, 3.0, 2.0, 2.0, 1.0, 2.0});
  // Total 14; perfect 7/7 split exists (e.g. {4,3} vs {2,2,1,2}).
  const IsingQaoaResult r = solve_ising_qaoa(model, 1, 200, 512, rng);
  EXPECT_NEAR(r.best_energy, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(model.energy(r.best_configuration), r.best_energy);
}

TEST(SolveIsingQaoa, BeatsRandomGuessOnSpinGlass) {
  Rng rng(13);
  const IsingModel model = random_spin_glass(8, 0.5, 0.2, rng);
  const IsingQaoaResult r = solve_ising_qaoa(model, 1, 150, 256, rng);
  // Mean energy over all configurations is the trace / 2^n; QAOA + best
  // of shots must land well below it.
  const auto all = model.energies();
  double mean = 0.0;
  for (double e : all) mean += e;
  mean /= static_cast<double>(all.size());
  EXPECT_LT(r.best_energy, mean);
  EXPECT_GE(r.best_energy, model.ground_state().energy - 1e-9);
}

TEST(DiagonalQaoaTest, ZeroAnglesGiveUniformAverage) {
  // At gamma = beta = 0 the state is |+>^n: <D> = mean of the diagonal.
  Rng rng(15);
  std::vector<double> diag(16);
  double mean = 0.0;
  for (double& v : diag) {
    v = rng.uniform(-3.0, 3.0);
    mean += v;
  }
  mean /= 16.0;
  const DiagonalQaoa qaoa(4, diag);
  EXPECT_NEAR(qaoa.expectation(QaoaParams::single(0.0, 0.0)), mean, 1e-12);
}

TEST(DiagonalQaoaTest, Validation) {
  EXPECT_THROW(DiagonalQaoa(2, std::vector<double>(3, 0.0)),
               InvalidArgument);
  EXPECT_THROW(DiagonalQaoa(0, {}), InvalidArgument);
  // Non-positive optimum: approximation ratio refuses.
  const DiagonalQaoa qaoa(1, {-1.0, -2.0});
  EXPECT_THROW(qaoa.approximation_ratio(QaoaParams::single(0.1, 0.1)),
               InvalidArgument);
  EXPECT_DOUBLE_EQ(qaoa.max_value(), -1.0);
  EXPECT_EQ(qaoa.argmax(), 0u);
}

TEST(DiagonalQaoaTest, GridOptimizationRaisesExpectation) {
  Rng rng(17);
  const IsingModel model = random_spin_glass(6, 0.5, 0.3, rng);
  const DiagonalQaoa qaoa = model.to_qaoa();
  const double at_zero = qaoa.expectation(QaoaParams::single(0.0, 0.0));
  const Objective f = [&qaoa](const std::vector<double>& x) {
    return qaoa.expectation(QaoaParams::from_flat(x));
  };
  GridSearchConfig grid;
  grid.gamma_steps = 16;
  grid.beta_steps = 16;
  EXPECT_GT(grid_search_maximize_2d(f, grid).best_value, at_zero);
}

TEST(IsingModel, DescribeSummarizes) {
  IsingModel model(4);
  model.add_coupling(0, 1, 1.0);
  model.set_field(2, 0.5);
  const std::string text = model.describe();
  EXPECT_NE(text.find("spins=4"), std::string::npos);
  EXPECT_NE(text.find("couplings=1"), std::string::npos);
  EXPECT_NE(text.find("fields=1"), std::string::npos);
}

}  // namespace
}  // namespace qgnn
