#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/fixed_angles.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(QaoaParams, FlattenRoundTrip) {
  const QaoaParams p({0.1, 0.2}, {0.3, 0.4});
  EXPECT_EQ(p.depth(), 2);
  const auto flat = p.flatten();
  ASSERT_EQ(flat.size(), 4u);
  const QaoaParams q = QaoaParams::from_flat(flat);
  EXPECT_EQ(q.gammas, p.gammas);
  EXPECT_EQ(q.betas, p.betas);
}

TEST(QaoaParams, Validation) {
  EXPECT_THROW(QaoaParams({0.1}, {0.2, 0.3}), InvalidArgument);
  EXPECT_THROW(QaoaParams({}, {}), InvalidArgument);
  EXPECT_THROW(QaoaParams::from_flat({0.1, 0.2, 0.3}), InvalidArgument);
}

TEST(Ansatz, ZeroAnglesGiveRandomCutExpectation) {
  // gamma = beta = 0 leaves |+>^n: <C> = total_weight / 2.
  const Graph g = cycle_graph(6);
  const QaoaAnsatz ansatz(g);
  EXPECT_NEAR(ansatz.expectation(QaoaParams::single(0.0, 0.0)),
              g.total_weight() / 2.0, 1e-12);
}

TEST(Ansatz, SingleEdgeAnalyticFormula) {
  // For K2: <C>(gamma, beta) = 1/2 + 1/2 sin(4 beta) sin(gamma).
  Graph g(2);
  g.add_edge(0, 1);
  const QaoaAnsatz ansatz(g);
  for (double gamma : {0.2, 0.7, 1.3, 2.9}) {
    for (double beta : {0.1, 0.4, kPi / 8, 1.2}) {
      const double expected =
          0.5 + 0.5 * std::sin(4.0 * beta) * std::sin(gamma);
      EXPECT_NEAR(ansatz.expectation(QaoaParams::single(gamma, beta)),
                  expected, 1e-10)
          << "gamma=" << gamma << " beta=" << beta;
    }
  }
}

TEST(Ansatz, SingleEdgeOptimalAtFixedAngles) {
  Graph g(2);
  g.add_edge(0, 1);
  const QaoaAnsatz ansatz(g);
  // Fixed angles for degree 1: gamma = pi/2, beta = pi/8 -> AR = 1.
  const auto angles = fixed_angles(1, 1);
  ASSERT_TRUE(angles.has_value());
  EXPECT_NEAR(ansatz.approximation_ratio(*angles), 1.0, 1e-10);
}

class TriangleFreeCutFractionTest : public ::testing::TestWithParam<int> {};

TEST_P(TriangleFreeCutFractionTest, CycleMatchesClosedForm) {
  // Even cycles are 2-regular and triangle-free for n >= 4: the p=1
  // closed form must match simulation exactly.
  const int n = GetParam();
  const Graph g = cycle_graph(n);
  const QaoaAnsatz ansatz(g);
  const auto angles = fixed_angles(2, 1);
  ASSERT_TRUE(angles.has_value());
  const double per_edge = ansatz.expectation(*angles) /
                          static_cast<double>(g.num_edges());
  EXPECT_NEAR(per_edge, p1_triangle_free_cut_fraction(2), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(CycleSweep, TriangleFreeCutFractionTest,
                         ::testing::Values(4, 5, 6, 7, 8, 10, 12));

TEST(Ansatz, ThreeRegularFixedAnglesNearKnownValue) {
  // 3-regular triangle-free: closed form gives ~0.6924 cut fraction.
  EXPECT_NEAR(p1_triangle_free_cut_fraction(3), 0.6924, 5e-4);
  // K_{3,3} is 3-regular, triangle-free.
  Graph g(6);
  for (int u = 0; u < 3; ++u) {
    for (int v = 3; v < 6; ++v) g.add_edge(u, v);
  }
  const QaoaAnsatz ansatz(g);
  const auto angles = fixed_angles(3, 1);
  ASSERT_TRUE(angles.has_value());
  const double per_edge = ansatz.expectation(*angles) / 9.0;
  EXPECT_NEAR(per_edge, p1_triangle_free_cut_fraction(3), 1e-10);
}

TEST(Ansatz, FastPathMatchesExplicitCircuit) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_regular_graph(6, 3, rng);
    const QaoaAnsatz ansatz(g);
    const QaoaParams params({rng.uniform(0, 6.28), rng.uniform(0, 6.28)},
                            {rng.uniform(0, 3.14), rng.uniform(0, 3.14)});
    const StateVector fast = ansatz.prepare_state(params);
    const StateVector slow =
        ansatz.build_circuit(params).simulate_from_plus();
    // Equal up to global phase.
    EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-10);
    // And expectations agree exactly.
    EXPECT_NEAR(ansatz.cost().expectation(fast),
                ansatz.cost().expectation(slow), 1e-10);
  }
}

TEST(Ansatz, WeightedGraphFastPathMatchesCircuit) {
  Rng rng(13);
  Graph g = with_random_weights(cycle_graph(5), 0.2, 1.8, rng);
  const QaoaAnsatz ansatz(g);
  const QaoaParams params = QaoaParams::single(0.9, 0.35);
  const StateVector fast = ansatz.prepare_state(params);
  const StateVector slow = ansatz.build_circuit(params).simulate_from_plus();
  EXPECT_NEAR(fast.fidelity(slow), 1.0, 1e-10);
}

TEST(Ansatz, ApproximationRatioBounds) {
  Rng rng(17);
  const Graph g = random_regular_graph(8, 3, rng);
  const QaoaAnsatz ansatz(g);
  for (int trial = 0; trial < 20; ++trial) {
    const QaoaParams params =
        QaoaParams::single(rng.uniform(0, 6.28), rng.uniform(0, 3.14));
    const double ar = ansatz.approximation_ratio(params);
    EXPECT_GT(ar, 0.0);
    EXPECT_LE(ar, 1.0 + 1e-12);
  }
}

TEST(Ansatz, DeeperCircuitsCanOnlyHelpAtOptimum) {
  // The p=2 optimum is at least the p=1 optimum (p=1 embeds in p=2 with a
  // zero second layer). Check at the embedded point.
  const Graph g = cycle_graph(6);
  const QaoaAnsatz ansatz(g);
  const QaoaParams p1 = *fixed_angles(2, 1);
  const QaoaParams p2({p1.gammas[0], 0.0}, {p1.betas[0], 0.0});
  EXPECT_NEAR(ansatz.expectation(p2), ansatz.expectation(p1), 1e-10);
}

TEST(Ansatz, CircuitGateCounts) {
  const Graph g = cycle_graph(5);
  const QaoaAnsatz ansatz(g);
  const Circuit c = ansatz.build_circuit(QaoaParams::single(0.5, 0.25));
  // p=1: one RZZ per edge + one RX per node.
  EXPECT_EQ(c.two_qubit_gate_count(), 5u);
  EXPECT_EQ(c.size(), 10u);
}

TEST(Ansatz, ExpectationInvariantUnderNodeRelabeling) {
  // Physics + implementation check: relabeling the nodes of the problem
  // graph cannot change <C> at any parameter point (the cost table, the
  // phase application, and the mixer must all be permutation covariant).
  Rng rng(23);
  const Graph g = random_regular_graph(7, 4, rng);
  std::vector<int> perm{3, 0, 6, 1, 5, 2, 4};
  const Graph gp = g.permuted(perm);
  const QaoaAnsatz a(g);
  const QaoaAnsatz b(gp);
  for (double gamma : {0.3, 1.1, 4.9}) {
    for (double beta : {0.2, 0.39, 2.5}) {
      const QaoaParams params = QaoaParams::single(gamma, beta);
      EXPECT_NEAR(a.expectation(params), b.expectation(params), 1e-10);
    }
  }
}

TEST(Ansatz, DisjointUnionExpectationIsAdditive) {
  // QAOA factorizes over connected components: <C> of a disjoint union
  // equals the sum of per-component expectations.
  Graph combined(7);  // triangle on {0,1,2} + square on {3,4,5,6}
  combined.add_edge(0, 1);
  combined.add_edge(1, 2);
  combined.add_edge(0, 2);
  combined.add_edge(3, 4);
  combined.add_edge(4, 5);
  combined.add_edge(5, 6);
  combined.add_edge(3, 6);
  const QaoaAnsatz whole(combined);
  const QaoaAnsatz triangle(cycle_graph(3));
  const QaoaAnsatz square(cycle_graph(4));
  const QaoaParams params = QaoaParams::single(0.7, 0.3);
  EXPECT_NEAR(whole.expectation(params),
              triangle.expectation(params) + square.expectation(params),
              1e-9);
}

TEST(Ansatz, BetaPeriodicityPi) {
  // For the mixer, beta and beta + pi give identical expectations.
  const Graph g = cycle_graph(5);
  const QaoaAnsatz ansatz(g);
  const double e1 = ansatz.expectation(QaoaParams::single(0.8, 0.3));
  const double e2 = ansatz.expectation(QaoaParams::single(0.8, 0.3 + kPi));
  EXPECT_NEAR(e1, e2, 1e-10);
}

TEST(Ansatz, GammaPeriodicityTwoPiUnweighted) {
  const Graph g = cycle_graph(5);
  const QaoaAnsatz ansatz(g);
  const double e1 = ansatz.expectation(QaoaParams::single(0.8, 0.3));
  const double e2 =
      ansatz.expectation(QaoaParams::single(0.8 + 2 * kPi, 0.3));
  EXPECT_NEAR(e1, e2, 1e-10);
}

}  // namespace
}  // namespace qgnn
