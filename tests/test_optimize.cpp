#include <gtest/gtest.h>

#include <cmath>

#include "qaoa/optimize.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

/// Concave quadratic with maximum `peak` at `center`.
Objective quadratic(std::vector<double> center, double peak) {
  return [center = std::move(center), peak](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - center[i];
      s += d * d;
    }
    return peak - s;
  };
}

TEST(NelderMead, FindsQuadraticMaximum2D) {
  const auto f = quadratic({1.5, -2.0}, 7.0);
  NelderMeadConfig config;
  config.max_evaluations = 300;
  const OptResult r = nelder_mead_maximize(f, {0.0, 0.0}, config);
  EXPECT_NEAR(r.best_value, 7.0, 1e-5);
  EXPECT_NEAR(r.best_params[0], 1.5, 1e-2);
  EXPECT_NEAR(r.best_params[1], -2.0, 1e-2);
  EXPECT_TRUE(r.converged);
}

TEST(NelderMead, FindsQuadraticMaximum4D) {
  const auto f = quadratic({0.5, -0.5, 2.0, 1.0}, 3.0);
  NelderMeadConfig config;
  config.max_evaluations = 800;
  const OptResult r = nelder_mead_maximize(f, {0, 0, 0, 0}, config);
  EXPECT_NEAR(r.best_value, 3.0, 1e-4);
}

TEST(NelderMead, HandlesTrigLandscape) {
  // Multi-modal but smooth; from a decent start it should climb to 2.
  const Objective f = [](const std::vector<double>& x) {
    return std::sin(x[0]) + std::cos(x[1]);
  };
  NelderMeadConfig config;
  config.max_evaluations = 400;
  const OptResult r = nelder_mead_maximize(f, {1.0, 0.5}, config);
  EXPECT_NEAR(r.best_value, 2.0, 1e-4);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  const auto f = quadratic({3.0, 3.0}, 1.0);
  NelderMeadConfig config;
  config.max_evaluations = 50;
  config.tolerance = 0.0;  // never converge by tolerance
  const OptResult r = nelder_mead_maximize(f, {0.0, 0.0}, config);
  EXPECT_LE(r.evaluations, 50);
  EXPECT_EQ(r.trace.size(), static_cast<std::size_t>(r.evaluations));
}

TEST(NelderMead, TraceIsBestSoFarMonotone) {
  const auto f = quadratic({1.0, 1.0}, 0.0);
  const OptResult r = nelder_mead_maximize(f, {-2.0, 2.0});
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i], r.trace[i - 1]);
  }
  EXPECT_DOUBLE_EQ(r.trace.back(), r.best_value);
}

TEST(NelderMead, ValidatesInput) {
  const auto f = quadratic({0.0}, 0.0);
  EXPECT_THROW(nelder_mead_maximize(f, {}), InvalidArgument);
  NelderMeadConfig tiny;
  tiny.max_evaluations = 1;
  EXPECT_THROW(nelder_mead_maximize(f, {0.0}, tiny), InvalidArgument);
}

TEST(NelderMead, RejectsNonFiniteObjective) {
  const Objective f = [](const std::vector<double>&) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_THROW(nelder_mead_maximize(f, {0.0}), InvalidArgument);
}

TEST(FiniteDifference, MatchesAnalyticGradient) {
  const Objective f = [](const std::vector<double>& x) {
    return std::sin(x[0]) * std::exp(x[1] / 3.0);
  };
  const std::vector<double> x{0.7, -0.4};
  const auto g = finite_difference_gradient(f, x, 1e-6);
  const double expected0 = std::cos(0.7) * std::exp(-0.4 / 3.0);
  const double expected1 = std::sin(0.7) * std::exp(-0.4 / 3.0) / 3.0;
  EXPECT_NEAR(g[0], expected0, 1e-7);
  EXPECT_NEAR(g[1], expected1, 1e-7);
}

TEST(Adam, ClimbsQuadratic) {
  const auto f = quadratic({0.8, -1.2}, 5.0);
  AdamConfig config;
  config.max_iterations = 400;
  config.learning_rate = 0.05;
  const OptResult r = adam_maximize(f, {0.0, 0.0}, config);
  EXPECT_NEAR(r.best_value, 5.0, 1e-3);
  EXPECT_NEAR(r.best_params[0], 0.8, 0.05);
  EXPECT_NEAR(r.best_params[1], -1.2, 0.05);
}

TEST(Adam, ConvergesAndStopsEarly) {
  const auto f = quadratic({0.0}, 1.0);
  AdamConfig config;
  config.max_iterations = 10000;
  config.learning_rate = 0.1;
  const OptResult r = adam_maximize(f, {0.05}, config);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.evaluations, 10000 * 5);
}

TEST(Adam, TraceMonotoneAndSized) {
  const auto f = quadratic({2.0, 2.0}, 0.0);
  AdamConfig config;
  config.max_iterations = 50;
  const OptResult r = adam_maximize(f, {0.0, 0.0}, config);
  EXPECT_EQ(r.trace.size(), static_cast<std::size_t>(r.evaluations));
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i], r.trace[i - 1]);
  }
}

TEST(GridSearch, FindsBestGridPoint) {
  const Objective f = [](const std::vector<double>& x) {
    return -std::pow(x[0] - 3.0, 2) - std::pow(x[1] - 1.5, 2);
  };
  GridSearchConfig config;
  config.gamma_steps = 32;
  config.beta_steps = 32;
  const OptResult r = grid_search_maximize_2d(f, config);
  EXPECT_EQ(r.evaluations, 32 * 32);
  EXPECT_NEAR(r.best_params[0], 3.0, 0.25);
  EXPECT_NEAR(r.best_params[1], 1.5, 0.15);
}

TEST(GridSearch, SinglePointGrid) {
  const auto f = quadratic({0.0, 0.0}, 2.0);
  GridSearchConfig config;
  config.gamma_steps = 1;
  config.beta_steps = 1;
  const OptResult r = grid_search_maximize_2d(f, config);
  EXPECT_EQ(r.evaluations, 1);
  EXPECT_DOUBLE_EQ(r.best_params[0], 0.0);
}

class NelderMeadDimTest : public ::testing::TestWithParam<int> {};

TEST_P(NelderMeadDimTest, ScalesWithDimension) {
  const int dim = GetParam();
  std::vector<double> center(static_cast<std::size_t>(dim));
  for (int i = 0; i < dim; ++i) {
    center[static_cast<std::size_t>(i)] = 0.3 * i - 0.5;
  }
  const auto f = quadratic(center, 1.0);
  NelderMeadConfig config;
  config.max_evaluations = 500 * dim;
  const OptResult r = nelder_mead_maximize(
      f, std::vector<double>(static_cast<std::size_t>(dim), 0.0), config);
  EXPECT_NEAR(r.best_value, 1.0, 1e-3) << "dim " << dim;
}

INSTANTIATE_TEST_SUITE_P(DimSweep, NelderMeadDimTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

/// Drive a stepper with the given objective until exhaustion.
OptResult drive_stepper(const Objective& f, const std::vector<double>& start,
                        const NelderMeadConfig& config) {
  NelderMeadStepper s(start, config);
  while (const std::vector<double>* x = s.ask()) s.tell(f(*x));
  EXPECT_TRUE(s.done());
  return s.take_result();
}

void expect_results_identical(const OptResult& a, const OptResult& b) {
  EXPECT_EQ(a.best_params, b.best_params);  // bitwise, not approximate
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(NelderMeadStepper, ReplaysMonolithicSearchBitForBit) {
  // The ask/tell stepper must request exactly the evaluation sequence of
  // nelder_mead_maximize and land on an identical OptResult — this is
  // what lets the batched dataset factory interleave K searches without
  // changing any label. Cover landscapes that exercise reflection,
  // expansion, both contractions, shrinks, budget exhaustion, and
  // convergence.
  struct Case {
    const char* name;
    Objective f;
    std::vector<double> start;
    int max_evaluations;
  };
  const std::vector<Case> cases = {
      {"quadratic2d", quadratic({1.5, -2.0}, 7.0), {0.0, 0.0}, 300},
      {"quadratic4d", quadratic({0.5, -0.5, 2.0, 1.0}, 3.0),
       {0.0, 0.0, 0.0, 0.0}, 800},
      {"tight-budget", quadratic({1.0, 1.0}, 1.0), {-3.0, 2.0}, 7},
      {"trig",
       [](const std::vector<double>& x) {
         return std::sin(3.0 * x[0]) * std::cos(2.0 * x[1]) -
                0.1 * (x[0] * x[0] + x[1] * x[1]);
       },
       {0.3, -0.2}, 400},
      {"ridge",
       [](const std::vector<double>& x) {
         return -std::abs(x[0] - x[1]) - 0.01 * x[0] * x[0];
       },
       {2.0, -1.0}, 250},
  };
  for (const Case& c : cases) {
    NelderMeadConfig config;
    config.max_evaluations = c.max_evaluations;
    const OptResult mono = nelder_mead_maximize(c.f, c.start, config);
    const OptResult stepped = drive_stepper(c.f, c.start, config);
    SCOPED_TRACE(c.name);
    expect_results_identical(mono, stepped);
  }
}

TEST(NelderMeadStepper, AskIsStableUntilTell) {
  NelderMeadConfig config;
  config.max_evaluations = 50;
  NelderMeadStepper s({0.0, 0.0}, config);
  const std::vector<double>* a = s.ask();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(s.ask(), a);  // repeated ask returns the same pending point
  s.tell(1.0);
  EXPECT_NE(s.ask(), nullptr);
}

TEST(NelderMeadStepper, RejectsNonFiniteValues) {
  NelderMeadStepper s({0.0, 0.0}, {});
  ASSERT_NE(s.ask(), nullptr);
  EXPECT_THROW(s.tell(std::nan("")), Error);
}

TEST(NelderMeadStepper, CountsEvaluationsLikeMonolith) {
  const auto f = quadratic({1.0}, 2.0);
  NelderMeadConfig config;
  config.max_evaluations = 30;
  const OptResult mono = nelder_mead_maximize(f, {5.0}, config);
  NelderMeadStepper s({5.0}, config);
  while (const std::vector<double>* x = s.ask()) s.tell(f(*x));
  EXPECT_EQ(s.evaluations(), mono.evaluations);
}

}  // namespace
}  // namespace qgnn
