#include <gtest/gtest.h>

#include "autograd/nn_optim.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

using ag::AdamOptimizer;
using ag::ReduceLROnPlateau;
using ag::Var;

TEST(AdamOptimizer, MinimizesQuadratic) {
  // Minimize ||x - t||^2 over a 2x2 parameter.
  const Matrix target{{1.0, -2.0}, {0.5, 3.0}};
  Var x(Matrix::zeros(2, 2), true);
  AdamOptimizer::Config config;
  config.learning_rate = 0.1;
  AdamOptimizer opt({x}, config);

  for (int step = 0; step < 300; ++step) {
    opt.zero_grad();
    Var loss = ag::mse_loss(x, target);
    loss.backward();
    opt.step();
  }
  EXPECT_TRUE(x.value().approx_equal(target, 1e-2));
}

TEST(AdamOptimizer, MultipleParameters) {
  // Minimize (a*b - 6)^2 with scalars a, b.
  Var a(Matrix{{1.0}}, true);
  Var b(Matrix{{1.0}}, true);
  AdamOptimizer::Config config;
  config.learning_rate = 0.05;
  AdamOptimizer opt({a, b}, config);
  for (int step = 0; step < 500; ++step) {
    opt.zero_grad();
    Var prod = ag::mul(a, b);
    Var loss = ag::mse_loss(prod, Matrix{{6.0}});
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(a.value()(0, 0) * b.value()(0, 0), 6.0, 1e-3);
}

TEST(AdamOptimizer, WeightDecayShrinksUnusedParams) {
  Var unused(Matrix{{5.0}}, true);
  AdamOptimizer::Config config;
  config.learning_rate = 0.1;
  config.weight_decay = 0.1;
  AdamOptimizer opt({unused}, config);
  for (int step = 0; step < 100; ++step) {
    opt.zero_grad();  // grad stays zero; decay still pulls toward 0
    opt.step();
  }
  EXPECT_LT(std::abs(unused.value()(0, 0)), 5.0);
}

TEST(AdamOptimizer, RejectsNonTrainableParams) {
  Var frozen(Matrix{{1.0}}, false);
  EXPECT_THROW(AdamOptimizer opt({frozen}), InvalidArgument);
  EXPECT_THROW(AdamOptimizer opt(std::vector<Var>{}), InvalidArgument);
}

TEST(ReduceLROnPlateau, ReducesAfterPatienceExceeded) {
  Var x(Matrix{{0.0}}, true);
  AdamOptimizer::Config aconfig;
  aconfig.learning_rate = 1.0;
  AdamOptimizer opt({x}, aconfig);
  ReduceLROnPlateau::Config config;
  config.factor = 0.5;
  config.patience = 2;
  config.min_lr = 0.1;
  ReduceLROnPlateau sched(opt, config);

  EXPECT_FALSE(sched.step(1.0));  // best = 1.0
  EXPECT_FALSE(sched.step(1.0));  // bad 1
  EXPECT_FALSE(sched.step(1.0));  // bad 2 (== patience)
  EXPECT_TRUE(sched.step(1.0));   // bad 3 -> reduce
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
  EXPECT_EQ(sched.reductions(), 1);
}

TEST(ReduceLROnPlateau, ImprovementResetsPatience) {
  Var x(Matrix{{0.0}}, true);
  AdamOptimizer::Config aconfig;
  aconfig.learning_rate = 1.0;
  AdamOptimizer opt({x}, aconfig);
  ReduceLROnPlateau::Config config;
  config.patience = 1;
  ReduceLROnPlateau sched(opt, config);

  sched.step(1.0);
  sched.step(1.0);              // bad 1
  EXPECT_FALSE(sched.step(0.5));  // improvement resets
  sched.step(0.5);              // bad 1 again
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1.0);
}

TEST(ReduceLROnPlateau, RespectsMinLr) {
  Var x(Matrix{{0.0}}, true);
  AdamOptimizer::Config aconfig;
  aconfig.learning_rate = 0.4;
  AdamOptimizer opt({x}, aconfig);
  ReduceLROnPlateau::Config config;
  config.factor = 0.2;
  config.patience = 0;
  config.min_lr = 0.1;
  ReduceLROnPlateau sched(opt, config);

  sched.step(1.0);
  EXPECT_TRUE(sched.step(1.0));   // 0.4 -> max(0.08, 0.1) = 0.1
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
  EXPECT_FALSE(sched.step(1.0));  // already at floor: no reduction
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
}

TEST(ReduceLROnPlateau, RejectsBadFactor) {
  Var x(Matrix{{0.0}}, true);
  AdamOptimizer opt({x});
  ReduceLROnPlateau::Config config;
  config.factor = 5.0;  // the paper's literal "factor 5" must be rejected
  EXPECT_THROW(ReduceLROnPlateau(opt, config), InvalidArgument);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Var x(Matrix{{0.0, 0.0}}, true);
  Var y(Matrix{{0.0}}, true);
  x.zero_grad();
  y.zero_grad();
  x.node()->grad(0, 0) = 3.0;
  x.node()->grad(0, 1) = 0.0;
  y.node()->grad(0, 0) = 4.0;
  const double pre = ag::clip_grad_norm({x, y}, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(x.grad()(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(y.grad()(0, 0), 0.8, 1e-12);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Var x(Matrix{{0.0}}, true);
  x.zero_grad();
  x.node()->grad(0, 0) = 0.5;
  ag::clip_grad_norm({x}, 1.0);
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 0.5);
}

TEST(ParameterCount, SumsSizes) {
  Var a(Matrix::zeros(3, 4), true);
  Var b(Matrix::zeros(1, 5), true);
  EXPECT_EQ(ag::parameter_count({a, b}), 17u);
}

}  // namespace
}  // namespace qgnn
