#include <gtest/gtest.h>

#include "dataset/pruning.hpp"
#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

/// Fabricate entries with prescribed approximation ratios.
std::vector<DatasetEntry> fake_entries(const std::vector<double>& ars) {
  std::vector<DatasetEntry> entries;
  Rng rng(1);
  for (double ar : ars) {
    DatasetEntry e;
    e.graph = cycle_graph(4);
    e.degree = 2;
    e.optimum = 4.0;
    e.approximation_ratio = ar;
    e.expectation = ar * 4.0;
    e.label = QaoaParams::single(0.5, 0.25);
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(Sdp, SelectiveRateOneKeepsEverything) {
  SdpConfig config;
  config.ar_threshold = 0.7;
  config.selective_rate = 1.0;
  SdpReport report;
  const auto kept = selective_data_pruning(
      fake_entries({0.2, 0.5, 0.8, 0.95}), config, &report);
  EXPECT_EQ(kept.size(), 4u);
  EXPECT_EQ(report.below_threshold, 2u);
  EXPECT_EQ(report.pruned, 0u);
}

TEST(Sdp, SelectiveRateZeroIsHardThreshold) {
  SdpConfig config;
  config.ar_threshold = 0.7;
  config.selective_rate = 0.0;
  SdpReport report;
  const auto kept = selective_data_pruning(
      fake_entries({0.2, 0.5, 0.8, 0.95}), config, &report);
  ASSERT_EQ(kept.size(), 2u);
  for (const auto& e : kept) EXPECT_GE(e.approximation_ratio, 0.7);
  EXPECT_EQ(report.pruned, 2u);
}

TEST(Sdp, IntermediateRateKeepsRoughlyThatFraction) {
  SdpConfig config;
  config.ar_threshold = 0.9;
  config.selective_rate = 0.7;
  config.seed = 3;
  // 200 low-quality entries: about 70% should survive.
  std::vector<double> ars(200, 0.5);
  SdpReport report;
  const auto kept = selective_data_pruning(fake_entries(ars), config,
                                           &report);
  EXPECT_EQ(report.below_threshold, 200u);
  EXPECT_NEAR(static_cast<double>(kept.size()), 140.0, 20.0);
}

TEST(Sdp, ImprovesMeanAr) {
  SdpConfig config;
  config.ar_threshold = 0.7;
  config.selective_rate = 0.3;
  SdpReport report;
  selective_data_pruning(fake_entries({0.3, 0.4, 0.5, 0.9, 0.95, 1.0}),
                         config, &report);
  EXPECT_GT(report.mean_ar_after, report.mean_ar_before);
  EXPECT_EQ(report.input_count, 6u);
  EXPECT_EQ(report.kept + report.pruned, 6u);
}

TEST(Sdp, HighQualityDataUntouched) {
  SdpConfig config;
  config.ar_threshold = 0.7;
  config.selective_rate = 0.0;
  const auto kept =
      selective_data_pruning(fake_entries({0.9, 0.8, 0.99}), config);
  EXPECT_EQ(kept.size(), 3u);
}

TEST(Sdp, ValidatesConfig) {
  SdpConfig config;
  config.ar_threshold = 1.5;
  EXPECT_THROW(selective_data_pruning(fake_entries({0.5}), config),
               InvalidArgument);
  config = SdpConfig{};
  config.selective_rate = -0.1;
  EXPECT_THROW(selective_data_pruning(fake_entries({0.5}), config),
               InvalidArgument);
}

TEST(Sdp, DeterministicForSeed) {
  SdpConfig config;
  config.ar_threshold = 0.9;
  config.selective_rate = 0.5;
  config.seed = 11;
  std::vector<double> ars;
  for (int i = 0; i < 50; ++i) ars.push_back(0.5);
  const auto a = selective_data_pruning(fake_entries(ars), config);
  const auto b = selective_data_pruning(fake_entries(ars), config);
  EXPECT_EQ(a.size(), b.size());
}

TEST(FixedAngleAudit, UpgradesPoorLabels) {
  // An entry with a deliberately bad label on a 2-regular graph: fixed
  // angles (exact optimum on even cycles) must replace it.
  std::vector<DatasetEntry> entries = fake_entries({0.5});
  entries[0].label = QaoaParams::single(0.01, 0.01);  // ~random quality
  QaoaAnsatz ansatz(entries[0].graph);
  entries[0].expectation = ansatz.expectation(entries[0].label);
  entries[0].approximation_ratio = entries[0].expectation / 4.0;

  const auto report = fixed_angle_label_audit(entries, 1);
  EXPECT_EQ(report.covered, 1u);
  EXPECT_EQ(report.improved, 1u);
  EXPECT_GT(report.mean_ar_delta, 0.0);
  EXPECT_NEAR(entries[0].approximation_ratio, 0.75, 1e-9);
}

TEST(FixedAngleAudit, KeepsBetterLabels) {
  // A label already at the optimum must not be replaced downward.
  std::vector<DatasetEntry> entries = fake_entries({1.0});
  // C4's best p=1 AR is 0.75; claim the label achieves it exactly.
  QaoaAnsatz ansatz(entries[0].graph);
  const auto fixed = fixed_angles(2, 1);
  entries[0].label = *fixed;
  entries[0].expectation = ansatz.expectation(*fixed);
  entries[0].approximation_ratio = entries[0].expectation / 4.0;
  const double before = entries[0].approximation_ratio;

  const auto report = fixed_angle_label_audit(entries, 1);
  EXPECT_EQ(report.improved, 0u);
  EXPECT_DOUBLE_EQ(entries[0].approximation_ratio, before);
}

TEST(FixedAngleAudit, SkipsIrregularGraphs) {
  DatasetEntry e;
  e.graph = star_graph(4);
  e.degree = 3;
  e.optimum = 3.0;
  e.approximation_ratio = 0.5;
  e.label = QaoaParams::single(0.1, 0.1);
  std::vector<DatasetEntry> entries{e};
  const auto report = fixed_angle_label_audit(entries, 1);
  EXPECT_EQ(report.covered, 0u);
}

TEST(FixedAngleAudit, NeverDecreasesAnyAr) {
  Rng rng(4);
  std::vector<DatasetEntry> entries;
  for (int d : {2, 3, 4}) {
    DatasetEntry e;
    e.graph = random_regular_graph(8, d, rng);
    e.degree = d;
    QaoaAnsatz ansatz(e.graph);
    e.optimum = ansatz.cost().max_value();
    e.label = QaoaParams::single(rng.uniform(0, 6.28), rng.uniform(0, 3.14));
    e.expectation = ansatz.expectation(e.label);
    e.approximation_ratio = e.expectation / e.optimum;
    entries.push_back(std::move(e));
  }
  std::vector<double> before;
  for (const auto& e : entries) before.push_back(e.approximation_ratio);
  fixed_angle_label_audit(entries, 1);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].approximation_ratio, before[i]);
  }
}

}  // namespace
}  // namespace qgnn
