#include <gtest/gtest.h>

#include <cmath>

#include "quantum/circuit.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kTol = 1e-12;

TEST(Circuit, BellState) {
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  const StateVector s = c.simulate();
  EXPECT_NEAR(s.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(s.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(s.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(s.probability(0b10), 0.0, kTol);
}

TEST(Circuit, GhzState) {
  const int n = 5;
  Circuit c(n);
  c.h(0);
  for (int q = 1; q < n; ++q) c.cnot(q - 1, q);
  const StateVector s = c.simulate();
  EXPECT_NEAR(s.probability(0), 0.5, kTol);
  EXPECT_NEAR(s.probability((1u << n) - 1), 0.5, kTol);
}

TEST(Circuit, MatchesManualApplication) {
  Circuit c(3);
  c.h(0);
  c.rx(1, 0.7);
  c.rzz(0, 2, 1.1);
  c.cz(1, 2);
  c.ry(2, -0.4);
  const StateVector via_circuit = c.simulate();

  StateVector manual(3);
  manual.apply_single_qubit(gates::hadamard(), 0);
  manual.apply_single_qubit(gates::rx(0.7), 1);
  manual.apply_rzz(1.1, 0, 2);
  manual.apply_controlled(gates::pauli_z(), 1, 2);
  manual.apply_single_qubit(gates::ry(-0.4), 2);

  EXPECT_NEAR(via_circuit.fidelity(manual), 1.0, kTol);
}

TEST(Circuit, SimulateFromPlus) {
  Circuit c(2);
  const StateVector s = c.simulate_from_plus();
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(s.probability(k), 0.25, kTol);
  }
}

TEST(Circuit, TwoQubitGateCount) {
  Circuit c(3);
  c.h(0);
  c.rzz(0, 1, 0.5);
  c.cnot(1, 2);
  c.x(2);
  EXPECT_EQ(c.two_qubit_gate_count(), 2u);
  EXPECT_EQ(c.size(), 4u);
}

TEST(Circuit, ValidatesQubits) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), InvalidArgument);
  EXPECT_THROW(c.cnot(0, 0), InvalidArgument);
  EXPECT_THROW(c.rzz(1, 1, 0.3), InvalidArgument);
  EXPECT_THROW(Circuit(0), InvalidArgument);
}

TEST(Circuit, ApplyToRequiresMatchingSize) {
  Circuit c(3);
  StateVector s(2);
  EXPECT_THROW(c.apply_to(s), InvalidArgument);
}

TEST(Circuit, ToStringListsOps) {
  Circuit c(2);
  c.h(0);
  c.rzz(0, 1, 0.5);
  c.cnot(0, 1);
  const std::string text = c.to_string();
  EXPECT_NE(text.find("h q0"), std::string::npos);
  EXPECT_NE(text.find("rzz(0.500) q0, q1"), std::string::npos);
  EXPECT_NE(text.find("cnot q0, q1"), std::string::npos);
}

TEST(Circuit, XViaHzh) {
  // HZH = X: both circuits send |0> to |1>.
  Circuit a(1);
  a.h(0);
  a.z(0);
  a.h(0);
  Circuit b(1);
  b.x(0);
  EXPECT_NEAR(a.simulate().fidelity(b.simulate()), 1.0, 1e-12);
}

TEST(Circuit, RotationComposition) {
  // RZ(a) RZ(b) == RZ(a+b).
  Circuit two(1);
  two.h(0);
  two.rz(0, 0.3);
  two.rz(0, 0.9);
  Circuit one(1);
  one.h(0);
  one.rz(0, 1.2);
  EXPECT_NEAR(two.simulate().fidelity(one.simulate()), 1.0, 1e-12);
}

}  // namespace
}  // namespace qgnn
