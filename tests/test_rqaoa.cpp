#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/rqaoa.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(EdgeCorrelations, SignsMatchIntuitionOnSingleEdge) {
  // At gamma = beta = 0 the state is |+>^n: <ZZ> = 0 on every edge. At
  // the p=1 optimum of K2, the endpoints anti-correlate (<ZZ> < 0).
  Graph g(2);
  g.add_edge(0, 1);
  const auto flat = edge_zz_correlations(g, QaoaParams::single(0.0, 0.0));
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_NEAR(flat[0].zz, 0.0, 1e-12);

  const auto opt =
      edge_zz_correlations(g, *fixed_angles(1, 1));  // AR = 1 point
  EXPECT_NEAR(opt[0].zz, -1.0, 1e-9);
}

TEST(EdgeCorrelations, BoundedByOne) {
  Rng rng(3);
  const Graph g = random_regular_graph(8, 3, rng);
  const auto correlations =
      edge_zz_correlations(g, *fixed_angles(3, 1));
  EXPECT_EQ(correlations.size(), static_cast<std::size_t>(g.num_edges()));
  for (const auto& c : correlations) {
    EXPECT_LE(std::abs(c.zz), 1.0 + 1e-12);
  }
}

TEST(ContractEdge, SameSideMergesNeighborhoods) {
  // Path 0-1-2; contract 1 into 0 with sign +1: edge 0-1 vanishes,
  // edge 1-2 becomes 0'-1' (relabeled 2 -> 1).
  const Graph g = path_graph(3);
  const Contraction c = contract_edge(g, 0, 1, +1);
  EXPECT_EQ(c.graph.num_nodes(), 2);
  EXPECT_EQ(c.graph.num_edges(), 1);
  EXPECT_DOUBLE_EQ(c.graph.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c.base_offset, 0.0);
  EXPECT_EQ(c.node_map[1], c.node_map[0]);
}

TEST(ContractEdge, OppositeSideCreatesNegativeWeightsAndOffset) {
  // Triangle; contract 1 into 0 with sign -1: the 0-1 edge is always cut
  // (offset 1); 1-2 flips sign and merges with 0-2: weight 1 + (-1) = 0,
  // plus offset 1 for the flipped edge.
  const Graph g = cycle_graph(3);
  const Contraction c = contract_edge(g, 0, 1, -1);
  EXPECT_EQ(c.graph.num_nodes(), 2);
  EXPECT_EQ(c.graph.num_edges(), 0);  // cancelled to zero weight
  EXPECT_DOUBLE_EQ(c.base_offset, 2.0);
}

TEST(ContractEdge, CutValuesAreConsistent) {
  // For every assignment of the contracted graph, the expanded original
  // assignment has cut = contracted cut + base_offset.
  Rng rng(5);
  const Graph g = erdos_renyi_graph(7, 0.5, rng);
  for (int sign : {+1, -1}) {
    if (g.num_edges() == 0) continue;
    const Edge e = g.edges()[0];
    const Contraction c = contract_edge(g, e.u, e.v, sign);
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << c.graph.num_nodes());
         ++a) {
      // Expand the contracted assignment to the original nodes.
      std::uint64_t original = 0;
      for (int vtx = 0; vtx < g.num_nodes(); ++vtx) {
        const int mapped = c.node_map[static_cast<std::size_t>(vtx)];
        int bit = static_cast<int>((a >> mapped) & 1);
        if (vtx == e.v && sign == -1) bit = 1 - bit;
        if (bit) original |= std::uint64_t{1} << vtx;
      }
      EXPECT_NEAR(cut_value(g, original),
                  cut_value(c.graph, a) + c.base_offset, 1e-9)
          << "sign " << sign << " assignment " << a;
    }
  }
}

TEST(ContractEdge, Validation) {
  const Graph g = path_graph(3);
  EXPECT_THROW(contract_edge(g, 0, 0, 1), InvalidArgument);
  EXPECT_THROW(contract_edge(g, 0, 5, 1), InvalidArgument);
  EXPECT_THROW(contract_edge(g, 0, 1, 2), InvalidArgument);
}

TEST(Rqaoa, ExactOnBipartiteGraphs) {
  // On bipartite graphs the full cut is optimal and strongly expressed in
  // the correlations; RQAOA should recover it exactly.
  Rng rng(7);
  FixedAngleInitializer init;
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = random_bipartite_regular_graph(5, 3, rng);
    RqaoaConfig config;
    config.cutoff = 4;
    config.optimizer_evaluations = 80;
    const RqaoaResult r = run_rqaoa(g, init, config, rng);
    EXPECT_DOUBLE_EQ(r.cut.value, g.total_weight()) << "trial " << trial;
    EXPECT_EQ(r.eliminations, g.num_nodes() - config.cutoff);
  }
}

TEST(Rqaoa, ReportsConsistentCut) {
  Rng rng(9);
  const Graph g = random_regular_graph(10, 3, rng);
  FixedAngleInitializer init;
  RqaoaConfig config;
  config.cutoff = 5;
  const RqaoaResult r = run_rqaoa(g, init, config, rng);
  EXPECT_DOUBLE_EQ(r.cut.value, cut_value(g, r.cut.assignment));
  EXPECT_GT(r.total_evaluations, 0);
  const Cut opt = max_cut_brute_force(g);
  EXPECT_LE(r.cut.value, opt.value + 1e-12);
  // RQAOA should do clearly better than a random cut.
  EXPECT_GT(r.cut.value, g.total_weight() / 2.0);
}

TEST(Rqaoa, SmallGraphGoesStraightToBruteForce) {
  const Graph g = cycle_graph(4);
  FixedAngleInitializer init;
  Rng rng(1);
  RqaoaConfig config;
  config.cutoff = 5;  // larger than the graph
  const RqaoaResult r = run_rqaoa(g, init, config, rng);
  EXPECT_EQ(r.eliminations, 0);
  EXPECT_DOUBLE_EQ(r.cut.value, 4.0);  // exact
}

TEST(Rqaoa, FixedParameterModeUsesOneEvaluationPerRound) {
  Rng rng(11);
  const Graph g = random_regular_graph(9, 4, rng);
  FixedAngleInitializer init;
  RqaoaConfig config;
  config.cutoff = 5;
  config.optimize_each_round = false;
  const RqaoaResult r = run_rqaoa(g, init, config, rng);
  EXPECT_EQ(r.total_evaluations, r.eliminations);
  EXPECT_GT(r.cut.value, 0.0);
}

TEST(SpectralRounding, FindsGoodCuts) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = erdos_renyi_graph(10, 0.4, rng);
    if (g.num_edges() == 0) continue;
    const Cut c = max_cut_spectral_rounding(g, 10, rng);
    const Cut opt = max_cut_brute_force(g);
    EXPECT_DOUBLE_EQ(c.value, cut_value(g, c.assignment));
    EXPECT_LE(c.value, opt.value + 1e-12);
    // Local-search polish guarantees at least a decent local optimum.
    EXPECT_GE(c.value, 0.85 * opt.value);
  }
}

TEST(SpectralRounding, ExactOnBipartite) {
  Rng rng(15);
  const Graph g = random_bipartite_regular_graph(5, 3, rng);
  const Cut c = max_cut_spectral_rounding(g, 8, rng);
  EXPECT_DOUBLE_EQ(c.value, g.total_weight());
}

TEST(SpectralRounding, EdgeCasesAndValidation) {
  Rng rng(17);
  EXPECT_DOUBLE_EQ(max_cut_spectral_rounding(Graph(3), 4, rng).value, 0.0);
  EXPECT_THROW(max_cut_spectral_rounding(cycle_graph(4), 0, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace qgnn
