// Cross-process serialization determinism: every persisted artifact
// (dataset storage, model checkpoint, graph file) must be byte-identical
// across two independent runs of the same program. In-process repeat
// tests cannot catch ASLR-dependent ordering (e.g. iterating an
// unordered_map keyed by pointers), so this test re-executes its own
// binary twice and diffs the emitted trees.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/dataset.hpp"
#include "dataset/packed.hpp"
#include "dataset/storage.hpp"
#include "gnn/model.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace qgnn {
namespace {

namespace fs = std::filesystem;

DatasetGenConfig tiny_dataset_config() {
  DatasetGenConfig config;
  config.num_instances = 5;
  config.max_nodes = 8;
  config.optimizer_evaluations = 40;
  config.seed = 1234;
  return config;
}

/// Worker mode: when QGNN_EMIT_DIR is set, write every serialized artifact
/// kind into that directory. The parent test invokes this via
/// --gtest_filter so no custom main() is needed alongside gtest_main.
TEST(DeterminismEmit, EmitArtifacts) {
  const char* dir_env = std::getenv("QGNN_EMIT_DIR");
  if (dir_env == nullptr) {
    GTEST_SKIP() << "worker mode only (set QGNN_EMIT_DIR)";
  }
  const fs::path dir(dir_env);
  fs::create_directories(dir);

  // Dataset storage: manifest.csv + per-graph text files.
  const auto entries = generate_dataset(tiny_dataset_config());
  ASSERT_EQ(entries.size(), 5u);
  save_dataset((dir / "dataset").string(), entries);

  // Packed binary dataset (single-file format the factory emits).
  save_packed_dataset((dir / "dataset.qds").string(), entries);

  // Model checkpoint (architecture + weights, text format).
  GnnModelConfig model_config;
  model_config.hidden_dim = 8;
  Rng rng(7);
  const GnnModel model(model_config, rng);
  model.save((dir / "model.txt").string());

  // Standalone graph file.
  Rng graph_rng(99);
  save_graph((dir / "graph.txt").string(),
             random_regular_graph(10, 3, graph_rng));
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// All regular files under `root`, as sorted root-relative paths.
std::vector<fs::path> relative_files(const fs::path& root) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) {
      out.push_back(fs::relative(entry.path(), root));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Determinism, SerializedArtifactsByteIdenticalAcrossProcesses) {
  const fs::path self = fs::read_symlink("/proc/self/exe");
  const fs::path base =
      fs::temp_directory_path() /
      ("qgnn_determinism_" + std::to_string(::getpid()));
  fs::remove_all(base);

  std::vector<fs::path> runs;
  for (int i = 0; i < 2; ++i) {
    const fs::path dir = base / ("run" + std::to_string(i));
    const std::string cmd = "QGNN_EMIT_DIR='" + dir.string() + "' '" +
                            self.string() +
                            "' --gtest_filter=DeterminismEmit.EmitArtifacts"
                            " >/dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
    runs.push_back(dir);
  }

  const auto files0 = relative_files(runs[0]);
  const auto files1 = relative_files(runs[1]);
  EXPECT_EQ(files0, files1) << "runs emitted different file sets";
  EXPECT_GE(files0.size(), 9u);  // manifest + 5 graphs + packed + model + graph

  for (const fs::path& rel : files0) {
    EXPECT_EQ(read_bytes(runs[0] / rel), read_bytes(runs[1] / rel))
        << "artifact differs across processes: " << rel;
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace qgnn
