#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/var.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

using ag::Var;

/// Randomized deep-composition gradient checks: build a random chain of
/// SMOOTH ops (no ReLU/max kinks, so central differences are everywhere
/// valid), scalarize, and verify reverse-mode gradients against finite
/// differences. Complements the per-op checks in test_autograd.cpp by
/// exercising long tapes, fan-out, and mixed shapes.

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-1.2, 1.2);
  }
  return m;
}

TEST(AutogradFuzz, DeepSmoothChainsMatchFiniteDifferences) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Structure decided once per seed.
    Rng structure_rng(seed);
    const std::size_t rows = 2 + structure_rng.index(3);
    const std::size_t cols = 2 + structure_rng.index(3);
    const int depth = 3 + structure_rng.uniform_int(0, 3);
    std::vector<int> stage_kinds;
    std::vector<std::size_t> matmul_outs;
    for (int d = 0; d < depth; ++d) {
      const int kind = structure_rng.uniform_int(0, 5);
      stage_kinds.push_back(kind);
      if (kind == 3) matmul_outs.push_back(1 + structure_rng.index(4));
    }

    // Collect inputs: the root plus one leaf per matmul stage.
    Rng data_rng(seed * 77);
    std::vector<Matrix> inputs{random_matrix(rows, cols, data_rng)};
    {
      std::size_t width = cols;
      for (std::size_t k = 0; k < matmul_outs.size(); ++k) {
        inputs.push_back(random_matrix(width, matmul_outs[k], data_rng));
        width = matmul_outs[k];
      }
    }

    auto build = [&](const std::vector<Var>& leaves) {
      Var h = leaves[0];
      std::size_t next_leaf = 1;
      for (int kind : stage_kinds) {
        switch (kind) {
          case 0: h = ag::tanh_op(h); break;
          case 1: h = ag::sigmoid(h); break;
          case 2: h = ag::sin_op(ag::scalar_mul(h, 0.7)); break;
          case 3: h = ag::matmul(h, leaves[next_leaf++]); break;
          case 4: h = ag::mul(h, h); break;
          default: h = ag::scalar_mul(h, -1.3); break;
        }
      }
      return ag::sum_all(ag::tanh_op(h));
    };

    // Analytic gradients.
    std::vector<Var> leaves;
    for (const Matrix& m : inputs) leaves.emplace_back(m, true);
    Var out = build(leaves);
    out.backward();

    auto eval = [&](const std::vector<Matrix>& values) {
      std::vector<Var> ls;
      for (const Matrix& m : values) ls.emplace_back(m, false);
      return build(ls).value()(0, 0);
    };

    const double h = 1e-6;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      for (std::size_t i = 0; i < inputs[k].rows(); ++i) {
        for (std::size_t j = 0; j < inputs[k].cols(); ++j) {
          std::vector<Matrix> probe = inputs;
          probe[k](i, j) += h;
          const double fp = eval(probe);
          probe[k](i, j) -= 2 * h;
          const double fm = eval(probe);
          const double fd = (fp - fm) / (2 * h);
          ASSERT_NEAR(leaves[k].grad()(i, j), fd, 2e-4)
              << "seed " << seed << " input " << k << " (" << i << "," << j
              << ")";
        }
      }
    }
  }
}

TEST(AutogradFuzz, RepeatedBackwardAccumulates) {
  Rng rng(3);
  Var x(random_matrix(2, 2, rng), true);
  Var loss = ag::sum_all(ag::mul(x, x));
  loss.backward();
  const Matrix once = x.grad();
  loss.backward();  // accumulate a second pass through the same tape
  const Matrix twice = x.grad();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(twice(i, j), 2.0 * once(i, j), 1e-12);
    }
  }
}

TEST(AutogradFuzz, LongChainDoesNotOverflowStack) {
  // 3000 chained ops: the iterative topological sort must handle it.
  Var x(Matrix{{0.5}}, true);
  Var h = x;
  for (int i = 0; i < 3000; ++i) h = ag::scalar_mul(h, 1.0001);
  Var out = ag::sum_all(h);
  out.backward();
  EXPECT_GT(x.grad()(0, 0), 1.0);
  EXPECT_TRUE(std::isfinite(x.grad()(0, 0)));
}

}  // namespace
}  // namespace qgnn
