// Networked serving tier tests: NDJSON framing (split, coalesced,
// oversized, trailing garbage) on the stdin and TCP paths, transport
// bit-identity, the consistent-hash shard router (disjoint caches,
// stable assignment), SLO load shedding, and graceful drain.
//
// This binary provides its own main(): ShardProcess re-executes
// /proc/self/exe with --shard-worker, so the test binary itself hosts
// the shard workers the router tests spawn.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gnn/layers.hpp"
#include "gnn/model.hpp"
#include "graph/canonical.hpp"
#include "graph/graph.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/shard_worker.hpp"
#include "serve/slo.hpp"
#include "serve/tcp_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace qgnn;
using serve::JsonValue;

// ---------------------------------------------------------------------------
// Helpers

Graph cycle_graph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

std::string cycle_request(int id, int n) {
  std::string edges;
  for (int i = 0; i < n; ++i) {
    if (i > 0) edges += ",";
    edges += "[" + std::to_string(i) + "," + std::to_string((i + 1) % n) +
             "]";
  }
  return "{\"id\":" + std::to_string(id) + ",\"nodes\":" +
         std::to_string(n) + ",\"edges\":[" + edges + "]}";
}

/// Blocking NDJSON client over one TCP connection.
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port)
      : fd_(net::tcp_connect("127.0.0.1", port)) {}

  void send(const std::string& line) { net::write_all(fd_, line + "\n"); }
  void send_raw(const std::string& bytes) { net::write_all(fd_, bytes); }

  std::string recv_line() {
    std::string line;
    EXPECT_TRUE(net::read_line(fd_, carry_, line)) << "connection closed";
    return line;
  }

  /// Read `n` response lines and index them by numeric id.
  std::map<int, JsonValue> recv_by_id(int n) {
    std::map<int, JsonValue> out;
    for (int i = 0; i < n; ++i) {
      JsonValue doc = serve::parse_json(recv_line());
      const JsonValue* id = doc.find("id");
      EXPECT_NE(id, nullptr) << "response without id";
      if (id == nullptr) continue;
      out[static_cast<int>(id->number)] = std::move(doc);
    }
    return out;
  }

 private:
  net::Fd fd_;
  std::string carry_;
};

/// Register the same demo model qgnn_serve --demo and the shard workers
/// build: default GCN config, weights from Rng(42).
void register_demo(serve::ServeHandle& handle) {
  GnnModelConfig model_config;
  Rng rng(42);
  handle.register_model("default", GnnModel(model_config, rng));
}

std::vector<double> values_of(const JsonValue& response) {
  const JsonValue* values = response.find("values");
  EXPECT_NE(values, nullptr);
  std::vector<double> out;
  if (values != nullptr) {
    for (const JsonValue& v : values->array) out.push_back(v.number);
  }
  return out;
}

// ---------------------------------------------------------------------------
// LineFramer

TEST(LineFramer, SplitFeedOneByteAtATime) {
  net::LineFramer framer;
  std::vector<std::string> lines;
  const std::string input = "{\"a\":1}\n{\"b\":2}\n";
  for (char c : input) {
    framer.feed(&c, 1, [&](std::string&& l) { lines.push_back(l); },
                [](std::size_t) { FAIL() << "unexpected overflow"; });
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}"}));
  EXPECT_EQ(framer.partial_bytes(), 0u);
}

TEST(LineFramer, CoalescedLinesOneFeed) {
  net::LineFramer framer;
  std::vector<std::string> lines;
  const std::string input = "a\nb\nc\npartial";
  framer.feed(input.data(), input.size(),
              [&](std::string&& l) { lines.push_back(l); },
              [](std::size_t) { FAIL(); });
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(framer.partial_bytes(), 7u);  // trailing garbage, no newline
  EXPECT_EQ(framer.take_partial(), "partial");
  EXPECT_EQ(framer.partial_bytes(), 0u);
}

TEST(LineFramer, CrlfAndBlankLinesDropped) {
  net::LineFramer framer;
  std::vector<std::string> lines;
  const std::string input = "a\r\n\r\n\nb\n";
  framer.feed(input.data(), input.size(),
              [&](std::string&& l) { lines.push_back(l); },
              [](std::size_t) { FAIL(); });
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "b"}));
}

TEST(LineFramer, OversizedLineReportedOnceAndRecovers) {
  net::LineFramer framer(8);
  std::vector<std::string> lines;
  int overflows = 0;
  std::size_t dropped = 0;
  const auto on_line = [&](std::string&& l) { lines.push_back(l); };
  const auto on_overflow = [&](std::size_t d) {
    ++overflows;
    dropped = d;
  };
  // One 20-byte line split across feeds, then a small valid line.
  const std::string big(20, 'x');
  framer.feed(big.data(), 10, on_line, on_overflow);
  EXPECT_TRUE(framer.discarding());
  framer.feed(big.data() + 10, 10, on_line, on_overflow);
  const std::string rest = "\nok\n";
  framer.feed(rest.data(), rest.size(), on_line, on_overflow);
  EXPECT_EQ(overflows, 1);  // reported once, not per feed
  EXPECT_GE(dropped, 8u);
  EXPECT_FALSE(framer.discarding());
  EXPECT_EQ(lines, (std::vector<std::string>{"ok"}));
}

// ---------------------------------------------------------------------------
// stdin path framing

TEST(StdinServer, OversizedLineAnswersCleanErrorAndResumes) {
  serve::ServeHandle handle;
  register_demo(handle);
  std::istringstream in(std::string(512, 'x') + "\n" +
                        cycle_request(7, 4) + "\n");
  std::ostringstream out;
  const std::size_t handled =
      serve::run_ndjson_server(in, out, handle, 1, /*max_line_bytes=*/128);
  EXPECT_EQ(handled, 2u);
  std::istringstream responses(out.str());
  std::string first;
  std::string second;
  ASSERT_TRUE(std::getline(responses, first));
  ASSERT_TRUE(std::getline(responses, second));
  EXPECT_NE(first.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(first.find("exceeds"), std::string::npos);
  const JsonValue doc = serve::parse_json(second);
  EXPECT_TRUE(doc.find("ok")->boolean);
  EXPECT_EQ(static_cast<int>(doc.find("id")->number), 7);
}

TEST(StdinServer, FinalUnterminatedLineIsProcessed) {
  serve::ServeHandle handle;
  register_demo(handle);
  // No trailing newline on the last request: getline parity.
  std::istringstream in(cycle_request(1, 4) + "\n" + cycle_request(2, 5));
  std::ostringstream out;
  const std::size_t handled = serve::run_ndjson_server(in, out, handle, 1);
  EXPECT_EQ(handled, 2u);
  EXPECT_EQ(handle.stats().requests, 2u);
}

// ---------------------------------------------------------------------------
// TCP path framing

TEST(TcpService, SplitWritesAndPipelinedReads) {
  serve::ServeHandle handle;
  register_demo(handle);
  serve::NdjsonTcpService service(handle, {});
  service.start();
  TcpClient client(service.port());

  // One request split into three raw writes.
  const std::string req = cycle_request(1, 4) + "\n";
  client.send_raw(req.substr(0, 5));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  client.send_raw(req.substr(5, 9));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  client.send_raw(req.substr(14));
  const JsonValue split_resp = serve::parse_json(client.recv_line());
  EXPECT_TRUE(split_resp.find("ok")->boolean);
  EXPECT_EQ(static_cast<int>(split_resp.find("id")->number), 1);

  // Many requests coalesced into one write (pipelining).
  std::string burst;
  for (int id = 10; id < 20; ++id) burst += cycle_request(id, 4 + id % 5) + "\n";
  client.send_raw(burst);
  std::map<int, JsonValue> responses;
  client.recv_by_id(10).swap(responses);
  ASSERT_EQ(responses.size(), 10u);
  for (int id = 10; id < 20; ++id) {
    ASSERT_TRUE(responses.count(id)) << "missing response " << id;
    EXPECT_TRUE(responses[id].find("ok")->boolean);
  }
  EXPECT_TRUE(service.graceful_shutdown());
  handle.drain_submits();
}

TEST(TcpService, OversizedLineKeepsConnectionAlive) {
  serve::ServeHandle handle;
  register_demo(handle);
  serve::TcpServiceConfig config;
  config.net.max_line_bytes = 256;
  serve::NdjsonTcpService service(handle, config);
  service.start();
  TcpClient client(service.port());

  client.send(std::string(600, 'y'));
  const std::string error_line = client.recv_line();
  EXPECT_NE(error_line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(error_line.find("exceeds"), std::string::npos);

  // The stream resumed at the next newline; the connection still works.
  client.send(cycle_request(3, 5));
  const JsonValue resp = serve::parse_json(client.recv_line());
  EXPECT_TRUE(resp.find("ok")->boolean);
  EXPECT_EQ(static_cast<int>(resp.find("id")->number), 3);
  EXPECT_EQ(service.net_stats().oversized_lines, 1u);
  EXPECT_TRUE(service.graceful_shutdown());
  handle.drain_submits();
}

TEST(TcpService, ControlCommandsAndStatsSubObjects) {
  serve::ServeHandle handle;
  register_demo(handle);
  serve::NdjsonTcpService service(handle, {});
  service.start();
  TcpClient client(service.port());

  client.send("{\"cmd\":\"ping\",\"id\":1}");
  const JsonValue pong = serve::parse_json(client.recv_line());
  EXPECT_TRUE(pong.find("pong")->boolean);

  client.send("{\"cmd\":\"stats\",\"id\":2}");
  const JsonValue stats = serve::parse_json(client.recv_line());
  const JsonValue* body = stats.find("stats");
  ASSERT_NE(body, nullptr);
  EXPECT_NE(body->find("net"), nullptr);   // TCP front end extras
  EXPECT_NE(body->find("slo"), nullptr);
  EXPECT_GE(body->find("net")->find("lines_in")->number, 2.0);
  EXPECT_TRUE(service.graceful_shutdown());
  handle.drain_submits();
}

// ---------------------------------------------------------------------------
// Transport bit-identity

TEST(TcpService, BitIdenticalToInProcessPredictions) {
  serve::ServeHandle direct;
  register_demo(direct);
  serve::ServeHandle served;
  register_demo(served);
  serve::NdjsonTcpService service(served, {});
  service.start();
  TcpClient client(service.port());

  for (int n = 4; n <= 9; ++n) {
    client.send(cycle_request(n, n));
    const JsonValue resp = serve::parse_json(client.recv_line());
    ASSERT_TRUE(resp.find("ok")->boolean);
    const std::vector<double> wire = values_of(resp);
    const serve::Prediction p = direct.predict(cycle_graph(n));
    ASSERT_EQ(wire.size(), static_cast<std::size_t>(p.values.cols()));
    for (std::size_t j = 0; j < wire.size(); ++j) {
      // Exact equality: shortest-round-trip serialization plus identical
      // compute paths make the transports bit-identical.
      EXPECT_EQ(wire[j], p.values(0, static_cast<int>(j)))
          << "n=" << n << " j=" << j;
    }
  }
  EXPECT_TRUE(service.graceful_shutdown());
  served.drain_submits();
}

TEST(TcpService, InlineCacheHitIsBitIdenticalAndCounted) {
  serve::ServeHandle handle;  // default config: cache enabled
  register_demo(handle);
  serve::NdjsonTcpService service(handle, {});
  service.start();
  TcpClient client(service.port());

  // Sequential round trips so the first response's cache insert lands
  // before the second request is parsed.
  client.send(cycle_request(1, 6));
  const JsonValue miss = serve::parse_json(client.recv_line());
  client.send(cycle_request(2, 6));
  const JsonValue hit = serve::parse_json(client.recv_line());

  ASSERT_TRUE(miss.find("ok")->boolean);
  ASSERT_TRUE(hit.find("ok")->boolean);
  EXPECT_FALSE(miss.find("cached")->boolean);
  EXPECT_TRUE(hit.find("cached")->boolean);  // answered on the loop thread
  EXPECT_EQ(values_of(miss), values_of(hit));
  const serve::ServeStats stats = handle.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_TRUE(service.graceful_shutdown());
  handle.drain_submits();
}

// ---------------------------------------------------------------------------
// Consistent-hash ring

TEST(Router, RingAssignmentStableAndBalanced) {
  serve::RouterConfig config;
  std::vector<serve::ShardAddress> addrs(4);
  serve::ShardRouter router(config, addrs);  // never started: ring only

  std::map<std::size_t, int> load;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t hash = derive_seed(7, static_cast<std::uint64_t>(i));
    const std::size_t shard = router.shard_for_hash(hash);
    EXPECT_EQ(router.shard_for_hash(hash), shard);  // deterministic
    ++load[shard];
  }
  ASSERT_EQ(load.size(), 4u);  // every shard owns part of the key space
  for (const auto& [shard, count] : load) {
    // 64 vnodes/shard keeps the imbalance modest; generous bounds so the
    // test pins behavior, not the exact hash layout.
    EXPECT_GT(count, 4096 / 16) << "shard " << shard << " starved";
  }
}

TEST(Router, IsomorphicGraphsShareAShard) {
  serve::RouterConfig config;
  std::vector<serve::ShardAddress> addrs(3);
  serve::ShardRouter router(config, addrs);
  // Relabelled cycles are isomorphic, so their canonical hashes match and
  // the ring sends them to the same shard's cache.
  Graph a(5);
  for (int i = 0; i < 5; ++i) a.add_edge(i, (i + 1) % 5);
  Graph b(5);
  b.add_edge(2, 4);
  b.add_edge(4, 1);
  b.add_edge(1, 3);
  b.add_edge(3, 0);
  b.add_edge(0, 2);
  EXPECT_EQ(canonical_hash(a), canonical_hash(b));
  EXPECT_EQ(router.shard_for_hash(canonical_hash(a)),
            router.shard_for_hash(canonical_hash(b)));
}

// ---------------------------------------------------------------------------
// Sharded serving end to end

TEST(Router, TwoShardsDisjointCachesAndBitIdentity) {
  serve::ShardWorkerOptions worker;  // defaults mirror make_demo_handle
  std::vector<serve::ShardProcess> procs;
  std::vector<serve::ShardAddress> addrs;
  for (int i = 0; i < 2; ++i) {
    procs.push_back(serve::ShardProcess::spawn(worker));
    addrs.push_back({"127.0.0.1", procs.back().port()});
  }
  serve::RouterConfig config;
  serve::ShardRouter router(config, addrs);
  router.start();
  TcpClient client(router.port());

  const int kDistinct = 8;  // cycles n=4..11
  // Sweep 1: every graph is new — one cache miss on its owning shard.
  for (int k = 0; k < kDistinct; ++k) client.send(cycle_request(k, 4 + k));
  std::map<int, JsonValue> sweep1;
  client.recv_by_id(kDistinct).swap(sweep1);
  ASSERT_EQ(sweep1.size(), static_cast<std::size_t>(kDistinct));

  // Bit-identity: router responses match the in-process handle exactly.
  serve::ServeHandle direct;
  register_demo(direct);
  for (int k = 0; k < kDistinct; ++k) {
    ASSERT_TRUE(sweep1[k].find("ok")->boolean) << "request " << k;
    const std::vector<double> wire = values_of(sweep1[k]);
    const serve::Prediction p = direct.predict(cycle_graph(4 + k));
    ASSERT_EQ(wire.size(), static_cast<std::size_t>(p.values.cols()));
    for (std::size_t j = 0; j < wire.size(); ++j) {
      EXPECT_EQ(wire[j], p.values(0, static_cast<int>(j))) << "k=" << k;
    }
  }

  // Sweep 2: the same graphs — all hits, each on the same shard as before.
  for (int k = 0; k < kDistinct; ++k) {
    client.send(cycle_request(100 + k, 4 + k));
  }
  std::map<int, JsonValue> sweep2;
  client.recv_by_id(kDistinct).swap(sweep2);

  client.send("{\"cmd\":\"stats\",\"id\":999}");
  const JsonValue stats = serve::parse_json(client.recv_line());
  const JsonValue* body = stats.find("stats");
  ASSERT_NE(body, nullptr);
  const JsonValue* shards = body->find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->array.size(), 2u);

  double total_misses = 0;
  double total_hits = 0;
  double total_routed = 0;
  for (const JsonValue& entry : shards->array) {
    EXPECT_TRUE(entry.find("healthy")->boolean);
    const JsonValue* shard_stats = entry.find("stats");
    ASSERT_NE(shard_stats, nullptr);
    ASSERT_TRUE(shard_stats->is_object()) << "shard did not answer stats";
    total_misses += shard_stats->find("cache_misses")->number;
    total_hits += shard_stats->find("cache_hits")->number;
    total_routed += entry.find("routed")->number;
  }
  // Disjoint key spaces: each distinct graph missed exactly once across
  // the whole tier, and the repeat sweep hit the owner's cache.
  EXPECT_EQ(total_misses, kDistinct);
  EXPECT_EQ(total_hits, kDistinct);
  EXPECT_EQ(total_routed, 2.0 * kDistinct);
  EXPECT_GE(body->find("router")->find("admitted")->number,
            2.0 * kDistinct);

  EXPECT_TRUE(router.graceful_shutdown());
  for (auto& p : procs) p.terminate();
}

TEST(Router, DrainRoutesAroundShardAndHealthReports) {
  serve::ShardWorkerOptions worker;
  std::vector<serve::ShardProcess> procs;
  std::vector<serve::ShardAddress> addrs;
  for (int i = 0; i < 2; ++i) {
    procs.push_back(serve::ShardProcess::spawn(worker));
    addrs.push_back({"127.0.0.1", procs.back().port()});
  }
  serve::RouterConfig config;
  serve::ShardRouter router(config, addrs);
  router.start();
  TcpClient client(router.port());

  client.send("{\"cmd\":\"drain\",\"shard\":0,\"id\":1}");
  const JsonValue ack = serve::parse_json(client.recv_line());
  EXPECT_TRUE(ack.find("ok")->boolean);

  // With shard 0 draining, every request spills to shard 1.
  for (int k = 0; k < 6; ++k) client.send(cycle_request(k, 4 + k));
  std::map<int, JsonValue> responses;
  client.recv_by_id(6).swap(responses);
  for (int k = 0; k < 6; ++k) EXPECT_TRUE(responses[k].find("ok")->boolean);

  client.send("{\"cmd\":\"health\",\"id\":2}");
  const JsonValue health = serve::parse_json(client.recv_line());
  const JsonValue* shards = health.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->array.size(), 2u);
  EXPECT_TRUE(shards->array[0].find("draining")->boolean);
  EXPECT_EQ(shards->array[0].find("routed")->number, 0.0);
  EXPECT_EQ(shards->array[1].find("routed")->number, 6.0);

  client.send("{\"cmd\":\"undrain\",\"shard\":0,\"id\":3}");
  EXPECT_TRUE(serve::parse_json(client.recv_line()).find("ok")->boolean);

  EXPECT_TRUE(router.graceful_shutdown());
  for (auto& p : procs) p.terminate();
}

// ---------------------------------------------------------------------------
// SLO load shedding

TEST(Slo, ControllerShedsOnBreachAndRecoversWithHysteresis) {
  serve::SloConfig config;
  config.slo_us = 1000.0;
  config.min_samples = 4;
  config.refresh = std::chrono::milliseconds(0);  // refresh every check
  config.window = std::chrono::milliseconds(10000);
  serve::SloController slo(config);
  EXPECT_FALSE(slo.should_shed());  // cold start: under min_samples

  for (int i = 0; i < 8; ++i) slo.record_queue_wait(5000.0);
  EXPECT_TRUE(slo.should_shed());
  EXPECT_TRUE(slo.shedding());
  EXPECT_GT(slo.windowed_p99_us(), 1000.0);

  // Recovery requires dropping below resume_fraction * slo, not just
  // below slo: flood the window with fast samples.
  for (int i = 0; i < 2000; ++i) slo.record_queue_wait(10.0);
  EXPECT_FALSE(slo.should_shed());
  EXPECT_FALSE(slo.shedding());
}

TEST(Slo, DisabledControllerNeverSheds) {
  serve::SloController slo(serve::SloConfig{});
  for (int i = 0; i < 100; ++i) slo.record_queue_wait(1e9);
  EXPECT_FALSE(slo.should_shed());
}

TEST(Slo, TcpServiceShedsUnderOverloadRejectPolicy) {
  serve::ServeConfig serve_config;
  serve_config.submit_workers = 1;  // throttle the consumer
  serve_config.cache_capacity = 0;  // hits bypass admission; force misses
  serve::ServeHandle handle(serve_config);
  register_demo(handle);
  serve::TcpServiceConfig config;
  config.slo.slo_us = 50.0;  // 50us queue-wait p99: trivially breached
  config.slo.min_samples = 4;
  config.slo.refresh = std::chrono::milliseconds(0);
  serve::NdjsonTcpService service(handle, config);
  service.start();
  TcpClient client(service.port());

  // Burst 1 initially races admission (samples only exist once workers
  // pop jobs); its queue waits feed the window, and its own tail may
  // already get shed. Burst 2 then arrives with the window breached.
  const int kBurst = 32;
  int ok = 0;
  int shed = 0;
  int burst2_shed = 0;
  for (int burst = 0; burst < 2; ++burst) {
    std::string lines;
    for (int i = 0; i < kBurst; ++i) {
      const int id = burst * 100 + i;
      lines += cycle_request(id, 4 + i % 12) + "\n";
    }
    client.send_raw(lines);
    std::map<int, JsonValue> responses;
    client.recv_by_id(kBurst).swap(responses);
    for (auto& [id, doc] : responses) {
      if (doc.find("ok")->boolean) {
        ++ok;
      } else {
        const JsonValue* is_shed = doc.find("shed");
        ASSERT_NE(is_shed, nullptr) << "non-shed failure: " << id;
        EXPECT_TRUE(doc.find("retriable")->boolean);
        ++shed;
        if (burst == 1) ++burst2_shed;
      }
    }
  }
  EXPECT_GT(burst2_shed, 0) << "breached window never shed burst 2";
  EXPECT_GT(ok, 0) << "admission never let anything through";
  EXPECT_EQ(service.slo_counters().shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(service.slo_counters().admitted, static_cast<std::uint64_t>(ok));
  EXPECT_TRUE(service.graceful_shutdown());
  handle.drain_submits();
}

TEST(Slo, DegradePolicyAnswersWithFixedAngles) {
  serve::ServeConfig serve_config;
  serve_config.submit_workers = 1;
  serve_config.cache_capacity = 0;  // hits bypass admission; force misses
  serve::ServeHandle handle(serve_config);
  register_demo(handle);
  serve::TcpServiceConfig config;
  config.slo.slo_us = 50.0;
  config.slo.policy = serve::ShedPolicy::kDegrade;
  config.slo.min_samples = 4;
  config.slo.refresh = std::chrono::milliseconds(0);
  serve::NdjsonTcpService service(handle, config);
  service.start();
  TcpClient client(service.port());

  // Same two-burst shape as the reject-policy test: burst 1 populates
  // the queue-wait window (its own tail may already degrade), burst 2
  // is served degraded.
  const int kBurst = 32;
  int degraded = 0;
  int burst2_degraded = 0;
  for (int burst = 0; burst < 2; ++burst) {
    std::string lines;
    for (int i = 0; i < kBurst; ++i) {
      const int id = burst * 100 + i;
      lines += cycle_request(id, 4 + i % 12) + "\n";
    }
    client.send_raw(lines);
    std::map<int, JsonValue> responses;
    client.recv_by_id(kBurst).swap(responses);
    for (auto& [id, doc] : responses) {
      ASSERT_TRUE(doc.find("ok")->boolean) << "degrade mode never rejects";
      if (doc.find("degraded") != nullptr) {
        EXPECT_EQ(doc.find("model")->string, "fixed_angles");
        EXPECT_EQ(values_of(doc).size(), 2u);  // depth-1: [gamma, beta]
        ++degraded;
        if (burst == 1) ++burst2_degraded;
      }
    }
  }
  EXPECT_GT(burst2_degraded, 0) << "breached window never degraded burst 2";
  EXPECT_EQ(service.slo_counters().degraded,
            static_cast<std::uint64_t>(degraded));
  EXPECT_TRUE(service.graceful_shutdown());
  handle.drain_submits();
}

// ---------------------------------------------------------------------------
// Async submit path

TEST(TrySubmit, CompletesAndMatchesBlockingPredict) {
  serve::ServeHandle handle;
  register_demo(handle);
  const Graph g = cycle_graph(6);
  const serve::Prediction blocking = handle.predict(g);

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  serve::Prediction async_p;
  ASSERT_TRUE(handle.try_submit(
      g, [&](serve::Prediction p, std::exception_ptr error) {
        EXPECT_EQ(error, nullptr);
        std::lock_guard<std::mutex> lk(mutex);
        async_p = std::move(p);
        done = true;
        cv.notify_one();
      }));
  std::unique_lock<std::mutex> lk(mutex);
  cv.wait(lk, [&] { return done; });
  ASSERT_EQ(async_p.values.cols(), blocking.values.cols());
  for (int j = 0; j < async_p.values.cols(); ++j) {
    EXPECT_EQ(async_p.values(0, j), blocking.values(0, j));
  }
  handle.drain_submits();
}

TEST(TrySubmit, FullQueueRejectsInsteadOfBlocking) {
  serve::ServeConfig config;
  config.submit_workers = 1;
  config.submit_queue_cap = 2;
  serve::ServeHandle handle(config);
  register_demo(handle);

  std::atomic<int> completed{0};
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    const bool queued = handle.try_submit(
        cycle_graph(4 + i % 12),
        [&](serve::Prediction, std::exception_ptr) { ++completed; });
    if (!queued) ++rejected;
  }
  handle.drain_submits();
  EXPECT_GT(rejected, 0) << "cap=2 must reject under a 64-request burst";
  EXPECT_EQ(completed.load() + rejected, 64);
}

TEST(TrySubmit, UnknownModelReportsErrorThroughCallback) {
  serve::ServeHandle handle;
  register_demo(handle);
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr seen;
  ASSERT_TRUE(handle.try_submit(
      "no-such-model", cycle_graph(4),
      [&](serve::Prediction, std::exception_ptr error) {
        std::lock_guard<std::mutex> lk(mutex);
        seen = error;
        done = true;
        cv.notify_one();
      }));
  std::unique_lock<std::mutex> lk(mutex);
  cv.wait(lk, [&] { return done; });
  EXPECT_NE(seen, nullptr);
  handle.drain_submits();
}

}  // namespace

int main(int argc, char** argv) {
  // Router tests spawn shard workers by re-executing this binary.
  qgnn::serve::maybe_run_shard_worker(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
