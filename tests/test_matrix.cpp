#include <gtest/gtest.h>

#include <cmath>

#include "autograd/matrix.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_THROW(m(2, 0), InvalidArgument);
  EXPECT_THROW(m(0, 3), InvalidArgument);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), InvalidArgument);
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 0), 33.0);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 1), 18.0);
  Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 1), 8.0);
  Matrix scaled2 = 0.5 * b;
  EXPECT_DOUBLE_EQ(scaled2(0, 0), 5.0);
  EXPECT_THROW(a + Matrix(3, 3), InvalidArgument);
}

TEST(Matrix, MatmulKnownResult) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
  EXPECT_THROW(a.matmul(a), InvalidArgument);
}

TEST(Matrix, IdentityIsMatmulNeutral) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE(a.matmul(Matrix::identity(2)).approx_equal(a));
  EXPECT_TRUE(Matrix::identity(2).matmul(a).approx_equal(a));
}

TEST(Matrix, TransposeInvolution) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.transposed().approx_equal(a));
}

TEST(Matrix, TransposeDistributesOverMatmul) {
  Rng rng(3);
  Matrix a = Matrix::random_uniform(3, 4, -1, 1, rng);
  Matrix b = Matrix::random_uniform(4, 2, -1, 1, rng);
  // (AB)^T == B^T A^T.
  EXPECT_TRUE(a.matmul(b).transposed().approx_equal(
      b.transposed().matmul(a.transposed()), 1e-12));
}

TEST(Matrix, Hadamard) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 0.5}, {1, 0.25}};
  Matrix h = a.hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(1, 1), 1.0);
}

TEST(Matrix, Reductions) {
  Matrix a{{1, -2}, {3, -4}};
  EXPECT_DOUBLE_EQ(a.sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.mean(), -0.5);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_NEAR(a.norm(), std::sqrt(1.0 + 4.0 + 9.0 + 16.0), 1e-12);
  EXPECT_THROW(Matrix().mean(), InvalidArgument);
}

TEST(Matrix, MapAndFill) {
  Matrix a{{1, 4}, {9, 16}};
  Matrix r = a.map([](double v) { return std::sqrt(v); });
  EXPECT_DOUBLE_EQ(r(1, 0), 3.0);
  a.fill(7.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 7.0);
}

TEST(Matrix, XavierWithinLimit) {
  Rng rng(1);
  Matrix w = Matrix::xavier_uniform(20, 30, rng);
  const double limit = std::sqrt(6.0 / 50.0);
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      EXPECT_LE(std::abs(w(i, j)), limit);
    }
  }
  // Not all zero.
  EXPECT_GT(w.max_abs(), 0.0);
}

TEST(Matrix, ApproxEqualToleranceAndShape) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-12}};
  EXPECT_TRUE(a.approx_equal(b, 1e-9));
  EXPECT_FALSE(a.approx_equal(b, 1e-15));
  EXPECT_FALSE(a.approx_equal(Matrix(1, 2)));
}

TEST(Matrix, ToStringContainsEntries) {
  Matrix a{{1.25, -0.5}};
  const std::string s = a.to_string(2);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("-0.50"), std::string::npos);
}

TEST(Matrix, ZerosOnes) {
  EXPECT_DOUBLE_EQ(Matrix::zeros(2, 2).sum(), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::ones(2, 3).sum(), 6.0);
}

TEST(Matrix, TiledMatmulBitIdenticalToNaiveTripleLoop) {
  // Shapes chosen to straddle the kTileJ/kTileK cache tiles (including
  // partial edge tiles) plus degenerate vectors. Sprinkled exact zeros
  // confirm dropping the sparsity branch changed no result.
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 70, 2},   {17, 64, 256},
                                   {70, 65, 300}, {128, 1, 257}, {5, 300, 70}};
  std::uint64_t lcg = 12345;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(lcg >> 11) / 9007199254740992.0;  // [0, 1)
    return u < 0.2 ? 0.0 : (u - 0.5) * 4.0;
  };
  for (const auto& shape : shapes) {
    const std::size_t r = shape[0], inner = shape[1], c = shape[2];
    Matrix a(r, inner);
    Matrix b(inner, c);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t k = 0; k < inner; ++k) a(i, k) = next();
    }
    for (std::size_t k = 0; k < inner; ++k) {
      for (std::size_t j = 0; j < c; ++j) b(k, j) = next();
    }
    const Matrix got = a.matmul(b);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < inner; ++k) acc += a(i, k) * b(k, j);
        EXPECT_EQ(got(i, j), acc) << "(" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace qgnn
