// Closed-loop hard-example mining (src/mine, DESIGN.md §12) plus the
// infrastructure it rides on: hardened GnnModel::save, the resumable
// trainer checkpoint, the mining buffer, the relabel job, the eval gate,
// and the end-to-end serve -> mine -> relabel -> fine-tune -> gate ->
// hot-swap loop with rollback.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dataset/factory.hpp"
#include "dataset/features.hpp"
#include "dataset/packed.hpp"
#include "gnn/checkpoint.hpp"
#include "gnn/model.hpp"
#include "gnn/trainer.hpp"
#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "mine/gate.hpp"
#include "mine/miner.hpp"
#include "mine/mining_buffer.hpp"
#include "mine/relabel.hpp"
#include "mine/serve_hook.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {
namespace {

namespace fs = std::filesystem;

fs::path temp_path(const std::string& name) {
  return fs::temp_directory_path() /
         ("qgnn_mine_" + std::to_string(::getpid()) + "_" + name);
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

GnnModel make_model(std::uint64_t seed) {
  GnnModelConfig config;
  Rng rng(seed);
  return GnnModel(config, rng);
}

/// Structurally distinct 3-regular graphs: the buffer dedups by the
/// isomorphism-invariant canonical hash, so repeated draws from a small
/// (n, d) family collapse to a handful of classes. Drawing from n in
/// {10, 12, 14} (dozens to thousands of classes each) and rejecting
/// hash collisions yields `count` pairwise non-isomorphic graphs that
/// still share one structural family — so a model fine-tuned on some of
/// them generalises to the held-out rest.
std::vector<Graph> distinct_structure_graphs(std::uint64_t seed,
                                             std::size_t count) {
  Rng rng(seed);
  std::vector<Graph> graphs;
  std::set<std::uint64_t> hashes;
  const int sizes[] = {10, 12, 14};
  std::size_t draw = 0;
  while (graphs.size() < count) {
    const int n = sizes[draw++ % 3];
    Graph g = random_regular_graph(n, 3, rng);
    if (hashes.insert(canonical_hash(g)).second) {
      graphs.push_back(std::move(g));
    }
  }
  return graphs;
}

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "mismatch at (" << i << "," << j << ")";
    }
  }
}

/// Restores the global pool size on scope exit.
struct PoolSizeGuard {
  ~PoolSizeGuard() {
    ThreadPool::set_global_threads(ThreadPool::configured_threads());
  }
};

// ---- satellite: hardened model save/load --------------------------------

TEST(ModelSave, WritesCrcTrailerAtomicallyAndRoundTrips) {
  const fs::path path = temp_path("model_roundtrip.txt");
  const GnnModel model = make_model(3);
  model.save(path.string());

  EXPECT_FALSE(fs::exists(path.string() + ".tmp"))
      << "temp file must not survive a successful save";
  const std::string bytes = read_bytes(path);
  EXPECT_NE(bytes.find("\ncrc32 "), std::string::npos)
      << "saved model must carry a CRC trailer";

  const GnnModel loaded = GnnModel::load(path.string());
  Rng rng(9);
  const Graph g = random_regular_graph(8, 3, rng);
  expect_bit_identical(model.predict(g), loaded.predict(g));
  fs::remove(path);
}

TEST(ModelSave, TruncatedFileRejected) {
  const fs::path path = temp_path("model_truncated.txt");
  make_model(3).save(path.string());
  const std::string bytes = read_bytes(path);
  write_bytes(path, bytes.substr(0, bytes.size() * 4 / 5));
  EXPECT_THROW(GnnModel::load(path.string()), IoError);
  fs::remove(path);
}

TEST(ModelSave, GarbledWeightByteRejected) {
  const fs::path path = temp_path("model_garbled.txt");
  make_model(3).save(path.string());
  std::string bytes = read_bytes(path);
  // Flip one digit in the middle of the weight block.
  const std::size_t pos = bytes.size() / 2;
  std::size_t flip = bytes.find_first_of("0123456789", pos);
  ASSERT_NE(flip, std::string::npos);
  bytes[flip] = bytes[flip] == '7' ? '3' : '7';
  write_bytes(path, bytes);
  EXPECT_THROW(GnnModel::load(path.string()), IoError);
  fs::remove(path);
}

TEST(ModelSave, MalformedCrcTrailerRejected) {
  const fs::path path = temp_path("model_badtrailer.txt");
  make_model(3).save(path.string());
  std::string bytes = read_bytes(path);
  const std::size_t trailer = bytes.rfind("crc32 ");
  ASSERT_NE(trailer, std::string::npos);
  bytes = bytes.substr(0, trailer) + "crc32 notanumber\n";
  write_bytes(path, bytes);
  EXPECT_THROW(GnnModel::load(path.string()), IoError);
  fs::remove(path);
}

TEST(ModelSave, FileWithoutTrailerRejected) {
  // A file truncated exactly at the trailer boundary parses cleanly, so
  // the loader must treat a missing trailer as truncation, not as a
  // legacy format.
  const fs::path path = temp_path("model_legacy.txt");
  make_model(3).save(path.string());
  const std::string bytes = read_bytes(path);
  const std::size_t trailer = bytes.rfind("crc32 ");
  ASSERT_NE(trailer, std::string::npos);
  write_bytes(path, bytes.substr(0, trailer));
  try {
    GnnModel::load(path.string());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("trailer"), std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

// ---- trainer checkpoint format ------------------------------------------

TrainCheckpoint sample_checkpoint() {
  TrainCheckpoint ck;
  ck.fingerprint = 0x1234abcd5678ef01ULL;
  ck.next_epoch = 7;
  std::ostringstream engine;
  engine << std::mt19937_64(99);
  ck.rng_state = engine.str();
  ck.order = {3, 1, 4, 1, 5, 9, 2, 6};
  ck.learning_rate = 2.5e-3;
  Matrix w(2, 3);
  w(0, 0) = 1.5;
  w(1, 2) = -0.25;
  ck.weights = {w};
  ck.adam.m = {w};
  ck.adam.v = {w};
  ck.adam.t = 41;
  ck.plateau.best = 0.125;
  ck.plateau.bad_epochs = 2;
  ck.plateau.reductions = 1;
  ck.best_validation_loss = 0.5;
  ck.bad_epochs = 1;
  ck.best_epoch = 5;
  ck.best_weights = {w};
  EpochStats e;
  e.epoch = 6;
  e.train_loss = 0.75;
  e.validation_loss = 0.5;
  e.learning_rate = 2.5e-3;
  ck.epochs = {e};
  return ck;
}

TEST(TrainCheckpointFormat, RoundTripsExactly) {
  const fs::path path = temp_path("ckpt_roundtrip.ckpt");
  const TrainCheckpoint ck = sample_checkpoint();
  save_train_checkpoint(path.string(), ck);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));

  const TrainCheckpoint back = load_train_checkpoint(path.string());
  EXPECT_EQ(back.fingerprint, ck.fingerprint);
  EXPECT_EQ(back.next_epoch, ck.next_epoch);
  EXPECT_EQ(back.rng_state, ck.rng_state);
  EXPECT_EQ(back.order, ck.order);
  EXPECT_EQ(back.learning_rate, ck.learning_rate);
  ASSERT_EQ(back.weights.size(), 1u);
  expect_bit_identical(back.weights[0], ck.weights[0]);
  expect_bit_identical(back.adam.m[0], ck.adam.m[0]);
  expect_bit_identical(back.adam.v[0], ck.adam.v[0]);
  EXPECT_EQ(back.adam.t, ck.adam.t);
  EXPECT_EQ(back.plateau.best, ck.plateau.best);
  EXPECT_EQ(back.plateau.bad_epochs, ck.plateau.bad_epochs);
  EXPECT_EQ(back.plateau.reductions, ck.plateau.reductions);
  EXPECT_EQ(back.best_validation_loss, ck.best_validation_loss);
  EXPECT_EQ(back.bad_epochs, ck.bad_epochs);
  EXPECT_EQ(back.best_epoch, ck.best_epoch);
  ASSERT_EQ(back.epochs.size(), 1u);
  EXPECT_EQ(back.epochs[0].epoch, ck.epochs[0].epoch);
  EXPECT_EQ(back.epochs[0].train_loss, ck.epochs[0].train_loss);
  fs::remove(path);
}

TEST(TrainCheckpointFormat, CorruptionRejected) {
  const fs::path path = temp_path("ckpt_corrupt.ckpt");
  save_train_checkpoint(path.string(), sample_checkpoint());
  std::string bytes = read_bytes(path);

  std::string flipped = bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  write_bytes(path, flipped);
  EXPECT_THROW(load_train_checkpoint(path.string()), IoError);

  write_bytes(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(load_train_checkpoint(path.string()), IoError);

  write_bytes(path, std::string("qgnnckp9") + bytes.substr(8));
  EXPECT_THROW(load_train_checkpoint(path.string()), IoError);
  fs::remove(path);
}

// ---- satellite: interrupted training resumes byte-identically -----------

std::vector<TrainSample> tiny_train_set() {
  DatasetGenConfig config;
  config.num_instances = 14;
  config.min_nodes = 4;
  config.max_nodes = 8;
  config.optimizer_evaluations = 25;
  config.seed = 77;
  const std::vector<DatasetEntry> entries = generate_dataset(config);
  return to_train_samples(entries, FeatureConfig{});
}

TEST(TrainerCheckpoint, ResumedRunByteIdenticalAtAnyThreadCount) {
  PoolSizeGuard guard;
  const std::vector<TrainSample> samples = tiny_train_set();

  TrainerConfig base;
  base.epochs = 6;
  base.batch_size = 4;
  base.learning_rate = 5e-3;

  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool::set_global_threads(threads);

    // Reference: 6 uninterrupted epochs.
    const fs::path ref_path = temp_path("resume_ref.txt");
    {
      GnnModel model = make_model(7);
      Rng rng(123);
      const TrainReport report = train_gnn(model, samples, base, rng);
      EXPECT_EQ(report.epochs.size(), 6u);
      model.save(ref_path.string());
    }

    // Interrupted: 3 epochs with checkpointing (the state at this point
    // is identical to a 6-epoch run killed after epoch 3), then a fresh
    // process-equivalent resume to the full budget.
    const fs::path ckpt = temp_path("resume.ckpt");
    const fs::path out_path = temp_path("resume_out.txt");
    fs::remove(ckpt);
    {
      GnnModel model = make_model(7);
      Rng rng(123);
      TrainerConfig half = base;
      half.epochs = 3;
      half.checkpoint.path = ckpt.string();
      train_gnn(model, samples, half, rng);
      ASSERT_TRUE(fs::exists(ckpt));
    }
    {
      GnnModel model = make_model(7);
      Rng rng(123);
      TrainerConfig full = base;
      full.checkpoint.path = ckpt.string();
      full.checkpoint.resume = true;
      const TrainReport report = train_gnn(model, samples, full, rng);
      EXPECT_EQ(report.epochs.size(), 6u)
          << "resumed run must keep the pre-interruption epoch history";
      model.save(out_path.string());
    }

    EXPECT_EQ(read_bytes(ref_path), read_bytes(out_path))
        << "resumed weights drifted from the uninterrupted run";
    fs::remove(ref_path);
    fs::remove(out_path);
    fs::remove(ckpt);
  }
}

TEST(TrainerCheckpoint, MismatchedRunRejected) {
  const std::vector<TrainSample> samples = tiny_train_set();
  const fs::path ckpt = temp_path("mismatch.ckpt");
  fs::remove(ckpt);

  TrainerConfig config;
  config.epochs = 2;
  config.checkpoint.path = ckpt.string();
  {
    GnnModel model = make_model(7);
    Rng rng(123);
    train_gnn(model, samples, config, rng);
  }
  // Same checkpoint, different learning rate -> different run.
  GnnModel model = make_model(7);
  Rng rng(123);
  TrainerConfig other = config;
  other.learning_rate = 9e-3;
  other.checkpoint.resume = true;
  EXPECT_THROW(train_gnn(model, samples, other, rng), Error);
  fs::remove(ckpt);
}

// ---- mining buffer ------------------------------------------------------

serve::Prediction fake_prediction(double ar, bool verified,
                                  bool cache_hit = false) {
  serve::Prediction p;
  p.values = Matrix(1, 2);
  p.values(0, 0) = 0.4;
  p.values(0, 1) = 0.2;
  p.approximation_ratio = ar;
  p.ar_verified = verified;
  p.cache_hit = cache_hit;
  return p;
}

TEST(MiningBuffer, MinesLowArDedupsAndBoundsTheRing) {
  mine::MiningConfig config;
  config.ar_threshold = 0.9;
  config.capacity = 3;
  mine::MiningBuffer buffer(config);

  const std::vector<Graph> graphs = distinct_structure_graphs(5, 5);

  buffer.observe(graphs[0], fake_prediction(0.95, true));  // good AR: skip
  buffer.observe(graphs[0], fake_prediction(0.5, false));  // unverified
  EXPECT_EQ(buffer.size(), 0u);

  buffer.observe(graphs[0], fake_prediction(0.5, true));  // mined
  buffer.observe(graphs[0], fake_prediction(0.4, true));  // dup: deduped
  EXPECT_EQ(buffer.size(), 1u);

  for (int i = 1; i < 5; ++i) {
    buffer.observe(graphs[static_cast<std::size_t>(i)],
                   fake_prediction(0.5, true));
  }
  EXPECT_EQ(buffer.size(), 3u) << "ring must stay bounded";

  const auto counters = buffer.counters();
  EXPECT_EQ(counters.observed, 8u);
  EXPECT_EQ(counters.mined_low_ar, 5u);
  EXPECT_EQ(counters.deduped, 1u);
  EXPECT_EQ(counters.dropped, 2u);

  const auto drained = buffer.drain();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(buffer.size(), 0u);
  for (const mine::MinedSample& s : drained) {
    EXPECT_TRUE(s.ar_verified);
    EXPECT_LT(s.approximation_ratio, 0.9);
  }
}

TEST(MiningBuffer, NoveltyMinesFirstSightingOnly) {
  mine::MiningConfig config;
  config.mine_novel = true;
  mine::MiningBuffer buffer(config);

  Rng rng(6);
  const Graph a = random_regular_graph(6, 3, rng);
  const Graph b = random_regular_graph(8, 3, rng);

  buffer.observe(a, fake_prediction(0.99, true));  // novel: mined
  buffer.observe(b, fake_prediction(0.99, true));  // novel: mined
  EXPECT_EQ(buffer.size(), 2u);

  const auto drained = buffer.drain();
  EXPECT_EQ(drained.size(), 2u);
  buffer.observe(a, fake_prediction(0.2, true));  // seen before: not novel
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.counters().mined_novel, 2u);
}

// ---- relabel job --------------------------------------------------------

std::vector<DatasetEntry> provisional_entries(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<mine::MinedSample> mined;
  for (int i = 0; i < count; ++i) {
    mine::MinedSample s;
    s.graph = random_regular_graph(rng.uniform_int(3, 4) * 2, 3, rng);
    s.predicted = Matrix(1, 2);
    s.predicted(0, 0) = 0.1 * i;
    s.predicted(0, 1) = 0.05 * i;
    s.approximation_ratio = 0.5;
    mined.push_back(s);
  }
  return mine::to_provisional_entries(mined);
}

TEST(Relabel, WorkerCountInvariantAndShardResumable) {
  const std::vector<DatasetEntry> base = provisional_entries(6, 21);

  mine::RelabelConfig config;
  config.optimizer_evaluations = 30;
  config.seed = 9;

  std::vector<DatasetEntry> solo = base;
  config.workers = 1;
  mine::relabel_entries(config, solo);
  std::vector<DatasetEntry> pooled = base;
  config.workers = 4;
  mine::relabel_entries(config, pooled);
  EXPECT_EQ(pack_dataset(solo), pack_dataset(pooled))
      << "labels must not depend on the worker count";
  for (const DatasetEntry& e : solo) {
    EXPECT_GT(e.approximation_ratio, 0.0);
    EXPECT_GT(e.optimum, 0.0);
  }

  // Shard-level resume: once the labelled output exists, a re-run reuses
  // it even if the raw shard disappears.
  const fs::path dir = temp_path("relabel_shard");
  fs::remove_all(dir);
  const std::string shard = mine::spill_shard(dir.string(), 0, base);
  const std::vector<DatasetEntry> first =
      mine::relabel_shard(config, shard);
  EXPECT_EQ(pack_dataset(first), pack_dataset(pooled));
  ASSERT_TRUE(fs::exists(mine::labelled_shard_path(shard)));

  fs::remove(shard);
  const std::vector<DatasetEntry> resumed =
      mine::relabel_shard(config, shard);
  EXPECT_EQ(pack_dataset(resumed), pack_dataset(first));
  fs::remove_all(dir);
}

// ---- eval gate ----------------------------------------------------------

TEST(Gate, SelfComparisonNeverPromotes) {
  const GnnModel model = make_model(11);
  std::vector<DatasetEntry> panel = provisional_entries(3, 31);
  mine::GateConfig config;
  const mine::GateVerdict verdict =
      mine::evaluate_gate(model, model, panel, config);
  EXPECT_EQ(verdict.candidate_mean_ar, verdict.incumbent_mean_ar);
  EXPECT_FALSE(verdict.promote)
      << "a tie must keep the incumbent (strict improvement required)";
}

TEST(Gate, MarginGatesNearTies) {
  const GnnModel a = make_model(11);
  const GnnModel b = make_model(12);
  std::vector<DatasetEntry> panel = provisional_entries(4, 32);

  mine::GateConfig strict;
  strict.min_improvement = 2.0;  // no candidate clears a 2.0 AR margin
  EXPECT_FALSE(mine::evaluate_gate(a, b, panel, strict).promote);

  const double a_score = mine::panel_mean_ar(a, panel);
  const double b_score = mine::panel_mean_ar(b, panel);
  mine::GateConfig open;
  const mine::GateVerdict verdict = mine::evaluate_gate(a, b, panel, open);
  EXPECT_EQ(verdict.candidate_mean_ar, a_score);
  EXPECT_EQ(verdict.incumbent_mean_ar, b_score);
  EXPECT_EQ(verdict.promote, a_score > b_score);
}

// ---- CLI hook -----------------------------------------------------------

TEST(ServeHook, MinerBuiltFromFlagsOnlyWhenRequested) {
  serve::ServeHandle handle;
  {
    const char* argv[] = {"prog"};
    EXPECT_EQ(mine::make_miner_from_cli(handle, CliArgs(1, argv)), nullptr);
  }
  const fs::path dir = temp_path("hook_dir");
  const std::string dir_flag = "--mine-dir=" + dir.string();
  const char* argv[] = {"prog",           "--mine",
                        "--mine-ar-threshold", "0.8",
                        dir_flag.c_str(), "--mine-min-spill", "5",
                        "--mine-capacity", "64"};
  handle.register_model("default", make_model(2));
  const auto miner = mine::make_miner_from_cli(
      handle, CliArgs(static_cast<int>(std::size(argv)), argv));
  ASSERT_NE(miner, nullptr);
  EXPECT_EQ(miner->config().buffer.ar_threshold, 0.8);
  EXPECT_EQ(miner->config().buffer.capacity, 64u);
  EXPECT_EQ(miner->config().min_spill, 5u);
  EXPECT_EQ(miner->config().dir, dir.string());
  miner->stop();
  fs::remove_all(dir);
}

// ---- satellite: mine.* stats surface in the NDJSON stats body -----------

TEST(Stats, MineCountersExposedThroughStatsCommand) {
  serve::ServeHandle handle;
  handle.register_model("default", make_model(2));
  const std::string line =
      serve::process_request_line(handle, "{\"cmd\":\"stats\",\"id\":7}");
  EXPECT_NE(line.find("\"mine\""), std::string::npos);
  EXPECT_NE(line.find("\"observed\""), std::string::npos);
  EXPECT_NE(line.find("\"gate_promoted\""), std::string::npos);
  EXPECT_NE(line.find("\"buffer_depth\""), std::string::npos);
  EXPECT_NE(line.find("\"relabel_us\""), std::string::npos);
}

// ---- tentpole: the end-to-end closed loop -------------------------------

TEST(MiningLoop, EndToEndPromotesGateChecksAndRollsBack) {
  const fs::path dir = temp_path("e2e");
  fs::remove_all(dir);

  serve::ServeConfig serve_config;
  serve_config.verify_ar = true;
  serve_config.cache_capacity = 64;
  serve::ServeHandle handle(serve_config);
  handle.register_model("default", make_model(42));  // untrained incumbent

  mine::MinerConfig miner_config;
  miner_config.dir = dir.string();
  miner_config.buffer.ar_threshold = 0.999;  // an untrained model is hard
  miner_config.min_spill = 10;
  miner_config.relabel.optimizer_evaluations = 60;
  miner_config.relabel.workers = 2;
  miner_config.relabel.symmetrize_labels = true;
  miner_config.fine_tune.epochs = 120;
  miner_config.fine_tune.learning_rate = 1e-2;
  miner_config.fine_tune.batch_size = 4;
  miner_config.fine_tune.loss = LossKind::kPeriodic;
  miner_config.fine_tune.validation_fraction = 0.0;
  miner_config.panel_fraction = 0.25;
  miner_config.seed = 2024;
  mine::Miner miner(handle, miner_config);
  miner.attach();

  // Live traffic: 16 pairwise non-isomorphic 3-regular graphs, so the
  // buffer collects a full spill's worth of unique canonical classes.
  const std::vector<Graph> graphs = distinct_structure_graphs(17, 16);
  for (const Graph& g : graphs) handle.predict(g);
  EXPECT_GE(miner.buffer().size(), miner_config.min_spill);

  const auto incumbent = handle.registry().get("default");
  EXPECT_EQ(incumbent->generation, 1u);
  // Reference predictions at generation 1 for the in-flight bit-identity
  // check below.
  std::vector<Matrix> old_values;
  for (const Graph& g : graphs) {
    old_values.push_back(incumbent->model->predict(g));
  }

  // Concurrent traffic while the cycle fine-tunes and hot-swaps: every
  // request must be answered (zero drops), from a coherent generation.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<serve::Prediction> inflight;
  std::mutex inflight_mutex;
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      std::size_t i = 0;
      while (!stop.load()) {
        try {
          serve::Prediction p = handle.predict(graphs[i % graphs.size()]);
          ++answered;
          std::lock_guard<std::mutex> lk(inflight_mutex);
          inflight.push_back(std::move(p));
        } catch (const std::exception&) {
          ++failed;
        }
        ++i;
      }
    });
  }

  const mine::CycleReport report = miner.run_cycle();
  stop.store(true);
  for (std::thread& t : clients) t.join();

  ASSERT_TRUE(report.ran);
  EXPECT_GE(report.mined, miner_config.min_spill);
  EXPECT_EQ(report.relabeled, report.mined);
  EXPECT_TRUE(fs::exists(report.shard_path));
  EXPECT_TRUE(fs::exists(mine::labelled_shard_path(report.shard_path)));

  // The acceptance claim: fine-tuning on full-budget labels beats the
  // untrained incumbent on the held-out panel, so the gate promotes and
  // the registry serves a new generation.
  EXPECT_GT(report.verdict.candidate_mean_ar,
            report.verdict.incumbent_mean_ar);
  ASSERT_TRUE(report.promoted);
  EXPECT_EQ(report.generation_before, 1u);
  EXPECT_EQ(report.generation_after, 2u);
  EXPECT_EQ(handle.registry().get("default")->generation, 2u);

  // Zero dropped in-flight requests across the hot-swap.
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(answered.load(), 0u);

  // Every concurrent answer is bit-identical to its generation's model:
  // unaffected graphs keep their exact old values until the swap, and the
  // new generation's values afterwards — never a blend.
  const auto promoted = handle.registry().get("default");
  std::vector<Matrix> new_values;
  for (const Graph& g : graphs) {
    new_values.push_back(promoted->model->predict(g));
  }
  std::map<std::uint64_t, std::uint64_t> by_generation;
  for (const serve::Prediction& p : inflight) {
    ASSERT_TRUE(p.generation == 1 || p.generation == 2);
    ++by_generation[p.generation];
    // Identify the graph by matching the request loop's order.
  }
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const serve::Prediction before = [&] {
      // predict() after the swap must serve generation 2 bit-identically.
      return handle.predict(graphs[i]);
    }();
    EXPECT_EQ(before.generation, 2u);
    expect_bit_identical(before.values, new_values[i]);
  }
  // And generation-1 answers matched the old model exactly: spot-check by
  // re-deriving from the snapshot entry held across the swap.
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    expect_bit_identical(incumbent->model->predict(graphs[i]),
                         old_values[i]);
  }

  // Rollback: a destructive fine-tune must be rejected by the gate and
  // leave the promoted incumbent serving.
  mine::MinerConfig bad = miner_config;
  bad.fine_tune.epochs = 1;
  bad.fine_tune.learning_rate = 50.0;  // scrambles the weights
  bad.seed = 2025;
  mine::Miner saboteur(handle, bad);
  saboteur.attach();
  // Same structures, now served (and verified) by generation 2: still
  // below the threshold, so they are mined again for the next cycle.
  for (const Graph& g : graphs) handle.predict(g);
  ASSERT_GE(saboteur.buffer().size(), bad.min_spill);
  const auto entry_before = handle.registry().get("default");
  const mine::CycleReport bad_report = saboteur.run_cycle();
  ASSERT_TRUE(bad_report.ran);
  EXPECT_FALSE(bad_report.promoted);
  EXPECT_FALSE(bad_report.verdict.promote);
  EXPECT_EQ(bad_report.generation_after, bad_report.generation_before);
  const auto entry_after = handle.registry().get("default");
  EXPECT_EQ(entry_before.get(), entry_after.get())
      << "a rejected candidate must leave the incumbent entry untouched";

  fs::remove_all(dir);
}

// Background loop: cycles run without an explicit run_cycle() call.
TEST(MiningLoop, BackgroundThreadRunsCyclesWhenBufferFills) {
  const fs::path dir = temp_path("bg");
  fs::remove_all(dir);

  serve::ServeConfig serve_config;
  serve_config.verify_ar = true;
  serve::ServeHandle handle(serve_config);
  handle.register_model("default", make_model(42));

  mine::MinerConfig config;
  config.dir = dir.string();
  config.buffer.ar_threshold = 0.999;
  config.min_spill = 4;
  config.relabel.optimizer_evaluations = 20;
  config.fine_tune.epochs = 3;
  config.fine_tune.validation_fraction = 0.0;
  config.poll_interval = std::chrono::milliseconds(20);
  mine::Miner miner(handle, config);
  miner.attach();
  miner.start();

  const std::vector<Graph> graphs = distinct_structure_graphs(19, 6);
  for (const Graph& g : graphs) handle.predict(g);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (miner.cycles_run() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  miner.stop();
  EXPECT_GE(miner.cycles_run(), 1u) << miner.last_error();
  EXPECT_EQ(miner.last_error(), "");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace qgnn
