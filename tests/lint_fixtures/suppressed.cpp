// Every violation here carries a qgnn-lint suppression comment; the test
// asserts this file lints clean.
#include <cstdlib>

int jitter() {
  return std::rand();  // qgnn-lint: allow(determinism-call)
}

// Deliberate: this CLI shim tolerates atoi's silent-zero behavior.
// qgnn-lint: allow(banned-function)
int parse(const char* text) { return atoi(text); }

// qgnn-lint: allow(all)
int parse_everything_allowed(const char* text) { return atoi(text); }
