// Seeded violations for the determinism-call check. This file is never
// compiled; tests/test_lint.cpp asserts the exact lines flagged below.
#include <chrono>
#include <cstdlib>
#include <random>
#include <sys/time.h>

int entropy_seed() {
  std::random_device rd;  // expect: determinism-call (line 9)
  return static_cast<int>(rd());
}

int c_library_rng() {
  std::srand(42);     // expect: determinism-call (line 14)
  return std::rand();  // expect: determinism-call (line 15)
}

double wall_clock_seconds() {
  const auto now = std::chrono::system_clock::now();  // expect: line 19
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long wall_clock_micros() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);  // expect: determinism-call (line 25)
  return tv.tv_usec;
}
