// event-loop-blocking positive fixture: blocking primitives reachable
// from a QGNN_EVENT_LOOP_ONLY entry, both directly and one call deep.
#include <chrono>
#include <mutex>
#include <thread>

namespace fix {

class Handler {
 public:
  void on_event() QGNN_EVENT_LOOP_ONLY {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // finding
    handle();
  }

 private:
  void handle() {
    // finding: stray_mutex_ is not named by any annotation, so nothing
    // bounds its critical sections.
    std::lock_guard<std::mutex> lk(stray_mutex_);
  }

  std::mutex stray_mutex_;
};

}  // namespace fix
