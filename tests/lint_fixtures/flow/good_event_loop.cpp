// event-loop-blocking negative fixture: annotated (contract-bounded)
// mutexes may be locked on the loop thread, and calls inside lambdas are
// deferred — they run on whatever thread invokes the lambda, so the
// reachability walk must not follow them.
#include <chrono>
#include <mutex>
#include <thread>

namespace fix {

class Ticker {
 public:
  void on_tick() QGNN_EVENT_LOOP_ONLY {
    std::lock_guard<std::mutex> lk(state_mutex_);  // ok: annotated mutex
    ticks_ += 1;
    spawn();
  }

 private:
  void spawn() {
    worker_ = std::thread([this] { background(); });  // deferred edge
  }

  void background() {
    // ok: runs on the worker thread, unreachable from the loop walk.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::mutex state_mutex_;
  std::thread worker_;
  int ticks_ QGNN_GUARDED_BY(state_mutex_) = 0;
};

}  // namespace fix
