// bit-identical-path negative fixture: explicit mul+add, ordered
// containers, no ISA-dependent reads.
#include <map>
#include <vector>

namespace fix {

double stable_dot(const std::vector<double>& a,
                  const std::vector<double>& b) QGNN_BIT_IDENTICAL_PATH;

double stable_dot(const std::vector<double>& a,
                  const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];  // explicit mul+add: same bits on every ISA
  }
  return acc;
}

double stable_sum(const std::map<int, double>& m) QGNN_BIT_IDENTICAL_PATH {
  double acc = 0.0;
  for (const auto& kv : m) {  // std::map: deterministic order
    acc += kv.second;
  }
  return acc;
}

}  // namespace fix
