// error-path positive fixture: IoError thrown under a src/dataset path
// without naming the file it failed on.
#include <string>

namespace fix {

struct IoError {
  explicit IoError(const std::string& what);
};

void load(const std::string& path) {
  if (path.empty()) {
    throw IoError("bad magic");  // finding: which file?
  }
}

}  // namespace fix
