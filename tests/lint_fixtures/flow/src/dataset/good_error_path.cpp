// error-path negative fixture: IoError messages carry the file path and
// offset, so a corrupt shard names the shard.
#include <string>

namespace fix {

struct IoError {
  explicit IoError(const std::string& what);
};

void load(const std::string& path, long off) {
  if (path.empty()) {
    throw IoError("bad magic in " + path);
  }
  if (off < 0) {
    throw IoError("truncated record at offset " + std::to_string(off) +
                  " in " + path);
  }
}

}  // namespace fix
