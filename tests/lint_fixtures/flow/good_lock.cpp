// lock-discipline negative fixture: every guarded access is covered by
// a lexically visible guard, a QGNN_REQUIRES annotation, or one-level
// call-graph propagation (every project call site holds the mutex).
#include <mutex>

namespace fix {

class Ledger {
 public:
  void add(int x) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (x > 0) {
      total_ += x;  // ok: guard must survive the nested block
    }
    bump();  // one-level propagation: the only call site holds mutex_
  }

  int drain() {
    std::unique_lock<std::mutex> lk(mutex_);
    return drain_locked();
  }

 private:
  int drain_locked() QGNN_REQUIRES(mutex_) {
    const int t = total_;  // ok: QGNN_REQUIRES(mutex_)
    total_ = 0;
    return t;
  }

  void bump() {
    count_ += 1;  // ok: every call site holds mutex_ (de-facto REQUIRES)
  }

  mutable std::mutex mutex_;
  int total_ QGNN_GUARDED_BY(mutex_) = 0;
  int count_ QGNN_GUARDED_BY(mutex_) = 0;
};

}  // namespace fix
