// bit-identical-path positive fixture: FMA contraction, ISA-dependent
// state, and unordered iteration inside byte-stable code. The dot()
// annotation sits on the declaration and must merge onto the definition.
#include <cmath>
#include <unordered_map>

namespace fix {

double dot(const double* a, const double* b, int n) QGNN_BIT_IDENTICAL_PATH;

double dot(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc = std::fma(a[i], b[i], acc);  // finding: FMA contraction
  }
  return acc;
}

double helper(double x) {
  return std::fma(x, x, 1.0);  // finding: direct callee of poly()
}

double poly(double x) QGNN_BIT_IDENTICAL_PATH { return helper(x); }

double checksum() QGNN_BIT_IDENTICAL_PATH {
  std::unordered_map<int, double> levels;
  levels[1] = 0.5;
  double acc = 0.0;
  for (const auto& kv : levels) {  // finding: hash-seed dependent order
    acc += kv.second;
  }
  if (cpu_supports(2)) {  // finding: ISA-dependent state
    acc += 1.0;
  }
  return acc;
}

bool cpu_supports(int level);

}  // namespace fix
