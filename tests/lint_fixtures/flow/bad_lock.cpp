// lock-discipline positive fixture: QGNN_GUARDED_BY members touched
// without the named mutex lexically held. Also exercises the
// suppression escape hatch on a flow finding.
#include <mutex>

namespace fix {

class Account {
 public:
  void deposit(int amount) {
    std::lock_guard<std::mutex> lk(mutex_);
    balance_ += amount;  // ok: lock held
  }

  int peek() const {
    return balance_;  // finding: no lock, no QGNN_REQUIRES
  }

  void reset() {
    balance_ = 0;  // finding: no lock, no QGNN_REQUIRES
  }

  int racy_peek() const {
    // qgnn-lint: allow(lock-discipline)
    return balance_;  // suppressed: approximate stats snapshot
  }

 private:
  mutable std::mutex mutex_;
  int balance_ QGNN_GUARDED_BY(mutex_) = 0;
};

}  // namespace fix
