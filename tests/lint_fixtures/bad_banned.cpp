// Seeded violations for the banned-function check.
#include <cstdio>
#include <cstdlib>
#include <cstring>

int parse_port(const char* text) {
  return atoi(text);  // expect: banned-function (line 7)
}

void format_label(char* out, int id) {
  sprintf(out, "id-%d", id);  // expect: banned-function (line 11)
}

char* first_word(char* text) {
  return strtok(text, " ");  // expect: banned-function (line 15)
}
