// Seeded violations for the lock-across-submit check.
#include <mutex>

struct Pool {
  template <typename F>
  void submit(F&& f);
  template <typename F>
  void parallel_for(int lo, int hi, int chunk, F&& f);
};

void fan_out_under_lock(Pool& pool, std::mutex& m, int& shared) {
  std::lock_guard<std::mutex> lk(m);
  pool.submit([&] { ++shared; });          // expect: line 13
  pool.parallel_for(0, 8, 1, [](int) {});  // expect: line 14
}

void fan_out_after_lock(Pool& pool, std::mutex& m, int& shared) {
  {
    std::lock_guard<std::mutex> lk(m);
    ++shared;
  }
  pool.submit([&] { ++shared; });  // lock released: not flagged
}
