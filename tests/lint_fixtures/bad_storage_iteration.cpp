// Seeded violations for the determinism-iteration check. The file name
// contains "storage", so qgnn_lint classifies it as a serialization path.
#include <string>
#include <unordered_map>

struct Snapshot {
  std::unordered_map<std::string, double> metrics;
};

std::string serialize(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.metrics) {  // expect: line 12
    out += name + "=" + std::to_string(value) + "\n";
  }
  return out;
}

double first_value(const Snapshot& snap) {
  auto it = snap.metrics.begin();  // expect: determinism-iteration (line 19)
  return it == snap.metrics.end() ? 0.0 : it->second;
}

double lookup_is_fine(const Snapshot& snap, const std::string& key) {
  const auto it = snap.metrics.find(key);  // point lookup: not flagged
  return it == snap.metrics.end() ? 0.0 : it->second;
}
