// Seeded violation for the pragma-once check: this header opens with an
// include instead of #pragma once.
#include <string>

inline std::string greeting() { return "hello"; }
