// Seeded violations for the raw-socket check: direct socket and event
// syscalls in library code outside src/net.
#include <sys/socket.h>
#include <unistd.h>

namespace qgnn {

int open_listener(unsigned short port) {
  const int fd = ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  (void)port;
  (void)listen(fd, 16);
  return fd;
}

long push_bytes(int fd, const void* data, unsigned long n) {
  const long sent = send(fd, data, n, 0);
  char ack = 0;
  (void)::read(fd, &ack, 1);
  return sent;
}

struct Channel {
  int send(const void* data, unsigned long n);  // member: not a finding
  long read(void* data, unsigned long n);       // member: not a finding
};

long drain(Channel& ch, void* buf, unsigned long n) {
  return ch.read(buf, n);  // method call: not a finding
}

}  // namespace qgnn
