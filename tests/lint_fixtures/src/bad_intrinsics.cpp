// Raw vector intrinsics in library code: must go through src/simd/.
#include <immintrin.h>

namespace qgnn {

double first_lane(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  return _mm_cvtsd_f64(_mm256_castpd256_pd128(v));
}

}  // namespace qgnn
