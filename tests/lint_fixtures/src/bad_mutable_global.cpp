// Seeded violations for the mutable-global check (library code: the
// fixture path contains src/).
#include <memory>
#include <mutex>

namespace demo {

static int g_hits = 0;         // expect: mutable-global (line 8)
std::mutex g_lock;             // expect: mutable-global (line 9)
std::unique_ptr<int> g_cache;  // expect: mutable-global (line 10)

static const int kLimit = 8;      // const: not flagged
static constexpr double kPi = 3;  // constexpr: not flagged
static int bump() { return ++g_hits; }  // function: not flagged

int counted() {
  static int local_calls = 0;  // function-local static: not flagged
  return ++local_calls;
}

struct Holder {
  std::mutex member_lock;  // class member: not flagged
};

}  // namespace demo
