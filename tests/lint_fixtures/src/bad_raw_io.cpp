// Seeded violations for the raw-io check: direct file I/O primitives in
// library code outside the dataset storage layer.
#include <cstdio>

namespace qgnn {

void write_blob(const void* data, unsigned long n) {
  std::FILE* f = std::fopen("blob.bin", "wb");
  (void)std::fwrite(data, 1, n, f);
}

unsigned long read_blob(void* data, unsigned long n, std::FILE* f) {
  return std::fread(data, 1, n, f);
}

}  // namespace qgnn
