// Seeded violations for the obs-name check. The fixture lives under a
// src/ directory so the registry cross-reference is enforced; the test
// registry (and the real one) contains "pool.jobs" but nothing else used
// here.
struct FakeRegistry {
  FakeRegistry& counter(const char*) { return *this; }
  FakeRegistry& histogram(const char*) { return *this; }
  void add(int) {}
  void record(double) {}
};
#define QGNN_TRACE_SPAN(name) (void)(name)

void instrument(FakeRegistry& registry) {
  registry.counter("pool.jobs").add(1);  // registered: not flagged
  registry.counter("serve.not_registered").add(1);     // expect: line 15
  registry.histogram("Serve.Forward_us").record(1.0);  // expect: line 16
  QGNN_TRACE_SPAN("badname");                          // expect: line 17
}
