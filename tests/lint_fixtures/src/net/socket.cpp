// The net layer itself may touch socket syscalls directly: the
// raw-socket check exempts everything under src/net/.
#include <sys/socket.h>
#include <unistd.h>

namespace qgnn::net {

int raw_listener() {
  const int fd = ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  (void)listen(fd, 16);
  return fd;
}

}  // namespace qgnn::net
