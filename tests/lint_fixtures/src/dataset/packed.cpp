// Raw file I/O inside the storage layer itself is allowed: this file's
// path matches the raw-io exemption (it owns the bytes and the
// validation), mirroring the real src/dataset/packed.cpp.
#include <cstdio>

namespace qgnn {

void storage_write(const void* data, unsigned long n) {
  std::FILE* f = std::fopen("data.qds", "wb");
  (void)std::fwrite(data, 1, n, f);
}

}  // namespace qgnn
