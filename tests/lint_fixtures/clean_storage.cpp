// A clean serialization-path file ("storage" in the name): ordered-map
// iteration, point lookups into unordered maps, and index-ordered loops
// are all fine. The test asserts zero findings.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

std::string serialize_ordered(const std::map<std::string, double>& metrics) {
  std::string out;
  for (const auto& [name, value] : metrics) {
    out += name + "=" + std::to_string(value) + "\n";
  }
  return out;
}

std::string serialize_rows(const std::vector<std::string>& rows) {
  std::string out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += rows[i] + "\n";
  }
  return out;
}

double lookup(const std::unordered_map<std::string, double>& index,
              const std::string& key) {
  const auto it = index.find(key);
  return it == index.end() ? 0.0 : it->second;
}
