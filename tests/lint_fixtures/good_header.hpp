#pragma once

// A header that satisfies every check; the test asserts zero findings.
#include <string>

namespace demo {

inline int answer() { return 42; }

}  // namespace demo
