#pragma once

// Fixture registry: qgnn_lint validates every string in a file ending in
// obs/names.hpp against the naming convention.
namespace qgnn::obs::names {

inline constexpr const char* kGood = "pool.jobs";
inline constexpr const char* kBad = "Pool.Jobs_";  // expect: obs-name (line 8)

}  // namespace qgnn::obs::names
