#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "qaoa/cost_hamiltonian.hpp"
#include "quantum/gates.hpp"
#include "quantum/pauli.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(PauliString, ParseAndPrint) {
  // Leftmost character is the highest qubit (ket order): "XIZ" means
  // X on qubit 2, Z on qubit 0.
  const PauliString p = PauliString::parse("XIZ", 0.5);
  EXPECT_EQ(p.num_qubits(), 3);
  EXPECT_EQ(p.op(2), Pauli::X);
  EXPECT_EQ(p.op(1), Pauli::I);
  EXPECT_EQ(p.op(0), Pauli::Z);
  EXPECT_EQ(p.weight(), 2);
  EXPECT_EQ(p.to_string(), "0.5000 * Z0 X2");
  EXPECT_THROW(PauliString::parse("XQZ"), InvalidArgument);
  EXPECT_THROW(PauliString::parse(""), InvalidArgument);
}

TEST(PauliString, DiagonalDetection) {
  EXPECT_TRUE(PauliString::parse("ZIZ").is_diagonal());
  EXPECT_TRUE(PauliString::parse("III").is_diagonal());
  EXPECT_FALSE(PauliString::parse("XIZ").is_diagonal());
  EXPECT_FALSE(PauliString::parse("IYI").is_diagonal());
}

TEST(PauliString, CommutationRules) {
  // Single-qubit X and Z anticommute; on disjoint qubits they commute.
  EXPECT_FALSE(PauliString::parse("IX").commutes_with(
      PauliString::parse("IZ")));
  EXPECT_TRUE(PauliString::parse("XI").commutes_with(
      PauliString::parse("IZ")));
  // XX vs ZZ: anticommute on two qubits -> commute overall.
  EXPECT_TRUE(PauliString::parse("XX").commutes_with(
      PauliString::parse("ZZ")));
  // XY vs ZY: anticommute on qubit 1 only -> anticommute.
  EXPECT_FALSE(PauliString::parse("XY").commutes_with(
      PauliString::parse("ZY")));
}

TEST(PauliString, ExpectationOnKnownStates) {
  // <0|Z|0> = 1, <1|Z|1> = -1, <+|X|+> = 1, <+|Z|+> = 0.
  StateVector zero(1);
  EXPECT_NEAR(PauliString::parse("Z").expectation(zero), 1.0, 1e-12);
  StateVector one = StateVector::basis_state(1, 1);
  EXPECT_NEAR(PauliString::parse("Z").expectation(one), -1.0, 1e-12);
  StateVector plus = StateVector::plus_state(1);
  EXPECT_NEAR(PauliString::parse("X").expectation(plus), 1.0, 1e-12);
  EXPECT_NEAR(PauliString::parse("Z").expectation(plus), 0.0, 1e-12);
  EXPECT_NEAR(PauliString::parse("Y").expectation(plus), 0.0, 1e-12);
}

TEST(PauliString, ExpectationMatchesExpectationZ) {
  Rng rng(3);
  StateVector s = StateVector::plus_state(3);
  s.apply_single_qubit(gates::ry(0.7), 0);
  s.apply_rzz(1.1, 0, 2);
  for (int q = 0; q < 3; ++q) {
    PauliString z(3);
    z.set(q, Pauli::Z);
    EXPECT_NEAR(z.expectation(s), s.expectation_z(q), 1e-12);
  }
}

TEST(PauliString, NonDiagonalExpectationViaApply) {
  // Bell state: <XX> = 1, <YY> = -1, <ZZ> = 1.
  StateVector bell(2);
  bell.apply_single_qubit(gates::hadamard(), 0);
  bell.apply_controlled(gates::pauli_x(), 0, 1);
  EXPECT_NEAR(PauliString::parse("XX").expectation(bell), 1.0, 1e-12);
  EXPECT_NEAR(PauliString::parse("YY").expectation(bell), -1.0, 1e-12);
  EXPECT_NEAR(PauliString::parse("ZZ").expectation(bell), 1.0, 1e-12);
  EXPECT_NEAR(PauliString::parse("XY").expectation(bell), 0.0, 1e-12);
}

TEST(PauliString, CoefficientScalesExpectation) {
  StateVector plus = StateVector::plus_state(1);
  const PauliString p = PauliString::parse("X", -2.5);
  EXPECT_NEAR(p.expectation(plus), -2.5, 1e-12);
}

TEST(PauliSum, BuildsAndPrints) {
  PauliSum sum(2);
  sum.add(PauliString::parse("ZI", 0.5));
  sum.add(PauliString::parse("IX", -1.0));
  EXPECT_EQ(sum.size(), 2u);
  EXPECT_FALSE(sum.is_diagonal());
  EXPECT_NE(sum.to_string().find("Z1"), std::string::npos);
  EXPECT_THROW(sum.add(PauliString::parse("ZZZ")), InvalidArgument);
  EXPECT_THROW(sum.diagonal(), InvalidArgument);
}

class MaxcutPauliTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxcutPauliTest, PauliSumMatchesCostHamiltonian) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Graph g = erdos_renyi_graph(GetParam(), 0.5, rng);
  if (g.num_edges() == 0) g.add_edge(0, 1);
  const PauliSum sum = maxcut_pauli_sum(g);
  const CostHamiltonian cost(g);
  EXPECT_TRUE(sum.is_diagonal());

  // Dense diagonals agree entry-by-entry.
  const auto diag = sum.diagonal();
  for (std::uint64_t k = 0; k < cost.dimension(); ++k) {
    EXPECT_NEAR(diag[k], cost.value(k), 1e-12) << "state " << k;
  }

  // And expectations agree on a non-trivial state.
  StateVector s = StateVector::plus_state(g.num_nodes());
  cost.apply_phase(s, 0.6);
  const auto rx = gates::rx(0.7);
  for (int q = 0; q < g.num_nodes(); ++q) s.apply_single_qubit(rx, q);
  EXPECT_NEAR(sum.expectation(s), cost.expectation(s), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, MaxcutPauliTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(MaxcutPauli, WeightedGraph) {
  Graph g(2);
  g.add_edge(0, 1, 2.5);
  const PauliSum sum = maxcut_pauli_sum(g);
  const auto diag = sum.diagonal();
  EXPECT_NEAR(diag[0b00], 0.0, 1e-12);
  EXPECT_NEAR(diag[0b01], 2.5, 1e-12);
}

}  // namespace
}  // namespace qgnn
