// Thread-count-invariance suite: every parallelized layer must produce
// results independent of QGNN_NUM_THREADS. Gate kernels are elementwise
// and must match bit-for-bit; reductions use a fixed chunk decomposition
// and must match bit-for-bit too (asserted exactly, well inside the 1e-12
// acceptance bound); the dataset labeller must emit byte-identical
// records; the trainer must land on identical weights.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/pipeline.hpp"
#include "dataset/dataset.hpp"
#include "dataset/features.hpp"
#include "dataset/storage.hpp"
#include "gnn/trainer.hpp"
#include "graph/generators.hpp"
#include "quantum/gates.hpp"
#include "quantum/statevector.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {
namespace {

/// Restores the global pool to the environment-configured size when a
/// test that resizes it finishes.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() {
    ThreadPool::set_global_threads(ThreadPool::configured_threads());
  }
};

constexpr int kStateQubits = 16;  // 2^16 amps: above the parallel threshold

/// Apply a deterministic pseudo-random sequence of mixed gates.
void apply_mixed_gates(StateVector& s, int count, std::uint64_t seq_seed) {
  Rng rng(seq_seed);
  const int n = s.num_qubits();
  std::vector<double> diag(s.dimension());
  for (std::uint64_t k = 0; k < s.dimension(); ++k) {
    diag[k] = static_cast<double>(__builtin_popcountll(k));
  }
  for (int i = 0; i < count; ++i) {
    const int kind = rng.uniform_int(0, 4);
    const int a = rng.uniform_int(0, n - 1);
    int b = rng.uniform_int(0, n - 2);
    if (b >= a) ++b;
    const double theta = rng.uniform(0.0, 3.0);
    switch (kind) {
      case 0:
        s.apply_single_qubit(gates::rx(theta), a);
        break;
      case 1:
        s.apply_single_qubit(gates::hadamard(), a);
        break;
      case 2:
        s.apply_controlled(gates::rx(theta), a, b);
        break;
      case 3:
        s.apply_rzz(theta, a, b);
        break;
      default:
        s.apply_diagonal_phase(diag, theta * 0.1);
        break;
    }
  }
}

StateVector evolved_state(int threads, int gate_count) {
  ThreadPool::set_global_threads(threads);
  StateVector s = StateVector::plus_state(kStateQubits);
  apply_mixed_gates(s, gate_count, /*seq_seed=*/123);
  return s;
}

TEST(ParallelStateVector, AmplitudesBitIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const StateVector s1 = evolved_state(1, 40);
  const StateVector s2 = evolved_state(2, 40);
  const StateVector s8 = evolved_state(8, 40);
  for (std::uint64_t k = 0; k < s1.dimension(); ++k) {
    ASSERT_EQ(s1.amplitude(k), s2.amplitude(k)) << "index " << k;
    ASSERT_EQ(s1.amplitude(k), s8.amplitude(k)) << "index " << k;
  }
}

TEST(ParallelStateVector, ReductionsBitIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  std::vector<double> diag(std::uint64_t{1} << kStateQubits);
  for (std::uint64_t k = 0; k < diag.size(); ++k) {
    diag[k] = std::sin(static_cast<double>(k) * 1e-3);
  }

  double exp1 = 0.0, exp2 = 0.0, exp8 = 0.0;
  double norm1 = 0.0, norm8 = 0.0;
  double z1 = 0.0, z8 = 0.0;
  Amplitude ip1, ip8;
  for (const int t : {1, 2, 8}) {
    const StateVector s = evolved_state(t, 25);
    const StateVector ref = StateVector::plus_state(kStateQubits);
    const double e = s.expectation_diagonal(diag);
    if (t == 1) {
      exp1 = e;
      norm1 = s.norm();
      z1 = s.expectation_z(3);
      ip1 = s.inner_product(ref);
    } else if (t == 2) {
      exp2 = e;
    } else {
      exp8 = e;
      norm8 = s.norm();
      z8 = s.expectation_z(3);
      ip8 = s.inner_product(ref);
    }
  }
  EXPECT_EQ(exp1, exp2);
  EXPECT_EQ(exp1, exp8);
  EXPECT_NEAR(exp1, exp8, 1e-12);  // the acceptance-criterion bound
  EXPECT_EQ(norm1, norm8);
  EXPECT_EQ(z1, z8);
  EXPECT_EQ(ip1, ip8);
}

TEST(ParallelStateVector, StressManyMixedGatesMatchesSerialPath) {
  GlobalPoolGuard guard;
  // Serial reference (one lane = every kernel runs inline) vs a
  // heavily-threaded run of the same 200-gate program.
  const StateVector serial = evolved_state(1, 200);
  const StateVector parallel = evolved_state(8, 200);
  ASSERT_EQ(serial.dimension(), parallel.dimension());
  for (std::uint64_t k = 0; k < serial.dimension(); ++k) {
    ASSERT_EQ(serial.amplitude(k), parallel.amplitude(k)) << "index " << k;
  }
  EXPECT_NEAR(serial.norm(), 1.0, 1e-9);
}

DatasetGenConfig labelling_config() {
  DatasetGenConfig config;
  config.num_instances = 8;
  config.min_nodes = 4;
  config.max_nodes = 8;
  config.optimizer_evaluations = 60;
  config.seed = 11;
  return config;
}

TEST(ParallelDataset, LabelsIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_threads(1);
  const auto serial = generate_dataset(labelling_config());
  ThreadPool::set_global_threads(2);
  const auto two = generate_dataset(labelling_config());
  ThreadPool::set_global_threads(8);
  const auto eight = generate_dataset(labelling_config());

  ASSERT_EQ(serial.size(), two.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label.gammas, two[i].label.gammas);
    EXPECT_EQ(serial[i].label.betas, two[i].label.betas);
    EXPECT_EQ(serial[i].label.gammas, eight[i].label.gammas);
    EXPECT_EQ(serial[i].label.betas, eight[i].label.betas);
    EXPECT_EQ(serial[i].expectation, eight[i].expectation);
    EXPECT_EQ(serial[i].optimum, eight[i].optimum);
    EXPECT_EQ(serial[i].approximation_ratio, eight[i].approximation_ratio);
    EXPECT_EQ(serial[i].degree, eight[i].degree);
  }
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ParallelDataset, SavedRecordsByteIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const std::string dir1 = ::testing::TempDir() + "/qgnn_parallel_ds1";
  const std::string dir8 = ::testing::TempDir() + "/qgnn_parallel_ds8";
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir8);

  ThreadPool::set_global_threads(1);
  save_dataset(dir1, generate_dataset(labelling_config()));
  ThreadPool::set_global_threads(8);
  save_dataset(dir8, generate_dataset(labelling_config()));

  const std::string manifest1 = slurp(dir1 + "/manifest.csv");
  const std::string manifest8 = slurp(dir8 + "/manifest.csv");
  ASSERT_FALSE(manifest1.empty());
  EXPECT_EQ(manifest1, manifest8);

  for (const auto& entry :
       std::filesystem::directory_iterator(dir1 + "/graphs")) {
    const auto name = entry.path().filename();
    EXPECT_EQ(slurp(entry.path()),
              slurp(std::filesystem::path(dir8) / "graphs" / name))
        << name;
  }
}

TEST(ParallelDataset, FeatureExtractionIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_threads(1);
  const auto entries = generate_dataset(labelling_config());
  FeatureConfig features;
  const auto serial = to_train_samples(entries, features);
  ThreadPool::set_global_threads(8);
  const auto parallel = to_train_samples(entries, features);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].target.cols(), parallel[i].target.cols());
    for (std::size_t j = 0; j < serial[i].target.cols(); ++j) {
      EXPECT_EQ(serial[i].target(0, j), parallel[i].target(0, j));
    }
    ASSERT_EQ(serial[i].batch.num_nodes, parallel[i].batch.num_nodes);
    EXPECT_EQ(serial[i].batch.edge_src, parallel[i].batch.edge_src);
  }
}

TEST(ParallelPipeline, RandomBaselineIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  DatasetGenConfig config = labelling_config();
  const auto graphs = generate_graphs(config);
  std::vector<DatasetEntry> entries(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    entries[i].graph = graphs[i];
  }
  ThreadPool::set_global_threads(1);
  const auto serial = random_baseline_ar(entries, 1, 77);
  ThreadPool::set_global_threads(8);
  const auto parallel = random_baseline_ar(entries, 1, 77);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "entry " << i;
  }
}

/// Final weight matrices after a short training run at `threads` lanes.
std::vector<Matrix> trained_weights(int threads) {
  ThreadPool::set_global_threads(threads);

  Rng data_rng(21);
  std::vector<TrainSample> samples;
  GnnModelConfig model_config;
  model_config.hidden_dim = 8;
  model_config.features.max_nodes = 8;
  model_config.dropout = 0.3;  // exercise the per-slot dropout streams
  for (int i = 0; i < 12; ++i) {
    const Graph g = random_regular_graph(6 + 2 * (i % 2), 3, data_rng);
    TrainSample s;
    s.batch = make_graph_batch(g, model_config.features);
    s.target = Matrix(1, 2, 0.1 * static_cast<double>(i % 5));
    samples.push_back(std::move(s));
  }

  Rng model_rng(7);
  GnnModel model(model_config, model_rng);
  TrainerConfig config;
  config.epochs = 4;
  config.batch_size = 5;
  config.validation_fraction = 0.2;
  Rng train_rng(13);
  train_gnn(model, samples, config, train_rng);

  std::vector<Matrix> weights;
  for (const ag::Var& p : model.params()) weights.push_back(p.value());
  return weights;
}

TEST(ParallelTrainer, FinalWeightsIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const auto serial = trained_weights(1);
  const auto four = trained_weights(4);
  const auto eight = trained_weights(8);
  ASSERT_EQ(serial.size(), four.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(serial[p].rows(), four[p].rows());
    ASSERT_EQ(serial[p].cols(), four[p].cols());
    for (std::size_t r = 0; r < serial[p].rows(); ++r) {
      for (std::size_t c = 0; c < serial[p].cols(); ++c) {
        ASSERT_EQ(serial[p](r, c), four[p](r, c))
            << "param " << p << " (" << r << "," << c << ") at 4 threads";
        ASSERT_EQ(serial[p](r, c), eight[p](r, c))
            << "param " << p << " (" << r << "," << c << ") at 8 threads";
      }
    }
  }
}

TEST(ParallelTrainer, EvaluateMseIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  Rng data_rng(31);
  GnnModelConfig model_config;
  model_config.hidden_dim = 8;
  model_config.features.max_nodes = 8;
  std::vector<TrainSample> samples;
  for (int i = 0; i < 9; ++i) {
    const Graph g = random_regular_graph(6, 3, data_rng);
    TrainSample s;
    s.batch = make_graph_batch(g, model_config.features);
    s.target = Matrix(1, 2, 0.25);
    samples.push_back(std::move(s));
  }
  Rng model_rng(5);
  const GnnModel model(model_config, model_rng);

  ThreadPool::set_global_threads(1);
  const double serial = evaluate_mse(model, samples);
  ThreadPool::set_global_threads(8);
  const double parallel = evaluate_mse(model, samples);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace qgnn
