#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/initializers.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(RandomInitializer, AnglesInCanonicalRanges) {
  RandomInitializer init{Rng(3)};
  const Graph g = cycle_graph(5);
  for (int trial = 0; trial < 50; ++trial) {
    const QaoaParams p = init.initialize(g, 2);
    ASSERT_EQ(p.depth(), 2);
    for (double gamma : p.gammas) {
      EXPECT_GE(gamma, 0.0);
      EXPECT_LT(gamma, 2 * kPi);
    }
    for (double beta : p.betas) {
      EXPECT_GE(beta, 0.0);
      EXPECT_LT(beta, kPi);
    }
  }
}

TEST(RandomInitializer, DeterministicForSameSeed) {
  RandomInitializer a{Rng(9)};
  RandomInitializer b{Rng(9)};
  const Graph g = cycle_graph(4);
  const QaoaParams pa = a.initialize(g, 1);
  const QaoaParams pb = b.initialize(g, 1);
  EXPECT_EQ(pa.gammas, pb.gammas);
  EXPECT_EQ(pa.betas, pb.betas);
}

TEST(RandomInitializer, SuccessiveDrawsDiffer) {
  RandomInitializer init{Rng(5)};
  const Graph g = cycle_graph(4);
  const QaoaParams p1 = init.initialize(g, 1);
  const QaoaParams p2 = init.initialize(g, 1);
  EXPECT_NE(p1.gammas[0], p2.gammas[0]);
}

TEST(FixedAngleInitializer, UsesRegularDegree) {
  FixedAngleInitializer init;
  const Graph g = cycle_graph(6);  // 2-regular
  const QaoaParams p = init.initialize(g, 1);
  const auto expected = fixed_angles(2, 1);
  ASSERT_TRUE(expected.has_value());
  EXPECT_DOUBLE_EQ(p.gammas[0], expected->gammas[0]);
  EXPECT_DOUBLE_EQ(p.betas[0], expected->betas[0]);
}

TEST(FixedAngleInitializer, FallsBackToMeanDegreeForIrregular) {
  FixedAngleInitializer init;
  const Graph g = star_graph(5);  // degrees {4,1,1,1,1}, mean 1.6 -> 2
  const QaoaParams p = init.initialize(g, 1);
  const auto expected = fixed_angles(2, 1);
  ASSERT_TRUE(expected.has_value());
  EXPECT_DOUBLE_EQ(p.gammas[0], expected->gammas[0]);
}

TEST(FixedAngleInitializer, TilesP1AnglesAtUncoveredDepth) {
  FixedAngleInitializer init;
  const Graph g = cycle_graph(6);  // degree 2: no p=2 table entry
  const QaoaParams p = init.initialize(g, 2);
  const auto p1 = fixed_angles(2, 1);
  ASSERT_TRUE(p1.has_value());
  EXPECT_DOUBLE_EQ(p.gammas[0], p1->gammas[0]);
  EXPECT_DOUBLE_EQ(p.gammas[1], p1->gammas[0]);
  EXPECT_DOUBLE_EQ(p.betas[0], p1->betas[0]);
}

TEST(FixedAngleInitializer, UsesTableForThreeRegularDepth2) {
  FixedAngleInitializer init;
  Rng rng(2);
  const Graph g = random_regular_graph(8, 3, rng);
  const QaoaParams p = init.initialize(g, 2);
  const auto expected = fixed_angles(3, 2);
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(p.gammas, expected->gammas);
}

TEST(FixedAngleInitializer, RejectsEmptyGraph) {
  FixedAngleInitializer init;
  EXPECT_THROW(init.initialize(Graph(3), 1), InvalidArgument);
}

TEST(LinearRampInitializer, GammaRampsUpBetaRampsDown) {
  LinearRampInitializer init;
  const Graph g = cycle_graph(4);
  const QaoaParams p = init.initialize(g, 4);
  for (int l = 1; l < 4; ++l) {
    EXPECT_GT(p.gammas[static_cast<std::size_t>(l)],
              p.gammas[static_cast<std::size_t>(l - 1)]);
    EXPECT_LT(p.betas[static_cast<std::size_t>(l)],
              p.betas[static_cast<std::size_t>(l - 1)]);
  }
  for (double b : p.betas) EXPECT_GT(b, 0.0);
}

TEST(GridInitializer, FindsNearOptimalPointOnEvenCycle) {
  GridInitializer init(12);
  const Graph g = cycle_graph(6);
  const QaoaAnsatz ansatz(g);
  const QaoaParams p = init.initialize(g, 1);
  // C6's p=1 optimum is 4.5; a 12x12 grid should get close.
  EXPECT_GT(ansatz.expectation(p), 4.3);
  EXPECT_EQ(init.evaluations_per_call(), 144);
}

TEST(GridInitializer, BeatsExpectedRandomDraw) {
  Rng rng(25);
  const Graph g = random_regular_graph(8, 3, rng);
  const QaoaAnsatz ansatz(g);
  GridInitializer init(6);
  const double at_grid = ansatz.expectation(init.initialize(g, 1));
  // The grid max is at least the random-cut level w/2 (gamma=0 rows sit
  // exactly there), and on regular graphs clearly above it.
  EXPECT_GT(at_grid, g.total_weight() / 2.0);
}

TEST(GridInitializer, Validation) {
  EXPECT_THROW(GridInitializer(1), InvalidArgument);
  GridInitializer init(4);
  EXPECT_THROW(init.initialize(cycle_graph(4), 2), InvalidArgument);
  EXPECT_EQ(init.name(), "grid");
}

TEST(ConstantInitializer, ReturnsStoredParamsAndChecksDepth) {
  const QaoaParams stored = QaoaParams::single(0.4, 0.2);
  ConstantInitializer init(stored);
  const Graph g = cycle_graph(4);
  const QaoaParams p = init.initialize(g, 1);
  EXPECT_EQ(p.gammas, stored.gammas);
  EXPECT_THROW(init.initialize(g, 2), InvalidArgument);
}

TEST(Initializers, Names) {
  EXPECT_EQ(RandomInitializer{Rng(0)}.name(), "random");
  EXPECT_EQ(FixedAngleInitializer{}.name(), "fixed-angle");
  EXPECT_EQ(LinearRampInitializer{}.name(), "linear-ramp");
  EXPECT_EQ(ConstantInitializer{QaoaParams::single(0, 0)}.name(), "constant");
}

}  // namespace
}  // namespace qgnn
