#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "dataset/dataset.hpp"
#include "graph/generators.hpp"
#include "dataset/features.hpp"
#include "dataset/storage.hpp"
#include "graph/hash.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kPi = 3.14159265358979323846;

DatasetGenConfig tiny_config() {
  DatasetGenConfig config;
  config.num_instances = 12;
  config.min_nodes = 3;
  config.max_nodes = 8;
  config.optimizer_evaluations = 40;
  config.seed = 77;
  return config;
}

TEST(Dataset, GeneratesRequestedCount) {
  const auto entries = generate_dataset(tiny_config());
  EXPECT_EQ(entries.size(), 12u);
}

TEST(Dataset, EntriesAreValid) {
  const auto entries = generate_dataset(tiny_config());
  for (const DatasetEntry& e : entries) {
    EXPECT_GE(e.graph.num_nodes(), 3);
    EXPECT_LE(e.graph.num_nodes(), 8);
    EXPECT_TRUE(e.graph.is_regular());
    EXPECT_EQ(e.graph.max_degree(), e.degree);
    EXPECT_GT(e.graph.num_edges(), 0);
    EXPECT_GT(e.optimum, 0.0);
    EXPECT_GT(e.approximation_ratio, 0.0);
    EXPECT_LE(e.approximation_ratio, 1.0 + 1e-9);
    EXPECT_NEAR(e.expectation, e.approximation_ratio * e.optimum, 1e-9);
    // Labels live in the canonical domain.
    for (double g : e.label.gammas) {
      EXPECT_GE(g, 0.0);
      EXPECT_LT(g, 2 * kPi);
    }
    for (double b : e.label.betas) {
      EXPECT_GE(b, 0.0);
      EXPECT_LT(b, kPi);
    }
  }
}

TEST(Dataset, DeterministicForSeed) {
  const auto a = generate_dataset(tiny_config());
  const auto b = generate_dataset(tiny_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(wl_hash(a[i].graph), wl_hash(b[i].graph));
    EXPECT_DOUBLE_EQ(a[i].approximation_ratio, b[i].approximation_ratio);
    EXPECT_EQ(a[i].label.gammas, b[i].label.gammas);
  }
}

TEST(Dataset, DifferentSeedsGiveDifferentData) {
  DatasetGenConfig c1 = tiny_config();
  DatasetGenConfig c2 = tiny_config();
  c2.seed = 78;
  const auto a = generate_dataset(c1);
  const auto b = generate_dataset(c2);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (wl_hash(a[i].graph) == wl_hash(b[i].graph)) ++same;
  }
  EXPECT_LT(same, static_cast<int>(a.size()));
}

TEST(Dataset, LabelsBeatRandomCutBaselineOnAverage) {
  // The label optimizer should push <C> above total_weight/2 on average.
  const auto entries = generate_dataset(tiny_config());
  double above = 0.0;
  for (const DatasetEntry& e : entries) {
    above += e.expectation - e.graph.total_weight() / 2.0;
  }
  EXPECT_GT(above / static_cast<double>(entries.size()), 0.0);
}

TEST(Dataset, ProgressCallbackFires) {
  int calls = 0;
  int last_done = 0;
  DatasetGenConfig config = tiny_config();
  config.num_instances = 4;
  generate_dataset(config, [&](int done, int total) {
    ++calls;
    last_done = done;
    EXPECT_EQ(total, 4);
  });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(last_done, 4);
}

TEST(Dataset, ValidatesConfig) {
  DatasetGenConfig config = tiny_config();
  config.num_instances = 0;
  EXPECT_THROW(generate_dataset(config), InvalidArgument);
  config = tiny_config();
  config.min_nodes = 1;
  EXPECT_THROW(generate_dataset(config), InvalidArgument);
  config = tiny_config();
  config.min_nodes = 10;
  config.max_nodes = 5;
  EXPECT_THROW(generate_dataset(config), InvalidArgument);
}

TEST(CanonicalizeParams, WrapsIntoDomain) {
  const QaoaParams raw({7.0, -1.0}, {3.5, -0.5});
  const QaoaParams c = canonicalize_params(raw);
  EXPECT_NEAR(c.gammas[0], 7.0 - 2 * kPi, 1e-12);
  EXPECT_NEAR(c.gammas[1], 2 * kPi - 1.0, 1e-12);
  EXPECT_NEAR(c.betas[0], 3.5 - kPi, 1e-12);
  EXPECT_NEAR(c.betas[1], kPi - 0.5, 1e-12);
}

TEST(CanonicalizeSymmetric, FoldsIntoHalfSpace) {
  // gamma > pi folds to 2*pi - gamma with beta -> pi - beta.
  const QaoaParams raw = QaoaParams::single(5.0, 0.7);
  const QaoaParams folded = canonicalize_params_symmetric(raw);
  EXPECT_NEAR(folded.gammas[0], 2 * kPi - 5.0, 1e-12);
  EXPECT_NEAR(folded.betas[0], kPi - 0.7, 1e-12);
  // Already in the half-space: untouched.
  const QaoaParams keep = canonicalize_params_symmetric(
      QaoaParams::single(1.0, 0.4));
  EXPECT_NEAR(keep.gammas[0], 1.0, 1e-12);
  EXPECT_NEAR(keep.betas[0], 0.4, 1e-12);
}

TEST(CanonicalizeSymmetric, PreservesExpectation) {
  // The fold is a symmetry of <C>: physics property test across graphs
  // and parameter points, including graphs with triangles.
  Rng rng(19);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = erdos_renyi_graph(7, 0.5, rng);
    if (g.num_edges() == 0) continue;
    const QaoaAnsatz ansatz(g);
    for (double gamma : {3.5, 4.2, 5.9}) {
      for (double beta : {0.3, 1.1, 2.8}) {
        const QaoaParams raw = QaoaParams::single(gamma, beta);
        const QaoaParams folded = canonicalize_params_symmetric(raw);
        EXPECT_LE(folded.gammas[0], kPi + 1e-12);
        EXPECT_NEAR(ansatz.expectation(raw), ansatz.expectation(folded),
                    1e-9)
            << "gamma=" << gamma << " beta=" << beta;
      }
    }
  }
}

TEST(Dataset, SymmetrizedLabelsStayInHalfSpace) {
  DatasetGenConfig config = tiny_config();
  config.symmetrize_labels = true;
  const auto entries = generate_dataset(config);
  for (const DatasetEntry& e : entries) {
    EXPECT_LE(e.label.gammas[0], kPi + 1e-12);
    // Quality metadata still matches the (re-canonicalized) label.
    QaoaAnsatz ansatz(e.graph);
    EXPECT_NEAR(ansatz.expectation(e.label), e.expectation, 1e-9);
  }
}

TEST(TrainTestSplit, SizesAndDisjointness) {
  auto entries = generate_dataset(tiny_config());
  const std::size_t total = entries.size();
  auto [train, test] = train_test_split(std::move(entries), 4, 9);
  EXPECT_EQ(test.size(), 4u);
  EXPECT_EQ(train.size(), total - 4);
  EXPECT_THROW(train_test_split(std::move(train), 100, 9), InvalidArgument);
}

TEST(TrainTestSplit, DeterministicForSeed) {
  auto a = generate_dataset(tiny_config());
  auto b = a;
  auto [ta, sa] = train_test_split(std::move(a), 3, 5);
  auto [tb, sb] = train_test_split(std::move(b), 3, 5);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(wl_hash(sa[i].graph), wl_hash(sb[i].graph));
  }
}

TEST(Storage, RoundTrip) {
  const auto entries = generate_dataset(tiny_config());
  const std::string dir = ::testing::TempDir() + "/qgnn_dataset_rt";
  std::filesystem::remove_all(dir);
  save_dataset(dir, entries);
  const auto loaded = load_dataset(dir);
  ASSERT_EQ(loaded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded[i].graph.num_nodes(), entries[i].graph.num_nodes());
    EXPECT_EQ(loaded[i].graph.num_edges(), entries[i].graph.num_edges());
    EXPECT_EQ(loaded[i].degree, entries[i].degree);
    EXPECT_DOUBLE_EQ(loaded[i].approximation_ratio,
                     entries[i].approximation_ratio);
    EXPECT_DOUBLE_EQ(loaded[i].optimum, entries[i].optimum);
    EXPECT_EQ(loaded[i].label.gammas, entries[i].label.gammas);
    EXPECT_EQ(loaded[i].label.betas, entries[i].label.betas);
  }
  // Graph files exist on disk, one per instance.
  std::size_t files = 0;
  for (const auto& p :
       std::filesystem::directory_iterator(dir + "/graphs")) {
    (void)p;
    ++files;
  }
  EXPECT_EQ(files, entries.size());
}

TEST(Storage, LoadRejectsMissingDirectory) {
  EXPECT_THROW(load_dataset("/nonexistent/qgnn_ds"), IoError);
}

TEST(Features, TargetRoundTrip) {
  const QaoaParams label({0.8, 1.2}, {0.4, 0.9});
  const Matrix row = label_to_target(label);
  ASSERT_EQ(row.cols(), 4u);
  EXPECT_DOUBLE_EQ(row(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(row(0, 2), 0.4);
  const QaoaParams back = target_to_params(row);
  EXPECT_EQ(back.gammas, label.gammas);
  EXPECT_EQ(back.betas, label.betas);
}

TEST(Features, TargetToParamsWrapsAngles) {
  Matrix row(1, 2);
  row(0, 0) = -0.5;       // gamma wraps to 2*pi - 0.5
  row(0, 1) = 4.0;        // beta wraps to 4 - pi
  const QaoaParams p = target_to_params(row);
  EXPECT_NEAR(p.gammas[0], 2 * kPi - 0.5, 1e-12);
  EXPECT_NEAR(p.betas[0], 4.0 - kPi, 1e-12);
  EXPECT_THROW(target_to_params(Matrix(1, 3)), InvalidArgument);
}

TEST(Features, ToTrainSamplesBuildsBatches) {
  const auto entries = generate_dataset(tiny_config());
  const FeatureConfig config{NodeFeatureKind::kDegreeScaledOneHot, 15};
  const auto samples = to_train_samples(entries, config);
  ASSERT_EQ(samples.size(), entries.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].batch.num_nodes, entries[i].graph.num_nodes());
    EXPECT_EQ(samples[i].batch.features.cols(), 15u);
    EXPECT_EQ(samples[i].target.cols(), 2u);
    EXPECT_DOUBLE_EQ(samples[i].weight, 1.0);
  }
}

}  // namespace
}  // namespace qgnn
