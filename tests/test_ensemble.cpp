#include <gtest/gtest.h>

#include <cmath>

#include "core/ensemble_initializer.hpp"
#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kTwoPi = 6.283185307179586;
constexpr double kPi = 3.14159265358979323846;

TEST(CircularMean, HandlesWrapAround) {
  // 0.1 and 2*pi - 0.1 straddle the wrap point: circular mean ~ 0, while
  // an arithmetic mean would give pi.
  const double m = EnsembleInitializer::circular_mean(
      {0.1, kTwoPi - 0.1}, kTwoPi);
  EXPECT_TRUE(std::abs(m) < 1e-9 || std::abs(m - kTwoPi) < 1e-9) << m;
}

TEST(CircularMean, ReducesToArithmeticAwayFromWrap) {
  const double m =
      EnsembleInitializer::circular_mean({1.0, 1.4, 1.2}, kTwoPi);
  EXPECT_NEAR(m, 1.2, 1e-9);
}

TEST(CircularMean, RespectsPeriod) {
  // With period pi, 0.1 and pi - 0.1 also straddle the wrap point.
  const double m =
      EnsembleInitializer::circular_mean({0.1, kPi - 0.1}, kPi);
  EXPECT_TRUE(std::abs(m) < 1e-9 || std::abs(m - kPi) < 1e-9) << m;
}

TEST(CircularMean, DegenerateSpreadFallsBack) {
  // Opposite points cancel exactly: defined fallback is the first angle.
  const double m =
      EnsembleInitializer::circular_mean({0.0, kPi}, kTwoPi);
  EXPECT_NEAR(m, 0.0, 1e-9);
  EXPECT_THROW(EnsembleInitializer::circular_mean({}, kTwoPi),
               InvalidArgument);
  EXPECT_THROW(EnsembleInitializer::circular_mean({1.0}, 0.0),
               InvalidArgument);
}

PipelineConfig tiny() {
  PipelineConfig config;
  config.dataset.num_instances = 20;
  config.dataset.min_nodes = 3;
  config.dataset.max_nodes = 8;
  config.dataset.optimizer_evaluations = 40;
  config.dataset.seed = 6;
  config.test_count = 4;
  config.model.hidden_dim = 8;
  config.trainer.epochs = 5;
  config.trainer.validation_fraction = 0.0;
  config.seed = 60;
  return config;
}

TEST(EnsembleInitializer, CombinesModels) {
  const PipelineConfig config = tiny();
  const PreparedData data = prepare_data(config);
  std::vector<std::shared_ptr<const GnnModel>> models;
  for (GnnArch arch : {GnnArch::kGCN, GnnArch::kGIN}) {
    models.push_back(train_arch(arch, data, config).first);
  }
  EnsembleInitializer ensemble(models);
  EXPECT_EQ(ensemble.size(), 2u);
  EXPECT_EQ(ensemble.name(), "gnn-ensemble(2)");
  const QaoaParams p = ensemble.initialize(data.test[0].graph, 1);
  EXPECT_GE(p.gammas[0], 0.0);
  EXPECT_LT(p.gammas[0], kTwoPi);
  EXPECT_GE(p.betas[0], 0.0);
  EXPECT_LT(p.betas[0], kPi + 1e-12);
  EXPECT_THROW(ensemble.initialize(data.test[0].graph, 2), InvalidArgument);
}

TEST(EnsembleInitializer, SingleModelMatchesGnnInitializer) {
  const PipelineConfig config = tiny();
  const PreparedData data = prepare_data(config);
  auto model = train_arch(GnnArch::kGCN, data, config).first;
  EnsembleInitializer ensemble({model});
  GnnInitializer single(model);
  const Graph& g = data.test[0].graph;
  const QaoaParams pe = ensemble.initialize(g, 1);
  const QaoaParams ps = single.initialize(g, 1);
  EXPECT_NEAR(pe.gammas[0], ps.gammas[0], 1e-9);
  EXPECT_NEAR(pe.betas[0], ps.betas[0], 1e-9);
}

TEST(EnsembleInitializer, Validation) {
  EXPECT_THROW(EnsembleInitializer({}), InvalidArgument);
  EXPECT_THROW(EnsembleInitializer({nullptr}), InvalidArgument);
}

}  // namespace
}  // namespace qgnn
