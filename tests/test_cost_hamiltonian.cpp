#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "maxcut/maxcut.hpp"
#include "qaoa/cost_hamiltonian.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(CostHamiltonian, DiagonalMatchesCutValues) {
  Rng rng(3);
  const Graph g = erdos_renyi_graph(6, 0.5, rng);
  const CostHamiltonian cost(g);
  for (std::uint64_t x = 0; x < cost.dimension(); ++x) {
    EXPECT_DOUBLE_EQ(cost.value(x), cut_value(g, x)) << "state " << x;
  }
}

TEST(CostHamiltonian, WeightedDiagonal) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 0.25);
  const CostHamiltonian cost(g);
  EXPECT_DOUBLE_EQ(cost.value(0b010), 2.25);
  EXPECT_DOUBLE_EQ(cost.value(0b001), 2.0);
  EXPECT_DOUBLE_EQ(cost.value(0b100), 0.25);
  EXPECT_DOUBLE_EQ(cost.value(0b000), 0.0);
}

class MaxValueTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxValueTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = erdos_renyi_graph(GetParam(), 0.5, rng);
  const CostHamiltonian cost(g);
  const Cut opt = max_cut_brute_force(g);
  EXPECT_DOUBLE_EQ(cost.max_value(), opt.value);
  EXPECT_DOUBLE_EQ(cost.value(cost.argmax()), cost.max_value());
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, MaxValueTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(CostHamiltonian, ApplyPhasePreservesNormAndProbabilities) {
  const Graph g = cycle_graph(5);
  const CostHamiltonian cost(g);
  StateVector s = StateVector::plus_state(5);
  cost.apply_phase(s, 0.83);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
  for (std::uint64_t k = 0; k < 32; ++k) {
    EXPECT_NEAR(s.probability(k), 1.0 / 32.0, 1e-12);
  }
}

TEST(CostHamiltonian, ExpectationOnBasisStates) {
  const Graph g = path_graph(3);
  const CostHamiltonian cost(g);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const StateVector s = StateVector::basis_state(3, x);
    EXPECT_NEAR(cost.expectation(s), cost.value(x), 1e-12);
  }
}

TEST(CostHamiltonian, ExpectationOnPlusStateIsHalfWeight) {
  // <+|C|+> = sum_e w_e / 2 (each edge crossed with prob 1/2).
  Graph g(4);
  g.add_edge(0, 1, 1.5);
  g.add_edge(2, 3, 2.0);
  g.add_edge(0, 3, 1.0);
  const CostHamiltonian cost(g);
  const StateVector s = StateVector::plus_state(4);
  EXPECT_NEAR(cost.expectation(s), g.total_weight() / 2.0, 1e-12);
}

TEST(CostHamiltonian, MismatchedStateThrows) {
  const CostHamiltonian cost(cycle_graph(4));
  StateVector s(3);
  EXPECT_THROW(cost.apply_phase(s, 0.1), InvalidArgument);
  EXPECT_THROW(cost.expectation(s), InvalidArgument);
}

TEST(CostHamiltonian, EdgelessGraphHasZeroCost) {
  const CostHamiltonian cost(Graph(3));
  EXPECT_DOUBLE_EQ(cost.max_value(), 0.0);
  for (std::uint64_t x = 0; x < 8; ++x) EXPECT_DOUBLE_EQ(cost.value(x), 0.0);
}

}  // namespace
}  // namespace qgnn
