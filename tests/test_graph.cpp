#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/hash.hpp"
#include "graph/io.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(Graph, BasicConstruction) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2, 2.5);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 1), 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.5);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0), InvalidArgument);          // self loop
  EXPECT_THROW(g.add_edge(0, 3), InvalidArgument);          // out of range
  EXPECT_THROW(g.add_edge(-1, 1), InvalidArgument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), InvalidArgument);          // duplicate
  EXPECT_THROW(g.edge_weight(0, 2), InvalidArgument);       // missing edge
}

TEST(Graph, DegreesAndNeighbors) {
  Graph g = star_graph(5);
  EXPECT_EQ(g.degree(0), 4);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.min_degree(), 1);
  EXPECT_FALSE(g.is_regular());
  const auto& nbrs = g.neighbors(0);
  EXPECT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(cycle_graph(5).is_connected());
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
  EXPECT_FALSE(Graph(2).is_connected());
}

TEST(Graph, DegreeSequenceSorted) {
  Graph g = path_graph(4);
  EXPECT_EQ(g.degree_sequence(), (std::vector<int>{1, 1, 2, 2}));
}

TEST(Graph, PermutedPreservesStructure) {
  Graph g = cycle_graph(5);
  const std::vector<int> perm{2, 0, 4, 1, 3};
  Graph p = g.permuted(perm);
  EXPECT_EQ(p.num_edges(), g.num_edges());
  EXPECT_EQ(p.degree_sequence(), g.degree_sequence());
  EXPECT_TRUE(p.has_edge(perm[0], perm[1]));
  EXPECT_THROW(g.permuted({0, 1, 2}), InvalidArgument);      // wrong size
  EXPECT_THROW(g.permuted({0, 0, 1, 2, 3}), InvalidArgument);  // repeat
}

TEST(Graph, DescribeMentionsRegularity) {
  EXPECT_NE(cycle_graph(4).describe().find("regular deg=2"),
            std::string::npos);
  Rng rng(1);
  Graph w = with_random_weights(cycle_graph(4), 0.5, 2.0, rng);
  EXPECT_NE(w.describe().find("weighted"), std::string::npos);
}

TEST(Generators, CompleteGraph) {
  Graph g = complete_graph(5);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Generators, CycleAndPathAndStar) {
  EXPECT_EQ(cycle_graph(6).num_edges(), 6);
  EXPECT_EQ(path_graph(6).num_edges(), 5);
  EXPECT_EQ(star_graph(6).num_edges(), 5);
  EXPECT_THROW(cycle_graph(2), InvalidArgument);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(3);
  EXPECT_EQ(erdos_renyi_graph(6, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(erdos_renyi_graph(6, 1.0, rng).num_edges(), 15);
}

TEST(Generators, RegularGraphExistence) {
  EXPECT_TRUE(regular_graph_exists(4, 3));
  EXPECT_FALSE(regular_graph_exists(4, 4));   // d >= n
  EXPECT_FALSE(regular_graph_exists(5, 3));   // odd n*d
  EXPECT_TRUE(regular_graph_exists(2, 1));
  EXPECT_TRUE(regular_graph_exists(3, 0));
}

TEST(Generators, RandomRegularThrowsOnImpossible) {
  Rng rng(1);
  EXPECT_THROW(random_regular_graph(5, 3, rng), InvalidArgument);
}

struct RegularCase {
  int n;
  int d;
};

class RandomRegularTest : public ::testing::TestWithParam<RegularCase> {};

TEST_P(RandomRegularTest, ProducesSimpleRegularGraph) {
  const auto [n, d] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + d));
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_regular_graph(n, d, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n * d / 2);
    for (int v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRegularTest,
    ::testing::Values(RegularCase{2, 1}, RegularCase{4, 2}, RegularCase{4, 3},
                      RegularCase{6, 3}, RegularCase{8, 5}, RegularCase{10, 4},
                      RegularCase{12, 7}, RegularCase{15, 4},
                      RegularCase{15, 14}, RegularCase{14, 13}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.d);
    });

TEST(Generators, RandomRegularDeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  const Graph g1 = random_regular_graph(10, 3, a);
  const Graph g2 = random_regular_graph(10, 3, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (int i = 0; i < g1.num_edges(); ++i) {
    EXPECT_EQ(g1.edges()[i], g2.edges()[i]);
  }
}

TEST(Generators, RandomWeightsInRange) {
  Rng rng(9);
  const Graph g = with_random_weights(complete_graph(6), 0.25, 1.75, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 0.25);
    EXPECT_LT(e.weight, 1.75);
  }
  EXPECT_FALSE(g.is_unweighted());
}

TEST(GraphIo, StreamRoundTrip) {
  Rng rng(4);
  Graph g = with_random_weights(random_regular_graph(8, 3, rng), 0.1, 2.0,
                                rng);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (int i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(h.edges()[i].u, g.edges()[i].u);
    EXPECT_EQ(h.edges()[i].v, g.edges()[i].v);
    EXPECT_DOUBLE_EQ(h.edges()[i].weight, g.edges()[i].weight);
  }
}

TEST(GraphIo, IgnoresCommentsAndDefaultsWeight) {
  std::stringstream ss(
      "# a comment\nqgnn-graph v1\n# another\n3 2\n0 1\n1 2 2.0\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.0);
}

TEST(GraphIo, RejectsCorruptInput) {
  std::stringstream bad_header("not-a-graph\n1 0\n");
  EXPECT_THROW(read_graph(bad_header), IoError);
  std::stringstream truncated("qgnn-graph v1\n3 2\n0 1 1.0\n");
  EXPECT_THROW(read_graph(truncated), IoError);
  std::stringstream bad_edge("qgnn-graph v1\n3 1\n0 0 1.0\n");
  EXPECT_THROW(read_graph(bad_edge), IoError);
}

TEST(GraphIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/qgnn_graph_test.txt";
  const Graph g = cycle_graph(5);
  save_graph(path, g);
  const Graph h = load_graph(path);
  EXPECT_EQ(h.num_edges(), 5);
  EXPECT_THROW(load_graph("/nonexistent/dir/file.txt"), IoError);
}

TEST(GraphIo, CompactStringRoundTrip) {
  Graph g(3);
  g.add_edge(0, 2, 1.5);
  g.add_edge(1, 2);
  const std::string s = graph_to_compact_string(g);
  const Graph h = graph_from_compact_string(s);
  EXPECT_EQ(h.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(h.edge_weight(0, 2), 1.5);
  EXPECT_THROW(graph_from_compact_string("garbage"), IoError);
}

TEST(WlHash, InvariantUnderPermutation) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_regular_graph(9, 4, rng);
    std::vector<int> perm(9);
    for (int i = 0; i < 9; ++i) perm[static_cast<std::size_t>(i)] = i;
    Rng prng(static_cast<std::uint64_t>(trial));
    prng.shuffle(perm);
    EXPECT_EQ(wl_hash(g), wl_hash(g.permuted(perm)));
  }
}

TEST(WlHash, DistinguishesDifferentGraphs) {
  EXPECT_NE(wl_hash(cycle_graph(6)), wl_hash(path_graph(6)));
  EXPECT_NE(wl_hash(cycle_graph(6)), wl_hash(complete_graph(6)));
  EXPECT_NE(wl_hash(star_graph(5)), wl_hash(path_graph(5)));
}

TEST(WlHash, SensitiveToWeights) {
  Graph a = cycle_graph(4);
  Graph b(4);
  for (const Edge& e : a.edges()) b.add_edge(e.u, e.v, 2.0);
  EXPECT_NE(wl_hash(a), wl_hash(b));
}

}  // namespace
}  // namespace qgnn
