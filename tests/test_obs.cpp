#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnn/trainer.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qaoa/optimize.hpp"
#include "quantum/statevector.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {
namespace {

/// Restores the process-wide observability switch on scope exit.
struct ObsEnabledGuard {
  bool saved = obs::enabled();
  ~ObsEnabledGuard() { obs::set_enabled(saved); }
};

// ---- Counter ------------------------------------------------------------

TEST(ObsCounter, AddsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentAddsFromEightThreadsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  // Shards merge losslessly: every relaxed increment lands in some shard.
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

// ---- Gauge --------------------------------------------------------------

TEST(ObsGauge, SetAddAndHighWaterMark) {
  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.record_max(2.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.record_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---- LatencyHistogram ---------------------------------------------------

TEST(ObsHistogram, CountSumMinMaxExact) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  const std::vector<double> values{0.5, 12.0, 12.0, 400.0, 1e6};
  for (double v : values) h.record(v);
  EXPECT_EQ(h.count(), values.size());
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 12.0 + 12.0 + 400.0 + 1e6);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  const obs::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, values.size());
  EXPECT_DOUBLE_EQ(s.mean, h.sum() / 5.0);
}

TEST(ObsHistogram, BucketBoundsContainTheirValues) {
  for (double v : {1e-4, 0.01, 0.7, 1.0, 3.0, 127.0, 4096.5, 1e7, 2e9}) {
    const std::size_t b = obs::LatencyHistogram::bucket_of(v);
    EXPECT_LE(obs::LatencyHistogram::bucket_lo(b), v) << "value " << v;
    EXPECT_LT(v, obs::LatencyHistogram::bucket_hi(b)) << "value " << v;
  }
  // Non-positive and non-finite values land in the underflow bucket.
  EXPECT_EQ(obs::LatencyHistogram::bucket_of(0.0), 0u);
  EXPECT_EQ(obs::LatencyHistogram::bucket_of(-3.0), 0u);
}

TEST(ObsHistogram, PercentilesTrackSerialReferenceWithin15Percent) {
  // Log-spaced latencies spanning five decades: the regime histogram
  // quantiles are hardest for. The reference is the exact ceil-rank
  // order statistic on the sorted samples.
  Rng rng(99);
  std::vector<double> values;
  values.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    values.push_back(std::pow(10.0, rng.uniform(0.0, 5.0)));
  }
  obs::LatencyHistogram h;
  for (double v : values) h.record(v);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(std::max<double>(
        1.0, std::ceil(q * static_cast<double>(sorted.size()))));
    const double reference = sorted[rank - 1];
    const double estimate = h.percentile(q);
    EXPECT_NEAR(estimate, reference, 0.15 * reference) << "q=" << q;
  }
}

TEST(ObsHistogram, PercentilesAreMonotoneAndClampedToExtrema) {
  obs::LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.record(rng.uniform(3.0, 7000.0));
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    EXPECT_GE(p, h.min());
    EXPECT_LE(p, h.max());
    prev = p;
  }
}

TEST(ObsHistogram, ConcurrentIntegerRecordsKeepExactCountAndSum) {
  obs::LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(1 + (t * kPerThread + i) % 1024));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  // Integer-valued samples sum exactly in doubles, and per-shard partial
  // sums merge losslessly, so the total is exact, not approximate.
  double expected = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected += static_cast<double>(1 + (t * kPerThread + i) % 1024);
    }
  }
  EXPECT_DOUBLE_EQ(h.sum(), expected);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1024.0);
}

TEST(ObsHistogram, MergeCombinesCountsAndExtrema) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram b;
  for (double v : {1.0, 2.0, 3.0}) a.record(v);
  for (double v : {100.0, 200.0}) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 306.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 200.0);
}

// ---- MetricsRegistry ----------------------------------------------------

TEST(ObsRegistry, ReferencesAreStableAndSnapshotMatches) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("test.counter");
  obs::Counter& c2 = registry.counter("test.counter");
  EXPECT_EQ(&c1, &c2);  // same name -> same metric, forever
  c1.add(7);
  registry.gauge("test.gauge").set(2.5);
  registry.histogram("test.hist").record(10.0);

  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.count("test.counter"), 1u);
  EXPECT_EQ(snap.counters.at("test.counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), 2.5);
  EXPECT_EQ(snap.histograms.at("test.hist").count, 1u);

  registry.reset();
  EXPECT_EQ(c1.value(), 0u);  // reset zeroes, references stay valid
  EXPECT_EQ(registry.snapshot().counters.at("test.counter"), 0u);
}

TEST(ObsExport, TextAndJsonRenderTheSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("demo.requests").add(42);
  registry.gauge("demo.depth").set(3.0);
  registry.histogram("demo.lat_us").record(100.0);

  const auto snap = registry.snapshot();
  const std::string text = obs::render_text(snap);
  EXPECT_NE(text.find("demo.requests"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("demo.lat_us"), std::string::npos);

  // The JSON form must round-trip through the repo's own parser.
  const serve::JsonValue doc = serve::parse_json(obs::render_json(snap));
  ASSERT_TRUE(doc.is_object());
  const serve::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("demo.requests")->number, 42.0);
  const serve::JsonValue* hist = doc.find("histograms")->find("demo.lat_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(hist->find("min")->number, 100.0);
}

// ---- Tracing ------------------------------------------------------------

TEST(ObsTrace, ChromeTraceJsonIsValidAndCarriesMultiThreadSpans) {
  auto& collector = obs::TraceCollector::global();
  collector.start();
  {
    QGNN_TRACE_SPAN("test.outer");
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 5; ++i) {
          QGNN_TRACE_SPAN("test.worker");
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  collector.stop();
  EXPECT_GE(collector.event_count(), 16u);  // 1 outer + 3x5 workers

  std::ostringstream out;
  collector.write_chrome_trace(out);
  const serve::JsonValue doc = serve::parse_json(out.str());
  ASSERT_TRUE(doc.is_object());
  const serve::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->array.size(), 16u);
  std::set<double> tids;
  bool saw_worker = false;
  for (const serve::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    EXPECT_TRUE(e.find("name")->is_string());
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_TRUE(e.find("ts")->is_number());
    EXPECT_TRUE(e.find("dur")->is_number());
    EXPECT_GE(e.find("dur")->number, 0.0);
    tids.insert(e.find("tid")->number);
    if (e.find("name")->string == "test.worker") saw_worker = true;
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_GE(tids.size(), 3u);  // the three worker threads are distinct
}

TEST(ObsTrace, RingBufferBoundsEventsAndCountsDrops) {
  auto& collector = obs::TraceCollector::global();
  collector.start();
  const auto now = std::chrono::steady_clock::now();
  const std::size_t overshoot = obs::TraceCollector::kRingCapacity + 1000;
  for (std::size_t i = 0; i < overshoot; ++i) {
    collector.record("test.flood", now, now);
  }
  collector.stop();
  EXPECT_LE(collector.event_count(), obs::TraceCollector::kRingCapacity);
  EXPECT_GE(collector.dropped_events(), 1000u);
  collector.start();  // clears the flood for any later trace test
  collector.stop();
}

TEST(ObsTrace, InactiveCollectorRecordsNothing) {
  auto& collector = obs::TraceCollector::global();
  collector.start();
  collector.stop();
  {
    QGNN_TRACE_SPAN("test.ignored");
  }
  EXPECT_EQ(collector.event_count(), 0u);
}

// ---- Wiring: thread pool, quantum kernels, QAOA, trainer ---------------

TEST(ObsWiring, ThreadPoolReportsIntoRegistry) {
  ObsEnabledGuard guard;
  obs::set_enabled(true);
  const std::uint64_t jobs_before =
      obs::MetricsRegistry::global().counter("pool.jobs").value();
  const std::uint64_t chunks_before =
      obs::MetricsRegistry::global().counter("pool.chunks").value();

  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 100, 10, [&](std::uint64_t lo, std::uint64_t hi) {
    sum.fetch_add(hi - lo);
  });
  EXPECT_EQ(sum.load(), 100u);

  auto& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.counter("pool.jobs").value(), jobs_before + 1);
  EXPECT_EQ(registry.counter("pool.chunks").value(), chunks_before + 10);
  EXPECT_GE(registry.gauge("pool.max_chunks_in_job").value(), 10.0);
}

TEST(ObsWiring, StatevectorKernelsCountAmplitudesAndTime) {
  ObsEnabledGuard guard;
  obs::set_enabled(true);
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t amps_before =
      registry.counter("quantum.amps_touched").value();
  const std::uint64_t kernels_before =
      registry.histogram("quantum.kernel_us").count();

  // 14 qubits = 2^14 amplitudes: exactly the parallel-dispatch threshold,
  // so norm() must both count its amplitudes and time the kernel.
  const StateVector state = StateVector::plus_state(14);
  EXPECT_NEAR(state.norm(), 1.0, 1e-12);

  EXPECT_GE(registry.counter("quantum.amps_touched").value(),
            amps_before + (std::uint64_t{1} << 14));
  EXPECT_GE(registry.histogram("quantum.kernel_us").count(),
            kernels_before + 1);
}

TEST(ObsWiring, StatevectorCountsNothingWhenDisabled) {
  ObsEnabledGuard guard;
  obs::set_enabled(false);
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t amps_before =
      registry.counter("quantum.amps_touched").value();
  const StateVector state = StateVector::plus_state(14);
  EXPECT_NEAR(state.norm(), 1.0, 1e-12);
  EXPECT_EQ(registry.counter("quantum.amps_touched").value(), amps_before);
}

TEST(ObsWiring, QaoaOptimizerCountsEvaluationsAndRuns) {
  ObsEnabledGuard guard;
  obs::set_enabled(true);
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t evals_before =
      registry.counter("qaoa.evaluations").value();
  const std::uint64_t runs_before =
      registry.counter("qaoa.optimizations").value();

  GridSearchConfig config;
  config.gamma_steps = 3;
  config.beta_steps = 4;
  const Objective objective = [](const std::vector<double>& x) {
    return -(x[0] - 0.4) * (x[0] - 0.4) - (x[1] - 0.2) * (x[1] - 0.2);
  };
  const OptResult result = grid_search_maximize_2d(objective, config);
  EXPECT_EQ(result.evaluations, 12);

  EXPECT_EQ(registry.counter("qaoa.evaluations").value(),
            evals_before + 12);
  EXPECT_EQ(registry.counter("qaoa.optimizations").value(), runs_before + 1);
}

TEST(ObsWiring, TrainerRecordsPerEpochStageTimings) {
  ObsEnabledGuard guard;
  obs::set_enabled(true);
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t epochs_before =
      registry.histogram("train.epoch_us").count();
  const std::uint64_t forward_before =
      registry.histogram("train.forward_us").count();

  constexpr FeatureConfig kFeatures{NodeFeatureKind::kDegreeScaledOneHot,
                                    15};
  Rng rng(17);
  std::vector<TrainSample> samples;
  for (int i = 0; i < 8; ++i) {
    const Graph g = random_regular_graph(6, 3, rng);
    TrainSample s;
    s.batch = make_graph_batch(g, kFeatures);
    s.target = Matrix(1, 2);
    s.target(0, 0) = 0.1;
    s.target(0, 1) = 0.2;
    samples.push_back(std::move(s));
  }
  GnnModelConfig model_config;
  model_config.hidden_dim = 8;
  model_config.num_layers = 1;
  model_config.output_dim = 2;
  GnnModel model(model_config, rng);
  TrainerConfig trainer_config;
  trainer_config.epochs = 2;
  trainer_config.batch_size = 4;
  trainer_config.validation_fraction = 0.25;
  train_gnn(model, samples, trainer_config, rng);

  EXPECT_EQ(registry.histogram("train.epoch_us").count(), epochs_before + 2);
  EXPECT_EQ(registry.histogram("train.forward_us").count(),
            forward_before + 2);
  EXPECT_GT(registry.histogram("train.epoch_us").max(), 0.0);
}

// ---- Disabled mode: no stage records, bit-identical serve outputs ------

TEST(ObsGating, DisabledServeRecordsNoStagesAndMatchesEnabledBitExact) {
  ObsEnabledGuard guard;

  GnnModelConfig model_config;
  Rng graph_rng(404);
  std::vector<Graph> graphs;
  for (int i = 0; i < 12; ++i) {
    graphs.push_back(random_regular_graph(8, 3, graph_rng));
  }

  auto run = [&](bool enabled) {
    obs::set_enabled(enabled);
    serve::ServeConfig config;
    config.max_batch = 4;
    config.cache_capacity = 16;
    serve::ServeHandle handle(config);
    Rng model_rng(5);
    handle.register_model(config.default_model,
                          GnnModel(model_config, model_rng));
    std::vector<Matrix> values;
    for (const Graph& g : graphs) {
      values.push_back(handle.predict(g).values);
    }
    return std::make_pair(std::move(values), handle.stats());
  };

  const auto [disabled_values, disabled_stats] = run(false);
  const auto [enabled_values, enabled_stats] = run(true);

  // Observability must never perturb results: predictions are identical
  // to the bit with the switch on or off.
  ASSERT_EQ(disabled_values.size(), enabled_values.size());
  for (std::size_t i = 0; i < disabled_values.size(); ++i) {
    ASSERT_EQ(disabled_values[i].cols(), enabled_values[i].cols());
    for (std::size_t j = 0; j < disabled_values[i].cols(); ++j) {
      EXPECT_EQ(disabled_values[i](0, j), enabled_values[i](0, j));
    }
  }

  // Disabled mode records no stage samples at all...
  EXPECT_EQ(disabled_stats.forward_us.count, 0u);
  EXPECT_EQ(disabled_stats.batch_form_us.count, 0u);
  EXPECT_EQ(disabled_stats.queue_wait_us.count, 0u);
  EXPECT_EQ(disabled_stats.cache_lookup_us.count, 0u);
  EXPECT_EQ(disabled_stats.batch_size.count, 0u);
  // ...while the pre-existing request accounting still works.
  EXPECT_EQ(disabled_stats.requests, graphs.size());

  // Enabled mode populates the stages.
  EXPECT_GT(enabled_stats.forward_us.count, 0u);
  EXPECT_GT(enabled_stats.cache_lookup_us.count, 0u);
  EXPECT_EQ(enabled_stats.batch_size.sum,
            static_cast<double>(enabled_stats.batched_requests));
}

}  // namespace
}  // namespace qgnn
