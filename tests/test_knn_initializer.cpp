#include <gtest/gtest.h>

#include "core/knn_initializer.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

DatasetEntry make_entry(Graph g, double gamma, double beta) {
  DatasetEntry e;
  e.degree = g.num_nodes() > 0 ? g.max_degree() : 0;
  e.graph = std::move(g);
  e.label = QaoaParams::single(gamma, beta);
  e.optimum = 1.0;
  e.approximation_ratio = 1.0;
  return e;
}

TEST(KnnInitializer, ExactMatchReturnsItsLabel) {
  std::vector<DatasetEntry> train;
  train.push_back(make_entry(cycle_graph(6), 0.11, 0.21));
  train.push_back(make_entry(complete_graph(6), 0.12, 0.22));
  train.push_back(make_entry(star_graph(6), 0.13, 0.23));
  NearestNeighborInitializer init(train);

  // The same graphs map back to themselves (distance 0).
  EXPECT_DOUBLE_EQ(init.initialize(cycle_graph(6), 1).gammas[0], 0.11);
  EXPECT_DOUBLE_EQ(init.initialize(complete_graph(6), 1).gammas[0], 0.12);
  EXPECT_DOUBLE_EQ(init.initialize(star_graph(6), 1).gammas[0], 0.13);
}

TEST(KnnInitializer, PicksStructurallyClosestEntry) {
  std::vector<DatasetEntry> train;
  train.push_back(make_entry(cycle_graph(8), 0.5, 0.1));       // sparse
  train.push_back(make_entry(complete_graph(8), 2.5, 0.9));    // dense
  NearestNeighborInitializer init(train);

  // A 3-regular graph (mean degree 3) is closer to the cycle (degree 2)
  // than to K8 (degree 7).
  Rng rng(4);
  const Graph g = random_regular_graph(8, 3, rng);
  EXPECT_EQ(init.nearest_index(g), 0u);
  // A 6-regular graph is closer to K8.
  const Graph h = random_regular_graph(8, 6, rng);
  EXPECT_EQ(init.nearest_index(h), 1u);
}

TEST(KnnInitializer, DescriptorComponents) {
  const auto d = NearestNeighborInitializer::descriptor(complete_graph(6));
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 6.0 / 15.0);     // size
  EXPECT_DOUBLE_EQ(d[1], 5.0 / 15.0);     // mean degree
  EXPECT_DOUBLE_EQ(d[2], 1.0);            // density
  EXPECT_DOUBLE_EQ(d[3], 1.0);            // clustering
}

TEST(KnnInitializer, ValidatesInputs) {
  EXPECT_THROW(NearestNeighborInitializer init({}), InvalidArgument);
  std::vector<DatasetEntry> train;
  train.push_back(make_entry(cycle_graph(4), 0.1, 0.2));
  NearestNeighborInitializer init(train);
  // Training labels are depth 1; requesting depth 2 must throw.
  EXPECT_THROW(init.initialize(cycle_graph(4), 2), InvalidArgument);
  EXPECT_EQ(init.name(), "knn-transfer");
}

TEST(KnnInitializer, TransfersWellWithinDegreeClass) {
  // Labels from fixed angles on 3-regular graphs should transfer to a new
  // 3-regular graph nearly losslessly.
  Rng rng(6);
  std::vector<DatasetEntry> train;
  for (int i = 0; i < 5; ++i) {
    Graph g = random_regular_graph(10, 3, rng);
    QaoaAnsatz ansatz(g);
    const QaoaParams angles = QaoaParams::single(0.6155, 0.3927);
    DatasetEntry e;
    e.graph = std::move(g);
    e.degree = 3;
    e.label = angles;
    e.optimum = ansatz.cost().max_value();
    e.expectation = ansatz.expectation(angles);
    e.approximation_ratio = e.expectation / e.optimum;
    train.push_back(std::move(e));
  }
  NearestNeighborInitializer init(train);
  const Graph target = random_regular_graph(10, 3, rng);
  const QaoaAnsatz ansatz(target);
  const double ar = ansatz.approximation_ratio(init.initialize(target, 1));
  EXPECT_GT(ar, 0.7);
}

}  // namespace
}  // namespace qgnn
