#include <gtest/gtest.h>

#include <cmath>

#include "quantum/gates.hpp"
#include "quantum/statevector.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kTol = 1e-12;
constexpr double kPi = 3.14159265358979323846;

TEST(StateVector, StartsInZeroState) {
  StateVector s(3);
  EXPECT_EQ(s.num_qubits(), 3);
  EXPECT_EQ(s.dimension(), 8u);
  EXPECT_NEAR(s.probability(0), 1.0, kTol);
  EXPECT_NEAR(s.norm(), 1.0, kTol);
}

TEST(StateVector, PlusStateIsUniform) {
  StateVector s = StateVector::plus_state(4);
  for (std::uint64_t k = 0; k < 16; ++k) {
    EXPECT_NEAR(s.probability(k), 1.0 / 16.0, kTol);
  }
  EXPECT_NEAR(s.norm(), 1.0, kTol);
}

TEST(StateVector, BasisState) {
  StateVector s = StateVector::basis_state(3, 5);
  EXPECT_NEAR(s.probability(5), 1.0, kTol);
  EXPECT_THROW(StateVector::basis_state(2, 4), InvalidArgument);
}

TEST(StateVector, RejectsBadQubitCounts) {
  EXPECT_THROW(StateVector(0), InvalidArgument);
  EXPECT_THROW(StateVector(27), InvalidArgument);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVector s(1);
  s.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(s.probability(0), 0.5, kTol);
  EXPECT_NEAR(s.probability(1), 0.5, kTol);
  // H twice is identity.
  s.apply_single_qubit(gates::hadamard(), 0);
  EXPECT_NEAR(s.probability(0), 1.0, kTol);
}

TEST(StateVector, XFlipsTargetOnly) {
  StateVector s(3);
  s.apply_single_qubit(gates::pauli_x(), 1);
  EXPECT_NEAR(s.probability(0b010), 1.0, kTol);
}

TEST(StateVector, ControlledXActsWhenControlSet) {
  // |10>: control q1 set -> CNOT flips q0 -> |11>.
  StateVector s = StateVector::basis_state(2, 0b10);
  s.apply_controlled(gates::pauli_x(), 1, 0);
  EXPECT_NEAR(s.probability(0b11), 1.0, kTol);
  // Control clear -> no action.
  StateVector t = StateVector::basis_state(2, 0b00);
  t.apply_controlled(gates::pauli_x(), 1, 0);
  EXPECT_NEAR(t.probability(0b00), 1.0, kTol);
}

TEST(StateVector, ExpectationZ) {
  StateVector s(2);
  EXPECT_NEAR(s.expectation_z(0), 1.0, kTol);
  s.apply_single_qubit(gates::pauli_x(), 0);
  EXPECT_NEAR(s.expectation_z(0), -1.0, kTol);
  EXPECT_NEAR(s.expectation_z(1), 1.0, kTol);
  s.apply_single_qubit(gates::hadamard(), 1);
  EXPECT_NEAR(s.expectation_z(1), 0.0, kTol);
}

TEST(StateVector, RotationAnglesMatchExpectation) {
  // <Z> after RX(theta) on |0> is cos(theta).
  for (double theta : {0.0, 0.3, kPi / 2, 1.7, kPi}) {
    StateVector s(1);
    s.apply_single_qubit(gates::rx(theta), 0);
    EXPECT_NEAR(s.expectation_z(0), std::cos(theta), 1e-10) << theta;
    EXPECT_NEAR(s.norm(), 1.0, kTol);
  }
}

TEST(StateVector, RzzMatchesControlledDecomposition) {
  // RZZ(theta) == CNOT(a,b) RZ_b(theta) CNOT(a,b) up to global phase:
  // compare fidelities starting from a generic state.
  const double theta = 0.731;
  StateVector s1 = StateVector::plus_state(2);
  s1.apply_single_qubit(gates::ry(0.4), 0);
  StateVector s2 = s1;

  s1.apply_rzz(theta, 0, 1);

  s2.apply_controlled(gates::pauli_x(), 0, 1);
  s2.apply_single_qubit(gates::rz(theta), 1);
  s2.apply_controlled(gates::pauli_x(), 0, 1);

  EXPECT_NEAR(s1.fidelity(s2), 1.0, 1e-10);
}

TEST(StateVector, RzzPhasesByParity) {
  const double theta = 0.5;
  StateVector s = StateVector::basis_state(2, 0b01);  // odd parity
  s.apply_rzz(theta, 0, 1);
  const Amplitude a = s.amplitude(0b01);
  EXPECT_NEAR(a.real(), std::cos(theta / 2.0), kTol);
  EXPECT_NEAR(a.imag(), std::sin(theta / 2.0), kTol);
}

TEST(StateVector, DiagonalPhasePreservesProbabilities) {
  StateVector s = StateVector::plus_state(3);
  std::vector<double> diag(8);
  for (std::size_t k = 0; k < 8; ++k) diag[k] = static_cast<double>(k);
  s.apply_diagonal_phase(diag, 0.37);
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(s.probability(k), 1.0 / 8.0, kTol);
  }
  EXPECT_NEAR(s.norm(), 1.0, kTol);
}

TEST(StateVector, ExpectationDiagonal) {
  StateVector s = StateVector::plus_state(2);
  const std::vector<double> diag{0.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(s.expectation_diagonal(diag), 1.5, kTol);
  StateVector b = StateVector::basis_state(2, 2);
  EXPECT_NEAR(b.expectation_diagonal(diag), 2.0, kTol);
  EXPECT_THROW(s.expectation_diagonal(std::vector<double>(3, 0.0)),
               InvalidArgument);
}

TEST(StateVector, InnerProductAndFidelity) {
  StateVector a(2);
  StateVector b = StateVector::basis_state(2, 1);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, kTol);
  EXPECT_NEAR(a.fidelity(a), 1.0, kTol);
  StateVector c = StateVector::plus_state(2);
  EXPECT_NEAR(c.fidelity(a), 0.25, kTol);
}

TEST(StateVector, SamplingMatchesDistribution) {
  StateVector s(1);
  s.apply_single_qubit(gates::ry(2.0 * std::acos(std::sqrt(0.8))), 0);
  // P(0) = 0.8.
  EXPECT_NEAR(s.probability(0), 0.8, 1e-10);
  Rng rng(17);
  const auto counts = s.sample_counts(rng, 20000);
  const double frac0 =
      static_cast<double>(counts.count(0) ? counts.at(0) : 0) / 20000.0;
  EXPECT_NEAR(frac0, 0.8, 0.02);
}

class GateUnitarityTest : public ::testing::TestWithParam<double> {};

TEST_P(GateUnitarityTest, RotationsAreUnitary) {
  const double theta = GetParam();
  EXPECT_TRUE(gates::is_unitary(gates::rx(theta)));
  EXPECT_TRUE(gates::is_unitary(gates::ry(theta)));
  EXPECT_TRUE(gates::is_unitary(gates::rz(theta)));
  EXPECT_TRUE(gates::is_unitary(gates::phase(theta)));
}

INSTANTIATE_TEST_SUITE_P(AngleSweep, GateUnitarityTest,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, kPi / 2, 2.0,
                                           kPi, 4.0, 2 * kPi, -1.3));

TEST(Gates, FixedGatesAreUnitary) {
  EXPECT_TRUE(gates::is_unitary(gates::identity()));
  EXPECT_TRUE(gates::is_unitary(gates::pauli_x()));
  EXPECT_TRUE(gates::is_unitary(gates::pauli_y()));
  EXPECT_TRUE(gates::is_unitary(gates::pauli_z()));
  EXPECT_TRUE(gates::is_unitary(gates::hadamard()));
  EXPECT_TRUE(gates::is_unitary(gates::s_gate()));
  EXPECT_TRUE(gates::is_unitary(gates::t_gate()));
}

TEST(Gates, AlgebraicIdentities) {
  // S^2 = Z, T^2 = S, HZH = X.
  const auto s2 = gates::multiply(gates::s_gate(), gates::s_gate());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(s2[static_cast<std::size_t>(i)] -
                         gates::pauli_z()[static_cast<std::size_t>(i)]),
                0.0, kTol);
  }
  const auto hzh = gates::multiply(
      gates::hadamard(),
      gates::multiply(gates::pauli_z(), gates::hadamard()));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(hzh[static_cast<std::size_t>(i)] -
                         gates::pauli_x()[static_cast<std::size_t>(i)]),
                0.0, kTol);
  }
}

class NormPreservationTest : public ::testing::TestWithParam<int> {};

TEST_P(NormPreservationTest, RandomGateSequencePreservesNorm) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  StateVector s = StateVector::plus_state(n);
  for (int step = 0; step < 25; ++step) {
    const int q = rng.uniform_int(0, n - 1);
    switch (rng.uniform_int(0, 3)) {
      case 0:
        s.apply_single_qubit(gates::rx(rng.uniform(0, 6.28)), q);
        break;
      case 1:
        s.apply_single_qubit(gates::hadamard(), q);
        break;
      case 2: {
        int q2 = rng.uniform_int(0, n - 1);
        if (q2 == q) q2 = (q2 + 1) % n;
        s.apply_rzz(rng.uniform(0, 6.28), q, q2);
        break;
      }
      default: {
        int q2 = rng.uniform_int(0, n - 1);
        if (q2 == q) q2 = (q2 + 1) % n;
        s.apply_controlled(gates::pauli_x(), q, q2);
        break;
      }
    }
  }
  EXPECT_NEAR(s.norm(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(QubitSweep, NormPreservationTest,
                         ::testing::Values(2, 3, 5, 8, 10));

}  // namespace
}  // namespace qgnn
