#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/qaoa.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(RunQaoa, OptimizationNeverWorsensInitialPoint) {
  Rng rng(4);
  RandomInitializer init{Rng(7)};
  QaoaRunConfig config;
  config.max_evaluations = 120;
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = random_regular_graph(6, 3, rng);
    const QaoaResult r = run_qaoa(g, init, config, rng);
    EXPECT_GE(r.best_expectation, r.initial_expectation - 1e-12);
    EXPECT_GE(r.best_ar, r.initial_ar - 1e-12);
    EXPECT_LE(r.best_ar, 1.0 + 1e-12);
  }
}

TEST(RunQaoa, NoneOptimizerEvaluatesOnce) {
  Rng rng(4);
  ConstantInitializer init(QaoaParams::single(0.5, 0.3));
  QaoaRunConfig config;
  config.optimizer = QaoaOptimizer::kNone;
  const Graph g = cycle_graph(6);
  const QaoaResult r = run_qaoa(g, init, config, rng);
  EXPECT_EQ(r.evaluations, 1);
  EXPECT_DOUBLE_EQ(r.best_expectation, r.initial_expectation);
  EXPECT_EQ(r.best_params.gammas, r.initial_params.gammas);
}

TEST(RunQaoa, RespectsEvaluationBudget) {
  Rng rng(4);
  RandomInitializer init{Rng(1)};
  QaoaRunConfig config;
  config.max_evaluations = 60;
  const Graph g = cycle_graph(8);
  const QaoaResult r = run_qaoa(g, init, config, rng);
  EXPECT_LE(r.evaluations, 60);
  EXPECT_EQ(r.trace.size(), static_cast<std::size_t>(r.evaluations));
}

TEST(RunQaoa, NelderMeadNearsOptimumOnEvenCycle) {
  // Even cycles have AR -> 0.75 at the p=1 optimum.
  Rng rng(4);
  ConstantInitializer init(QaoaParams::single(0.5, 0.5));
  QaoaRunConfig config;
  config.max_evaluations = 300;
  const QaoaResult r = run_qaoa(cycle_graph(8), init, config, rng);
  EXPECT_NEAR(r.best_ar, 0.75, 1e-3);
}

TEST(RunQaoa, AdamAlsoImproves) {
  Rng rng(4);
  ConstantInitializer init(QaoaParams::single(0.5, 0.5));
  QaoaRunConfig config;
  config.optimizer = QaoaOptimizer::kAdam;
  config.max_evaluations = 400;
  const QaoaResult r = run_qaoa(cycle_graph(6), init, config, rng);
  EXPECT_GT(r.best_ar, r.initial_ar);
  EXPECT_GT(r.best_ar, 0.70);
}

TEST(RunQaoa, WarmStartFromFixedAnglesStartsHigh) {
  Rng rng(4);
  FixedAngleInitializer warm;
  QaoaRunConfig config;
  config.optimizer = QaoaOptimizer::kNone;
  Rng graph_rng(10);
  const Graph g = random_regular_graph(8, 3, graph_rng);
  const QaoaResult r = run_qaoa(g, warm, config, rng);
  // Fixed angles give a strong p=1 start (well above the 0.5 random-cut
  // level).
  EXPECT_GT(r.initial_ar, 0.6);
}

TEST(RunQaoa, SampledCutIsConsistent) {
  Rng rng(4);
  ConstantInitializer init(QaoaParams::single(0.6, 0.35));
  QaoaRunConfig config;
  config.sample_shots = 64;
  config.max_evaluations = 50;
  const Graph g = cycle_graph(6);
  const QaoaResult r = run_qaoa(g, init, config, rng);
  EXPECT_DOUBLE_EQ(r.sampled_cut.value,
                   cut_value(g, r.sampled_cut.assignment));
  EXPECT_LE(r.sampled_cut.value, r.optimum + 1e-12);
  EXPECT_LT(r.sampled_cut.assignment, std::uint64_t{1} << 6);
}

TEST(RunQaoa, ZeroShotsUsesMostProbableState) {
  Rng rng(4);
  ConstantInitializer init(QaoaParams::single(0.6, 0.35));
  QaoaRunConfig config;
  config.sample_shots = 0;
  config.optimizer = QaoaOptimizer::kNone;
  const Graph g = cycle_graph(4);
  const QaoaResult r = run_qaoa(g, init, config, rng);
  EXPECT_DOUBLE_EQ(r.sampled_cut.value,
                   cut_value(g, r.sampled_cut.assignment));
}

TEST(RunQaoa, DepthMismatchThrows) {
  Rng rng(4);
  QaoaRunConfig config;
  config.depth = 2;
  EXPECT_THROW(
      run_qaoa_from(cycle_graph(4), QaoaParams::single(0.1, 0.1), config, rng),
      InvalidArgument);
}

TEST(RunQaoa, Depth2RunWorks) {
  Rng rng(4);
  ConstantInitializer init(QaoaParams({0.4, 0.6}, {0.5, 0.25}));
  QaoaRunConfig config;
  config.depth = 2;
  config.max_evaluations = 200;
  const QaoaResult r = run_qaoa(cycle_graph(6), init, config, rng);
  EXPECT_EQ(r.best_params.depth(), 2);
  // p=2 on C6 can exceed the p=1 bound of 0.75.
  EXPECT_GT(r.best_ar, 0.75);
}

TEST(EvaluationsToReach, FindsFirstCrossing) {
  const std::vector<double> trace{0.1, 0.3, 0.3, 0.7, 0.9};
  EXPECT_EQ(evaluations_to_reach(trace, 0.3).value(), 2);
  EXPECT_EQ(evaluations_to_reach(trace, 0.65).value(), 4);
  EXPECT_EQ(evaluations_to_reach(trace, 0.95), std::nullopt);
  EXPECT_EQ(evaluations_to_reach({}, 0.1), std::nullopt);
}

TEST(RunQaoa, WarmStartReachesTargetFasterOnAverage) {
  // The core claim of the paper in miniature: starting from fixed angles
  // (a good initializer) reaches 0.7 * optimum in fewer evaluations than
  // a bad fixed start, on 3-regular graphs.
  Rng graph_rng(20);
  Rng rng(4);
  QaoaRunConfig config;
  config.max_evaluations = 200;
  double warm_total = 0.0;
  double cold_total = 0.0;
  double warm_initial_ar = 0.0;
  double cold_initial_ar = 0.0;
  int counted = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_regular_graph(8, 3, graph_rng);
    FixedAngleInitializer warm;
    ConstantInitializer cold(QaoaParams::single(3.5, 1.2));  // poor start
    const QaoaResult rw = run_qaoa(g, warm, config, rng);
    const QaoaResult rc = run_qaoa(g, cold, config, rng);
    warm_initial_ar += rw.initial_ar;
    cold_initial_ar += rc.initial_ar;
    const double target = 0.78 * rw.optimum;
    const auto ew = evaluations_to_reach(rw.trace, target);
    const auto ec = evaluations_to_reach(rc.trace, target);
    if (ew && ec) {
      warm_total += *ew;
      cold_total += *ec;
      ++counted;
    }
  }
  ASSERT_GT(counted, 0);
  EXPECT_LE(warm_total, cold_total);
  EXPECT_GT(warm_initial_ar, cold_initial_ar);
}

}  // namespace
}  // namespace qgnn
