// Tests for tools/qgnn_lint: the tokenizer, the check catalogue against
// the seeded fixture files in tests/lint_fixtures/, the suppression
// mechanism, and the obs-name registry cross-reference.
#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "qgnn_lint/lint.hpp"

namespace {

using qgnn::lint::Finding;
using qgnn::lint::LintConfig;
using qgnn::lint::LintOptions;
using qgnn::lint::TokenKind;

const std::string kFixtureDir = QGNN_LINT_FIXTURE_DIR;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// (check, line) pairs for one file, sorted.
using CheckLines = std::vector<std::pair<std::string, int>>;

CheckLines check_lines(const std::vector<Finding>& findings) {
  CheckLines out;
  for (const Finding& f : findings) out.emplace_back(f.check, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const LintOptions& options) {
  const std::string path = kFixtureDir + "/" + name;
  return qgnn::lint::lint_source(path, read_file(path), options);
}

LintOptions registry_options() {
  LintOptions options;
  options.obs_names = {"pool.jobs"};
  options.enforce_obs_registry = true;
  return options;
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, TokenKindsAndQualifiedNames) {
  const auto lex = qgnn::lint::lex("std::chrono->x = 3.5e-2; f(\"a.b\");");
  ASSERT_GE(lex.tokens.size(), 10u);
  EXPECT_EQ(lex.tokens[0].text, "std");
  EXPECT_EQ(lex.tokens[1].text, "::");  // one token, not two colons
  EXPECT_EQ(lex.tokens[1].kind, TokenKind::kPunct);
  EXPECT_EQ(lex.tokens[3].text, "->");
  const auto num = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.kind == TokenKind::kNumber; });
  ASSERT_NE(num, lex.tokens.end());
  EXPECT_EQ(num->text, "3.5e-2");
  const auto str = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.kind == TokenKind::kString; });
  ASSERT_NE(str, lex.tokens.end());
  EXPECT_EQ(str->text, "a.b");
}

TEST(LintLexer, StringContentsDoNotLeakTokens) {
  // A banned call spelled inside a literal must not produce identifier
  // tokens ("rand" here only exists inside the string).
  const auto lex = qgnn::lint::lex("const char* s = \"rand() inside\";");
  for (const auto& t : lex.tokens) {
    if (t.kind == TokenKind::kIdentifier) EXPECT_NE(t.text, "rand");
  }
}

TEST(LintLexer, RawStringLiterals) {
  const auto lex =
      qgnn::lint::lex("auto j = R\"({\"cmd\":\"stats\"})\"; int after = 1;");
  const auto str = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.kind == TokenKind::kString; });
  ASSERT_NE(str, lex.tokens.end());
  EXPECT_EQ(str->text, "{\"cmd\":\"stats\"}");
  // Lexing resumes correctly after the raw string.
  const auto after = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.text == "after"; });
  EXPECT_NE(after, lex.tokens.end());
}

TEST(LintLexer, CommentsCollectedWithOwnership) {
  const auto lex = qgnn::lint::lex(
      "// standalone\n"
      "int x = 1;  // trailing\n");
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[0].line, 1);
  EXPECT_TRUE(lex.comments[0].owns_line);
  EXPECT_EQ(lex.comments[1].line, 2);
  EXPECT_FALSE(lex.comments[1].owns_line);
}

TEST(LintLexer, DirectiveIsOneToken) {
  const auto lex = qgnn::lint::lex("#pragma   once\nint x;\n");
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(lex.tokens[0].text, "#pragma once");  // whitespace collapsed
}

// ---------------------------------------------------------------------------
// Name convention

TEST(LintObsName, Convention) {
  EXPECT_TRUE(qgnn::lint::valid_obs_name("pool.jobs"));
  EXPECT_TRUE(qgnn::lint::valid_obs_name("quantum.kernel_us"));
  EXPECT_TRUE(qgnn::lint::valid_obs_name("train.epoch"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("nodots"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("two.dots.here"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("Caps.name"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("pool.Jobs"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("pool.jobs_"));  // trailing _
  EXPECT_FALSE(qgnn::lint::valid_obs_name(".jobs"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("pool."));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("under_score.jobs"));
}

TEST(LintObsName, ParseRegistry) {
  const auto names = qgnn::lint::parse_obs_names(
      "#pragma once\n"
      "namespace qgnn::obs::names {\n"
      "inline constexpr const char* kA = \"pool.jobs\";\n"
      "inline constexpr const char* kB = \"train.epoch_us\";\n"
      "}\n");
  EXPECT_EQ(names, (std::set<std::string>{"pool.jobs", "train.epoch_us"}));
}

TEST(LintObsName, RealRegistryParsesCleanAndValid) {
  const std::string path = QGNN_OBS_NAMES_PATH;
  const std::string source = read_file(path);
  const auto names = qgnn::lint::parse_obs_names(source);
  EXPECT_GE(names.size(), 15u);
  for (const std::string& name : names) {
    EXPECT_TRUE(qgnn::lint::valid_obs_name(name)) << name;
  }
  // The registry file itself lints clean.
  EXPECT_TRUE(
      qgnn::lint::lint_source(path, source, registry_options()).empty());
}

// ---------------------------------------------------------------------------
// Fixtures, one check each

TEST(LintFixtures, DeterminismCall) {
  const auto findings =
      lint_fixture("bad_determinism_call.cpp", registry_options());
  EXPECT_EQ(check_lines(findings),
            (CheckLines{{"determinism-call", 9},
                        {"determinism-call", 14},
                        {"determinism-call", 15},
                        {"determinism-call", 19},
                        {"determinism-call", 25}}));
}

TEST(LintFixtures, DeterminismIteration) {
  const auto findings =
      lint_fixture("bad_storage_iteration.cpp", registry_options());
  EXPECT_EQ(check_lines(findings),
            (CheckLines{{"determinism-iteration", 12},
                        {"determinism-iteration", 19}}));
}

TEST(LintFixtures, ObsNames) {
  const auto findings =
      lint_fixture("src/bad_obs_names.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"obs-name", 15},
                                               {"obs-name", 16},
                                               {"obs-name", 17}}));
}

TEST(LintFixtures, ObsRegistryFileSelfCheck) {
  const auto findings = lint_fixture("obs/names.hpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"obs-name", 8}}));
}

TEST(LintFixtures, LockAcrossSubmit) {
  const auto findings =
      lint_fixture("bad_lock_submit.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"lock-across-submit", 13},
                                               {"lock-across-submit", 14}}));
}

TEST(LintFixtures, MutableGlobal) {
  const auto findings =
      lint_fixture("src/bad_mutable_global.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"mutable-global", 8},
                                               {"mutable-global", 9},
                                               {"mutable-global", 10}}));
}

TEST(LintFixtures, PragmaOnce) {
  const auto findings = lint_fixture("bad_header.hpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"pragma-once", 3}}));
}

TEST(LintFixtures, BannedFunctions) {
  const auto findings = lint_fixture("bad_banned.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"banned-function", 7},
                                               {"banned-function", 11},
                                               {"banned-function", 15}}));
}

TEST(LintFixtures, RawIo) {
  const auto findings =
      lint_fixture("src/bad_raw_io.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"raw-io", 8},
                                               {"raw-io", 9},
                                               {"raw-io", 13}}));
  // The storage layer itself is exempt: it owns the bytes.
  EXPECT_TRUE(
      lint_fixture("src/dataset/packed.cpp", registry_options()).empty());
}

TEST(LintFixtures, RawSocket) {
  const auto findings =
      lint_fixture("src/bad_raw_socket.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"raw-socket", 9},
                                               {"raw-socket", 11},
                                               {"raw-socket", 16},
                                               {"raw-socket", 18}}));
  // The net layer itself is exempt: it owns the syscalls.
  EXPECT_TRUE(
      lint_fixture("src/net/socket.cpp", registry_options()).empty());
}

TEST(LintFixtures, RawSocketQualifiedWrappersPass) {
  // Namespace-qualified wrappers and member calls are not findings;
  // only plain and global-qualified syscall spellings are.
  const std::string source =
      "namespace qgnn {\n"
      "void f() {\n"
      "  net::poll(1);\n"          // wrapper: ok
      "  auto b = std::bind(f);\n"  // std::bind: ok
      "  ::bind(3, nullptr, 0);\n"  // global-qualified syscall: finding
      "}\n"
      "}\n";
  const auto findings =
      qgnn::lint::lint_source("src/serve/x.cpp", source, registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"raw-socket", 5}}));
}

TEST(LintFixtures, UnguardedIntrinsics) {
  const auto findings =
      lint_fixture("src/bad_intrinsics.cpp", registry_options());
  EXPECT_EQ(check_lines(findings),
            (CheckLines{{"unguarded-intrinsics", 2},
                        {"unguarded-intrinsics", 7},
                        {"unguarded-intrinsics", 7},
                        {"unguarded-intrinsics", 8},
                        {"unguarded-intrinsics", 8}}));
  // The dispatch layer itself is exempt: it owns the vector widths.
  EXPECT_TRUE(
      lint_fixture("src/simd/kernels_ok.cpp", registry_options()).empty());
}

TEST(LintFixtures, SuppressionsSilenceFindings) {
  EXPECT_TRUE(lint_fixture("suppressed.cpp", registry_options()).empty());
}

TEST(LintFixtures, CleanFilesPass) {
  EXPECT_TRUE(lint_fixture("clean_storage.cpp", registry_options()).empty());
  EXPECT_TRUE(lint_fixture("good_header.hpp", registry_options()).empty());
}

// ---------------------------------------------------------------------------
// Driver behavior

TEST(LintDriver, WholeFixtureTreeFindingCount) {
  // run_lint over the fixture directory exercises directory walking and
  // registry auto-discovery (the fixture obs/names.hpp registers only
  // "pool.jobs"). Exactly the seeded violations must surface.
  LintConfig config;
  config.paths = {kFixtureDir};
  const auto findings = qgnn::lint::run_lint(config);

  std::map<std::string, int> per_check;
  for (const Finding& f : findings) ++per_check[f.check];
  EXPECT_EQ(per_check["determinism-call"], 5);
  EXPECT_EQ(per_check["determinism-iteration"], 2);
  EXPECT_EQ(per_check["obs-name"], 4);  // 3 call sites + 1 registry entry
  EXPECT_EQ(per_check["lock-across-submit"], 2);
  EXPECT_EQ(per_check["mutable-global"], 3);
  EXPECT_EQ(per_check["pragma-once"], 1);
  EXPECT_EQ(per_check["banned-function"], 3);
  EXPECT_EQ(per_check["raw-io"], 3);
  EXPECT_EQ(per_check["raw-socket"], 4);
  EXPECT_EQ(per_check["unguarded-intrinsics"], 5);
  EXPECT_EQ(findings.size(), 32u);
}

TEST(LintDriver, RegistryNotEnforcedOutsideSrc) {
  LintOptions options = registry_options();
  const std::string source =
      "struct R { R& counter(const char*); void add(int); };\n"
      "void f(R& registry) {\n"
      "  registry.counter(\"serve.not_registered\").add(1);\n"
      "}\n";
  // Under tests/, an unregistered (but well-formed) name is allowed.
  EXPECT_TRUE(
      qgnn::lint::lint_source("tests/x.cpp", source, options).empty());
  // Under src/, the registry is enforced.
  EXPECT_EQ(
      qgnn::lint::lint_source("src/serve/x.cpp", source, options).size(),
      1u);
}

TEST(LintDriver, FindingFormat) {
  const Finding finding{"src/a.cpp", 12, "obs-name", "bad"};
  EXPECT_EQ(qgnn::lint::format_finding(finding),
            "src/a.cpp:12: [obs-name] bad");
}

TEST(LintDriver, CheckCatalogueIsStable) {
  std::set<std::string> names;
  for (const auto& check : qgnn::lint::all_checks()) {
    names.insert(check.name);
  }
  EXPECT_EQ(names, (std::set<std::string>{
                       "determinism-call", "determinism-iteration",
                       "obs-name", "lock-across-submit", "mutable-global",
                       "pragma-once", "banned-function", "raw-io",
                       "raw-socket", "unguarded-intrinsics"}));
}

}  // namespace
