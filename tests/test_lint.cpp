// Tests for tools/qgnn_lint: the tokenizer, the check catalogue against
// the seeded fixture files in tests/lint_fixtures/, the suppression
// mechanism, and the obs-name registry cross-reference.
#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "qgnn_lint/baseline.hpp"
#include "qgnn_lint/flow_checks.hpp"
#include "qgnn_lint/lint.hpp"
#include "qgnn_lint/sarif.hpp"

namespace {

using qgnn::lint::Finding;
using qgnn::lint::LintConfig;
using qgnn::lint::LintOptions;
using qgnn::lint::TokenKind;

const std::string kFixtureDir = QGNN_LINT_FIXTURE_DIR;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// (check, line) pairs for one file, sorted.
using CheckLines = std::vector<std::pair<std::string, int>>;

CheckLines check_lines(const std::vector<Finding>& findings) {
  CheckLines out;
  for (const Finding& f : findings) out.emplace_back(f.check, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const LintOptions& options) {
  const std::string path = kFixtureDir + "/" + name;
  return qgnn::lint::lint_source(path, read_file(path), options);
}

LintOptions registry_options() {
  LintOptions options;
  options.obs_names = {"pool.jobs"};
  options.enforce_obs_registry = true;
  return options;
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, TokenKindsAndQualifiedNames) {
  const auto lex = qgnn::lint::lex("std::chrono->x = 3.5e-2; f(\"a.b\");");
  ASSERT_GE(lex.tokens.size(), 10u);
  EXPECT_EQ(lex.tokens[0].text, "std");
  EXPECT_EQ(lex.tokens[1].text, "::");  // one token, not two colons
  EXPECT_EQ(lex.tokens[1].kind, TokenKind::kPunct);
  EXPECT_EQ(lex.tokens[3].text, "->");
  const auto num = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.kind == TokenKind::kNumber; });
  ASSERT_NE(num, lex.tokens.end());
  EXPECT_EQ(num->text, "3.5e-2");
  const auto str = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.kind == TokenKind::kString; });
  ASSERT_NE(str, lex.tokens.end());
  EXPECT_EQ(str->text, "a.b");
}

TEST(LintLexer, StringContentsDoNotLeakTokens) {
  // A banned call spelled inside a literal must not produce identifier
  // tokens ("rand" here only exists inside the string).
  const auto lex = qgnn::lint::lex("const char* s = \"rand() inside\";");
  for (const auto& t : lex.tokens) {
    if (t.kind == TokenKind::kIdentifier) EXPECT_NE(t.text, "rand");
  }
}

TEST(LintLexer, RawStringLiterals) {
  const auto lex =
      qgnn::lint::lex("auto j = R\"({\"cmd\":\"stats\"})\"; int after = 1;");
  const auto str = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.kind == TokenKind::kString; });
  ASSERT_NE(str, lex.tokens.end());
  EXPECT_EQ(str->text, "{\"cmd\":\"stats\"}");
  // Lexing resumes correctly after the raw string.
  const auto after = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.text == "after"; });
  EXPECT_NE(after, lex.tokens.end());
}

TEST(LintLexer, CommentsCollectedWithOwnership) {
  const auto lex = qgnn::lint::lex(
      "// standalone\n"
      "int x = 1;  // trailing\n");
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[0].line, 1);
  EXPECT_TRUE(lex.comments[0].owns_line);
  EXPECT_EQ(lex.comments[1].line, 2);
  EXPECT_FALSE(lex.comments[1].owns_line);
}

TEST(LintLexer, DirectiveIsOneToken) {
  const auto lex = qgnn::lint::lex("#pragma   once\nint x;\n");
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(lex.tokens[0].text, "#pragma once");  // whitespace collapsed
}

TEST(LintLexer, RawStringNewlinesKeepLineAttribution) {
  // Every newline inside a raw string must advance the line counter, or
  // every finding after the literal points at the wrong line.
  const auto lex = qgnn::lint::lex(
      "auto s = R\"(line1\nline2\nline3)\";\nint marker = 1;\n");
  const auto marker = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.text == "marker"; });
  ASSERT_NE(marker, lex.tokens.end());
  EXPECT_EQ(marker->line, 4);
}

TEST(LintLexer, BackslashContinuationExtendsLineComment) {
  // A line comment ending in a backslash continues onto the next source
  // line; the "hidden" code is comment text, not tokens.
  const auto lex = qgnn::lint::lex(
      "// continues \\\nint hidden = rand();\nint visible = 1;\n");
  for (const auto& t : lex.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "hidden");
    }
  }
  const auto visible = std::find_if(
      lex.tokens.begin(), lex.tokens.end(),
      [](const auto& t) { return t.text == "visible"; });
  ASSERT_NE(visible, lex.tokens.end());
  EXPECT_EQ(visible->line, 3);
  // The comment records its full extent for suppression scoping.
  ASSERT_FALSE(lex.comments.empty());
  EXPECT_EQ(lex.comments[0].line, 1);
  EXPECT_EQ(lex.comments[0].end_line, 2);
}

// ---------------------------------------------------------------------------
// Name convention

TEST(LintObsName, Convention) {
  EXPECT_TRUE(qgnn::lint::valid_obs_name("pool.jobs"));
  EXPECT_TRUE(qgnn::lint::valid_obs_name("quantum.kernel_us"));
  EXPECT_TRUE(qgnn::lint::valid_obs_name("train.epoch"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("nodots"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("two.dots.here"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("Caps.name"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("pool.Jobs"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("pool.jobs_"));  // trailing _
  EXPECT_FALSE(qgnn::lint::valid_obs_name(".jobs"));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("pool."));
  EXPECT_FALSE(qgnn::lint::valid_obs_name("under_score.jobs"));
}

TEST(LintObsName, ParseRegistry) {
  const auto names = qgnn::lint::parse_obs_names(
      "#pragma once\n"
      "namespace qgnn::obs::names {\n"
      "inline constexpr const char* kA = \"pool.jobs\";\n"
      "inline constexpr const char* kB = \"train.epoch_us\";\n"
      "}\n");
  EXPECT_EQ(names, (std::set<std::string>{"pool.jobs", "train.epoch_us"}));
}

TEST(LintObsName, RealRegistryParsesCleanAndValid) {
  const std::string path = QGNN_OBS_NAMES_PATH;
  const std::string source = read_file(path);
  const auto names = qgnn::lint::parse_obs_names(source);
  EXPECT_GE(names.size(), 15u);
  for (const std::string& name : names) {
    EXPECT_TRUE(qgnn::lint::valid_obs_name(name)) << name;
  }
  // The registry file itself lints clean.
  EXPECT_TRUE(
      qgnn::lint::lint_source(path, source, registry_options()).empty());
}

// ---------------------------------------------------------------------------
// Fixtures, one check each

TEST(LintFixtures, DeterminismCall) {
  const auto findings =
      lint_fixture("bad_determinism_call.cpp", registry_options());
  EXPECT_EQ(check_lines(findings),
            (CheckLines{{"determinism-call", 9},
                        {"determinism-call", 14},
                        {"determinism-call", 15},
                        {"determinism-call", 19},
                        {"determinism-call", 25}}));
}

TEST(LintFixtures, DeterminismIteration) {
  const auto findings =
      lint_fixture("bad_storage_iteration.cpp", registry_options());
  EXPECT_EQ(check_lines(findings),
            (CheckLines{{"determinism-iteration", 12},
                        {"determinism-iteration", 19}}));
}

TEST(LintFixtures, ObsNames) {
  const auto findings =
      lint_fixture("src/bad_obs_names.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"obs-name", 15},
                                               {"obs-name", 16},
                                               {"obs-name", 17}}));
}

TEST(LintFixtures, ObsRegistryFileSelfCheck) {
  const auto findings = lint_fixture("obs/names.hpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"obs-name", 8}}));
}

TEST(LintFixtures, LockAcrossSubmit) {
  const auto findings =
      lint_fixture("bad_lock_submit.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"lock-across-submit", 13},
                                               {"lock-across-submit", 14}}));
}

TEST(LintFixtures, MutableGlobal) {
  const auto findings =
      lint_fixture("src/bad_mutable_global.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"mutable-global", 8},
                                               {"mutable-global", 9},
                                               {"mutable-global", 10}}));
}

TEST(LintFixtures, PragmaOnce) {
  const auto findings = lint_fixture("bad_header.hpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"pragma-once", 3}}));
}

TEST(LintFixtures, BannedFunctions) {
  const auto findings = lint_fixture("bad_banned.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"banned-function", 7},
                                               {"banned-function", 11},
                                               {"banned-function", 15}}));
}

TEST(LintFixtures, RawIo) {
  const auto findings =
      lint_fixture("src/bad_raw_io.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"raw-io", 8},
                                               {"raw-io", 9},
                                               {"raw-io", 13}}));
  // The storage layer itself is exempt: it owns the bytes.
  EXPECT_TRUE(
      lint_fixture("src/dataset/packed.cpp", registry_options()).empty());
}

TEST(LintFixtures, RawSocket) {
  const auto findings =
      lint_fixture("src/bad_raw_socket.cpp", registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"raw-socket", 9},
                                               {"raw-socket", 11},
                                               {"raw-socket", 16},
                                               {"raw-socket", 18}}));
  // The net layer itself is exempt: it owns the syscalls.
  EXPECT_TRUE(
      lint_fixture("src/net/socket.cpp", registry_options()).empty());
}

TEST(LintFixtures, RawSocketQualifiedWrappersPass) {
  // Namespace-qualified wrappers and member calls are not findings;
  // only plain and global-qualified syscall spellings are.
  const std::string source =
      "namespace qgnn {\n"
      "void f() {\n"
      "  net::poll(1);\n"          // wrapper: ok
      "  auto b = std::bind(f);\n"  // std::bind: ok
      "  ::bind(3, nullptr, 0);\n"  // global-qualified syscall: finding
      "}\n"
      "}\n";
  const auto findings =
      qgnn::lint::lint_source("src/serve/x.cpp", source, registry_options());
  EXPECT_EQ(check_lines(findings), (CheckLines{{"raw-socket", 5}}));
}

TEST(LintFixtures, UnguardedIntrinsics) {
  const auto findings =
      lint_fixture("src/bad_intrinsics.cpp", registry_options());
  EXPECT_EQ(check_lines(findings),
            (CheckLines{{"unguarded-intrinsics", 2},
                        {"unguarded-intrinsics", 7},
                        {"unguarded-intrinsics", 7},
                        {"unguarded-intrinsics", 8},
                        {"unguarded-intrinsics", 8}}));
  // The dispatch layer itself is exempt: it owns the vector widths.
  EXPECT_TRUE(
      lint_fixture("src/simd/kernels_ok.cpp", registry_options()).empty());
}

TEST(LintFixtures, SuppressionsSilenceFindings) {
  EXPECT_TRUE(lint_fixture("suppressed.cpp", registry_options()).empty());
}

TEST(LintFixtures, CleanFilesPass) {
  EXPECT_TRUE(lint_fixture("clean_storage.cpp", registry_options()).empty());
  EXPECT_TRUE(lint_fixture("good_header.hpp", registry_options()).empty());
}

// ---------------------------------------------------------------------------
// Flow checks (project model) against tests/lint_fixtures/flow/

/// run_lint over the flow fixture subtree with exactly one check enabled.
std::vector<Finding> run_flow_check(const std::string& check) {
  LintConfig config;
  config.paths = {kFixtureDir + "/flow"};
  config.only_checks = {check};
  return qgnn::lint::run_lint(config);
}

/// (file basename, line) pairs, sorted, for flow findings.
std::vector<std::pair<std::string, int>> file_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : findings) {
    const auto slash = f.file.find_last_of('/');
    out.emplace_back(
        slash == std::string::npos ? f.file : f.file.substr(slash + 1),
        f.line);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LintFlow, LockDiscipline) {
  // Positives: the two unlocked accesses in bad_lock.cpp. Everything in
  // good_lock.cpp (nested scopes, QGNN_REQUIRES, one-level call-graph
  // propagation) and the suppressed access must stay silent.
  const auto findings = run_flow_check("lock-discipline");
  EXPECT_EQ(file_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"bad_lock.cpp", 16}, {"bad_lock.cpp", 20}}));
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("balance_"), std::string::npos) << f.message;
    EXPECT_NE(f.message.find("mutex_"), std::string::npos) << f.message;
  }
}

TEST(LintFlow, EventLoopBlocking) {
  // A sleep directly in the entry, and an unannotated-mutex lock one
  // call deep; the deferred (in-lambda) path in good_event_loop.cpp runs
  // on a worker thread and must not be walked.
  const auto findings = run_flow_check("event-loop-blocking");
  EXPECT_EQ(file_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"bad_event_loop.cpp", 12}, {"bad_event_loop.cpp", 20}}));
  // The one-call-deep finding prints its call chain.
  bool chain = false;
  for (const Finding& f : findings) {
    chain |= f.message.find("Handler::on_event -> Handler::handle") !=
             std::string::npos;
  }
  EXPECT_TRUE(chain);
}

TEST(LintFlow, BitIdenticalPath) {
  // FMA in an annotated function (annotation on the declaration, merged
  // onto the definition), FMA in a direct callee, unordered iteration,
  // and an ISA-state read. good_bit_identical.cpp is silent.
  const auto findings = run_flow_check("bit-identical-path");
  EXPECT_EQ(file_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"bad_bit_identical.cpp", 14},
                {"bad_bit_identical.cpp", 20},
                {"bad_bit_identical.cpp", 29},
                {"bad_bit_identical.cpp", 32}}));
}

TEST(LintFlow, ErrorPath) {
  // "bad magic" with no file context under a src/dataset path fails;
  // messages that thread the path/offset through pass.
  const auto findings = run_flow_check("error-path");
  EXPECT_EQ(file_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"bad_error_path.cpp", 13}}));
}

// ---------------------------------------------------------------------------
// SARIF output

TEST(LintSarif, MinimalSchemaShape) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 12, "obs-name", "bad \"name\""},
      {"./src/b.cpp", 3, "lock-discipline", "unlocked"},
  };
  const std::string sarif = qgnn::lint::to_sarif(findings);
  // Required top-level SARIF 2.1.0 keys.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
  EXPECT_NE(sarif.find("\"tool\""), std::string::npos);
  EXPECT_NE(sarif.find("\"driver\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"qgnn_lint\""), std::string::npos);
  // Every catalogue check appears as a rule.
  for (const auto& check : qgnn::lint::all_checks()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(check.name) + "\""),
              std::string::npos)
        << check.name;
  }
  for (const auto& check : qgnn::lint::all_flow_checks()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(check.name) + "\""),
              std::string::npos)
        << check.name;
  }
  // Results carry ruleId, message, and physical location; the "./"
  // prefix is stripped from URIs and embedded quotes are escaped.
  EXPECT_NE(sarif.find("\"ruleId\": \"obs-name\""), std::string::npos);
  EXPECT_NE(sarif.find("bad \\\"name\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/b.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_EQ(sarif.find("\"uri\": \"./"), std::string::npos);
}

TEST(LintSarif, JsonEscape) {
  EXPECT_EQ(qgnn::lint::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
}

// ---------------------------------------------------------------------------
// Baseline ratchet

TEST(LintBaseline, RoundTripAndDiff) {
  using qgnn::lint::Baseline;
  using qgnn::lint::BaselineKey;
  const std::vector<Finding> findings = {
      {"src/a.cpp", 12, "obs-name", "bad name"},
      {"src/a.cpp", 40, "obs-name", "bad name"},  // same key, count 2
      {"src/b.cpp", 3, "raw-io", "fopen"},
  };
  const Baseline baseline = qgnn::lint::collect_baseline(findings);
  EXPECT_EQ(baseline.size(), 2u);
  EXPECT_EQ(baseline.at(BaselineKey{"obs-name", "src/a.cpp", "bad name"}), 2);

  // serialize -> parse is the identity.
  const std::string json = qgnn::lint::serialize_baseline(baseline);
  EXPECT_EQ(qgnn::lint::parse_baseline(json), baseline);

  // Exact match: nothing fresh, nothing stale.
  const auto clean = qgnn::lint::diff_baseline(findings, baseline);
  EXPECT_TRUE(clean.fresh.empty());
  EXPECT_TRUE(clean.stale.empty());

  // A new finding is fresh (fails the run).
  auto more = findings;
  more.push_back({"src/c.cpp", 9, "raw-io", "fread"});
  const auto grown = qgnn::lint::diff_baseline(more, baseline);
  ASSERT_EQ(grown.fresh.size(), 1u);
  EXPECT_EQ(grown.fresh[0].file, "src/c.cpp");
  EXPECT_TRUE(grown.stale.empty());

  // A fixed finding leaves its entry stale (also fails: ratchet).
  std::vector<Finding> fewer = {findings[0], findings[1]};
  const auto shrunk = qgnn::lint::diff_baseline(fewer, baseline);
  EXPECT_TRUE(shrunk.fresh.empty());
  ASSERT_EQ(shrunk.stale.size(), 1u);
  EXPECT_NE(shrunk.stale[0].find("raw-io"), std::string::npos);
}

TEST(LintBaseline, SerializationIsCanonical) {
  // Committed bytes must be stable: sorted keys, fixed layout, trailing
  // newline, and a round-trip that reproduces them exactly.
  qgnn::lint::Baseline baseline;
  baseline[{"raw-io", "src/b.cpp", "fopen"}] = 1;
  baseline[{"obs-name", "src/a.cpp", "bad name"}] = 2;
  const std::string json = qgnn::lint::serialize_baseline(baseline);
  EXPECT_EQ(json,
            qgnn::lint::serialize_baseline(qgnn::lint::parse_baseline(json)));
  EXPECT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '\n');
  // obs-name sorts before raw-io regardless of insertion order.
  EXPECT_LT(json.find("obs-name"), json.find("raw-io"));
}

TEST(LintBaseline, ParseRejectsMalformedInput) {
  EXPECT_THROW(qgnn::lint::parse_baseline("not json"), std::runtime_error);
  EXPECT_THROW(qgnn::lint::parse_baseline("{\"version\": 1}"),
               std::runtime_error);
  EXPECT_THROW(
      qgnn::lint::parse_baseline(
          "{\"version\": 1, \"findings\": [{\"check\": \"x\"}]}"),
      std::runtime_error);
}

TEST(LintBaseline, RepoBaselineParses) {
  // The committed baseline must always parse; an empty findings list is
  // the healthy state.
  const std::string path =
      std::string(QGNN_LINT_FIXTURE_DIR) + "/../../tools/qgnn_lint/baseline.json";
  const auto baseline = qgnn::lint::parse_baseline(read_file(path));
  (void)baseline;
}

// ---------------------------------------------------------------------------
// Driver behavior

TEST(LintDriver, WholeFixtureTreeFindingCount) {
  // run_lint over the fixture directory exercises directory walking and
  // registry auto-discovery (the fixture obs/names.hpp registers only
  // "pool.jobs"). Exactly the seeded violations must surface.
  LintConfig config;
  config.paths = {kFixtureDir};
  const auto findings = qgnn::lint::run_lint(config);

  std::map<std::string, int> per_check;
  for (const Finding& f : findings) ++per_check[f.check];
  EXPECT_EQ(per_check["determinism-call"], 5);
  EXPECT_EQ(per_check["determinism-iteration"], 2);
  EXPECT_EQ(per_check["obs-name"], 4);  // 3 call sites + 1 registry entry
  EXPECT_EQ(per_check["lock-across-submit"], 2);
  EXPECT_EQ(per_check["mutable-global"], 3);
  EXPECT_EQ(per_check["pragma-once"], 1);
  EXPECT_EQ(per_check["banned-function"], 3);
  EXPECT_EQ(per_check["raw-io"], 3);
  EXPECT_EQ(per_check["raw-socket"], 4);
  EXPECT_EQ(per_check["unguarded-intrinsics"], 5);
  // Flow checks over the flow/ subtree ride in the same run.
  EXPECT_EQ(per_check["lock-discipline"], 2);
  EXPECT_EQ(per_check["event-loop-blocking"], 2);
  EXPECT_EQ(per_check["bit-identical-path"], 4);
  EXPECT_EQ(per_check["error-path"], 1);
  EXPECT_EQ(findings.size(), 41u);
}

TEST(LintDriver, OutputIsByteIdenticalAtAnyJobCount) {
  // The parallel driver must merge findings in a total order: the same
  // tree linted with 1, 2, and 8 workers renders identical reports.
  std::vector<std::string> rendered;
  for (const int jobs : {1, 2, 8}) {
    LintConfig config;
    config.paths = {kFixtureDir};
    config.jobs = jobs;
    std::string all;
    for (const Finding& f : qgnn::lint::run_lint(config)) {
      all += qgnn::lint::format_finding(f);
      all += '\n';
    }
    rendered.push_back(std::move(all));
  }
  EXPECT_FALSE(rendered[0].empty());
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
}

TEST(LintDriver, RegistryNotEnforcedOutsideSrc) {
  LintOptions options = registry_options();
  const std::string source =
      "struct R { R& counter(const char*); void add(int); };\n"
      "void f(R& registry) {\n"
      "  registry.counter(\"serve.not_registered\").add(1);\n"
      "}\n";
  // Under tests/, an unregistered (but well-formed) name is allowed.
  EXPECT_TRUE(
      qgnn::lint::lint_source("tests/x.cpp", source, options).empty());
  // Under src/, the registry is enforced.
  EXPECT_EQ(
      qgnn::lint::lint_source("src/serve/x.cpp", source, options).size(),
      1u);
}

TEST(LintDriver, FindingFormat) {
  const Finding finding{"src/a.cpp", 12, "obs-name", "bad"};
  EXPECT_EQ(qgnn::lint::format_finding(finding),
            "src/a.cpp:12: [obs-name] bad");
}

TEST(LintDriver, CheckCatalogueIsStable) {
  std::set<std::string> names;
  for (const auto& check : qgnn::lint::all_checks()) {
    names.insert(check.name);
  }
  EXPECT_EQ(names, (std::set<std::string>{
                       "determinism-call", "determinism-iteration",
                       "obs-name", "lock-across-submit", "mutable-global",
                       "pragma-once", "banned-function", "raw-io",
                       "raw-socket", "unguarded-intrinsics"}));
}

TEST(LintDriver, FlowCheckCatalogueIsStable) {
  std::set<std::string> names;
  for (const auto& check : qgnn::lint::all_flow_checks()) {
    names.insert(check.name);
    // Every check documents itself for --explain.
    EXPECT_NE(check.explain, nullptr);
    EXPECT_GT(std::string(check.explain).size(), 40u) << check.name;
  }
  EXPECT_EQ(names, (std::set<std::string>{
                       "lock-discipline", "event-loop-blocking",
                       "bit-identical-path", "error-path"}));
  // Flow and per-file names share one namespace with no collisions, and
  // known_check() resolves both.
  for (const auto& check : qgnn::lint::all_checks()) {
    EXPECT_EQ(names.count(check.name), 0u) << check.name;
    EXPECT_TRUE(qgnn::lint::known_check(check.name));
  }
  for (const auto& name : names) {
    EXPECT_TRUE(qgnn::lint::known_check(name));
  }
  EXPECT_FALSE(qgnn::lint::known_check("no-such-check"));
}

}  // namespace
