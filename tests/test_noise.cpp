#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/noise.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace qgnn {
namespace {

TEST(SampledExpectation, ConvergesToExactWithManyShots) {
  Rng rng(3);
  const Graph g = cycle_graph(8);
  const QaoaAnsatz ansatz(g);
  const QaoaParams params = *fixed_angles(2, 1);
  const double exact = ansatz.expectation(params);
  const double estimate = sampled_expectation(ansatz, params, 20000, rng);
  EXPECT_NEAR(estimate, exact, 0.1);
}

TEST(SampledExpectation, ErrorShrinksWithShots) {
  Rng rng(5);
  const Graph g = cycle_graph(6);
  const QaoaAnsatz ansatz(g);
  const QaoaParams params = *fixed_angles(2, 1);
  const double exact = ansatz.expectation(params);

  auto mean_abs_error = [&](int shots) {
    RunningStats err;
    for (int rep = 0; rep < 30; ++rep) {
      err.add(std::abs(sampled_expectation(ansatz, params, shots, rng) -
                       exact));
    }
    return err.mean();
  };
  // 64x the shots should cut the error roughly 8x; allow generous slack.
  EXPECT_LT(mean_abs_error(1024), mean_abs_error(16) * 0.6);
}

TEST(SampledExpectation, ValidatesShots) {
  Rng rng(1);
  const QaoaAnsatz ansatz(cycle_graph(4));
  EXPECT_THROW(
      sampled_expectation(ansatz, QaoaParams::single(0.1, 0.1), 0, rng),
      InvalidArgument);
}

TEST(NoisyTrajectory, NoiselessMatchesFastPath) {
  Rng rng(7);
  const Graph g = random_regular_graph(8, 3, rng);
  const QaoaAnsatz ansatz(g);
  const QaoaParams params = QaoaParams::single(0.7, 0.3);
  NoiseModel noiseless;
  noiseless.single_qubit_error = 0.0;
  noiseless.two_qubit_error = 0.0;
  const StateVector noisy = noisy_qaoa_trajectory(g, params, noiseless, rng);
  const StateVector exact = ansatz.prepare_state(params);
  EXPECT_NEAR(noisy.fidelity(exact), 1.0, 1e-10);
}

TEST(NoisyTrajectory, PreservesNorm) {
  Rng rng(9);
  const Graph g = cycle_graph(6);
  NoiseModel heavy;
  heavy.single_qubit_error = 0.2;
  heavy.two_qubit_error = 0.3;
  for (int trial = 0; trial < 5; ++trial) {
    const StateVector s =
        noisy_qaoa_trajectory(g, QaoaParams::single(0.6, 0.3), heavy, rng);
    EXPECT_NEAR(s.norm(), 1.0, 1e-10);
  }
}

TEST(NoisyExpectation, NoiseDegradesExpectation) {
  Rng rng(11);
  const Graph g = random_regular_graph(10, 3, rng);
  const QaoaAnsatz ansatz(g);
  const QaoaParams params = *fixed_angles(3, 1);
  const double clean = ansatz.expectation(params);

  NoiseModel noise;
  noise.two_qubit_error = 0.05;
  noise.single_qubit_error = 0.005;
  Rng nrng(13);
  const double noisy = noisy_expectation(g, params, noise, 80, nrng);
  EXPECT_LT(noisy, clean);
  // But not below the fully-mixed level total_weight/2 by much.
  EXPECT_GT(noisy, g.total_weight() / 2.0 - 0.5);
}

TEST(NoisyExpectation, MonotoneInErrorRate) {
  Rng rng(15);
  const Graph g = cycle_graph(8);
  const QaoaParams params = *fixed_angles(2, 1);
  double previous = 1e18;
  for (double rate : {0.0, 0.02, 0.1}) {
    NoiseModel noise;
    noise.two_qubit_error = rate;
    noise.single_qubit_error = rate / 10.0;
    Rng nrng(17);
    const double e = noisy_expectation(g, params, noise,
                                       rate == 0.0 ? 1 : 150, nrng);
    EXPECT_LT(e, previous + 0.05) << "rate " << rate;
    previous = e;
  }
}

TEST(NoisyExpectation, Validation) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  NoiseModel bad;
  bad.two_qubit_error = 1.5;
  EXPECT_THROW(
      noisy_qaoa_trajectory(g, QaoaParams::single(0.1, 0.1), bad, rng),
      InvalidArgument);
  NoiseModel ok;
  EXPECT_THROW(
      noisy_expectation(g, QaoaParams::single(0.1, 0.1), ok, 0, rng),
      InvalidArgument);
}

TEST(NoiseModel, NoiselessDetection) {
  NoiseModel m;
  EXPECT_FALSE(m.is_noiseless());  // defaults are nonzero
  m.single_qubit_error = 0.0;
  m.two_qubit_error = 0.0;
  EXPECT_TRUE(m.is_noiseless());
}

}  // namespace
}  // namespace qgnn
