#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "graph/hash.hpp"
#include "util/rng.hpp"

namespace qgnn {
namespace {

Graph from_edges(int n, const std::vector<std::pair<int, int>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

std::vector<int> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const int j = rng.uniform_int(0, i);
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

TEST(CanonicalHash, RelabelledIsomorphicGraphsHashEqual) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 6 + trial % 9;             // 6..14
    const int degree = n % 2 == 0 ? 3 : 4;   // n * degree must be even
    const Graph g = random_regular_graph(n, degree, rng);
    const std::uint64_t h = canonical_hash(g);
    for (int p = 0; p < 4; ++p) {
      const Graph permuted = g.permuted(random_permutation(n, rng));
      EXPECT_EQ(canonical_hash(permuted), h)
          << "trial " << trial << " perm " << p << " on " << g.describe();
    }
  }
}

TEST(CanonicalHash, EdgeInsertionOrderIsIrrelevant) {
  const Graph a = from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  const Graph b = from_edges(5, {{4, 0}, {2, 3}, {0, 1}, {3, 4}, {1, 2}});
  EXPECT_EQ(canonical_hash(a), canonical_hash(b));
}

TEST(CanonicalHash, SeparatesHexagonFromTwoTriangles) {
  // The classic 1-WL failure pair: both are 2-regular on 6 nodes, so
  // plain color refinement (and wl_hash) cannot tell them apart.
  const Graph hexagon = cycle_graph(6);
  const Graph two_triangles =
      from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_EQ(wl_hash(hexagon), wl_hash(two_triangles))
      << "pair no longer exercises the 1-WL blind spot";
  EXPECT_NE(canonical_hash(hexagon), canonical_hash(two_triangles));
}

TEST(CanonicalHash, SeparatesK33FromTriangularPrism) {
  // Both 3-regular on 6 nodes; K3,3 is triangle-free, the prism is not.
  const Graph k33 = from_edges(6, {{0, 3}, {0, 4}, {0, 5},
                                   {1, 3}, {1, 4}, {1, 5},
                                   {2, 3}, {2, 4}, {2, 5}});
  const Graph prism = from_edges(6, {{0, 1}, {1, 2}, {2, 0},
                                     {3, 4}, {4, 5}, {5, 3},
                                     {0, 3}, {1, 4}, {2, 5}});
  EXPECT_EQ(wl_hash(k33), wl_hash(prism));
  EXPECT_NE(canonical_hash(k33), canonical_hash(prism));
}

TEST(CanonicalHash, NearMissGraphsHashDifferently) {
  // Single edge rewired: same node count, same edge count, same degree
  // sequence is not required — just distinct structures.
  const Graph path5 = path_graph(5);
  const Graph cycle5 = cycle_graph(5);
  EXPECT_NE(canonical_hash(path5), canonical_hash(cycle5));

  Graph a = cycle_graph(8);
  Graph b = cycle_graph(8);
  // a gets a chord (0,4); b gets a different chord (0,3) — both now have
  // 9 edges and degree sequence {2,2,2,2,2,2,3,3}.
  a.add_edge(0, 4);
  b.add_edge(0, 3);
  EXPECT_NE(canonical_hash(a), canonical_hash(b));
}

TEST(CanonicalHash, DistinctRegularGraphsGetDistinctHashes) {
  // Sample many random 3-regular graphs on 10 nodes; wl_hash maps every
  // one of them to the same value, canonical_hash should separate the
  // non-isomorphic ones. There are only 21 isomorphism classes of
  // 3-regular graphs on 10 vertices (19 connected), so 40 samples can
  // cover at most 21 distinct values — seeing well over half of them
  // shows the hash is not collapsing like 1-WL does.
  Rng rng(7);
  std::set<std::uint64_t> wl;
  std::set<std::uint64_t> canonical;
  for (int i = 0; i < 40; ++i) {
    const Graph g = random_regular_graph(10, 3, rng);
    wl.insert(wl_hash(g));
    canonical.insert(canonical_hash(g));
  }
  EXPECT_EQ(wl.size(), 1u);  // documents the 1-WL collapse on regulars
  EXPECT_GT(canonical.size(), 10u);
  EXPECT_LE(canonical.size(), 21u);
}

TEST(CanonicalHash, EdgeWeightsAffectTheHash) {
  Graph a(3);
  a.add_edge(0, 1, 1.0);
  a.add_edge(1, 2, 1.0);
  Graph b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.5);
  EXPECT_NE(canonical_hash(a), canonical_hash(b));

  // But weight-permuted isomorphic graphs still agree.
  Graph c(3);
  c.add_edge(2, 1, 1.0);
  c.add_edge(1, 0, 2.5);
  EXPECT_EQ(canonical_hash(b), canonical_hash(c));
}

TEST(CanonicalHash, SizeAndEdgeCountAreSeparated) {
  EXPECT_NE(canonical_hash(Graph(3)), canonical_hash(Graph(4)));
  EXPECT_NE(canonical_hash(path_graph(4)), canonical_hash(cycle_graph(4)));
}

TEST(CanonicalColors, SortedAndPermutationInvariant) {
  Rng rng(3);
  const Graph g = random_regular_graph(8, 3, rng);
  const auto colors = canonical_colors(g);
  EXPECT_EQ(colors.size(), 8u);
  EXPECT_TRUE(std::is_sorted(colors.begin(), colors.end()));
  const Graph permuted = g.permuted(random_permutation(8, rng));
  EXPECT_EQ(canonical_colors(permuted), colors);
}

}  // namespace
}  // namespace qgnn
