#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/generators.hpp"
#include "qaoa/cost_hamiltonian.hpp"
#include "qaoa/diagonal_qaoa.hpp"
#include "qaoa/eval_engine.hpp"
#include "qaoa/optimize.hpp"
#include "quantum/gates.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {
namespace {

QaoaParams random_params(int depth, Rng& rng) {
  std::vector<double> gammas(depth), betas(depth);
  for (int l = 0; l < depth; ++l) {
    gammas[static_cast<std::size_t>(l)] = rng.uniform(-3.0, 3.0);
    betas[static_cast<std::size_t>(l)] = rng.uniform(-1.5, 1.5);
  }
  return QaoaParams(std::move(gammas), std::move(betas));
}

void expect_states_close(const StateVector& a, const StateVector& b,
                         double tol) {
  ASSERT_EQ(a.dimension(), b.dimension());
  for (std::uint64_t k = 0; k < a.dimension(); ++k) {
    EXPECT_NEAR(a.amplitude(k).real(), b.amplitude(k).real(), tol) << k;
    EXPECT_NEAR(a.amplitude(k).imag(), b.amplitude(k).imag(), tol) << k;
  }
}

// --- Phase-table cost layer ---------------------------------------------

TEST(PhaseTable, BitIdenticalToGenericSincosOnMaxcutDiagonals) {
  Rng rng(11);
  for (int n = 4; n <= 10; n += 2) {
    const Graph g = erdos_renyi_graph(n, 0.5, rng);
    const CostHamiltonian cost(g);
    ASSERT_TRUE(cost.engine().phase_table_active());
    for (int trial = 0; trial < 5; ++trial) {
      const double gamma = rng.uniform(-4.0, 4.0);
      StateVector fast = StateVector::plus_state(n);
      StateVector ref = StateVector::plus_state(n);
      std::vector<Amplitude> table;
      cost.engine().apply_cost_layer(fast, gamma, table);
      ref.apply_diagonal_phase(cost.diagonal(), gamma);
      for (std::uint64_t k = 0; k < fast.dimension(); ++k) {
        // Exact ==: the table stores the same cos/sin the generic path
        // computes, so the fast layer must be bit-identical, not just
        // close.
        EXPECT_EQ(fast.amplitude(k), ref.amplitude(k)) << k;
      }
    }
  }
}

TEST(PhaseTable, SortedLevelPathHandlesWeightedGraphs) {
  Rng rng(12);
  const Graph g =
      with_random_weights(erdos_renyi_graph(8, 0.6, rng), 0.1, 2.0, rng);
  const CostHamiltonian cost(g);
  // Weighted cut values are not small integers; the engine must fall back
  // to sorted distinct levels and still be active (few distinct sums).
  EXPECT_TRUE(cost.engine().phase_table_active());
  Rng prng(13);
  const QaoaParams params = random_params(2, prng);
  const StateVector ref = cost.engine().prepare_state_reference(params);
  EvalWorkspace ws;
  expect_states_close(cost.engine().prepare_state(params, ws), ref, 1e-12);
}

TEST(PhaseTable, FallbackPathMatchesWhenLevelBudgetExceeded) {
  Rng rng(14);
  const int n = 8;
  std::vector<double> diag(std::size_t{1} << n);
  for (double& v : diag) v = rng.uniform(0.0, 5.0);  // all distinct
  const QaoaEvalEngine engine(n, diag, /*max_levels=*/16);
  EXPECT_FALSE(engine.phase_table_active());
  EXPECT_EQ(engine.num_levels(), 0u);
  const QaoaParams params = random_params(2, rng);
  EXPECT_NEAR(engine.expectation(params), engine.expectation_reference(params),
              1e-12);
}

TEST(PhaseTable, NonFiniteDiagonalDisablesTable) {
  std::vector<double> diag(16, 1.0);
  diag[3] = std::numeric_limits<double>::quiet_NaN();
  const QaoaEvalEngine engine(4, diag);
  EXPECT_FALSE(engine.phase_table_active());
}

// --- Fused RX mixer layer -----------------------------------------------

TEST(FusedRxLayer, MatchesPerQubitGenericGates) {
  Rng rng(21);
  // n = 14 exceeds both the cache block (2^12) and the parallel threshold
  // (2^14), so the blocked, strided, and pool-dispatched paths all run.
  for (int n : {3, 6, 11, 13, 14}) {
    StateVector fast = StateVector::plus_state(n);
    StateVector ref = StateVector::plus_state(n);
    // Random diagonal phases first so the state has no special structure.
    std::vector<double> diag(std::size_t{1} << n);
    for (double& v : diag) v = rng.uniform(0.0, 4.0);
    fast.apply_diagonal_phase(diag, 0.7);
    ref.apply_diagonal_phase(diag, 0.7);

    const double theta = rng.uniform(-3.0, 3.0);
    fast.apply_rx_layer(theta);
    const auto rx = gates::rx(theta);
    for (int q = 0; q < n; ++q) ref.apply_single_qubit(rx, q);
    expect_states_close(fast, ref, 1e-12);
  }
}

// --- Whole-ansatz equivalence -------------------------------------------

TEST(EvalEngine, PreparedStateMatchesReferenceImplementation) {
  Rng rng(31);
  EvalWorkspace ws;
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4 + trial % 6;
    const int depth = 1 + trial % 3;
    const Graph g = erdos_renyi_graph(n, 0.5, rng);
    const CostHamiltonian cost(g);
    const QaoaParams params = random_params(depth, rng);
    const StateVector ref = cost.engine().prepare_state_reference(params);
    expect_states_close(cost.engine().prepare_state(params, ws), ref, 1e-12);
    EXPECT_NEAR(cost.engine().expectation(params, ws),
                cost.engine().expectation_reference(params), 1e-12);
  }
}

TEST(EvalEngine, DiagonalQaoaStillMatchesGraphAnsatz) {
  Rng rng(32);
  const Graph g = erdos_renyi_graph(7, 0.6, rng);
  const CostHamiltonian cost(g);
  const DiagonalQaoa dq(7, std::vector<double>(cost.diagonal().begin(),
                                               cost.diagonal().end()));
  const QaoaParams params = random_params(2, rng);
  EXPECT_NEAR(dq.expectation(params),
              cost.engine().expectation_reference(params), 1e-12);
}

TEST(EvalEngine, WorkspaceReuseIsDeterministic) {
  Rng rng(33);
  const Graph g = erdos_renyi_graph(8, 0.5, rng);
  const CostHamiltonian cost(g);
  const QaoaParams a = random_params(2, rng);
  const QaoaParams b = random_params(2, rng);
  EvalWorkspace ws;
  const double first_a = cost.engine().expectation(a, ws);
  const double first_b = cost.engine().expectation(b, ws);
  for (int i = 0; i < 5; ++i) {
    // Interleaved re-evaluations through one workspace must be bit-stable:
    // nothing may leak from the previous preparation.
    EXPECT_EQ(cost.engine().expectation(b, ws), first_b);
    EXPECT_EQ(cost.engine().expectation(a, ws), first_a);
  }
}

// --- Adjoint gradients ---------------------------------------------------

TEST(AdjointGradient, MatchesFiniteDifferences) {
  Rng rng(41);
  EvalWorkspace ws;
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 5 + trial % 4;
    const int depth = 1 + trial % 3;
    const Graph g = erdos_renyi_graph(n, 0.6, rng);
    const CostHamiltonian cost(g);
    const QaoaEvalEngine& engine = cost.engine();
    const QaoaParams params = random_params(depth, rng);

    std::vector<double> grad;
    const double value = engine.value_and_gradient(params, grad, ws);
    EXPECT_NEAR(value, engine.expectation(params, ws), 1e-12);
    ASSERT_EQ(grad.size(), static_cast<std::size_t>(2 * depth));

    const Objective f = [&](const std::vector<double>& flat) {
      return engine.expectation(QaoaParams::from_flat(flat), ws);
    };
    const std::vector<double> fd =
        finite_difference_gradient(f, params.flatten(), 1e-6);
    for (std::size_t i = 0; i < fd.size(); ++i) {
      EXPECT_NEAR(grad[i], fd[i], 1e-5 * std::max(1.0, std::abs(fd[i])))
          << "component " << i << " (n=" << n << ", depth=" << depth << ")";
    }
  }
}

TEST(AdjointGradient, GradientAdamMatchesFiniteDifferenceAdamQuality) {
  Rng rng(42);
  const Graph g = erdos_renyi_graph(8, 0.5, rng);
  const CostHamiltonian cost(g);
  const QaoaEvalEngine& engine = cost.engine();
  EvalWorkspace ws;

  const std::vector<double> start = {0.4, 0.3};
  AdamConfig config;
  config.max_iterations = 150;

  const GradientObjective fg = [&](const std::vector<double>& flat,
                                   std::vector<double>& grad) {
    return engine.value_and_gradient(QaoaParams::from_flat(flat), grad, ws);
  };
  const OptResult adjoint = adam_maximize(fg, start, config);

  const Objective f = [&](const std::vector<double>& flat) {
    return engine.expectation(QaoaParams::from_flat(flat), ws);
  };
  const OptResult fd = adam_maximize(f, start, config);

  // Same optimizer, same start, analytic vs FD gradient: both must land on
  // (essentially) the same optimum.
  EXPECT_NEAR(adjoint.best_value, fd.best_value, 1e-6);
  EXPECT_GT(adjoint.best_value, engine.expectation(
                                    QaoaParams::from_flat(start), ws));
}

// --- Thread-count invariance --------------------------------------------

TEST(QaoaFastParallel, ExpectationAndGradientAreThreadCountInvariant) {
  Rng rng(51);
  // 2^15 amplitudes: all kernels cross the parallel threshold.
  const int n = 15;
  const Graph g = erdos_renyi_graph(n, 0.3, rng);
  const CostHamiltonian cost(g);
  const QaoaParams params = random_params(2, rng);

  const int original = ThreadPool::configured_threads();
  double base_value = 0.0;
  std::vector<double> base_grad;
  for (int threads : {1, 3, 8}) {
    ThreadPool::set_global_threads(threads);
    EvalWorkspace ws;
    std::vector<double> grad;
    const double value = cost.engine().value_and_gradient(params, grad, ws);
    const double expect = cost.engine().expectation(params, ws);
    if (threads == 1) {
      base_value = value;
      base_grad = grad;
    } else {
      // Bit-identical, not merely close: chunk boundaries are fixed by the
      // range, never by the lane count.
      EXPECT_EQ(value, base_value);
      ASSERT_EQ(grad.size(), base_grad.size());
      for (std::size_t i = 0; i < grad.size(); ++i) {
        EXPECT_EQ(grad[i], base_grad[i]) << "component " << i;
      }
    }
    EXPECT_EQ(expect, value);
  }
  ThreadPool::set_global_threads(original);
}

// --- Qubit cap ----------------------------------------------------------

TEST(QubitCap, EnforcedConsistentlyAcrossLayers) {
  EXPECT_THROW(StateVector(kMaxQubits + 1), InvalidArgument);
  EXPECT_THROW(
      QaoaEvalEngine(kMaxQubits + 1,
                     std::vector<double>(1, 0.0)),  // size check comes later
      InvalidArgument);
  EXPECT_NO_THROW(StateVector{kMaxQubits});
}

}  // namespace
}  // namespace qgnn
