#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "maxcut/maxcut.hpp"
#include "qaoa/optimize.hpp"
#include "qaoa/warmstart_state.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(WarmStartAnsatz, InitialStateBiasMatchesRegularization) {
  // One node on each side: P(measuring the classical cut bit) per qubit
  // is 1 - eps.
  Graph g(2);
  g.add_edge(0, 1);
  const std::uint64_t cut = 0b01;
  const double eps = 0.1;
  const WarmStartAnsatz ansatz(g, cut, eps);
  const StateVector s = ansatz.initial_state();
  // qubit 0 biased to |1>, qubit 1 biased to |0>.
  EXPECT_NEAR(s.probability(0b01), (1 - eps) * (1 - eps), 1e-10);
  EXPECT_NEAR(s.probability(0b00), eps * (1 - eps), 1e-10);
  EXPECT_NEAR(s.probability(0b11), eps * (1 - eps), 1e-10);
  EXPECT_NEAR(s.probability(0b10), eps * eps, 1e-10);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(WarmStartAnsatz, InitialExpectationApproachesClassicalCut) {
  Rng rng(3);
  const Graph g = random_regular_graph(8, 3, rng);
  const Cut classical = max_cut_greedy(g);
  for (double eps : {0.25, 0.1, 0.02}) {
    const WarmStartAnsatz ansatz(g, classical.assignment, eps);
    // Per cut edge: (1-eps)^2 + eps^2; per uncut edge: 2 eps (1-eps).
    const double cut_term = (1 - eps) * (1 - eps) + eps * eps;
    const double uncut_term = 2 * eps * (1 - eps);
    const double expected =
        classical.value * cut_term +
        (g.total_weight() - classical.value) * uncut_term;
    EXPECT_NEAR(ansatz.initial_expectation(), expected, 1e-9)
        << "eps " << eps;
  }
}

TEST(WarmStartAnsatz, ZeroAnglesPreserveInitialState) {
  Rng rng(5);
  const Graph g = cycle_graph(6);
  const WarmStartAnsatz ansatz(g, 0b010101, 0.2);
  const StateVector a = ansatz.initial_state();
  const StateVector b = ansatz.prepare_state(QaoaParams::single(0.0, 0.0));
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(WarmStartAnsatz, OptimizationImprovesOnInitialExpectation) {
  Rng rng(7);
  const Graph g = random_regular_graph(8, 3, rng);
  const Cut classical = max_cut_greedy(g);
  const WarmStartAnsatz ansatz(g, classical.assignment, 0.25);
  const Objective f = [&ansatz](const std::vector<double>& x) {
    return ansatz.expectation(QaoaParams::from_flat(x));
  };
  NelderMeadConfig config;
  config.max_evaluations = 200;
  const OptResult r = nelder_mead_maximize(f, {0.1, 0.1}, config);
  EXPECT_GE(r.best_value, ansatz.initial_expectation() - 1e-9);
}

TEST(WarmStartAnsatz, GoodClassicalCutBeatsUniformStartAtOptimum) {
  // Warm-started QAOA from a near-optimal classical cut should reach a
  // higher <C> than plain QAOA from |+>^n under the same budget.
  Rng rng(9);
  const Graph g = random_regular_graph(10, 3, rng);
  const Cut classical = max_cut_local_search_multistart(g, 10, rng);

  const WarmStartAnsatz warm(g, classical.assignment, 0.15);
  const QaoaAnsatz plain(g);
  NelderMeadConfig config;
  config.max_evaluations = 150;
  const Objective fw = [&warm](const std::vector<double>& x) {
    return warm.expectation(QaoaParams::from_flat(x));
  };
  const Objective fp = [&plain](const std::vector<double>& x) {
    return plain.expectation(QaoaParams::from_flat(x));
  };
  const double warm_best =
      nelder_mead_maximize(fw, {0.1, 0.1}, config).best_value;
  const double plain_best =
      nelder_mead_maximize(fp, {0.5, 0.5}, config).best_value;
  EXPECT_GT(warm_best, plain_best);
}

TEST(WarmStartAnsatz, Validation) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(WarmStartAnsatz(g, 0b01, 0.0), InvalidArgument);
  EXPECT_THROW(WarmStartAnsatz(g, 0b01, 0.6), InvalidArgument);
  EXPECT_THROW(WarmStartAnsatz(g, 0b100, 0.2), InvalidArgument);
}

}  // namespace
}  // namespace qgnn
