#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "autograd/var.hpp"
#include "quantum/statevector.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"

// Equivalence suite for the SIMD kernel layer (DESIGN.md §13). Every
// bit-identical-tier kernel is asserted byte-identical between the
// generic scalar variant and each native variant the CPU supports; the
// opt-in fast tier is tolerance-bounded instead. The ctest registration
// additionally re-runs this whole binary with QGNN_SIMD pinned to
// generic / avx2 / avx512 so the env override path is exercised too.

namespace qgnn {
namespace {

namespace simd = qgnn::simd;

std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> isas{simd::Isa::kGeneric};
  if (simd::cpu_supports(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  if (simd::cpu_supports(simd::Isa::kAvx512)) {
    isas.push_back(simd::Isa::kAvx512);
  }
  return isas;
}

/// Force an ISA for one scope, restoring the previous selection.
class IsaGuard {
 public:
  explicit IsaGuard(simd::Isa isa) : prev_(simd::active_isa()) {
    EXPECT_TRUE(simd::set_active_isa(isa));
  }
  ~IsaGuard() { simd::set_active_isa(prev_); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;

 private:
  simd::Isa prev_;
};

class FastTierGuard {
 public:
  explicit FastTierGuard(bool fast) : prev_(simd::kernel_config()) {
    simd::set_kernel_config({.fast_reductions = fast});
  }
  ~FastTierGuard() { simd::set_kernel_config(prev_); }
  FastTierGuard(const FastTierGuard&) = delete;
  FastTierGuard& operator=(const FastTierGuard&) = delete;

 private:
  simd::KernelConfig prev_;
};

/// Deterministic irrational-ish doubles; no two entries equal.
std::vector<double> test_values(std::size_t n, double phase) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + phase) +
           0.25 * std::cos(0.3 * static_cast<double>(i));
  }
  return v;
}

void expect_bytes_equal(const std::vector<double>& got,
                        const std::vector<double>& want, const char* what,
                        simd::Isa isa) {
  ASSERT_EQ(got.size(), want.size());
  if (std::memcmp(got.data(), want.data(),
                  got.size() * sizeof(double)) == 0) {
    return;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_DOUBLE_EQ(got[i], want[i])
        << what << " diverges from generic at index " << i << " under "
        << simd::isa_name(isa);
  }
  FAIL() << what << ": sign-of-zero or NaN-payload difference under "
         << simd::isa_name(isa);
}

/// Run `kernel` (which mutates the buffers it is handed) once per
/// supported ISA on identical inputs and assert every output buffer is
/// byte-identical to the generic run.
void check_bit_identical(
    const char* what,
    const std::function<std::vector<std::vector<double>>()>& kernel) {
  std::vector<std::vector<double>> want;
  {
    IsaGuard guard(simd::Isa::kGeneric);
    want = kernel();
  }
  for (simd::Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    const auto got = kernel();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t b = 0; b < got.size(); ++b) {
      expect_bytes_equal(got[b], want[b], what, isa);
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch. The env-override test must run first: QGNN_SIMD is consumed
// when the first accessor resolves, before any set_active_isa below.

TEST(SimdDispatch, EnvOverrideRespected) {
  const char* env = std::getenv("QGNN_SIMD");
  if (env == nullptr) GTEST_SKIP() << "QGNN_SIMD not set for this run";
  simd::Isa requested = simd::best_supported_isa();
  if (std::strcmp(env, "generic") == 0) requested = simd::Isa::kGeneric;
  if (std::strcmp(env, "avx2") == 0) requested = simd::Isa::kAvx2;
  if (std::strcmp(env, "avx512") == 0) requested = simd::Isa::kAvx512;
  const simd::Isa expected = simd::cpu_supports(requested)
                                 ? requested
                                 : simd::best_supported_isa();
  EXPECT_EQ(simd::active_isa(), expected);
  EXPECT_STREQ(simd::active_isa_name(), simd::isa_name(expected));
}

TEST(SimdDispatch, ForcingAndNames) {
  const simd::Isa prev = simd::active_isa();
  EXPECT_TRUE(simd::set_active_isa(simd::Isa::kGeneric));
  EXPECT_EQ(simd::active_isa(), simd::Isa::kGeneric);
  EXPECT_STREQ(simd::active_isa_name(), "generic");
  for (simd::Isa isa : supported_isas()) {
    EXPECT_TRUE(simd::set_active_isa(isa));
    EXPECT_EQ(simd::active_isa(), isa);
  }
  if (!simd::cpu_supports(simd::Isa::kAvx512)) {
    const simd::Isa before = simd::active_isa();
    EXPECT_FALSE(simd::set_active_isa(simd::Isa::kAvx512));
    EXPECT_EQ(simd::active_isa(), before);  // refused, unchanged
  }
  EXPECT_TRUE(simd::set_active_isa(prev));
}

TEST(SimdDispatch, DefaultConfigIsBitIdenticalTier) {
  EXPECT_FALSE(simd::kernel_config().fast_reductions);
}

// ---------------------------------------------------------------------------
// Bit-identical tier: every ported kernel, forced-ISA vs generic.

TEST(SimdKernels, CostLayerSplitBitIdentical) {
  const std::uint64_t dim = (1u << 10) - 3;  // odd tail
  std::vector<std::uint16_t> lev(dim);
  for (std::uint64_t k = 0; k < dim; ++k) {
    lev[k] = static_cast<std::uint16_t>((k * 7 + 3) % 64);
  }
  std::vector<double> tab_re(64), tab_im(64);
  for (int l = 0; l < 64; ++l) {
    tab_re[l] = std::cos(0.11 * l);
    tab_im[l] = -std::sin(0.11 * l);
  }
  check_bit_identical("cost_layer_split", [&] {
    auto re = test_values(dim, 0.1);
    auto im = test_values(dim, 1.9);
    simd::cost_layer_split()(re.data(), im.data(), lev.data(), tab_re.data(),
                             tab_im.data(), dim);
    return std::vector<std::vector<double>>{re, im};
  });
}

TEST(SimdKernels, MixerLayerSplitBitIdentical) {
  const int n = 10;
  const double c = std::cos(0.37), s = std::sin(0.37);
  check_bit_identical("mixer_layer_split", [&] {
    auto re = test_values(std::size_t{1} << n, 0.4);
    auto im = test_values(std::size_t{1} << n, 2.2);
    simd::mixer_layer_split()(re.data(), im.data(), n, c, s);
    return std::vector<std::vector<double>>{re, im};
  });
}

TEST(SimdKernels, PhaseTableBitIdentical) {
  const std::uint64_t dim = 1u << 10;
  std::vector<std::uint16_t> lev(dim);
  for (std::uint64_t k = 0; k < dim; ++k) {
    lev[k] = static_cast<std::uint16_t>(k % 17);
  }
  std::vector<double> table(2 * 17);
  for (int l = 0; l < 17; ++l) {
    table[2 * l] = std::cos(0.23 * l);
    table[2 * l + 1] = -std::sin(0.23 * l);
  }
  // Unaligned sub-range: the parallel sharding hands kernels arbitrary
  // [lo, hi) windows.
  check_bit_identical("phase_table", [&] {
    auto amps = test_values(2 * dim, 0.7);
    simd::phase_table()(amps.data(), lev.data(), table.data(), 3, dim - 5);
    return std::vector<std::vector<double>>{amps};
  });
}

TEST(SimdKernels, RxBlockBitIdenticalAcrossBlockSizes) {
  // 1..4 hit the small-block path, 5 the fused register-resident pass,
  // 6..13 every fused-chunk remainder (3, 2, and 1 qubits per pass).
  const double c = std::cos(0.29), s = std::sin(0.29);
  for (int nq = 1; nq <= 13; ++nq) {
    check_bit_identical("rx_block", [&] {
      auto amps = test_values(std::size_t{2} << nq, 1.3 + nq);
      simd::rx_block()(amps.data(), nq, c, s);
      return std::vector<std::vector<double>>{amps};
    });
  }
}

TEST(SimdKernels, RxPairsBitIdentical) {
  const std::uint64_t count = 517;  // odd: exercises the scalar tail
  const double c = std::cos(0.51), s = std::sin(0.51);
  check_bit_identical("rx_pairs", [&] {
    auto lo = test_values(2 * count, 0.2);
    auto hi = test_values(2 * count, 2.8);
    simd::rx_pairs()(lo.data(), hi.data(), count, c, s);
    return std::vector<std::vector<double>>{lo, hi};
  });
}

TEST(SimdKernels, ScaledAssignBitIdentical) {
  const std::uint64_t dim = (1u << 9) + 11;
  const auto src = test_values(2 * dim, 0.9);
  const auto scale = test_values(dim, 1.6);
  check_bit_identical("scaled_assign", [&] {
    std::vector<double> amps(2 * dim, -7.0);  // overwritten in [lo, hi)
    simd::scaled_assign()(amps.data(), src.data(), scale.data(), 1, dim - 3);
    return std::vector<std::vector<double>>{amps};
  });
}

TEST(SimdKernels, RowKernelsBitIdentical) {
  const std::size_t n = 1003;  // odd: scalar tails on every width
  const auto x = test_values(n, 0.5);
  check_bit_identical("axpy", [&] {
    auto y = test_values(n, 1.1);
    simd::axpy()(y.data(), x.data(), 0.8137, n);
    return std::vector<std::vector<double>>{y};
  });
  check_bit_identical("vadd", [&] {
    auto y = test_values(n, 2.4);
    simd::vadd()(y.data(), x.data(), n);
    return std::vector<std::vector<double>>{y};
  });
  check_bit_identical("scale_store", [&] {
    std::vector<double> y(n, 0.0);
    simd::scale_store()(y.data(), x.data(), -1.317, n);
    return std::vector<std::vector<double>>{y};
  });
}

TEST(SimdKernels, MatmulBitIdentical) {
  // Odd shapes exercise the j/k tail handling of the blocked kernel;
  // 64^3 exercises full tiles.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{7, 33, 65}, {64, 64, 64}, {1, 300, 5}};
  for (const auto& sh : shapes) {
    const auto a = test_values(sh.m * sh.k, 0.3);
    const auto b = test_values(sh.k * sh.n, 1.8);
    check_bit_identical("matmul", [&] {
      std::vector<double> out(sh.m * sh.n, 0.0);
      simd::matmul()(out.data(), a.data(), b.data(), sh.m, sh.k, sh.n);
      return std::vector<std::vector<double>>{out};
    });
  }
}

// ---------------------------------------------------------------------------
// Fast tier: FMA-contracted reductions are tolerance-bounded, not
// bit-identical, and strictly opt-in.

TEST(SimdKernels, FastTierMatmulWithinTolerance) {
  const std::size_t m = 9, k = 137, n = 31;
  const auto a = test_values(m * k, 0.6);
  const auto b = test_values(k * n, 2.1);
  std::vector<double> want(m * n, 0.0);
  simd::matmul()(want.data(), a.data(), b.data(), m, k, n);

  FastTierGuard fast(true);
  for (simd::Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    std::vector<double> got(m * n, 0.0);
    simd::matmul()(got.data(), a.data(), b.data(), m, k, n);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-11 * static_cast<double>(k))
          << "fast matmul at " << i << " under " << simd::isa_name(isa);
    }
  }
}

TEST(SimdKernels, FastTierAxpyWithinTolerance) {
  const std::size_t n = 777;
  const auto x = test_values(n, 0.8);
  auto want = test_values(n, 1.5);
  simd::axpy()(want.data(), x.data(), 0.433, n);

  FastTierGuard fast(true);
  for (simd::Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    auto got = test_values(n, 1.5);
    simd::axpy()(got.data(), x.data(), 0.433, n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-12)
          << "fast axpy at " << i << " under " << simd::isa_name(isa);
    }
  }
}

// ---------------------------------------------------------------------------
// End to end: a statevector driven through the ported call sites stays
// byte-identical at every ISA. n = 13 exceeds the 2^12 rx block size so
// both the block kernel and the strided cross-block rx_pairs path run.

TEST(SimdEndToEnd, StateVectorLayersBitIdentical) {
  const int n = 13;
  const std::uint64_t dim = std::uint64_t{1} << n;
  std::vector<std::uint16_t> index(dim);
  for (std::uint64_t k = 0; k < dim; ++k) {
    index[k] = static_cast<std::uint16_t>((k * 31 + 7) % 23);
  }
  std::vector<Amplitude> table(23);
  for (int l = 0; l < 23; ++l) {
    table[l] = std::polar(1.0, -0.41 * static_cast<double>(l));
  }
  std::vector<double> scale(dim);
  for (std::uint64_t k = 0; k < dim; ++k) {
    scale[k] = std::cos(0.05 * static_cast<double>(k));
  }

  auto run = [&] {
    StateVector state = StateVector::plus_state(n);
    state.apply_phase_table(index, table);
    state.apply_rx_layer(0.713);
    StateVector lambda(n);
    lambda.assign_scaled(state, scale);
    std::vector<double> bytes;
    bytes.reserve(4 * dim);
    for (const Amplitude& a : state.amplitudes()) {
      bytes.push_back(a.real());
      bytes.push_back(a.imag());
    }
    for (const Amplitude& a : lambda.amplitudes()) {
      bytes.push_back(a.real());
      bytes.push_back(a.imag());
    }
    return std::vector<std::vector<double>>{bytes};
  };
  check_bit_identical("statevector layers", run);
}

// ---------------------------------------------------------------------------
// The vectorized fused autograd ops keep correct gradients at every
// ISA: reverse-mode vs central finite differences.

using BuildFn = std::function<ag::Var(const std::vector<ag::Var>&)>;

void check_gradients_at_active_isa(const std::vector<Matrix>& inputs,
                                   const BuildFn& build) {
  const double h = 1e-6, tol = 1e-5;
  std::vector<ag::Var> leaves;
  leaves.reserve(inputs.size());
  for (const Matrix& m : inputs) leaves.emplace_back(m, true);
  ag::Var out = build(leaves);
  ASSERT_EQ(out.rows(), 1u);
  ASSERT_EQ(out.cols(), 1u);
  out.backward();

  auto eval = [&build](const std::vector<Matrix>& values) {
    std::vector<ag::Var> ls;
    ls.reserve(values.size());
    for (const Matrix& m : values) ls.emplace_back(m, false);
    return build(ls).value()(0, 0);
  };
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (std::size_t i = 0; i < inputs[k].rows(); ++i) {
      for (std::size_t j = 0; j < inputs[k].cols(); ++j) {
        std::vector<Matrix> probe = inputs;
        probe[k](i, j) = inputs[k](i, j) + h;
        const double fp = eval(probe);
        probe[k](i, j) = inputs[k](i, j) - h;
        const double fm = eval(probe);
        EXPECT_NEAR(leaves[k].grad()(i, j), (fp - fm) / (2.0 * h), tol)
            << "input " << k << " entry (" << i << "," << j << ") under "
            << simd::active_isa_name();
      }
    }
  }
}

Matrix test_matrix(std::size_t rows, std::size_t cols, double scale = 1.0) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) =
          scale * std::sin(1.7 * static_cast<double>(i * cols + j) + 0.3);
    }
  }
  return m;
}

ag::Var scalarize(const ag::Var& v) {
  Matrix w(v.rows(), v.cols());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      w(i, j) = 0.3 + 0.7 * static_cast<double>(i) -
                0.4 * static_cast<double>(j);
    }
  }
  return ag::sum_all(ag::mul(v, ag::Var(w, false)));
}

TEST(SimdAutograd, FusedOpGradientsAtEveryIsa) {
  const std::vector<int> src{0, 2, 1, 2, 0, 3};
  const std::vector<int> dst{1, 0, 3, 3, 2, 1};
  const std::vector<double> coeff{0.5, -1.2, 0.75, 2.0, -0.3, 1.1};
  const std::vector<double> row_coeffs{0.9, -0.4, 1.7};
  for (simd::Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    check_gradients_at_active_isa(
        {test_matrix(3, 4), test_matrix(4, 2), test_matrix(1, 2, 0.5)},
        [](const std::vector<ag::Var>& in) {
          return scalarize(ag::affine(in[0], in[1], in[2]));
        });
    check_gradients_at_active_isa(
        {test_matrix(3, 5), test_matrix(3, 5, 0.7)},
        [&](const std::vector<ag::Var>& in) {
          return scalarize(ag::add_scaled_rows(in[0], in[1], row_coeffs));
        });
    check_gradients_at_active_isa(
        {test_matrix(4, 3)}, [&](const std::vector<ag::Var>& in) {
          return scalarize(
              ag::scatter_add_gathered_rows(in[0], src, dst, coeff, 4));
        });
    check_gradients_at_active_isa(
        {test_matrix(4, 3)}, [&](const std::vector<ag::Var>& in) {
          return scalarize(
              ag::scatter_add_gathered_rows(in[0], src, dst, {}, 4));
        });
  }
}

// Inference forwards (matmul included) are byte-identical across ISAs.
TEST(SimdAutograd, ForwardValuesBitIdentical) {
  const Matrix a = test_matrix(17, 33);
  const Matrix w = test_matrix(33, 9);
  const Matrix bias = test_matrix(1, 9, 0.2);
  check_bit_identical("affine forward", [&] {
    ag::NoGradGuard no_grad;
    const ag::Var out =
        ag::affine(ag::Var(a, false), ag::Var(w, false), ag::Var(bias, false));
    const Matrix& v = out.value();
    return std::vector<std::vector<double>>{
        std::vector<double>(v.data(), v.data() + v.rows() * v.cols())};
  });
}

}  // namespace
}  // namespace qgnn
