#include <gtest/gtest.h>

#include <fstream>

#include "gnn/model.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

GnnModelConfig small_config(GnnArch arch) {
  GnnModelConfig config;
  config.arch = arch;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.output_dim = 2;
  config.dropout = 0.5;
  return config;
}

class ModelArchTest : public ::testing::TestWithParam<GnnArch> {};

TEST_P(ModelArchTest, PredictShape) {
  Rng rng(1);
  const GnnModel model(small_config(GetParam()), rng);
  const Graph g = cycle_graph(6);
  const Matrix pred = model.predict(g);
  EXPECT_EQ(pred.rows(), 1u);
  EXPECT_EQ(pred.cols(), 2u);
}

TEST_P(ModelArchTest, EvalModeIsDeterministic) {
  Rng rng(1);
  const GnnModel model(small_config(GetParam()), rng);
  const Graph g = cycle_graph(5);
  EXPECT_TRUE(model.predict(g).approx_equal(model.predict(g), 1e-14));
}

TEST_P(ModelArchTest, TrainingModeDropoutPerturbsForward) {
  Rng rng(1);
  const GnnModel model(small_config(GetParam()), rng);
  const Graph g = cycle_graph(5);
  const GraphBatch batch =
      make_graph_batch(g, model.config().features);
  Rng d1(11);
  Rng d2(12);
  const Matrix a = model.forward(batch, true, d1).value();
  const Matrix b = model.forward(batch, true, d2).value();
  EXPECT_FALSE(a.approx_equal(b, 1e-12));
}

TEST_P(ModelArchTest, SaveLoadRoundTripPreservesPredictions) {
  Rng rng(7);
  const GnnModel model(small_config(GetParam()), rng);
  const std::string path = ::testing::TempDir() + "/qgnn_model_" +
                           to_string(GetParam()) + ".txt";
  model.save(path);
  const GnnModel loaded = GnnModel::load(path);
  EXPECT_EQ(loaded.config().arch, model.config().arch);
  EXPECT_EQ(loaded.parameter_count(), model.parameter_count());
  Rng grng(3);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = random_regular_graph(8, 3, grng);
    EXPECT_TRUE(loaded.predict(g).approx_equal(model.predict(g), 1e-12));
  }
}

TEST_P(ModelArchTest, GraphLevelPredictionIsPermutationInvariantWithIdFreeFeatures) {
  // Mean-pool readout makes graph-level output invariant to node
  // relabeling when node features are ID-free (degree-scaled one-hot is
  // ID-dependent, so compare on a vertex-transitive graph where IDs are
  // exchangeable... instead use a graph and its relabeling with OneHotId
  // replaced by degree-only rows).
  Rng rng(2);
  GnnModelConfig config = small_config(GetParam());
  const GnnModel model(config, rng);
  Rng grng(5);
  const Graph g = random_regular_graph(7, 4, grng);
  std::vector<int> perm{5, 2, 0, 6, 1, 4, 3};
  const Graph gp = g.permuted(perm);

  GraphBatch ba = make_graph_batch(g, config.features);
  GraphBatch bb = make_graph_batch(gp, config.features);
  // Overwrite with ID-free features (same constant rows): for a regular
  // graph the degree-scaled one-hot differs only by column position, so
  // replace with uniform rows to isolate structural invariance.
  ba.features = Matrix(7, static_cast<std::size_t>(config.input_dim()), 0.1);
  bb.features = Matrix(7, static_cast<std::size_t>(config.input_dim()), 0.1);

  Rng unused(0);
  const Matrix pa = model.forward(ba, false, unused).value();
  const Matrix pb = model.forward(bb, false, unused).value();
  EXPECT_TRUE(pa.approx_equal(pb, 1e-10)) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ModelArchTest,
                         ::testing::ValuesIn(all_gnn_archs()),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(GnnModel, ParameterCountsByArch) {
  // Sanity: parameter counts match the layer algebra.
  Rng rng(1);
  GnnModelConfig config = small_config(GnnArch::kGCN);
  const GnnModel gcn(config, rng);
  // GCN: (15*8 + 8) + (8*8 + 8) + head (8*2 + 2).
  EXPECT_EQ(gcn.parameter_count(), 15u * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2);

  config.arch = GnnArch::kGAT;
  const GnnModel gat(config, rng);
  // GAT: (15*8 + 8 + 8) + (8*8 + 8 + 8) + head.
  EXPECT_EQ(gat.parameter_count(),
            15u * 8 + 16 + 8 * 8 + 16 + 8 * 2 + 2);
}

TEST(GnnModel, MultiHeadGatSaveLoadRoundTrip) {
  Rng rng(9);
  GnnModelConfig config = small_config(GnnArch::kGAT);
  config.gat_heads = 4;  // hidden_dim 8 / 4 heads = head dim 2
  const GnnModel model(config, rng);
  const std::string path = ::testing::TempDir() + "/qgnn_gat_heads.txt";
  model.save(path);
  const GnnModel loaded = GnnModel::load(path);
  EXPECT_EQ(loaded.config().gat_heads, 4);
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(loaded.predict(g).approx_equal(model.predict(g), 1e-12));
}

TEST(GnnModel, RejectsIndivisibleGatHeads) {
  Rng rng(1);
  GnnModelConfig config = small_config(GnnArch::kGAT);
  config.gat_heads = 3;  // does not divide hidden_dim 8
  EXPECT_THROW(GnnModel(config, rng), InvalidArgument);
}

TEST(GnnModel, ValidatesConfig) {
  Rng rng(1);
  GnnModelConfig config = small_config(GnnArch::kGCN);
  config.num_layers = 0;
  EXPECT_THROW(GnnModel(config, rng), InvalidArgument);
  config = small_config(GnnArch::kGCN);
  config.dropout = 1.0;
  EXPECT_THROW(GnnModel(config, rng), InvalidArgument);
}

TEST(GnnModel, RejectsWrongFeatureWidth) {
  Rng rng(1);
  const GnnModel model(small_config(GnnArch::kGCN), rng);
  GraphBatch batch = make_graph_batch(cycle_graph(4),
                                      model.config().features);
  batch.features = Matrix(4, 7);  // wrong width
  Rng unused(0);
  EXPECT_THROW(model.forward(batch, false, unused), InvalidArgument);
}

TEST(GnnModel, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/qgnn_bad_model.txt";
  {
    std::ofstream out(path);
    out << "not a model\n";
  }
  EXPECT_THROW(GnnModel::load(path), IoError);
  EXPECT_THROW(GnnModel::load("/nonexistent/model.txt"), IoError);
}

TEST(GnnModel, ZeroDropoutTrainingEqualsEval) {
  Rng rng(17);
  GnnModelConfig config = small_config(GnnArch::kGCN);
  config.dropout = 0.0;
  const GnnModel model(config, rng);
  const Graph g = cycle_graph(6);
  const GraphBatch batch = make_graph_batch(g, config.features);
  Rng d(5);
  const Matrix train_out = model.forward(batch, true, d).value();
  const Matrix eval_out = model.predict(batch);
  EXPECT_TRUE(train_out.approx_equal(eval_out, 1e-14));
}

TEST(GnnModel, DifferentSeedsGiveDifferentWeights) {
  Rng r1(1);
  Rng r2(2);
  const GnnModel a(small_config(GnnArch::kGIN), r1);
  const GnnModel b(small_config(GnnArch::kGIN), r2);
  EXPECT_FALSE(
      a.predict(cycle_graph(5)).approx_equal(b.predict(cycle_graph(5)),
                                             1e-12));
}

}  // namespace
}  // namespace qgnn
