#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "gnn/model.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

GnnModelConfig small_config(GnnArch arch) {
  GnnModelConfig config;
  config.arch = arch;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.output_dim = 2;
  config.dropout = 0.5;
  return config;
}

class ModelArchTest : public ::testing::TestWithParam<GnnArch> {};

TEST_P(ModelArchTest, PredictShape) {
  Rng rng(1);
  const GnnModel model(small_config(GetParam()), rng);
  const Graph g = cycle_graph(6);
  const Matrix pred = model.predict(g);
  EXPECT_EQ(pred.rows(), 1u);
  EXPECT_EQ(pred.cols(), 2u);
}

TEST_P(ModelArchTest, EvalModeIsDeterministic) {
  Rng rng(1);
  const GnnModel model(small_config(GetParam()), rng);
  const Graph g = cycle_graph(5);
  EXPECT_TRUE(model.predict(g).approx_equal(model.predict(g), 1e-14));
}

TEST_P(ModelArchTest, TrainingModeDropoutPerturbsForward) {
  Rng rng(1);
  const GnnModel model(small_config(GetParam()), rng);
  const Graph g = cycle_graph(5);
  const GraphBatch batch =
      make_graph_batch(g, model.config().features);
  Rng d1(11);
  Rng d2(12);
  const Matrix a = model.forward(batch, true, d1).value();
  const Matrix b = model.forward(batch, true, d2).value();
  EXPECT_FALSE(a.approx_equal(b, 1e-12));
}

TEST_P(ModelArchTest, SaveLoadRoundTripPreservesPredictions) {
  Rng rng(7);
  const GnnModel model(small_config(GetParam()), rng);
  const std::string path = ::testing::TempDir() + "/qgnn_model_" +
                           to_string(GetParam()) + ".txt";
  model.save(path);
  const GnnModel loaded = GnnModel::load(path);
  EXPECT_EQ(loaded.config().arch, model.config().arch);
  EXPECT_EQ(loaded.parameter_count(), model.parameter_count());
  Rng grng(3);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = random_regular_graph(8, 3, grng);
    EXPECT_TRUE(loaded.predict(g).approx_equal(model.predict(g), 1e-12));
  }
}

TEST_P(ModelArchTest, GraphLevelPredictionIsPermutationInvariantWithIdFreeFeatures) {
  // Mean-pool readout makes graph-level output invariant to node
  // relabeling when node features are ID-free (degree-scaled one-hot is
  // ID-dependent, so compare on a vertex-transitive graph where IDs are
  // exchangeable... instead use a graph and its relabeling with OneHotId
  // replaced by degree-only rows).
  Rng rng(2);
  GnnModelConfig config = small_config(GetParam());
  const GnnModel model(config, rng);
  Rng grng(5);
  const Graph g = random_regular_graph(7, 4, grng);
  std::vector<int> perm{5, 2, 0, 6, 1, 4, 3};
  const Graph gp = g.permuted(perm);

  GraphBatch ba = make_graph_batch(g, config.features);
  GraphBatch bb = make_graph_batch(gp, config.features);
  // Overwrite with ID-free features (same constant rows): for a regular
  // graph the degree-scaled one-hot differs only by column position, so
  // replace with uniform rows to isolate structural invariance.
  ba.features = Matrix(7, static_cast<std::size_t>(config.input_dim()), 0.1);
  bb.features = Matrix(7, static_cast<std::size_t>(config.input_dim()), 0.1);

  Rng unused(0);
  const Matrix pa = model.forward(ba, false, unused).value();
  const Matrix pb = model.forward(bb, false, unused).value();
  EXPECT_TRUE(pa.approx_equal(pb, 1e-10)) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ModelArchTest,
                         ::testing::ValuesIn(all_gnn_archs()),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(GnnModel, ParameterCountsByArch) {
  // Sanity: parameter counts match the layer algebra.
  Rng rng(1);
  GnnModelConfig config = small_config(GnnArch::kGCN);
  const GnnModel gcn(config, rng);
  // GCN: (15*8 + 8) + (8*8 + 8) + head (8*2 + 2).
  EXPECT_EQ(gcn.parameter_count(), 15u * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2);

  config.arch = GnnArch::kGAT;
  const GnnModel gat(config, rng);
  // GAT: (15*8 + 8 + 8) + (8*8 + 8 + 8) + head.
  EXPECT_EQ(gat.parameter_count(),
            15u * 8 + 16 + 8 * 8 + 16 + 8 * 2 + 2);
}

TEST(GnnModel, MultiHeadGatSaveLoadRoundTrip) {
  Rng rng(9);
  GnnModelConfig config = small_config(GnnArch::kGAT);
  config.gat_heads = 4;  // hidden_dim 8 / 4 heads = head dim 2
  const GnnModel model(config, rng);
  const std::string path = ::testing::TempDir() + "/qgnn_gat_heads.txt";
  model.save(path);
  const GnnModel loaded = GnnModel::load(path);
  EXPECT_EQ(loaded.config().gat_heads, 4);
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(loaded.predict(g).approx_equal(model.predict(g), 1e-12));
}

TEST(GnnModel, RejectsIndivisibleGatHeads) {
  Rng rng(1);
  GnnModelConfig config = small_config(GnnArch::kGAT);
  config.gat_heads = 3;  // does not divide hidden_dim 8
  EXPECT_THROW(GnnModel(config, rng), InvalidArgument);
}

TEST(GnnModel, ValidatesConfig) {
  Rng rng(1);
  GnnModelConfig config = small_config(GnnArch::kGCN);
  config.num_layers = 0;
  EXPECT_THROW(GnnModel(config, rng), InvalidArgument);
  config = small_config(GnnArch::kGCN);
  config.dropout = 1.0;
  EXPECT_THROW(GnnModel(config, rng), InvalidArgument);
}

TEST(GnnModel, RejectsWrongFeatureWidth) {
  Rng rng(1);
  const GnnModel model(small_config(GnnArch::kGCN), rng);
  GraphBatch batch = make_graph_batch(cycle_graph(4),
                                      model.config().features);
  batch.features = Matrix(4, 7);  // wrong width
  Rng unused(0);
  EXPECT_THROW(model.forward(batch, false, unused), InvalidArgument);
}

TEST(GnnModel, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/qgnn_bad_model.txt";
  {
    std::ofstream out(path);
    out << "not a model\n";
  }
  EXPECT_THROW(GnnModel::load(path), IoError);
  EXPECT_THROW(GnnModel::load("/nonexistent/model.txt"), IoError);
}

// Helper for the corruption regression tests: save a valid checkpoint,
// apply a line-level mutation, and return the mutated file's path.
std::string corrupted_checkpoint(
    const std::string& name,
    const std::function<std::string(const std::string&)>& mutate_line,
    int max_lines = -1) {
  Rng rng(3);
  const GnnModel model(small_config(GnnArch::kGCN), rng);
  const std::string good = ::testing::TempDir() + "/qgnn_good_model.txt";
  model.save(good);

  const std::string bad = ::testing::TempDir() + "/" + name;
  std::ifstream in(good);
  std::ofstream out(bad);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    if (max_lines >= 0 && count >= max_lines) break;
    out << mutate_line(line) << '\n';
    ++count;
  }
  return bad;
}

TEST(GnnModel, LoadRejectsTruncatedCheckpointWithNamedField) {
  // Keep only the header + first two config fields; the error should say
  // which field is missing rather than crash or mis-load.
  const std::string path = corrupted_checkpoint(
      "qgnn_truncated.txt", [](const std::string& l) { return l; }, 3);
  try {
    GnnModel::load(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("max_nodes"), std::string::npos)
        << "error should name the missing field, got: " << e.what();
  }
}

TEST(GnnModel, LoadRejectsNonNumericFieldValue) {
  const std::string path =
      corrupted_checkpoint("qgnn_banana.txt", [](const std::string& l) {
        return l.rfind("hidden_dim ", 0) == 0 ? "hidden_dim banana" : l;
      });
  try {
    GnnModel::load(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hidden_dim"), std::string::npos) << what;
    EXPECT_NE(what.find("banana"), std::string::npos) << what;
  }
}

TEST(GnnModel, LoadRejectsOutOfRangeFeatureKind) {
  const std::string path =
      corrupted_checkpoint("qgnn_badkind.txt", [](const std::string& l) {
        return l.rfind("feature_kind ", 0) == 0 ? "feature_kind 97" : l;
      });
  EXPECT_THROW(GnnModel::load(path), IoError);
}

TEST(GnnModel, LoadRejectsTruncatedWeightMatrix) {
  // Drop the final line, leaving the last parameter matrix short a row.
  Rng rng(3);
  const GnnModel model(small_config(GnnArch::kGCN), rng);
  const std::string good = ::testing::TempDir() + "/qgnn_good_model2.txt";
  model.save(good);
  std::vector<std::string> lines;
  {
    std::ifstream in(good);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  const std::string bad = ::testing::TempDir() + "/qgnn_short_weights.txt";
  {
    std::ofstream out(bad);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << '\n';
  }
  EXPECT_THROW(GnnModel::load(bad), IoError);
}

TEST(GnnModel, LoadRejectsInvalidConfigCombination) {
  // A syntactically valid file whose config fails GnnModel's own
  // validation (zero layers) must surface as IoError, not a crash.
  const std::string path =
      corrupted_checkpoint("qgnn_zero_layers.txt", [](const std::string& l) {
        return l.rfind("num_layers ", 0) == 0 ? "num_layers 0" : l;
      });
  EXPECT_THROW(GnnModel::load(path), IoError);
}

TEST(GnnModel, ZeroDropoutTrainingEqualsEval) {
  Rng rng(17);
  GnnModelConfig config = small_config(GnnArch::kGCN);
  config.dropout = 0.0;
  const GnnModel model(config, rng);
  const Graph g = cycle_graph(6);
  const GraphBatch batch = make_graph_batch(g, config.features);
  Rng d(5);
  const Matrix train_out = model.forward(batch, true, d).value();
  const Matrix eval_out = model.predict(batch);
  EXPECT_TRUE(train_out.approx_equal(eval_out, 1e-14));
}

TEST(GnnModel, DifferentSeedsGiveDifferentWeights) {
  Rng r1(1);
  Rng r2(2);
  const GnnModel a(small_config(GnnArch::kGIN), r1);
  const GnnModel b(small_config(GnnArch::kGIN), r2);
  EXPECT_FALSE(
      a.predict(cycle_graph(5)).approx_equal(b.predict(cycle_graph(5)),
                                             1e-12));
}

}  // namespace
}  // namespace qgnn
