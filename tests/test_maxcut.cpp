#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "maxcut/maxcut.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(CutValue, CountsCrossingEdges) {
  Graph g = path_graph(3);  // 0-1-2
  EXPECT_DOUBLE_EQ(cut_value(g, 0b000), 0.0);
  EXPECT_DOUBLE_EQ(cut_value(g, 0b010), 2.0);  // node 1 alone
  EXPECT_DOUBLE_EQ(cut_value(g, 0b001), 1.0);
  EXPECT_DOUBLE_EQ(cut_value(g, 0b111), 0.0);
}

TEST(CutValue, RespectsWeights) {
  Graph g(3);
  g.add_edge(0, 1, 2.5);
  g.add_edge(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(cut_value(g, 0b010), 3.0);
  EXPECT_DOUBLE_EQ(cut_value(g, 0b100), 0.5);
}

TEST(CutValue, ComplementGivesSameCut) {
  Rng rng(5);
  const Graph g = random_regular_graph(8, 3, rng);
  const std::uint64_t full = (1u << 8) - 1;
  for (std::uint64_t a : {0b00110101ULL, 0b11110000ULL, 0b10101010ULL}) {
    EXPECT_DOUBLE_EQ(cut_value(g, a), cut_value(g, a ^ full));
  }
}

TEST(BruteForce, KnownOptima) {
  // Even cycle: all edges cuttable. Odd cycle: n-1.
  EXPECT_DOUBLE_EQ(max_cut_brute_force(cycle_graph(6)).value, 6.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(cycle_graph(5)).value, 4.0);
  // Complete graph K_n: floor(n^2/4).
  EXPECT_DOUBLE_EQ(max_cut_brute_force(complete_graph(4)).value, 4.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(complete_graph(5)).value, 6.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(complete_graph(6)).value, 9.0);
  // Bipartite graphs cut everything.
  EXPECT_DOUBLE_EQ(max_cut_brute_force(star_graph(7)).value, 6.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(path_graph(8)).value, 7.0);
}

TEST(BruteForce, AssignmentAchievesReportedValue) {
  Rng rng(6);
  const Graph g = erdos_renyi_graph(9, 0.4, rng);
  const Cut c = max_cut_brute_force(g);
  EXPECT_DOUBLE_EQ(cut_value(g, c.assignment), c.value);
}

TEST(BruteForce, EdgelessAndTiny) {
  EXPECT_DOUBLE_EQ(max_cut_brute_force(Graph(4)).value, 0.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(Graph(1)).value, 0.0);
  Graph pair(2);
  pair.add_edge(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(pair).value, 3.0);
}

TEST(BruteForce, WeightedGraph) {
  Graph g(4);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 5.0);
  g.add_edge(3, 0, 1.0);
  // Cut {0,2} vs {1,3} crosses all edges: 12.
  EXPECT_DOUBLE_EQ(max_cut_brute_force(g).value, 12.0);
}

TEST(Greedy, AchievesAtLeastHalfTotalWeight) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi_graph(10, 0.5, rng);
    const Cut c = max_cut_greedy(g);
    EXPECT_DOUBLE_EQ(cut_value(g, c.assignment), c.value);
    EXPECT_GE(c.value, g.total_weight() / 2.0);
  }
}

TEST(LocalSearch, ReachesLocalOptimum) {
  Rng rng(8);
  const Graph g = erdos_renyi_graph(10, 0.5, rng);
  const Cut c = max_cut_local_search(g, 0);
  // No single flip improves.
  for (int v = 0; v < g.num_nodes(); ++v) {
    const std::uint64_t flipped = c.assignment ^ (std::uint64_t{1} << v);
    EXPECT_LE(cut_value(g, flipped), c.value + 1e-12);
  }
}

TEST(LocalSearch, NeverBeatsOptimum) {
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = erdos_renyi_graph(9, 0.4, rng);
    const Cut opt = max_cut_brute_force(g);
    const Cut ls = max_cut_local_search_multistart(g, 5, rng);
    EXPECT_LE(ls.value, opt.value + 1e-12);
    EXPECT_GE(ls.value, 0.0);
  }
}

class MultistartQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(MultistartQualityTest, FindsOptimumOnSmallGraphs) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 13);
  const Graph g = erdos_renyi_graph(n, 0.5, rng);
  const Cut opt = max_cut_brute_force(g);
  const Cut ls = max_cut_local_search_multistart(g, 30, rng);
  // With 30 restarts on <=10 nodes, local search should find the optimum.
  EXPECT_DOUBLE_EQ(ls.value, opt.value);
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, MultistartQualityTest,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10));

TEST(SimulatedAnnealing, FindsOptimaOnSmallGraphs) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = erdos_renyi_graph(10, 0.5, rng);
    if (g.num_edges() == 0) continue;
    const Cut opt = max_cut_brute_force(g);
    const Cut sa = max_cut_simulated_annealing(g, 200, rng);
    EXPECT_DOUBLE_EQ(sa.value, cut_value(g, sa.assignment));
    EXPECT_LE(sa.value, opt.value + 1e-12);
    EXPECT_GE(sa.value, 0.95 * opt.value) << "trial " << trial;
  }
}

TEST(SimulatedAnnealing, HandlesNegativeWeights) {
  // All-negative weights: best cut is the empty cut (value 0).
  Graph g(4);
  g.add_edge(0, 1, -1.0);
  g.add_edge(1, 2, -2.0);
  g.add_edge(2, 3, -1.5);
  Rng rng(23);
  const Cut sa = max_cut_simulated_annealing(g, 300, rng);
  EXPECT_DOUBLE_EQ(sa.value, 0.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(g).value, 0.0);
}

TEST(SimulatedAnnealing, Validation) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(max_cut_simulated_annealing(g, 0, rng), InvalidArgument);
  EXPECT_THROW(max_cut_simulated_annealing(g, 10, rng, 0.1, 1.0),
               InvalidArgument);
  EXPECT_DOUBLE_EQ(max_cut_simulated_annealing(Graph(3), 5, rng).value, 0.0);
}

TEST(BruteForce, NegativeWeightsSupported) {
  // Mixed signs: maximize sum of crossing weights; the solver must prefer
  // cutting the positive edge and not the negative one.
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, -1.0);
  const Cut opt = max_cut_brute_force(g);
  EXPECT_DOUBLE_EQ(opt.value, 2.0);
}

TEST(ApproximationRatio, Conventions) {
  EXPECT_DOUBLE_EQ(approximation_ratio(3.0, 4.0), 0.75);
  EXPECT_DOUBLE_EQ(approximation_ratio(0.0, 0.0), 1.0);
  EXPECT_THROW(approximation_ratio(1.0, -1.0), InvalidArgument);
}

TEST(RandomCutExpectation, HalfTotalWeight) {
  const Graph g = complete_graph(6);
  EXPECT_DOUBLE_EQ(random_cut_expectation(g), 7.5);
}

TEST(BruteForce, RejectsOversizedGraph) {
  EXPECT_THROW(max_cut_brute_force(Graph(27)), InvalidArgument);
}

}  // namespace
}  // namespace qgnn
