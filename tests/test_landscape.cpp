#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/landscape.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(Landscape, GridGeometry) {
  const QaoaAnsatz ansatz(cycle_graph(4));
  const Landscape ls = evaluate_landscape(ansatz, 16, 8);
  EXPECT_EQ(ls.values.size(), 16u * 8u);
  EXPECT_DOUBLE_EQ(ls.gamma_at(0), 0.0);
  EXPECT_NEAR(ls.gamma_at(8), ls.gamma_max / 2.0, 1e-12);
  EXPECT_NEAR(ls.beta_at(4), ls.beta_max / 2.0, 1e-12);
  EXPECT_THROW(ls.at(16, 0), InvalidArgument);
  EXPECT_THROW(evaluate_landscape(ansatz, 1, 8), InvalidArgument);
}

TEST(Landscape, ValuesMatchDirectEvaluation) {
  const QaoaAnsatz ansatz(cycle_graph(5));
  const Landscape ls = evaluate_landscape(ansatz, 12, 10);
  for (int gi : {0, 3, 11}) {
    for (int bi : {0, 4, 9}) {
      EXPECT_NEAR(ls.at(gi, bi),
                  ansatz.expectation(QaoaParams::single(ls.gamma_at(gi),
                                                        ls.beta_at(bi))),
                  1e-12);
    }
  }
}

TEST(Landscape, MaxNearFixedAngleValueOnEvenCycle) {
  // On C6 the p=1 optimum is 0.75 * 6 = 4.5; a reasonably fine grid must
  // come close.
  const QaoaAnsatz ansatz(cycle_graph(6));
  const Landscape ls = evaluate_landscape(ansatz, 64, 32);
  EXPECT_NEAR(ls.max_value(), 4.5, 0.02);
  EXPECT_GT(ls.max_value(), ls.min_value());
}

TEST(LandscapeStats, FindsMultipleMaximaOnPeriodicLandscape) {
  // The QAOA landscape is periodic; C4's landscape has several symmetric
  // copies of the optimum, so local maxima > 1.
  const QaoaAnsatz ansatz(cycle_graph(4));
  const Landscape ls = evaluate_landscape(ansatz, 48, 24);
  const LandscapeStats stats = analyze_landscape(ls);
  EXPECT_GE(stats.local_maxima, 2);
  EXPECT_GT(stats.good_start_fraction, 0.0);
  EXPECT_LT(stats.good_start_fraction, 0.5);
  EXPECT_GT(stats.gradient_variance, 0.0);
  EXPECT_NEAR(stats.global_max, ls.max_value(), 1e-12);
}

TEST(LandscapeStats, WiderBasinToleranceGrowsGoodFraction) {
  const QaoaAnsatz ansatz(cycle_graph(6));
  const Landscape ls = evaluate_landscape(ansatz, 32, 16);
  const double narrow = analyze_landscape(ls, 0.01).good_start_fraction;
  const double wide = analyze_landscape(ls, 0.5).good_start_fraction;
  EXPECT_LE(narrow, wide);
}

TEST(RenderLandscape, ProducesHeatmapWithExtremes) {
  const QaoaAnsatz ansatz(cycle_graph(4));
  const Landscape ls = evaluate_landscape(ansatz, 32, 16);
  const std::string art = render_landscape(ls, 32);
  EXPECT_NE(art.find('@'), std::string::npos);  // a max cell exists
  EXPECT_NE(art.find('\n'), std::string::npos);
  EXPECT_THROW(render_landscape(ls, 4), InvalidArgument);
}

TEST(RandomStartSuccess, ProbabilityIsSane) {
  Rng rng(4);
  const QaoaAnsatz ansatz(cycle_graph(6));
  const double p_loose =
      random_start_success_probability(ansatz, 0.7, 20, 60, rng);
  const double p_tight =
      random_start_success_probability(ansatz, 0.999, 20, 8, rng);
  EXPECT_GE(p_loose, 0.0);
  EXPECT_LE(p_loose, 1.0);
  // Nearly-exact target with a starved budget must be harder than a loose
  // target with a real budget.
  EXPECT_LE(p_tight, p_loose);
  EXPECT_THROW(
      random_start_success_probability(ansatz, 1.5, 5, 10, rng),
      InvalidArgument);
}

}  // namespace
}  // namespace qgnn
