#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnn/layers.hpp"
#include "gnn/model.hpp"
#include "graph/generators.hpp"
#include "quantum/statevector.hpp"
#include "serve/model_registry.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/protocol.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {
namespace {

using serve::CacheKey;
using serve::ModelRegistry;
using serve::Prediction;
using serve::PredictionCache;
using serve::ServeConfig;
using serve::ServeHandle;

GnnModel make_model(GnnArch arch, std::uint64_t seed) {
  GnnModelConfig config;
  config.arch = arch;
  Rng rng(seed);
  return GnnModel(config, rng);
}

std::vector<Graph> test_graphs(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Graph> graphs;
  graphs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int n = rng.uniform_int(4, 12);
    const int d = n % 2 == 0 ? 3 : 4;
    graphs.push_back(random_regular_graph(n, d, rng));
  }
  return graphs;
}

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "mismatch at (" << i << "," << j << ")";
    }
  }
}

/// Restores the global pool size on scope exit so tests don't leak their
/// thread-count choice into later tests.
struct PoolSizeGuard {
  ~PoolSizeGuard() {
    ThreadPool::set_global_threads(ThreadPool::configured_threads());
  }
};

/// Restores the global observability switch on scope exit.
struct ObsEnabledGuard {
  bool saved = obs::enabled();
  ~ObsEnabledGuard() { obs::set_enabled(saved); }
};

// ---- acceptance: batched == single, at any thread count -----------------

TEST(Serve, BatchedPredictionsBitIdenticalToSingleAcrossThreadCounts) {
  PoolSizeGuard guard;
  const auto graphs = test_graphs(24, 101);
  for (const GnnArch arch : all_gnn_archs()) {
    const GnnModel reference = make_model(arch, 5);
    std::vector<Matrix> expected;
    expected.reserve(graphs.size());
    for (const Graph& g : graphs) expected.push_back(reference.predict(g));

    for (const int threads : {1, 2, 4}) {
      ThreadPool::set_global_threads(threads);
      ServeConfig config;
      config.max_batch = 8;
      config.max_queue_delay = std::chrono::microseconds(2000);
      config.cache_capacity = 0;  // force every request through a forward
      ServeHandle serve(config);
      serve.register_model("m", make_model(arch, 5));

      std::vector<Prediction> results(graphs.size());
      std::vector<std::thread> clients;
      std::atomic<std::size_t> next{0};
      for (int c = 0; c < 6; ++c) {
        clients.emplace_back([&] {
          std::size_t i;
          while ((i = next.fetch_add(1)) < graphs.size()) {
            results[i] = serve.predict("m", graphs[i]);
          }
        });
      }
      for (auto& t : clients) t.join();

      for (std::size_t i = 0; i < graphs.size(); ++i) {
        SCOPED_TRACE(to_string(arch) + " threads=" + std::to_string(threads) +
                     " graph=" + std::to_string(i));
        expect_bit_identical(results[i].values, expected[i]);
      }
    }
  }
}

TEST(Serve, RequestsActuallyCoalesce) {
  ServeConfig config;
  config.max_batch = 8;
  config.max_queue_delay = std::chrono::microseconds(20000);
  config.cache_capacity = 0;
  ServeHandle serve(config);
  serve.register_model("m", make_model(GnnArch::kGCN, 1));

  const auto graphs = test_graphs(32, 7);
  std::vector<Prediction> results(graphs.size());
  std::vector<std::thread> clients;
  std::atomic<std::size_t> next{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      std::size_t i;
      while ((i = next.fetch_add(1)) < graphs.size()) {
        results[i] = serve.predict("m", graphs[i]);
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto stats = serve.stats();
  EXPECT_EQ(stats.requests, graphs.size());
  EXPECT_EQ(stats.batched_requests, graphs.size());
  // With 8 concurrent clients and a generous delay, at least some forward
  // passes must have served more than one request.
  EXPECT_LT(stats.batches, graphs.size());
  EXPECT_GT(stats.mean_batch_size, 1.0);
  int max_observed = 0;
  for (const Prediction& p : results) {
    max_observed = std::max(max_observed, p.batch_size);
  }
  EXPECT_GT(max_observed, 1);
  EXPECT_LE(max_observed, config.max_batch);
}

// ---- acceptance: cache hits return the same values as cold misses -------

TEST(Serve, CacheHitsReturnSameValuesAsColdMisses) {
  ServeConfig config;
  config.max_batch = 1;
  config.cache_capacity = 64;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 2));

  // Cycle graphs of distinct sizes are pairwise non-isomorphic, so the
  // first pass is guaranteed to be all cache misses. (Random regular
  // graphs can repeat up to isomorphism — e.g. every 3-regular graph on
  // 4 nodes is K4 — which would make a "cold" request hit the cache.)
  std::vector<Graph> graphs;
  for (int n = 4; n < 12; ++n) graphs.push_back(cycle_graph(n));
  std::vector<Prediction> cold;
  cold.reserve(graphs.size());
  for (const Graph& g : graphs) cold.push_back(serve.predict(g));
  for (const Prediction& p : cold) EXPECT_FALSE(p.cache_hit);

  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Prediction warm = serve.predict(graphs[i]);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.generation, cold[i].generation);
    expect_bit_identical(warm.values, cold[i].values);
  }

  const auto stats = serve.stats();
  EXPECT_EQ(stats.cache_hits, graphs.size());
  EXPECT_EQ(stats.cache_misses, graphs.size());
}

TEST(Serve, IsomorphicGraphsShareACacheEntry) {
  ServeConfig config;
  config.max_batch = 1;
  config.cache_capacity = 64;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 3));

  Rng rng(17);
  const Graph g = random_regular_graph(10, 3, rng);
  std::vector<int> perm{3, 1, 4, 0, 9, 5, 8, 2, 7, 6};
  const Graph relabelled = g.permuted(perm);

  const Prediction first = serve.predict(g);
  const Prediction second = serve.predict(relabelled);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit) << "canonical hashing should identify "
                                   "relabelled isomorphic graphs";
  expect_bit_identical(second.values, first.values);
}

TEST(Serve, CacheEvictsLeastRecentlyUsed) {
  PredictionCache cache(2);
  const Matrix m(1, 2, 0.5);
  cache.insert(CacheKey{"m", 1, 100}, m);
  cache.insert(CacheKey{"m", 1, 200}, m);
  EXPECT_TRUE(cache.lookup(CacheKey{"m", 1, 100}).has_value());  // refresh
  cache.insert(CacheKey{"m", 1, 300}, m);  // evicts 200, not 100
  EXPECT_TRUE(cache.lookup(CacheKey{"m", 1, 100}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{"m", 1, 200}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{"m", 1, 300}).has_value());

  const auto counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.size, 2u);
  EXPECT_EQ(counters.hits, 3u);
  EXPECT_EQ(counters.misses, 1u);
}

TEST(Serve, HotSwapInvalidatesCacheViaGenerationKey) {
  ServeConfig config;
  config.max_batch = 1;
  config.cache_capacity = 64;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 4));

  Rng rng(23);
  const Graph g = random_regular_graph(8, 3, rng);
  const Prediction before = serve.predict(g);
  EXPECT_EQ(before.generation, 1u);

  serve.register_model("default", make_model(GnnArch::kGCN, 999));
  const Prediction after = serve.predict(g);
  EXPECT_EQ(after.generation, 2u);
  EXPECT_FALSE(after.cache_hit) << "old generation's entry must not serve "
                                   "the swapped model";
}

// ---- acceptance: hot-swap never mixes generations within one batch ------

TEST(Serve, HotSwapNeverMixesGenerationsWithinABatch) {
  ServeConfig config;
  config.max_batch = 8;
  config.max_queue_delay = std::chrono::microseconds(500);
  config.cache_capacity = 0;
  ServeHandle serve(config);
  serve.register_model("m", make_model(GnnArch::kGCN, 10));

  const auto graphs = test_graphs(16, 31);
  std::atomic<bool> stop{false};
  std::mutex results_mutex;
  std::vector<Prediction> results;

  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 77);
      while (!stop.load()) {
        const Graph& g =
            graphs[rng.index(graphs.size())];
        const Prediction p = serve.predict("m", g);
        std::lock_guard<std::mutex> lk(results_mutex);
        results.push_back(p);
      }
    });
  }

  // Swap the model repeatedly while requests are in flight.
  for (int swap = 0; swap < 20; ++swap) {
    serve.register_model("m",
                         make_model(GnnArch::kGCN, 100 + static_cast<std::uint64_t>(swap)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& t : clients) t.join();

  ASSERT_GT(results.size(), 0u);
  std::map<std::uint64_t, std::set<std::uint64_t>> generations_by_batch;
  std::uint64_t max_generation = 0;
  for (const Prediction& p : results) {
    ASSERT_GT(p.batch_id, 0u);
    generations_by_batch[p.batch_id].insert(p.generation);
    max_generation = std::max(max_generation, p.generation);
  }
  for (const auto& [batch_id, gens] : generations_by_batch) {
    EXPECT_EQ(gens.size(), 1u)
        << "batch " << batch_id << " mixed " << gens.size() << " generations";
  }
  EXPECT_GT(max_generation, 1u) << "swaps should have landed mid-stream";
}

// ---- batching behavior ---------------------------------------------------

TEST(Serve, SingleRequestFlushesAfterMaxDelay) {
  ServeConfig config;
  config.max_batch = 64;  // never fills
  config.max_queue_delay = std::chrono::microseconds(1000);
  config.cache_capacity = 0;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 6));

  Rng rng(41);
  const Prediction p = serve.predict(random_regular_graph(8, 3, rng));
  EXPECT_EQ(p.batch_size, 1);
  EXPECT_GT(p.batch_id, 0u);
}

TEST(Serve, UnknownModelAndOversizedGraphAreRejected) {
  ServeHandle serve;
  serve.register_model("default", make_model(GnnArch::kGCN, 8));
  Rng rng(43);
  const Graph g = random_regular_graph(8, 3, rng);
  EXPECT_THROW(serve.predict("nope", g), InvalidArgument);
  const Graph too_big = cycle_graph(40);  // default max_nodes is 15
  EXPECT_THROW(serve.predict("default", too_big), InvalidArgument);
}

TEST(Serve, LatencyAndThroughputStatsPopulate) {
  ServeConfig config;
  config.max_batch = 4;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 9));
  const auto graphs = test_graphs(10, 53);
  for (const Graph& g : graphs) serve.predict(g);

  const auto stats = serve.stats();
  EXPECT_EQ(stats.requests, graphs.size());
  EXPECT_GT(stats.latency_us_p50, 0.0);
  EXPECT_GE(stats.latency_us_p99, stats.latency_us_p50);
  EXPECT_GE(stats.latency_us_p90, stats.latency_us_p50);
  EXPECT_GT(stats.requests_per_second, 0.0);
}

// ---- registry ------------------------------------------------------------

TEST(Serve, RegistryLoadsCheckpointDirectoryAndHotSwaps) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "qgnn_serve_registry_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  make_model(GnnArch::kGCN, 1).save((dir / "alpha.txt").string());
  make_model(GnnArch::kGAT, 2).save((dir / "beta.model").string());
  // Non-checkpoint files must be ignored.
  { std::ofstream((dir / "README.md").string()) << "not a model\n"; }

  ModelRegistry registry;
  EXPECT_EQ(registry.load_directory(dir.string()), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(registry.get("alpha")->generation, 1u);
  EXPECT_EQ(registry.get("beta")->model->config().arch, GnnArch::kGAT);

  registry.register_model("alpha", make_model(GnnArch::kGIN, 3));
  EXPECT_EQ(registry.get("alpha")->generation, 2u);
  EXPECT_EQ(registry.get("alpha")->model->config().arch, GnnArch::kGIN);
  EXPECT_THROW(registry.get("gamma"), InvalidArgument);

  fs::remove_all(dir);
}

TEST(Serve, RegistryRejectsOddOutputDim) {
  GnnModelConfig config;
  config.output_dim = 3;  // not a (gamma, beta) stack
  Rng rng(1);
  ModelRegistry registry;
  EXPECT_THROW(registry.register_model("bad", GnnModel(config, rng)), Error);
}

// ---- NDJSON protocol -----------------------------------------------------

TEST(Serve, NdjsonRoundTrip) {
  ServeConfig config;
  config.max_batch = 1;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 12));

  std::istringstream in(
      "{\"id\": 1, \"nodes\": 4, \"edges\": [[0,1],[1,2],[2,3],[3,0]]}\n"
      "\n"
      "{\"id\": \"req-2\", \"model\": \"default\", \"nodes\": 3, "
      "\"edges\": [[0,1],[1,2],[2,0]]}\n"
      "{\"id\": 3, \"nodes\": 3}\n"
      "this is not json\n");
  std::ostringstream out;
  EXPECT_EQ(serve::run_ndjson_server(in, out, serve), 4u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<serve::JsonValue> responses;
  while (std::getline(lines, line)) {
    responses.push_back(serve::parse_json(line));
  }
  ASSERT_EQ(responses.size(), 4u);

  EXPECT_EQ(responses[0].find("id")->number, 1.0);
  EXPECT_TRUE(responses[0].find("ok")->boolean);
  EXPECT_EQ(responses[0].find("values")->array.size(), 2u);
  EXPECT_EQ(responses[0].find("generation")->number, 1.0);

  EXPECT_EQ(responses[1].find("id")->string, "req-2");
  EXPECT_TRUE(responses[1].find("ok")->boolean);

  EXPECT_FALSE(responses[2].find("ok")->boolean);  // missing edges
  EXPECT_NE(responses[2].find("error"), nullptr);

  EXPECT_FALSE(responses[3].find("ok")->boolean);  // unparsable line
}

TEST(Serve, NdjsonPipelinedWorkersAnswerEveryRequest) {
  ServeConfig config;
  config.max_batch = 8;
  config.max_queue_delay = std::chrono::microseconds(2000);
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 13));

  std::ostringstream requests;
  for (int i = 0; i < 40; ++i) {
    const int n = 4 + i % 6;
    requests << "{\"id\": " << i << ", \"nodes\": " << n << ", \"edges\": [";
    for (int v = 0; v < n; ++v) {
      requests << (v ? "," : "") << "[" << v << "," << (v + 1) % n << "]";
    }
    requests << "]}\n";
  }
  std::istringstream in(requests.str());
  std::ostringstream out;
  EXPECT_EQ(serve::run_ndjson_server(in, out, serve, /*workers=*/4), 40u);

  std::istringstream lines(out.str());
  std::string line;
  std::set<int> ids;
  while (std::getline(lines, line)) {
    const auto resp = serve::parse_json(line);
    EXPECT_TRUE(resp.find("ok")->boolean);
    ids.insert(static_cast<int>(resp.find("id")->number));
  }
  EXPECT_EQ(ids.size(), 40u) << "every id answered exactly once";
}

TEST(Serve, NdjsonStatsCommandRoundTrip) {
  ObsEnabledGuard obs_guard;
  obs::set_enabled(true);
  ServeConfig config;
  config.max_batch = 4;
  config.cache_capacity = 64;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 21));

  // Three predicts (the third repeats the first, so it is a cache hit)
  // followed by the stats command; workers=1 keeps responses in order.
  std::istringstream in(
      "{\"id\": 1, \"nodes\": 4, \"edges\": [[0,1],[1,2],[2,3],[3,0]]}\n"
      "{\"id\": 2, \"nodes\": 3, \"edges\": [[0,1],[1,2],[2,0]]}\n"
      "{\"id\": 1, \"nodes\": 4, \"edges\": [[0,1],[1,2],[2,3],[3,0]]}\n"
      "{\"cmd\": \"stats\", \"id\": 99}\n");
  std::ostringstream out;
  EXPECT_EQ(serve::run_ndjson_server(in, out, serve, /*workers=*/1), 4u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<serve::JsonValue> responses;
  while (std::getline(lines, line)) {
    responses.push_back(serve::parse_json(line));
  }
  ASSERT_EQ(responses.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(responses[static_cast<std::size_t>(i)].find("ok")->boolean);
  }

  const serve::JsonValue& reply = responses[3];
  EXPECT_EQ(reply.find("id")->number, 99.0);
  EXPECT_TRUE(reply.find("ok")->boolean);
  const serve::JsonValue* stats = reply.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("requests")->number, 3.0);
  EXPECT_EQ(stats->find("cache_hits")->number, 1.0);
  EXPECT_EQ(stats->find("cache_misses")->number, 2.0);
  EXPECT_GT(stats->find("latency_us_p50")->number, 0.0);

  // The per-stage histograms are populated while observability is on.
  const serve::JsonValue* forward = stats->find("forward_us");
  ASSERT_NE(forward, nullptr);
  EXPECT_GE(forward->find("count")->number, 1.0);
  EXPECT_GT(forward->find("mean")->number, 0.0);
  const serve::JsonValue* queue_wait = stats->find("queue_wait_us");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_GE(queue_wait->find("count")->number, 2.0);
  EXPECT_EQ(stats->find("batch_size")->find("sum")->number,
            stats->find("batched_requests")->number);
}

TEST(Serve, UnknownCmdProducesErrorResponse) {
  ServeHandle serve;
  serve.register_model("default", make_model(GnnArch::kGCN, 22));
  std::istringstream in("{\"cmd\": \"selfdestruct\", \"id\": 5}\n");
  std::ostringstream out;
  serve::run_ndjson_server(in, out, serve);
  const auto resp = serve::parse_json(out.str());
  EXPECT_EQ(resp.find("id")->number, 5.0);
  EXPECT_FALSE(resp.find("ok")->boolean);
  EXPECT_NE(resp.find("error")->string.find("unknown cmd"),
            std::string::npos);
}

TEST(Serve, ConcurrentPredictAccountingIsExact) {
  ObsEnabledGuard obs_guard;
  obs::set_enabled(true);
  ServeConfig config;
  config.max_batch = 8;
  config.max_queue_delay = std::chrono::microseconds(500);
  config.cache_capacity = 256;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 23));

  // 16 distinct graphs requested many times over from 8 threads: plenty
  // of duplicates, so hits, misses, and coalesced batches all occur.
  const auto graphs = test_graphs(16, 77);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&serve, &graphs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        serve.predict(
            graphs[static_cast<std::size_t>(t * 7 + i) % graphs.size()]);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = serve.stats();
  const auto total =
      static_cast<std::uint64_t>(kThreads) * static_cast<std::uint64_t>(
                                                 kPerThread);
  // Exactness under concurrency: every request does exactly one cache
  // probe (hit XOR miss), and every miss is answered by exactly one
  // coalesced forward pass.
  EXPECT_EQ(stats.requests, total);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, total);
  EXPECT_EQ(stats.batched_requests, stats.cache_misses);
  // The batch-size histogram counts one sample per forward pass and its
  // sum is the number of requests those passes answered.
  EXPECT_EQ(stats.batch_size.count, stats.batches);
  EXPECT_EQ(stats.batch_size.sum,
            static_cast<double>(stats.batched_requests));
}

TEST(Serve, JsonParserRejectsGarbage) {
  EXPECT_THROW(serve::parse_json("{"), InvalidArgument);
  EXPECT_THROW(serve::parse_json("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(serve::parse_json("[1,2,]"), InvalidArgument);
  EXPECT_THROW(serve::parse_json("12abc"), InvalidArgument);
  EXPECT_THROW(serve::parse_json("{} trailing"), InvalidArgument);
  EXPECT_EQ(serve::parse_json("[1, 2.5, -3e2]").array.size(), 3u);
  EXPECT_EQ(serve::parse_json("\"a\\nb\"").string, "a\nb");
}

TEST(Serve, VerifyArScoresPredictionsOnAllPaths) {
  ServeConfig config;
  config.max_batch = 4;
  config.max_queue_delay = std::chrono::microseconds(0);
  config.verify_ar = true;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 21));

  const auto graphs = test_graphs(6, 77);
  // predict_many: miss path (first round) then hit path (second round).
  for (int round = 0; round < 2; ++round) {
    const auto preds = serve.predict_many(graphs);
    for (const Prediction& p : preds) {
      EXPECT_TRUE(p.ar_verified);
      EXPECT_GT(p.approximation_ratio, 0.0);
      EXPECT_LE(p.approximation_ratio, 1.0);
      EXPECT_EQ(p.cache_hit, round == 1);
    }
  }
  // predict: cache-hit path, plus one fresh miss through the batcher.
  const Prediction hit = serve.predict(graphs[0]);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.ar_verified);
  Rng rng(78);
  const Prediction miss = serve.predict(random_regular_graph(9, 4, rng));
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(miss.ar_verified);
  EXPECT_GT(miss.approximation_ratio, 0.0);

  // The simulator runs once per distinct graph: the score is cached with
  // the prediction values, so the hit rounds above reused it instead of
  // recomputing the identical number.
  const auto stats = serve.stats();
  EXPECT_EQ(stats.ar_verifications, graphs.size() + 1);
}

TEST(Serve, VerifyArIsDeterministicAcrossCacheHitAndMiss) {
  ServeConfig config;
  config.max_batch = 1;
  config.verify_ar = true;
  ServeHandle serve(config);
  serve.register_model("default", make_model(GnnArch::kGCN, 22));
  Rng rng(79);
  const Graph g = random_regular_graph(10, 3, rng);
  const Prediction cold = serve.predict(g);
  const Prediction warm = serve.predict(g);
  ASSERT_FALSE(cold.cache_hit);
  ASSERT_TRUE(warm.cache_hit);
  // Same prediction row, same graph, same exact simulator: the score must
  // be bit-identical however the answer was produced.
  EXPECT_EQ(cold.approximation_ratio, warm.approximation_ratio);
}

TEST(Serve, VerifyArOffByDefaultAndSkipsOversizedGraphs) {
  {
    ServeHandle serve;
    serve.register_model("default", make_model(GnnArch::kGCN, 23));
    Rng rng(80);
    const Prediction p = serve.predict(random_regular_graph(8, 3, rng));
    EXPECT_FALSE(p.ar_verified);
    EXPECT_EQ(p.approximation_ratio, 0.0);
    EXPECT_EQ(serve.stats().ar_verifications, 0u);
  }
  {
    // A model that accepts graphs beyond the statevector cap: prediction
    // succeeds, verification silently skips.
    ServeConfig config;
    config.verify_ar = true;
    ServeHandle serve(config);
    GnnModelConfig model_config;
    model_config.features.max_nodes = kMaxQubits + 4;
    Rng mrng(24);
    serve.register_model("default", GnnModel(model_config, mrng));
    Rng rng(81);
    const Prediction small = serve.predict(random_regular_graph(10, 3, rng));
    EXPECT_TRUE(small.ar_verified);
    const Prediction big =
        serve.predict(random_regular_graph(kMaxQubits + 2, 3, rng));
    EXPECT_FALSE(big.ar_verified);
    EXPECT_EQ(serve.stats().ar_verifications, 1u);
  }
}

TEST(Serve, VerifyArPopulatesStageHistogramOnlyWhenObsEnabled) {
  ObsEnabledGuard guard;
  ServeConfig config;
  config.verify_ar = true;
  config.cache_capacity = 0;
  Rng rng(82);
  const Graph g = random_regular_graph(8, 3, rng);

  obs::set_enabled(true);
  ServeHandle on(config);
  on.register_model("default", make_model(GnnArch::kGCN, 25));
  on.predict(g);
  EXPECT_EQ(on.stats().verify_us.count, 1u);

  obs::set_enabled(false);
  ServeHandle off(config);
  off.register_model("default", make_model(GnnArch::kGCN, 25));
  off.predict(g);
  EXPECT_EQ(off.stats().verify_us.count, 0u);
  EXPECT_EQ(off.stats().ar_verifications, 1u);  // counted regardless
}

}  // namespace
}  // namespace qgnn
