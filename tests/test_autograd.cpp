#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/var.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

using ag::Var;

/// Builds a scalar Var from leaf inputs. Must be a pure function of the
/// leaf values (deterministic), so central finite differences are valid.
using BuildFn = std::function<Var(const std::vector<Var>&)>;

/// Verify reverse-mode gradients of `build` against central finite
/// differences for every entry of every input.
void check_gradients(const std::vector<Matrix>& inputs, const BuildFn& build,
                     double h = 1e-6, double tol = 1e-5) {
  // Analytic gradients.
  std::vector<Var> leaves;
  leaves.reserve(inputs.size());
  for (const Matrix& m : inputs) leaves.emplace_back(m, true);
  Var out = build(leaves);
  ASSERT_EQ(out.rows(), 1u);
  ASSERT_EQ(out.cols(), 1u);
  out.backward();

  auto eval = [&build](const std::vector<Matrix>& values) {
    std::vector<Var> ls;
    ls.reserve(values.size());
    for (const Matrix& m : values) ls.emplace_back(m, false);
    return build(ls).value()(0, 0);
  };

  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (std::size_t i = 0; i < inputs[k].rows(); ++i) {
      for (std::size_t j = 0; j < inputs[k].cols(); ++j) {
        std::vector<Matrix> probe = inputs;
        probe[k](i, j) = inputs[k](i, j) + h;
        const double fp = eval(probe);
        probe[k](i, j) = inputs[k](i, j) - h;
        const double fm = eval(probe);
        const double fd = (fp - fm) / (2.0 * h);
        EXPECT_NEAR(leaves[k].grad()(i, j), fd, tol)
            << "input " << k << " entry (" << i << "," << j << ")";
      }
    }
  }
}

/// Deterministic scalarizer: weighted sum with fixed weights so every
/// output entry influences the scalar differently.
Var scalarize(const Var& v) {
  Matrix w(v.rows(), v.cols());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t j = 0; j < w.cols(); ++j) {
      w(i, j) = 0.3 + 0.7 * static_cast<double>(i) -
                0.4 * static_cast<double>(j) +
                0.05 * static_cast<double>(i * j);
    }
  }
  return ag::sum_all(ag::mul(v, Var(w, false)));
}

Matrix test_matrix(std::size_t rows, std::size_t cols, double scale = 1.0,
                   double offset = 0.0) {
  Matrix m(rows, cols);
  // Deterministic irrational-ish entries avoiding ReLU/max kinks.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) =
          scale * std::sin(1.7 * static_cast<double>(i * cols + j) + 0.3) +
          offset;
    }
  }
  return m;
}

TEST(Autograd, MatmulGradient) {
  check_gradients({test_matrix(3, 4), test_matrix(4, 2)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::matmul(in[0], in[1]));
                  });
}

TEST(Autograd, AddSubGradient) {
  check_gradients({test_matrix(2, 3), test_matrix(2, 3, 0.5)},
                  [](const std::vector<Var>& in) {
                    return scalarize(
                        ag::sub(ag::add(in[0], in[1]), in[1]));
                  });
}

TEST(Autograd, AddBiasGradient) {
  check_gradients({test_matrix(4, 3), test_matrix(1, 3)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::add_bias(in[0], in[1]));
                  });
}

TEST(Autograd, ElementwiseMulGradient) {
  check_gradients({test_matrix(3, 3), test_matrix(3, 3, 2.0)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::mul(in[0], in[1]));
                  });
}

TEST(Autograd, ScalarMulGradient) {
  check_gradients({test_matrix(2, 2)}, [](const std::vector<Var>& in) {
    return scalarize(ag::scalar_mul(in[0], -2.5));
  });
}

TEST(Autograd, ReluGradient) {
  // Offsets keep values away from the kink at 0.
  check_gradients({test_matrix(3, 3, 1.0, 0.05)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::relu(in[0]));
                  });
}

TEST(Autograd, LeakyReluGradient) {
  check_gradients({test_matrix(3, 3, 1.0, 0.05)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::leaky_relu(in[0], 0.2));
                  });
}

TEST(Autograd, SigmoidGradient) {
  check_gradients({test_matrix(2, 4)}, [](const std::vector<Var>& in) {
    return scalarize(ag::sigmoid(in[0]));
  });
}

TEST(Autograd, TanhGradient) {
  check_gradients({test_matrix(2, 4)}, [](const std::vector<Var>& in) {
    return scalarize(ag::tanh_op(in[0]));
  });
}

TEST(Autograd, ConcatColsGradient) {
  check_gradients({test_matrix(3, 2), test_matrix(3, 4)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::concat_cols(in[0], in[1]));
                  });
}

TEST(Autograd, GatherRowsGradient) {
  const std::vector<int> index{2, 0, 1, 2, 2};
  check_gradients({test_matrix(3, 3)},
                  [&index](const std::vector<Var>& in) {
                    return scalarize(ag::gather_rows(in[0], index));
                  });
}

TEST(Autograd, ScatterAddRowsGradient) {
  const std::vector<int> index{1, 3, 1, 0};
  check_gradients({test_matrix(4, 2)},
                  [&index](const std::vector<Var>& in) {
                    return scalarize(ag::scatter_add_rows(in[0], index, 4));
                  });
}

TEST(Autograd, ScaleRowsGradient) {
  const std::vector<double> coeffs{0.5, -1.5, 2.0};
  check_gradients({test_matrix(3, 3)},
                  [&coeffs](const std::vector<Var>& in) {
                    return scalarize(ag::scale_rows(in[0], coeffs));
                  });
}

TEST(Autograd, ScatterAddGatheredRowsGradient) {
  const std::vector<int> src{0, 1, 2, 2, 3};
  const std::vector<int> dst{1, 0, 3, 1, 2};
  const std::vector<double> coeff{0.5, -1.2, 2.0, 0.7, 1.1};
  check_gradients({test_matrix(4, 3)},
                  [&](const std::vector<Var>& in) {
                    return scalarize(ag::scatter_add_gathered_rows(
                        in[0], src, dst, coeff, 4));
                  });
}

TEST(Autograd, ScatterAddGatheredRowsMatchesUnfusedChain) {
  // The fused op promises bit-identity with gather -> scale -> scatter.
  const std::vector<int> src{0, 1, 2, 2, 3, 0};
  const std::vector<int> dst{1, 0, 3, 1, 2, 2};
  const std::vector<double> coeff{0.5, -1.2, 2.0, 0.7, 1.1, -0.3};
  const Var x(test_matrix(4, 3), false);
  const Var fused = ag::scatter_add_gathered_rows(x, src, dst, coeff, 4);
  const Var unfused = ag::scatter_add_rows(
      ag::scale_rows(ag::gather_rows(x, src), coeff), dst, 4);
  for (std::size_t i = 0; i < fused.rows(); ++i) {
    for (std::size_t j = 0; j < fused.cols(); ++j) {
      EXPECT_EQ(fused.value()(i, j), unfused.value()(i, j));
    }
  }
  // Empty coeff means all ones: plain gather + scatter.
  const Var fused1 = ag::scatter_add_gathered_rows(x, src, dst, {}, 4);
  const Var unfused1 =
      ag::scatter_add_rows(ag::gather_rows(x, src), dst, 4);
  for (std::size_t i = 0; i < fused1.rows(); ++i) {
    for (std::size_t j = 0; j < fused1.cols(); ++j) {
      EXPECT_EQ(fused1.value()(i, j), unfused1.value()(i, j));
    }
  }
}

TEST(Autograd, AffineGradient) {
  check_gradients({test_matrix(3, 4), test_matrix(4, 2), test_matrix(1, 2)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::affine(in[0], in[1], in[2]));
                  });
}

TEST(Autograd, AffineMatchesMatmulPlusBias) {
  const Var a(test_matrix(3, 4), false);
  const Var w(test_matrix(4, 2, 0.6), false);
  const Var b(test_matrix(1, 2, 0.4), false);
  const Var fused = ag::affine(a, w, b);
  const Var unfused = ag::add_bias(ag::matmul(a, w), b);
  for (std::size_t i = 0; i < fused.rows(); ++i) {
    for (std::size_t j = 0; j < fused.cols(); ++j) {
      EXPECT_EQ(fused.value()(i, j), unfused.value()(i, j));
    }
  }
}

TEST(Autograd, AddScaledRowsGradient) {
  const std::vector<double> coeffs{0.25, -1.0, 1.75};
  check_gradients({test_matrix(3, 2), test_matrix(3, 2, 0.9)},
                  [&coeffs](const std::vector<Var>& in) {
                    return scalarize(
                        ag::add_scaled_rows(in[0], in[1], coeffs));
                  });
}

TEST(Autograd, AddScaledRowsMatchesAddScaleChain) {
  const std::vector<double> coeffs{0.25, -1.0, 1.75};
  const Var a(test_matrix(3, 2), false);
  const Var b(test_matrix(3, 2, 0.9), false);
  const Var fused = ag::add_scaled_rows(a, b, coeffs);
  const Var unfused = ag::add(a, ag::scale_rows(b, coeffs));
  for (std::size_t i = 0; i < fused.rows(); ++i) {
    for (std::size_t j = 0; j < fused.cols(); ++j) {
      EXPECT_EQ(fused.value()(i, j), unfused.value()(i, j));
    }
  }
}

TEST(Autograd, NoGradGuardProducesValueOnlyNodes) {
  const Var a(test_matrix(2, 2), true);
  Matrix guarded_value;
  {
    ag::NoGradGuard guard;
    EXPECT_FALSE(ag::grad_enabled());
    const Var out = ag::matmul(a, a);
    guarded_value = out.value();
    EXPECT_FALSE(out.requires_grad());
    EXPECT_TRUE(out.node()->parents.empty());
  }
  EXPECT_TRUE(ag::grad_enabled());
  // Values match the recording mode bit for bit.
  const Var recorded = ag::matmul(a, a);
  for (std::size_t i = 0; i < recorded.rows(); ++i) {
    for (std::size_t j = 0; j < recorded.cols(); ++j) {
      EXPECT_EQ(guarded_value(i, j), recorded.value()(i, j));
    }
  }
  EXPECT_TRUE(recorded.requires_grad());
}

TEST(Autograd, NoGradGuardNests) {
  ag::NoGradGuard outer;
  EXPECT_FALSE(ag::grad_enabled());
  {
    ag::NoGradGuard inner;
    EXPECT_FALSE(ag::grad_enabled());
  }
  EXPECT_FALSE(ag::grad_enabled());
}

TEST(Autograd, MulColGradient) {
  check_gradients({test_matrix(4, 3), test_matrix(4, 1, 0.8, 0.2)},
                  [](const std::vector<Var>& in) {
                    return scalarize(ag::mul_col(in[0], in[1]));
                  });
}

TEST(Autograd, SegmentSoftmaxGradient) {
  const std::vector<int> segment{0, 0, 1, 1, 1, 2};
  check_gradients({test_matrix(6, 1, 1.3)},
                  [&segment](const std::vector<Var>& in) {
                    return scalarize(ag::segment_softmax(in[0], segment, 3));
                  });
}

TEST(Autograd, SegmentMaxGradient) {
  // Distinct values avoid argmax ties.
  Matrix m(5, 2);
  double v = 0.11;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      m(i, j) = v;
      v += 0.37;
    }
  }
  const std::vector<int> segment{0, 1, 0, 1, 0};
  check_gradients({m}, [&segment](const std::vector<Var>& in) {
    return scalarize(ag::segment_max(in[0], segment, 2));
  });
}

TEST(Autograd, MeanRowsGradient) {
  check_gradients({test_matrix(5, 3)}, [](const std::vector<Var>& in) {
    return scalarize(ag::mean_rows(in[0]));
  });
}

TEST(Autograd, MseLossGradient) {
  const Matrix target = test_matrix(1, 4, 0.5);
  check_gradients({test_matrix(1, 4)},
                  [&target](const std::vector<Var>& in) {
                    return ag::mse_loss(in[0], target);
                  });
}

TEST(Autograd, SinCosGradients) {
  check_gradients({test_matrix(2, 3, 2.0)}, [](const std::vector<Var>& in) {
    return scalarize(ag::sin_op(in[0]));
  });
  check_gradients({test_matrix(2, 3, 2.0)}, [](const std::vector<Var>& in) {
    return scalarize(ag::cos_op(in[0]));
  });
}

TEST(Autograd, SinCosIdentity) {
  const Matrix m = test_matrix(3, 3, 1.5);
  Var x(m, false);
  // sin^2 + cos^2 == 1 elementwise.
  const Var s = ag::mul(ag::sin_op(x), ag::sin_op(x));
  const Var c = ag::mul(ag::cos_op(x), ag::cos_op(x));
  const Matrix sum = ag::add(s, c).value();
  for (std::size_t i = 0; i < sum.rows(); ++i) {
    for (std::size_t j = 0; j < sum.cols(); ++j) {
      EXPECT_NEAR(sum(i, j), 1.0, 1e-12);
    }
  }
}

TEST(Autograd, PeriodicLossGradient) {
  const Matrix target = test_matrix(1, 4, 0.7);
  const std::vector<double> periods{6.283, 6.283, 3.1416, 3.1416};
  check_gradients({test_matrix(1, 4, 1.1, 0.2)},
                  [&](const std::vector<Var>& in) {
                    return ag::periodic_loss(in[0], target, periods);
                  });
}

TEST(Autograd, PeriodicLossIgnoresWrapAround) {
  constexpr double kTwoPi = 6.283185307179586;
  Matrix target(1, 2);
  target(0, 0) = 0.1;
  target(0, 1) = 0.2;
  Matrix shifted = target;
  shifted(0, 0) += kTwoPi;          // full gamma period
  shifted(0, 1) += kTwoPi / 2.0;    // full beta period (pi)
  Var pred(shifted, false);
  const Var loss =
      ag::periodic_loss(pred, target, {kTwoPi, kTwoPi / 2.0});
  EXPECT_NEAR(loss.value()(0, 0), 0.0, 1e-10);
  // MSE on the same pair would be huge.
  EXPECT_GT(ag::mse_loss(pred, target).value()(0, 0), 1.0);
}

TEST(Autograd, PeriodicLossValidation) {
  Var pred(Matrix::ones(1, 2), false);
  EXPECT_THROW(ag::periodic_loss(pred, Matrix::ones(1, 2), {1.0}),
               InvalidArgument);
  EXPECT_THROW(ag::periodic_loss(pred, Matrix::ones(1, 2), {1.0, -1.0}),
               InvalidArgument);
  EXPECT_THROW(ag::periodic_loss(pred, Matrix::ones(1, 3), {1.0, 1.0, 1.0}),
               InvalidArgument);
}

TEST(Autograd, DropoutGradientWithFixedMask) {
  // Same seed => same mask on every evaluation, making FD valid.
  check_gradients({test_matrix(4, 4)}, [](const std::vector<Var>& in) {
    Rng rng(77);
    return scalarize(ag::dropout(in[0], 0.5, rng, true));
  });
}

TEST(Autograd, DropoutEvalModeIsIdentity) {
  Rng rng(1);
  const Matrix m = test_matrix(3, 3);
  Var x(m, false);
  const Var y = ag::dropout(x, 0.9, rng, false);
  EXPECT_TRUE(y.value().approx_equal(m));
}

TEST(Autograd, DropoutPreservesExpectedScale) {
  Rng rng(5);
  Matrix ones = Matrix::ones(100, 100);
  Var x(ones, false);
  const Var y = ag::dropout(x, 0.5, rng, true);
  // Inverted dropout keeps the expected sum; 10000 entries -> tight CLT.
  EXPECT_NEAR(y.value().sum() / 10000.0, 1.0, 0.05);
}

TEST(Autograd, CompositeChainGradient) {
  // A miniature GNN-like pipeline through many ops at once.
  const std::vector<int> src{0, 1, 2, 2};
  const std::vector<int> dst{1, 2, 0, 1};
  check_gradients(
      {test_matrix(3, 4), test_matrix(4, 3), test_matrix(1, 3)},
      [&src, &dst](const std::vector<Var>& in) {
        Var h = ag::add_bias(ag::matmul(in[0], in[1]), in[2]);
        h = ag::relu(h);
        const Var msgs = ag::gather_rows(h, src);
        const Var agg = ag::scatter_add_rows(msgs, dst, 3);
        const Var pooled = ag::mean_rows(ag::tanh_op(agg));
        return scalarize(pooled);
      },
      1e-6, 1e-5);
}

TEST(Autograd, GradientAccumulatesWhenLeafUsedTwice) {
  // f = sum(x ∘ x): grad should be 2x.
  const Matrix m = test_matrix(2, 2);
  Var x(m, true);
  Var out = ag::sum_all(ag::mul(x, x));
  out.backward();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(x.grad()(i, j), 2.0 * m(i, j), 1e-12);
    }
  }
}

TEST(Autograd, ZeroGradClearsAccumulation) {
  Var x(Matrix::ones(1, 1), true);
  Var out = ag::scalar_mul(x, 3.0);
  out.backward();
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 3.0);
  x.zero_grad();
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 0.0);
  // Second pass accumulates fresh.
  Var out2 = ag::scalar_mul(x, 5.0);
  out2.backward();
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 5.0);
}

TEST(Autograd, BackwardRequiresScalar) {
  Var x(Matrix::ones(2, 2), true);
  Var y = ag::relu(x);
  EXPECT_THROW(y.backward(), InvalidArgument);
}

TEST(Autograd, ShapeMismatchesThrow) {
  Var a(Matrix::ones(2, 2), false);
  Var b(Matrix::ones(3, 2), false);
  EXPECT_THROW(ag::add(a, b), InvalidArgument);
  EXPECT_THROW(ag::mul(a, b), InvalidArgument);
  EXPECT_THROW(ag::matmul(a, b), InvalidArgument);
  EXPECT_THROW(ag::add_bias(a, b), InvalidArgument);
  EXPECT_THROW(ag::mse_loss(a, Matrix::ones(2, 3)), InvalidArgument);
  EXPECT_THROW(ag::gather_rows(a, {0, 5}), InvalidArgument);
  Rng rng(0);
  EXPECT_THROW(ag::dropout(a, 1.0, rng, true), InvalidArgument);
}

TEST(Autograd, SegmentSoftmaxNormalizesPerSegment) {
  Matrix scores(5, 1);
  scores(0, 0) = 1.0;
  scores(1, 0) = 2.0;
  scores(2, 0) = -1.0;
  scores(3, 0) = 0.5;
  scores(4, 0) = 0.0;
  const std::vector<int> segment{0, 0, 1, 1, 1};
  const Var y = ag::segment_softmax(Var(scores, false), segment, 2);
  EXPECT_NEAR(y.value()(0, 0) + y.value()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(y.value()(2, 0) + y.value()(3, 0) + y.value()(4, 0), 1.0,
              1e-12);
  // Larger score -> larger weight.
  EXPECT_GT(y.value()(1, 0), y.value()(0, 0));
}

TEST(Autograd, SegmentMaxEmptySegmentIsZero) {
  Matrix m(2, 2, 5.0);
  const std::vector<int> segment{0, 0};
  const Var y = ag::segment_max(Var(m, false), segment, 3);
  EXPECT_DOUBLE_EQ(y.value()(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(y.value()(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(y.value()(0, 0), 5.0);
}

TEST(Autograd, UndefinedVarThrows) {
  Var undefined;
  EXPECT_FALSE(undefined.defined());
  EXPECT_THROW(undefined.value(), InvalidArgument);
}

TEST(Autograd, SetValueOnlyOnLeaves) {
  Var x(Matrix::ones(1, 1), true);
  Var y = ag::scalar_mul(x, 2.0);
  EXPECT_THROW(y.set_value(Matrix::ones(1, 1)), InvalidArgument);
  EXPECT_THROW(x.set_value(Matrix::ones(2, 1)), InvalidArgument);
  x.set_value(Matrix::zeros(1, 1));
  EXPECT_DOUBLE_EQ(x.value()(0, 0), 0.0);
}

}  // namespace
}  // namespace qgnn
