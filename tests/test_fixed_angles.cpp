#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/optimize.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(FixedAngles, AvailabilityRules) {
  EXPECT_TRUE(fixed_angles_available(1, 1));
  EXPECT_TRUE(fixed_angles_available(14, 1));
  EXPECT_FALSE(fixed_angles_available(0, 1));
  EXPECT_TRUE(fixed_angles_available(3, 2));
  EXPECT_TRUE(fixed_angles_available(3, 3));
  EXPECT_FALSE(fixed_angles_available(4, 2));
  EXPECT_FALSE(fixed_angles_available(3, 4));
}

TEST(FixedAngles, P1ClosedFormValues) {
  const auto d1 = fixed_angles(1, 1);
  ASSERT_TRUE(d1.has_value());
  EXPECT_NEAR(d1->gammas[0], kPi / 2.0, 1e-12);
  EXPECT_NEAR(d1->betas[0], kPi / 8.0, 1e-12);

  const auto d2 = fixed_angles(2, 1);
  ASSERT_TRUE(d2.has_value());
  EXPECT_NEAR(d2->gammas[0], kPi / 4.0, 1e-12);

  const auto d3 = fixed_angles(3, 1);
  ASSERT_TRUE(d3.has_value());
  EXPECT_NEAR(d3->gammas[0], std::atan(1.0 / std::sqrt(2.0)), 1e-12);
}

TEST(FixedAngles, UnavailableReturnsNullopt) {
  EXPECT_FALSE(fixed_angles(0, 1).has_value());
  EXPECT_FALSE(fixed_angles(5, 2).has_value());
  EXPECT_THROW(fixed_angles(3, 0), InvalidArgument);
}

TEST(FixedAngles, CutFractionKnownValues) {
  EXPECT_NEAR(p1_triangle_free_cut_fraction(1), 1.0, 1e-12);
  EXPECT_NEAR(p1_triangle_free_cut_fraction(2), 0.75, 1e-12);
  EXPECT_NEAR(p1_triangle_free_cut_fraction(3), 0.6924, 5e-4);
  // Decreasing in degree.
  for (int d = 1; d < 14; ++d) {
    EXPECT_GT(p1_triangle_free_cut_fraction(d),
              p1_triangle_free_cut_fraction(d + 1));
  }
  // Always above the 1/2 random baseline.
  EXPECT_GT(p1_triangle_free_cut_fraction(14), 0.5);
}

class FixedAngleOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedAngleOptimalityTest, GridSearchCannotBeatClosedFormOnCycles) {
  // On triangle-free 2-regular graphs (even cycles) the closed-form p=1
  // angles are globally optimal; a grid search must not exceed them.
  const int n = GetParam();
  const Graph g = cycle_graph(n);
  const QaoaAnsatz ansatz(g);
  const auto angles = fixed_angles(2, 1);
  ASSERT_TRUE(angles.has_value());
  const double at_fixed = ansatz.expectation(*angles);

  const Objective f = [&ansatz](const std::vector<double>& x) {
    return ansatz.expectation(QaoaParams::single(x[0], x[1]));
  };
  GridSearchConfig config;
  config.gamma_steps = 48;
  config.beta_steps = 48;
  const OptResult r = grid_search_maximize_2d(f, config);
  EXPECT_LE(r.best_value, at_fixed + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(EvenCycles, FixedAngleOptimalityTest,
                         ::testing::Values(4, 6, 8));

TEST(FixedAngles, P2BeatsP1OnThreeRegular) {
  // The transcribed p=2 angles should outperform p=1 fixed angles on
  // 3-regular graphs.
  Rng rng(5);
  const Graph g = random_regular_graph(8, 3, rng);
  const QaoaAnsatz ansatz(g);
  const auto p1 = fixed_angles(3, 1);
  const auto p2 = fixed_angles(3, 2);
  ASSERT_TRUE(p1 && p2);
  EXPECT_GT(ansatz.expectation(*p2), ansatz.expectation(*p1));
}

TEST(FixedAngles, P3BeatsP2OnThreeRegular) {
  Rng rng(6);
  const Graph g = random_regular_graph(10, 3, rng);
  const QaoaAnsatz ansatz(g);
  const auto p2 = fixed_angles(3, 2);
  const auto p3 = fixed_angles(3, 3);
  ASSERT_TRUE(p2 && p3);
  EXPECT_GT(ansatz.expectation(*p3), ansatz.expectation(*p2));
}

class FixedAngleQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedAngleQualityTest, BeatsRandomBaselineOnTriangleFreeRegular) {
  // On triangle-free d-regular graphs the closed form guarantees
  // <C> = m * (1/2 + positive); random bipartite regular graphs are
  // triangle-free by construction.
  const int d = GetParam();
  Rng rng(static_cast<std::uint64_t>(d) * 7);
  const Graph g = random_bipartite_regular_graph(8, d, rng);
  const QaoaAnsatz ansatz(g);
  const auto angles = fixed_angles(d, 1);
  ASSERT_TRUE(angles.has_value());
  const double expectation = ansatz.expectation(*angles);
  EXPECT_GT(expectation, g.total_weight() / 2.0);
  // And it matches the closed form exactly.
  EXPECT_NEAR(expectation / static_cast<double>(g.num_edges()),
              p1_triangle_free_cut_fraction(d), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(DegreeSweep, FixedAngleQualityTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(FixedAngles, DenseGraphsStillAboveHalfOnAverageDegreeThree) {
  // On graphs *with* triangles the closed form is only a heuristic, but it
  // should still beat the random-cut baseline for moderate degree.
  Rng rng(33);
  const Graph g = random_regular_graph(10, 3, rng);
  const QaoaAnsatz ansatz(g);
  const auto angles = fixed_angles(3, 1);
  ASSERT_TRUE(angles.has_value());
  EXPECT_GT(ansatz.expectation(*angles), g.total_weight() / 2.0);
}

}  // namespace
}  // namespace qgnn
