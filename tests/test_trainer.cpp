#include <gtest/gtest.h>

#include "gnn/trainer.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr FeatureConfig kFeatures{NodeFeatureKind::kDegreeScaledOneHot, 15};

/// Learnable synthetic task: target = (mean degree / 10, edges / 20).
/// Purely structural, so every architecture can fit it.
std::vector<TrainSample> structural_task(int count, Rng& rng) {
  std::vector<TrainSample> samples;
  for (int i = 0; i < count; ++i) {
    const int n = rng.uniform_int(4, 10);
    std::vector<int> degrees;
    for (int d = 1; d < n && d <= 6; ++d) {
      if ((n * d) % 2 == 0) degrees.push_back(d);
    }
    const int d = degrees[rng.index(degrees.size())];
    const Graph g = random_regular_graph(n, d, rng);
    TrainSample s;
    s.batch = make_graph_batch(g, kFeatures);
    s.target = Matrix(1, 2);
    s.target(0, 0) = static_cast<double>(d) / 10.0;
    s.target(0, 1) = static_cast<double>(g.num_edges()) / 20.0;
    samples.push_back(std::move(s));
  }
  return samples;
}

GnnModelConfig small_model(GnnArch arch) {
  GnnModelConfig config;
  config.arch = arch;
  config.hidden_dim = 16;
  config.num_layers = 2;
  config.output_dim = 2;
  config.dropout = 0.1;
  return config;
}

TrainerConfig fast_trainer() {
  TrainerConfig config;
  config.epochs = 30;
  config.learning_rate = 5e-3;
  config.batch_size = 8;
  config.validation_fraction = 0.2;
  return config;
}

class TrainerArchTest : public ::testing::TestWithParam<GnnArch> {};

TEST_P(TrainerArchTest, LossDecreasesOnLearnableTask) {
  Rng rng(31);
  auto samples = structural_task(40, rng);
  GnnModel model(small_model(GetParam()), rng);
  const TrainReport report = train_gnn(model, samples, fast_trainer(), rng);
  ASSERT_EQ(report.epochs.size(), 30u);
  const double first = report.epochs.front().train_loss;
  const double last = report.final_train_loss;
  EXPECT_LT(last, first * 0.8) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllArchs, TrainerArchTest,
                         ::testing::ValuesIn(all_gnn_archs()),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Trainer, ValidationLossReported) {
  Rng rng(32);
  auto samples = structural_task(30, rng);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  TrainerConfig config = fast_trainer();
  config.epochs = 5;
  const TrainReport report = train_gnn(model, samples, config, rng);
  for (const EpochStats& e : report.epochs) {
    EXPECT_GE(e.validation_loss, 0.0);
    EXPECT_GT(e.learning_rate, 0.0);
  }
}

TEST(Trainer, ZeroWeightSamplesAreIgnored) {
  Rng rng(33);
  auto good = structural_task(20, rng);
  // Poisoned samples with absurd targets but zero weight must not affect
  // training.
  auto poisoned = good;
  for (int i = 0; i < 10; ++i) {
    TrainSample bad;
    bad.batch = good[static_cast<std::size_t>(i)].batch;
    bad.target = Matrix(1, 2, 1000.0);
    bad.weight = 0.0;
    poisoned.push_back(std::move(bad));
  }
  TrainerConfig config = fast_trainer();
  config.epochs = 10;
  config.shuffle_each_epoch = false;
  config.validation_fraction = 0.0;

  Rng ra(77);
  Rng rb(77);
  GnnModel ma(small_model(GnnArch::kGIN), ra);
  GnnModel mb(small_model(GnnArch::kGIN), rb);
  Rng ta(55);
  Rng tb(55);
  // The two runs see different sample vectors, so losses are not expected
  // to be identical step-for-step (shuffle order differs); both must
  // simply converge to sane losses far from the poisoned scale.
  const TrainReport rep_a = train_gnn(ma, good, config, ta);
  const TrainReport rep_b = train_gnn(mb, poisoned, config, tb);
  EXPECT_LT(rep_b.final_train_loss, 10.0);
  EXPECT_LT(rep_a.final_train_loss, 10.0);
}

TEST(Trainer, SchedulerReducesOnPlateau) {
  Rng rng(34);
  auto samples = structural_task(10, rng);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  TrainerConfig config = fast_trainer();
  config.epochs = 60;
  config.learning_rate = 1e-2;
  config.plateau.patience = 3;
  config.plateau.factor = 0.2;
  config.plateau.min_lr = 1e-5;
  const TrainReport report = train_gnn(model, samples, config, rng);
  // Learning rate must be non-increasing across epochs.
  for (std::size_t e = 1; e < report.epochs.size(); ++e) {
    EXPECT_LE(report.epochs[e].learning_rate,
              report.epochs[e - 1].learning_rate + 1e-15);
  }
  EXPECT_GE(report.epochs.back().learning_rate, 1e-5);
}

TEST(Trainer, ValidatesInputs) {
  Rng rng(35);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  TrainerConfig config = fast_trainer();
  EXPECT_THROW(train_gnn(model, {}, config, rng), InvalidArgument);

  auto samples = structural_task(5, rng);
  samples[0].target = Matrix(1, 3);  // wrong width
  EXPECT_THROW(train_gnn(model, samples, config, rng), InvalidArgument);

  samples = structural_task(5, rng);
  samples[0].weight = -1.0;
  EXPECT_THROW(train_gnn(model, samples, config, rng), InvalidArgument);
}

TEST(Trainer, PeriodicLossTrainsToo) {
  Rng rng(41);
  auto samples = structural_task(30, rng);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  TrainerConfig config = fast_trainer();
  config.epochs = 20;
  config.loss = LossKind::kPeriodic;
  config.periodic_periods = {6.283185307179586, 3.14159265358979323846};
  const TrainReport report = train_gnn(model, samples, config, rng);
  EXPECT_LT(report.final_train_loss, report.epochs.front().train_loss);
}

TEST(Trainer, PeriodicLossRequiresPeriods) {
  Rng rng(42);
  auto samples = structural_task(5, rng);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  TrainerConfig config = fast_trainer();
  config.loss = LossKind::kPeriodic;  // periods left empty
  EXPECT_THROW(train_gnn(model, samples, config, rng), InvalidArgument);
}

TEST(Trainer, EvaluateMseMatchesManualComputation) {
  Rng rng(36);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  auto samples = structural_task(4, rng);
  double manual = 0.0;
  for (const TrainSample& s : samples) {
    const Matrix pred = model.predict(s.batch);
    double acc = 0.0;
    for (std::size_t j = 0; j < 2; ++j) {
      const double d = pred(0, j) - s.target(0, j);
      acc += d * d;
    }
    manual += acc / 2.0;
  }
  manual /= 4.0;
  EXPECT_NEAR(evaluate_mse(model, samples), manual, 1e-12);
  EXPECT_DOUBLE_EQ(evaluate_mse(model, {}), 0.0);
}

TEST(Trainer, EarlyStoppingStopsAndRestoresBestWeights) {
  Rng rng(51);
  auto samples = structural_task(30, rng);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  TrainerConfig config = fast_trainer();
  config.epochs = 200;
  config.validation_fraction = 0.3;
  config.early_stopping_patience = 3;
  const TrainReport report = train_gnn(model, samples, config, rng);
  // With a generous budget and small data, early stopping should fire.
  EXPECT_TRUE(report.stopped_early);
  EXPECT_LT(static_cast<int>(report.epochs.size()), 200);
  EXPECT_LE(report.best_epoch,
            static_cast<int>(report.epochs.size()) - 1);
  // The restored weights must achieve the best recorded validation loss.
  double best_seen = report.epochs.front().validation_loss;
  for (const EpochStats& e : report.epochs) {
    best_seen = std::min(best_seen, e.validation_loss);
  }
  EXPECT_NEAR(report.final_validation_loss, best_seen, 1e-9);
}

TEST(Trainer, EarlyStoppingRequiresValidationSplit) {
  Rng rng(52);
  auto samples = structural_task(10, rng);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  TrainerConfig config = fast_trainer();
  config.validation_fraction = 0.0;
  config.early_stopping_patience = 2;
  EXPECT_THROW(train_gnn(model, samples, config, rng), InvalidArgument);
}

TEST(Trainer, EvaluateMetricsPerfectModelScoresR2One) {
  // Constant-target task where predictions equal targets exactly is hard
  // to build; instead verify the metric algebra on a crafted case: copy
  // predictions as targets.
  Rng rng(53);
  GnnModel model(small_model(GnnArch::kGIN), rng);
  auto samples = structural_task(6, rng);
  for (TrainSample& s : samples) {
    s.target = model.predict(s.batch);  // perfect by construction
  }
  const EvalMetrics metrics = evaluate_metrics(model, samples);
  EXPECT_NEAR(metrics.mse, 0.0, 1e-18);
  EXPECT_NEAR(metrics.r2, 1.0, 1e-12);
  for (double mae : metrics.mae_per_output) EXPECT_NEAR(mae, 0.0, 1e-12);
}

TEST(Trainer, EvaluateMetricsShapesAndBounds) {
  Rng rng(54);
  GnnModel model(small_model(GnnArch::kGCN), rng);
  const auto samples = structural_task(10, rng);
  const EvalMetrics metrics = evaluate_metrics(model, samples);
  EXPECT_EQ(metrics.mae_per_output.size(), 2u);
  EXPECT_GE(metrics.mse, 0.0);
  EXPECT_LE(metrics.r2, 1.0);
  // Consistency with evaluate_mse.
  EXPECT_NEAR(metrics.mse, evaluate_mse(model, samples), 1e-12);
  // Empty set.
  const EvalMetrics empty = evaluate_metrics(model, {});
  EXPECT_DOUBLE_EQ(empty.mse, 0.0);
}

TEST(Trainer, GradAccumulationBatchSizesAgreeOnDirection) {
  // Training with batch 1 vs batch 4 should both reduce the loss; exact
  // trajectories differ but both must learn.
  Rng rng(37);
  auto samples = structural_task(24, rng);
  for (int batch : {1, 4, 24}) {
    Rng mrng(91);
    GnnModel model(small_model(GnnArch::kGCN), mrng);
    TrainerConfig config = fast_trainer();
    config.epochs = 15;
    config.batch_size = batch;
    Rng trng(13);
    const TrainReport report = train_gnn(model, samples, config, trng);
    EXPECT_LT(report.final_train_loss, report.epochs.front().train_loss)
        << "batch " << batch;
  }
}

}  // namespace
}  // namespace qgnn
