#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

PipelineConfig tiny_pipeline() {
  PipelineConfig config;
  config.dataset.num_instances = 24;
  config.dataset.min_nodes = 3;
  config.dataset.max_nodes = 8;
  config.dataset.optimizer_evaluations = 40;
  config.dataset.seed = 5;
  config.test_count = 6;
  config.model.hidden_dim = 8;
  config.model.num_layers = 2;
  config.model.dropout = 0.2;
  config.trainer.epochs = 10;
  config.trainer.learning_rate = 5e-3;
  config.trainer.validation_fraction = 0.0;
  config.seed = 99;
  return config;
}

TEST(PrepareData, SplitsAndReports) {
  const PipelineConfig config = tiny_pipeline();
  const PreparedData data = prepare_data(config);
  EXPECT_EQ(data.test.size(), 6u);
  EXPECT_LE(data.train.size(), 18u);  // SDP may prune some
  EXPECT_GT(data.train.size(), 0u);
  EXPECT_EQ(data.sdp_report.kept, data.train.size());
}

TEST(PrepareData, AuditRunsWhenEnabled) {
  PipelineConfig config = tiny_pipeline();
  config.apply_fixed_angle_audit = true;
  const PreparedData data = prepare_data(config);
  // Every regular graph with degree >= 1 is covered by p=1 fixed angles.
  EXPECT_EQ(data.audit_report.covered, 24u);
}

TEST(PrepareData, SkipsStagesWhenDisabled) {
  PipelineConfig config = tiny_pipeline();
  config.apply_fixed_angle_audit = false;
  config.apply_sdp = false;
  const PreparedData data = prepare_data(config);
  EXPECT_EQ(data.audit_report.covered, 0u);
  EXPECT_EQ(data.train.size(), 18u);
}

TEST(TrainArch, ProducesModelWithMatchingConfig) {
  const PipelineConfig config = tiny_pipeline();
  const PreparedData data = prepare_data(config);
  const auto [model, report] = train_arch(GnnArch::kGCN, data, config);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->config().arch, GnnArch::kGCN);
  EXPECT_EQ(model->config().output_dim, 2);
  EXPECT_EQ(report.epochs.size(), 10u);
}

TEST(Baselines, SeriesSizesMatchTestSet) {
  const PipelineConfig config = tiny_pipeline();
  const PreparedData data = prepare_data(config);
  const auto random_ars = random_baseline_ar(data.test, 1, 3);
  EXPECT_EQ(random_ars.size(), 6u);
  for (double ar : random_ars) {
    EXPECT_GT(ar, 0.0);
    EXPECT_LE(ar, 1.0 + 1e-9);
  }
  const auto [model, report] = train_arch(GnnArch::kGIN, data, config);
  const auto gnn_ars = gnn_ar_series(*model, data.test);
  EXPECT_EQ(gnn_ars.size(), 6u);
  for (double ar : gnn_ars) {
    EXPECT_GT(ar, 0.0);
    EXPECT_LE(ar, 1.0 + 1e-9);
  }
}

TEST(GnnInitializerTest, ProducesCanonicalParams) {
  const PipelineConfig config = tiny_pipeline();
  const PreparedData data = prepare_data(config);
  auto [model, report] = train_arch(GnnArch::kGCN, data, config);
  GnnInitializer init(model);
  EXPECT_EQ(init.name(), "gnn:GCN");
  const QaoaParams p = init.initialize(data.test[0].graph, 1);
  EXPECT_GE(p.gammas[0], 0.0);
  EXPECT_LT(p.gammas[0], 2 * 3.14159265358979323846);
  EXPECT_GE(p.betas[0], 0.0);
  EXPECT_LT(p.betas[0], 3.14159265358979323846);
  // Depth mismatch rejected.
  EXPECT_THROW(init.initialize(data.test[0].graph, 2), InvalidArgument);
}

TEST(GnnInitializerTest, RejectsNullModel) {
  EXPECT_THROW(GnnInitializer(nullptr), InvalidArgument);
}

TEST(RunPipeline, FullReportIntegrity) {
  const PipelineConfig config = tiny_pipeline();
  const PipelineReport report =
      run_pipeline(config, {GnnArch::kGCN, GnnArch::kGIN});
  EXPECT_EQ(report.ar_random.size(), 6u);
  ASSERT_EQ(report.archs.size(), 2u);
  for (const ArchEvaluation& eval : report.archs) {
    EXPECT_EQ(eval.ar_gnn.size(), 6u);
    EXPECT_EQ(eval.improvement.size(), 6u);
    // Improvement entries consistent with the two series.
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(eval.improvement[i],
                  (eval.ar_gnn[i] - report.ar_random[i]) * 100.0, 1e-9);
    }
    EXPECT_GE(eval.std_improvement, 0.0);
    EXPECT_GT(eval.mean_ar, 0.0);
  }
}

TEST(RunPipeline, DeterministicForSeed) {
  const PipelineConfig config = tiny_pipeline();
  const PipelineReport a = run_pipeline(config, {GnnArch::kGCN});
  const PipelineReport b = run_pipeline(config, {GnnArch::kGCN});
  ASSERT_EQ(a.archs.size(), 1u);
  EXPECT_DOUBLE_EQ(a.archs[0].mean_improvement,
                   b.archs[0].mean_improvement);
  EXPECT_EQ(a.ar_random, b.ar_random);
}

TEST(RunPipeline, Depth2EndToEnd) {
  // The whole pipeline at QAOA depth 2: labels have 4 angles, the GNN
  // head widens to 4 outputs, and evaluation stays consistent.
  PipelineConfig config = tiny_pipeline();
  config.dataset.depth = 2;
  config.dataset.num_instances = 16;
  config.test_count = 4;
  const PipelineReport report = run_pipeline(config, {GnnArch::kGCN});
  ASSERT_EQ(report.archs.size(), 1u);
  EXPECT_EQ(report.archs[0].ar_gnn.size(), 4u);
  for (double ar : report.archs[0].ar_gnn) {
    EXPECT_GT(ar, 0.0);
    EXPECT_LE(ar, 1.0 + 1e-9);
  }
  // And the trained model indeed emits 4 outputs.
  const auto [model, train_report] =
      train_arch(GnnArch::kGCN, report.data, config);
  EXPECT_EQ(model->config().output_dim, 4);
  GnnInitializer init(model);
  const QaoaParams p = init.initialize(report.data.test[0].graph, 2);
  EXPECT_EQ(p.depth(), 2);
}

TEST(Convergence, ComparisonRunsAndCounts) {
  const PipelineConfig config = tiny_pipeline();
  const PreparedData data = prepare_data(config);
  auto [model, report] = train_arch(GnnArch::kGCN, data, config);
  const ConvergenceStats stats =
      convergence_comparison(model, data.test, 0.6, 80, 7);
  EXPECT_EQ(stats.total, 6);
  EXPECT_GE(stats.reached_gnn, 0);
  EXPECT_LE(stats.reached_gnn, 6);
  EXPECT_THROW(convergence_comparison(model, data.test, 1.5, 80, 7),
               InvalidArgument);
  EXPECT_THROW(convergence_comparison(nullptr, data.test, 0.6, 80, 7),
               InvalidArgument);
}

}  // namespace
}  // namespace qgnn
