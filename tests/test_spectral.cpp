#include <gtest/gtest.h>

#include <cmath>

#include "gnn/model.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Matrices, AdjacencyAndLaplacianStructure) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 0.5);
  const auto a = adjacency_matrix(g);
  EXPECT_DOUBLE_EQ(a[0 * 3 + 1], 2.0);
  EXPECT_DOUBLE_EQ(a[1 * 3 + 0], 2.0);
  EXPECT_DOUBLE_EQ(a[0 * 3 + 2], 0.0);
  const auto l = laplacian_matrix(g);
  EXPECT_DOUBLE_EQ(l[0 * 3 + 0], 2.0);
  EXPECT_DOUBLE_EQ(l[1 * 3 + 1], 2.5);
  EXPECT_DOUBLE_EQ(l[0 * 3 + 1], -2.0);
  // Rows sum to zero.
  for (int r = 0; r < 3; ++r) {
    double s = 0.0;
    for (int c = 0; c < 3; ++c) s += l[static_cast<std::size_t>(r * 3 + c)];
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

TEST(Jacobi, DiagonalMatrixIsItsOwnSpectrum) {
  const std::vector<double> d{3.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 2.0};
  const EigenResult r = jacobi_eigen(d, 3);
  EXPECT_NEAR(r.values[0], -1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(Jacobi, TwoByTwoKnownResult) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const EigenResult r = jacobi_eigen({2.0, 1.0, 1.0, 2.0}, 2);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

TEST(Jacobi, RejectsAsymmetricInput) {
  EXPECT_THROW(jacobi_eigen({1.0, 2.0, 3.0, 4.0}, 2), InvalidArgument);
  EXPECT_THROW(jacobi_eigen({1.0}, 2), InvalidArgument);
}

class JacobiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiPropertyTest, EigenpairsSatisfyDefinition) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  // Random symmetric matrix.
  std::vector<double> m(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform(-2.0, 2.0);
      m[static_cast<std::size_t>(i * n + j)] = v;
      m[static_cast<std::size_t>(j * n + i)] = v;
    }
  }
  const EigenResult r = jacobi_eigen(m, n);

  // 1. Ascending eigenvalues.
  for (int k = 1; k < n; ++k) EXPECT_GE(r.values[k], r.values[k - 1] - 1e-9);

  // 2. A v_k = lambda_k v_k.
  for (int k = 0; k < n; ++k) {
    for (int row = 0; row < n; ++row) {
      double av = 0.0;
      for (int col = 0; col < n; ++col) {
        av += m[static_cast<std::size_t>(row * n + col)] *
              r.vector_entry(col, k);
      }
      EXPECT_NEAR(av, r.values[k] * r.vector_entry(row, k), 1e-8)
          << "k=" << k << " row=" << row;
    }
  }

  // 3. Orthonormal eigenvectors.
  for (int k1 = 0; k1 < n; ++k1) {
    for (int k2 = k1; k2 < n; ++k2) {
      double dot = 0.0;
      for (int row = 0; row < n; ++row) {
        dot += r.vector_entry(row, k1) * r.vector_entry(row, k2);
      }
      EXPECT_NEAR(dot, k1 == k2 ? 1.0 : 0.0, 1e-9);
    }
  }

  // 4. Trace preserved.
  double trace = 0.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += m[static_cast<std::size_t>(i * n + i)];
    sum += r.values[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, JacobiPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 15));

TEST(LaplacianSpectrum, KnownSpectra) {
  // K_n: eigenvalue 0 once and n with multiplicity n-1.
  const auto kn = laplacian_spectrum(complete_graph(5));
  EXPECT_NEAR(kn[0], 0.0, 1e-9);
  for (int k = 1; k < 5; ++k) EXPECT_NEAR(kn[static_cast<std::size_t>(k)], 5.0, 1e-9);

  // C_n: 2 - 2 cos(2 pi k / n).
  const int n = 6;
  auto cycle = laplacian_spectrum(cycle_graph(n));
  std::vector<double> expected;
  for (int k = 0; k < n; ++k) {
    expected.push_back(2.0 - 2.0 * std::cos(2.0 * kPi * k / n));
  }
  std::sort(expected.begin(), expected.end());
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(cycle[static_cast<std::size_t>(k)],
                expected[static_cast<std::size_t>(k)], 1e-9);
  }

  // Star S_n: 0, 1 (n-2 times), n.
  const auto star = laplacian_spectrum(star_graph(5));
  EXPECT_NEAR(star[0], 0.0, 1e-9);
  EXPECT_NEAR(star[1], 1.0, 1e-9);
  EXPECT_NEAR(star[4], 5.0, 1e-9);
}

TEST(AlgebraicConnectivity, DetectsDisconnection) {
  EXPECT_GT(algebraic_connectivity(cycle_graph(6)), 0.1);
  Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  EXPECT_NEAR(algebraic_connectivity(disconnected), 0.0, 1e-9);
  // Complete graph is maximally connected: lambda_2 = n.
  EXPECT_NEAR(algebraic_connectivity(complete_graph(6)), 6.0, 1e-9);
}

TEST(SpectralFeatures, BatchHasEigenvectorColumns) {
  const Graph g = cycle_graph(5);
  const FeatureConfig config{NodeFeatureKind::kLaplacianEigen, 15};
  EXPECT_EQ(config.dimension(), 16);
  const GraphBatch b = make_graph_batch(g, config);
  EXPECT_EQ(b.features.cols(), 16u);
  // Column 0: degree / 15.
  EXPECT_NEAR(b.features(0, 0), 2.0 / 15.0, 1e-12);
  // Column 1: the constant eigenvector (eigenvalue 0): entries +-1/sqrt(5)
  // all equal.
  for (int v = 1; v < 5; ++v) {
    EXPECT_NEAR(std::abs(b.features(static_cast<std::size_t>(v), 1)),
                1.0 / std::sqrt(5.0), 1e-9);
    EXPECT_NEAR(b.features(static_cast<std::size_t>(v), 1),
                b.features(0, 1), 1e-9);
  }
  // Columns beyond n+1 are zero padding.
  EXPECT_DOUBLE_EQ(b.features(0, 7), 0.0);
}

TEST(SpectralFeatures, ModelTrainsWithThem) {
  Rng rng(8);
  GnnModelConfig config;
  config.arch = GnnArch::kGCN;
  config.features.kind = NodeFeatureKind::kLaplacianEigen;
  config.hidden_dim = 8;
  const GnnModel model(config, rng);
  const Matrix pred = model.predict(cycle_graph(6));
  EXPECT_EQ(pred.cols(), 2u);
}

}  // namespace
}  // namespace qgnn
