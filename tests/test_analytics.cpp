#include <gtest/gtest.h>

#include "graph/analytics.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(TriangleCount, KnownGraphs) {
  EXPECT_EQ(triangle_count(complete_graph(3)), 1);
  EXPECT_EQ(triangle_count(complete_graph(4)), 4);
  EXPECT_EQ(triangle_count(complete_graph(5)), 10);
  EXPECT_EQ(triangle_count(cycle_graph(3)), 1);
  EXPECT_EQ(triangle_count(cycle_graph(4)), 0);
  EXPECT_EQ(triangle_count(cycle_graph(7)), 0);
  EXPECT_EQ(triangle_count(star_graph(6)), 0);
  EXPECT_EQ(triangle_count(path_graph(5)), 0);
  EXPECT_EQ(triangle_count(Graph(4)), 0);
}

TEST(EdgeTriangleCount, CountsCommonNeighbors) {
  const Graph g = complete_graph(4);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(edge_triangle_count(g, e.u, e.v), 2);
  }
  const Graph c = cycle_graph(5);
  EXPECT_EQ(edge_triangle_count(c, 0, 1), 0);
}

TEST(TriangleFree, BipartiteAlwaysTriangleFree) {
  Rng rng(2);
  for (int d : {2, 3, 4, 5}) {
    EXPECT_TRUE(is_triangle_free(random_bipartite_regular_graph(6, d, rng)));
  }
  EXPECT_FALSE(is_triangle_free(complete_graph(4)));
}

TEST(ClusteringCoefficient, KnownValues) {
  // Complete graph: every wedge closes.
  EXPECT_DOUBLE_EQ(clustering_coefficient(complete_graph(5)), 1.0);
  // Triangle-free graphs: 0.
  EXPECT_DOUBLE_EQ(clustering_coefficient(cycle_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(star_graph(5)), 0.0);
  // Edgeless: no wedges.
  EXPECT_DOUBLE_EQ(clustering_coefficient(Graph(3)), 0.0);
}

class ClosedFormTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosedFormTest, MatchesSimulatorOnRandomGraphs) {
  // The Wang-Hadfield-Jiang-Rieffel p=1 closed form vs the exact
  // simulator - an independent end-to-end check of the quantum stack,
  // including graphs WITH triangles.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = erdos_renyi_graph(GetParam(), 0.5, rng);
  if (g.num_edges() == 0) return;
  const QaoaAnsatz ansatz(g);
  for (double gamma : {0.3, 0.9, 2.1}) {
    for (double beta : {0.2, 0.39, 1.1}) {
      EXPECT_NEAR(p1_expected_cut_closed_form(g, gamma, beta),
                  ansatz.expectation(QaoaParams::single(gamma, beta)),
                  1e-9)
          << "n=" << GetParam() << " gamma=" << gamma << " beta=" << beta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, ClosedFormTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10));

TEST(ClosedForm, DenseTriangleHeavyGraphs) {
  // Complete graphs are the worst case for triangle terms.
  for (int n : {3, 4, 5, 6}) {
    const Graph g = complete_graph(n);
    const QaoaAnsatz ansatz(g);
    EXPECT_NEAR(p1_expected_cut_closed_form(g, 0.7, 0.3),
                ansatz.expectation(QaoaParams::single(0.7, 0.3)), 1e-9)
        << "K" << n;
  }
}

TEST(ClosedForm, RejectsWeightedGraphs) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  EXPECT_THROW(p1_expected_cut_closed_form(g, 0.1, 0.1), InvalidArgument);
}

TEST(ClosedForm, RegularTriangleFreeReducesToSimpleFormula) {
  // On d-regular triangle-free graphs the general closed form must agree
  // with the simpler fixed-angle expression used elsewhere.
  Rng rng(5);
  const Graph g = random_bipartite_regular_graph(6, 3, rng);
  const double gamma = 0.6155;
  const double beta = 0.3927;
  const double expected_per_edge =
      0.5 + 0.5 * std::sin(gamma) * std::pow(std::cos(gamma), 2) *
                std::sin(4 * beta);
  EXPECT_NEAR(p1_expected_cut_closed_form(g, gamma, beta) / g.num_edges(),
              expected_per_edge, 1e-12);
}

}  // namespace
}  // namespace qgnn
