#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "dataset/storage.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

#include <filesystem>

namespace qgnn {
namespace {

/// End-to-end miniature of the paper's experiment: generate a dataset with
/// good labels, train a GNN, and check the warm start beats a random start
/// on average over held-out graphs. Scaled to run in seconds; the bench
/// binaries run the full-size version.
TEST(Integration, GnnWarmStartBeatsRandomInitOnAverage) {
  PipelineConfig config;
  config.dataset.num_instances = 200;
  config.dataset.min_nodes = 4;
  config.dataset.max_nodes = 10;
  config.dataset.optimizer_evaluations = 150;
  config.dataset.seed = 2024;
  config.apply_fixed_angle_audit = true;  // high-quality labels
  config.apply_sdp = true;
  config.sdp.ar_threshold = 0.7;
  config.sdp.selective_rate = 0.7;
  config.test_count = 16;
  config.model.hidden_dim = 16;
  config.model.num_layers = 2;
  config.model.dropout = 0.2;
  config.trainer.epochs = 60;
  config.trainer.learning_rate = 1e-2;
  config.trainer.batch_size = 16;
  config.trainer.validation_fraction = 0.0;
  config.seed = 31337;

  const PipelineReport report = run_pipeline(config, {GnnArch::kGCN});
  ASSERT_EQ(report.archs.size(), 1u);
  const ArchEvaluation& eval = report.archs[0];

  // The paper's Table-1 shape: positive mean improvement with large std.
  EXPECT_GT(eval.mean_improvement, 0.0)
      << "GCN warm start should beat random init on average";
  // GNN series should be more stable (smaller stddev) than random.
  RunningStats random_stats;
  for (double ar : report.ar_random) random_stats.add(ar);
  RunningStats gnn_stats;
  for (double ar : eval.ar_gnn) gnn_stats.add(ar);
  EXPECT_LT(gnn_stats.stddev(), random_stats.stddev());
}

TEST(Integration, DatasetPersistenceFeedsTraining) {
  // Generate -> save -> load -> train, mimicking the offline workflow.
  DatasetGenConfig gen;
  gen.num_instances = 20;
  gen.min_nodes = 4;
  gen.max_nodes = 8;
  gen.optimizer_evaluations = 40;
  gen.seed = 8;
  const auto entries = generate_dataset(gen);
  const std::string dir = ::testing::TempDir() + "/qgnn_integration_ds";
  std::filesystem::remove_all(dir);
  save_dataset(dir, entries);
  const auto loaded = load_dataset(dir);

  GnnModelConfig model_config;
  model_config.arch = GnnArch::kSAGE;
  model_config.hidden_dim = 8;
  Rng rng(3);
  GnnModel model(model_config, rng);
  auto samples = to_train_samples(loaded, model_config.features);
  TrainerConfig trainer;
  trainer.epochs = 5;
  trainer.validation_fraction = 0.0;
  const TrainReport report = train_gnn(model, samples, trainer, rng);
  EXPECT_EQ(report.epochs.size(), 5u);
  EXPECT_GT(report.final_train_loss, 0.0);
}

TEST(Integration, FixedAngleInitVsOptimizedEndToEnd) {
  // Fixed angles should land close to what a full optimization achieves
  // on 3-regular instances (the fixed-angle conjecture in action).
  Rng graph_rng(9);
  Rng rng(10);
  QaoaRunConfig full;
  full.max_evaluations = 300;
  QaoaRunConfig none;
  none.optimizer = QaoaOptimizer::kNone;

  RunningStats gap;
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = random_regular_graph(8, 3, graph_rng);
    FixedAngleInitializer fixed;
    RandomInitializer random_init{Rng(static_cast<std::uint64_t>(trial))};
    const QaoaResult fixed_result = run_qaoa(g, fixed, none, rng);
    const QaoaResult opt_result = run_qaoa(g, random_init, full, rng);
    gap.add(opt_result.best_ar - fixed_result.initial_ar);
  }
  // Optimization from random can beat fixed angles, but only by a small
  // margin on 3-regular graphs.
  EXPECT_LT(gap.mean(), 0.1);
}

TEST(Integration, WeightedGraphsSupportedEndToEnd) {
  // The paper's future-work item: weighted Max-Cut flows through the whole
  // stack (simulator, brute force, QAOA, GNN features).
  Rng rng(12);
  const Graph g =
      with_random_weights(random_regular_graph(8, 3, rng), 0.2, 2.0, rng);
  QaoaAnsatz ansatz(g);
  ConstantInitializer init(QaoaParams::single(0.4, 0.3));
  QaoaRunConfig config;
  config.max_evaluations = 150;
  const QaoaResult r = run_qaoa(g, init, config, rng);
  EXPECT_GT(r.best_ar, 0.5);
  EXPECT_LE(r.best_ar, 1.0 + 1e-9);

  GnnModelConfig model_config;
  Rng mrng(1);
  const GnnModel model(model_config, mrng);
  const Matrix pred = model.predict(g);
  EXPECT_EQ(pred.cols(), 2u);
}

}  // namespace
}  // namespace qgnn
