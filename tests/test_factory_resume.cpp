// Batched dataset factory conformance (dataset/factory.hpp): the batched
// engine must reproduce generate_dataset bit-for-bit, stay byte-identical
// at every thread count and lane width, and survive a kill-and-resume
// cycle (re-executing this binary, like test_determinism does) with a
// byte-identical final file.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/dataset.hpp"
#include "dataset/factory.hpp"
#include "dataset/packed.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {
namespace {

namespace fs = std::filesystem;

DatasetGenConfig tiny_config() {
  DatasetGenConfig config;
  config.num_instances = 12;
  config.min_nodes = 2;
  config.max_nodes = 7;
  config.optimizer_evaluations = 40;
  config.seed = 99;
  return config;
}

fs::path temp_dir(const std::string& name) {
  return fs::temp_directory_path() /
         ("qgnn_factory_" + std::to_string(::getpid()) + "_" + name);
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

TEST(DatasetFactory, BatchedMatchesSequentialBitForBit) {
  DatasetGenConfig config = tiny_config();
  config.num_instances = 20;
  config.max_nodes = 9;
  config.seed = 11;

  const auto sequential = generate_dataset(config);
  const auto batched = generate_dataset_batched(config);
  EXPECT_EQ(pack_dataset(batched), pack_dataset(sequential))
      << "batched labelling drifted from generate_dataset";
}

TEST(DatasetFactory, LaneWidthNeverChangesTheBytes) {
  const DatasetGenConfig config = tiny_config();
  const auto reference = pack_dataset(generate_dataset_batched(config));
  for (const int lanes : {1, 3, 8, 64}) {
    FactoryConfig factory;
    factory.lanes = lanes;
    EXPECT_EQ(pack_dataset(generate_dataset_batched(config, factory)),
              reference)
        << "lanes=" << lanes;
  }
}

TEST(DatasetFactory, ThreadCountNeverChangesTheBytes) {
  const DatasetGenConfig config = tiny_config();
  const auto reference = pack_dataset(generate_dataset_batched(config));
  for (const int threads : {1, 2, 8}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_EQ(pack_dataset(generate_dataset_batched(config)), reference)
        << "threads=" << threads;
  }
  ThreadPool::set_global_threads(ThreadPool::configured_threads());
}

TEST(DatasetFactory, AdamFallbackMatchesSequential) {
  DatasetGenConfig config = tiny_config();
  config.num_instances = 4;
  config.optimizer = QaoaOptimizer::kAdam;
  config.optimizer_evaluations = 15;
  EXPECT_EQ(pack_dataset(generate_dataset_batched(config)),
            pack_dataset(generate_dataset(config)));
}

TEST(DatasetFactory, ProgressReachesTotal) {
  const DatasetGenConfig config = tiny_config();
  int last = 0;
  const auto entries = generate_dataset_batched(
      config, {}, [&](int done, int total) {
        EXPECT_LE(done, total);
        last = done;
      });
  EXPECT_EQ(entries.size(), 12u);
  EXPECT_EQ(last, 12);
}

TEST(DatasetFactory, StopAfterShardsThenResumeIsByteIdentical) {
  const DatasetGenConfig config = tiny_config();
  const fs::path base = temp_dir("inproc");
  fs::remove_all(base);
  fs::create_directories(base);

  // Uninterrupted, checkpoint-free reference run.
  const fs::path ref = base / "ref.qds";
  ASSERT_TRUE(run_dataset_factory(config, {}, ref.string()));

  // Interrupted run: commit two 5-record shards, then stop.
  FactoryConfig factory;
  factory.checkpoint_every = 5;
  factory.checkpoint_dir = (base / "ckpt").string();
  factory.stop_after_shards = 2;
  const fs::path out = base / "resumed.qds";
  ASSERT_FALSE(run_dataset_factory(config, factory, out.string()));
  EXPECT_FALSE(fs::exists(out)) << "stopped run must not write the output";
  EXPECT_TRUE(fs::exists(base / "ckpt" / "manifest.txt"));

  // Resume to completion; the final file matches the uninterrupted run.
  factory.stop_after_shards = 0;
  factory.resume = true;
  ASSERT_TRUE(run_dataset_factory(config, factory, out.string()));
  EXPECT_EQ(read_bytes(out), read_bytes(ref));

  fs::remove_all(base);
}

TEST(DatasetFactory, ResumeRejectsMismatchedConfig) {
  const DatasetGenConfig config = tiny_config();
  const fs::path base = temp_dir("mismatch");
  fs::remove_all(base);

  FactoryConfig factory;
  factory.checkpoint_every = 5;
  factory.checkpoint_dir = (base / "ckpt").string();
  factory.stop_after_shards = 1;
  ASSERT_FALSE(
      run_dataset_factory(config, factory, (base / "out.qds").string()));

  DatasetGenConfig other = config;
  other.seed = 1000;  // different labels; resuming would corrupt the set
  factory.resume = true;
  factory.stop_after_shards = 0;
  EXPECT_THROW(
      run_dataset_factory(other, factory, (base / "out.qds").string()),
      IoError);
  fs::remove_all(base);
}

TEST(DatasetFactory, ResumeRejectsCorruptManifest) {
  const fs::path base = temp_dir("badmanifest");
  fs::remove_all(base);
  const fs::path ckpt = base / "ckpt";
  fs::create_directories(ckpt);
  {
    std::ofstream m(ckpt / "manifest.txt");
    m << "qgnn-factory-manifest v1\nfingerprint oops\n";
  }
  FactoryConfig factory;
  factory.checkpoint_every = 5;
  factory.checkpoint_dir = ckpt.string();
  factory.resume = true;
  try {
    run_dataset_factory(tiny_config(), factory, (base / "out.qds").string());
    FAIL() << "corrupt manifest accepted";
  } catch (const IoError& e) {
    // The error names the manifest and the offending line.
    EXPECT_NE(std::string(e.what()).find("manifest.txt:2"), std::string::npos)
        << e.what();
  }
  fs::remove_all(base);
}

TEST(DatasetFactory, FingerprintTracksGenerationFieldsOnly) {
  const DatasetGenConfig config = tiny_config();
  DatasetGenConfig different = config;
  different.seed += 1;
  EXPECT_NE(dataset_config_fingerprint(config),
            dataset_config_fingerprint(different));
  different = config;
  different.depth += 1;
  EXPECT_NE(dataset_config_fingerprint(config),
            dataset_config_fingerprint(different));
  EXPECT_EQ(dataset_config_fingerprint(config),
            dataset_config_fingerprint(tiny_config()));
}

/// Worker mode for the cross-process kill/resume test. Environment:
///   QGNN_FACTORY_OUT   output file (also selects worker mode)
///   QGNN_FACTORY_CKPT  checkpoint dir
///   QGNN_FACTORY_STOP  stop after N shards ("0" = run to completion)
/// Thread count comes from QGNN_NUM_THREADS, read by the fresh process's
/// global pool — a true cold-start at that width, not an in-process resize.
TEST(DatasetFactoryEmit, EmitWorker) {
  const char* out = std::getenv("QGNN_FACTORY_OUT");
  if (out == nullptr) {
    GTEST_SKIP() << "worker mode only (set QGNN_FACTORY_OUT)";
  }
  const char* ckpt = std::getenv("QGNN_FACTORY_CKPT");
  const char* stop = std::getenv("QGNN_FACTORY_STOP");
  ASSERT_NE(ckpt, nullptr);
  ASSERT_NE(stop, nullptr);
  FactoryConfig factory;
  factory.checkpoint_every = 5;
  factory.checkpoint_dir = ckpt;
  factory.stop_after_shards = static_cast<std::size_t>(std::stoi(stop));
  factory.resume = true;  // no-op on the first run (no manifest yet)
  const bool finished =
      run_dataset_factory(tiny_config(), factory, out);
  ASSERT_EQ(finished, factory.stop_after_shards == 0);
}

TEST(DatasetFactory, KilledAndResumedRunsAreByteIdenticalAcrossThreads) {
  const fs::path self = fs::read_symlink("/proc/self/exe");
  const fs::path base = temp_dir("reexec");
  fs::remove_all(base);
  fs::create_directories(base);

  // Reference bytes from an uninterrupted in-process run.
  const fs::path ref = base / "ref.qds";
  ASSERT_TRUE(run_dataset_factory(tiny_config(), {}, ref.string()));
  const std::string expect = read_bytes(ref);

  for (const int threads : {1, 2, 8}) {
    const fs::path dir = base / ("t" + std::to_string(threads));
    const fs::path out = dir / "out.qds";
    const fs::path ckpt = dir / "ckpt";
    fs::create_directories(dir);
    auto worker = [&](int stop_after) {
      std::ostringstream cmd;
      cmd << "QGNN_NUM_THREADS=" << threads << " QGNN_FACTORY_OUT='"
          << out.string() << "' QGNN_FACTORY_CKPT='" << ckpt.string()
          << "' QGNN_FACTORY_STOP=" << stop_after << " '" << self.string()
          << "' --gtest_filter=DatasetFactoryEmit.EmitWorker >/dev/null 2>&1";
      return std::system(cmd.str().c_str());
    };
    // First process labels one shard and "dies"; the second resumes.
    ASSERT_EQ(worker(1), 0) << "threads=" << threads;
    ASSERT_FALSE(fs::exists(out));
    ASSERT_EQ(worker(0), 0) << "threads=" << threads;
    EXPECT_EQ(read_bytes(out), expect)
        << "kill+resume at threads=" << threads
        << " changed the output bytes";
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace qgnn
