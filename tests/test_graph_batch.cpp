#include <gtest/gtest.h>

#include <cmath>

#include "gnn/graph_batch.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

TEST(FeatureConfig, Dimensions) {
  FeatureConfig onehot{NodeFeatureKind::kOneHotId, 15};
  EXPECT_EQ(onehot.dimension(), 15);
  FeatureConfig concat{NodeFeatureKind::kDegreeConcatOneHot, 15};
  EXPECT_EQ(concat.dimension(), 16);
  FeatureConfig scaled{NodeFeatureKind::kDegreeScaledOneHot, 10};
  EXPECT_EQ(scaled.dimension(), 10);
}

TEST(GraphBatch, OneHotFeatures) {
  const Graph g = path_graph(3);
  const GraphBatch b =
      make_graph_batch(g, {NodeFeatureKind::kOneHotId, 15});
  EXPECT_EQ(b.num_nodes, 3);
  EXPECT_EQ(b.features.rows(), 3u);
  EXPECT_EQ(b.features.cols(), 15u);
  for (int v = 0; v < 3; ++v) {
    for (int c = 0; c < 15; ++c) {
      EXPECT_DOUBLE_EQ(
          b.features(static_cast<std::size_t>(v), static_cast<std::size_t>(c)),
          v == c ? 1.0 : 0.0);
    }
  }
}

TEST(GraphBatch, DegreeScaledFeaturesEncodeDegree) {
  const Graph g = star_graph(4);  // degrees 3,1,1,1
  const GraphBatch b =
      make_graph_batch(g, {NodeFeatureKind::kDegreeScaledOneHot, 15});
  EXPECT_DOUBLE_EQ(b.features(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(b.features(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(b.features(0, 1), 0.0);
}

TEST(GraphBatch, DegreeConcatFeatures) {
  const Graph g = star_graph(4);
  const GraphBatch b =
      make_graph_batch(g, {NodeFeatureKind::kDegreeConcatOneHot, 15});
  EXPECT_EQ(b.features.cols(), 16u);
  EXPECT_DOUBLE_EQ(b.features(0, 0), 3.0 / 15.0);
  EXPECT_DOUBLE_EQ(b.features(0, 1), 1.0);   // one-hot at position v+1
  EXPECT_DOUBLE_EQ(b.features(2, 3), 1.0);
}

TEST(GraphBatch, EdgeListHasBothDirections) {
  const Graph g = path_graph(3);  // edges 0-1, 1-2
  const GraphBatch b =
      make_graph_batch(g, {NodeFeatureKind::kOneHotId, 15});
  EXPECT_EQ(b.num_directed_edges(), 4);
  // Every directed edge has its reverse.
  for (int k = 0; k < b.num_directed_edges(); ++k) {
    bool found_reverse = false;
    for (int j = 0; j < b.num_directed_edges(); ++j) {
      if (b.edge_src[j] == b.edge_dst[k] && b.edge_dst[j] == b.edge_src[k]) {
        found_reverse = true;
        break;
      }
    }
    EXPECT_TRUE(found_reverse) << "edge " << k;
  }
}

TEST(GraphBatch, EdgeWeightsCarried) {
  Graph g(2);
  g.add_edge(0, 1, 2.5);
  const GraphBatch b =
      make_graph_batch(g, {NodeFeatureKind::kOneHotId, 15});
  ASSERT_EQ(b.edge_weight.size(), 2u);
  EXPECT_DOUBLE_EQ(b.edge_weight[0], 2.5);
  EXPECT_DOUBLE_EQ(b.edge_weight[1], 2.5);
}

TEST(GraphBatch, GcnCoefficients) {
  // Path 0-1-2: degrees 1,2,1; d~ = 2,3,2.
  const Graph g = path_graph(3);
  const GraphBatch b =
      make_graph_batch(g, {NodeFeatureKind::kOneHotId, 15});
  for (int k = 0; k < b.num_directed_edges(); ++k) {
    const double du = static_cast<double>(g.degree(b.edge_src[k])) + 1.0;
    const double dv = static_cast<double>(g.degree(b.edge_dst[k])) + 1.0;
    EXPECT_NEAR(b.gcn_coeff[static_cast<std::size_t>(k)],
                1.0 / std::sqrt(du * dv), 1e-12);
  }
  EXPECT_NEAR(b.gcn_self_coeff[0], 0.5, 1e-12);
  EXPECT_NEAR(b.gcn_self_coeff[1], 1.0 / 3.0, 1e-12);
}

TEST(GraphBatch, RejectsOversizedOrEmptyGraph) {
  EXPECT_THROW(
      make_graph_batch(cycle_graph(16), {NodeFeatureKind::kOneHotId, 15}),
      InvalidArgument);
  EXPECT_THROW(make_graph_batch(Graph(0), {NodeFeatureKind::kOneHotId, 15}),
               InvalidArgument);
}

TEST(GraphBatch, IsolatedNodesProduceNoEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  const GraphBatch b =
      make_graph_batch(g, {NodeFeatureKind::kOneHotId, 15});
  EXPECT_EQ(b.num_directed_edges(), 2);
  EXPECT_NEAR(b.gcn_self_coeff[2], 1.0, 1e-12);  // degree 0 -> 1/(0+1)
}

}  // namespace
}  // namespace qgnn
