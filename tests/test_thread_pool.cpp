#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {
namespace {

TEST(ThreadPool, RejectsZeroLanes) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
  EXPECT_THROW(ThreadPool(-3), InvalidArgument);
}

TEST(ThreadPool, SizeOneRunsSerially) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, 8, [&](std::uint64_t lo, std::uint64_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::uint64_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 64, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeNeverCallsBody) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::uint64_t, std::uint64_t) { ++calls; });
  pool.parallel_for(7, 3, 1, [&](std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(41, 42, 16, [&](std::uint64_t lo, std::uint64_t hi) {
    EXPECT_EQ(lo, 41u);
    EXPECT_EQ(hi, 42u);
    ++value;
  });
  EXPECT_EQ(value, 1);
}

TEST(ThreadPool, ZeroGrainIsClampedToOne) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 10, 0, [&](std::uint64_t lo, std::uint64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  auto boom = [&](std::uint64_t lo, std::uint64_t) {
    if (lo >= 500) throw std::runtime_error("chunk failed");
  };
  EXPECT_THROW(pool.parallel_for(0, 1000, 10, boom), std::runtime_error);

  // The pool must stay usable after a failed job.
  std::atomic<int> total{0};
  pool.parallel_for(0, 1000, 10, [&](std::uint64_t lo, std::uint64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, ExceptionOnSerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10, 1,
                                 [](std::uint64_t, std::uint64_t) {
                                   throw std::runtime_error("serial");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(0, 16, 1, [&](std::uint64_t olo, std::uint64_t ohi) {
    for (std::uint64_t o = olo; o < ohi; ++o) {
      // Re-entrant call from a chunk body: must degrade to serial, not
      // deadlock on the pool it is already running on.
      pool.parallel_for(o * 16, (o + 1) * 16, 2,
                        [&](std::uint64_t lo, std::uint64_t hi) {
                          for (std::uint64_t i = lo; i < hi; ++i) {
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                          }
                        });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentExternalSubmitsAreSerialized) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4000);
  auto submit = [&](std::uint64_t base) {
    pool.parallel_for(base, base + 2000, 32,
                      [&](std::uint64_t lo, std::uint64_t hi) {
                        for (std::uint64_t i = lo; i < hi; ++i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                        }
                      });
  };
  std::thread other([&] { submit(0); });
  submit(2000);
  other.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(4);
  constexpr std::uint64_t kN = 10000;
  const double expected = static_cast<double>(kN * (kN - 1) / 2);
  const double got = pool.parallel_reduce(
      0, kN, 128, 0.0, [](std::uint64_t lo, std::uint64_t hi) {
        double acc = 0.0;
        for (std::uint64_t i = lo; i < hi; ++i) {
          acc += static_cast<double>(i);
        }
        return acc;
      });
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossPoolSizes) {
  // Non-associative float sum: identical only because chunk boundaries and
  // the combination order are fixed regardless of lane count.
  auto chunk_sum = [](std::uint64_t lo, std::uint64_t hi) {
    double acc = 0.0;
    for (std::uint64_t i = lo; i < hi; ++i) {
      acc += 1.0 / static_cast<double>(i + 1);
    }
    return acc;
  };
  ThreadPool p1(1);
  ThreadPool p2(2);
  ThreadPool p8(8);
  const double r1 = p1.parallel_reduce(0, 100003, 97, 0.0, chunk_sum);
  const double r2 = p2.parallel_reduce(0, 100003, 97, 0.0, chunk_sum);
  const double r8 = p8.parallel_reduce(0, 100003, 97, 0.0, chunk_sum);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);
}

TEST(ThreadPool, ReduceEmptyRangeReturnsZero) {
  ThreadPool pool(4);
  const double r = pool.parallel_reduce(
      9, 9, 4, 0.0, [](std::uint64_t, std::uint64_t) { return 1.0; });
  EXPECT_EQ(r, 0.0);
}

class ConfiguredThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* saved = std::getenv("QGNN_NUM_THREADS");
    had_env_ = saved != nullptr;
    restore_ = saved ? saved : "";
    ::unsetenv("QGNN_NUM_THREADS");
    default_threads_ = ThreadPool::configured_threads();
  }
  void TearDown() override {
    if (had_env_) {
      ::setenv("QGNN_NUM_THREADS", restore_.c_str(), 1);
    } else {
      ::unsetenv("QGNN_NUM_THREADS");
    }
  }

  bool had_env_ = false;
  std::string restore_;
  int default_threads_ = 0;
};

TEST_F(ConfiguredThreadsTest, ValidValueIsUsed) {
  ::setenv("QGNN_NUM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), 3);
  ::setenv("QGNN_NUM_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), 1);
  ::setenv("QGNN_NUM_THREADS", "256", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), 256);
}

TEST_F(ConfiguredThreadsTest, NonNumericFallsBackToDefaultWithWarning) {
  ::setenv("QGNN_NUM_THREADS", "not-a-number", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(ThreadPool::configured_threads(), default_threads_);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("QGNN_NUM_THREADS"), std::string::npos);
  EXPECT_NE(warning.find("not-a-number"), std::string::npos);
}

TEST_F(ConfiguredThreadsTest, PartiallyNumericIsRejected) {
  ::setenv("QGNN_NUM_THREADS", "8cores", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(ThreadPool::configured_threads(), default_threads_);
  ::testing::internal::GetCapturedStderr();
}

TEST_F(ConfiguredThreadsTest, OutOfRangeFallsBackInsteadOfClamping) {
  ::testing::internal::CaptureStderr();
  ::setenv("QGNN_NUM_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), default_threads_);
  ::setenv("QGNN_NUM_THREADS", "-4", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), default_threads_);
  // Over-limit values previously clamped to 256; now they are rejected so
  // a typo like "99999" cannot silently oversubscribe the machine.
  ::setenv("QGNN_NUM_THREADS", "99999", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), default_threads_);
  ::setenv("QGNN_NUM_THREADS", "", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), default_threads_);
  ::testing::internal::GetCapturedStderr();
}

TEST(ThreadPool, SetGlobalThreadsRebuildsPool) {
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global().size(), 2);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().size(), 1);
}

TEST(ThreadPool, LifetimeCountersTrackJobsAndChunks) {
  ThreadPool pool(4);
  // Parallel job: 100 indices at grain 10 -> 10 chunks across the lanes.
  std::atomic<int> total{0};
  pool.parallel_for(0, 100, 10, [&](std::uint64_t lo, std::uint64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  // Serial job: 5 indices fit in one grain-10 chunk, so parallel_for runs
  // it inline on the caller without waking the lanes.
  pool.parallel_for(0, 5, 10, [&](std::uint64_t lo, std::uint64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 105);

  const ThreadPool::Counters counters = pool.counters();
  EXPECT_EQ(counters.jobs_submitted, 2u);
  EXPECT_EQ(counters.parallel_jobs, 1u);
  EXPECT_EQ(counters.chunks_executed, 11u);
  EXPECT_EQ(counters.max_chunks_in_job, 10u);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  // Stress the wake/sleep cycle: a missed wakeup or a stale job pointer
  // shows up as a hang or a lost chunk here.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> total{0};
    pool.parallel_for(0, 16, 1, [&](std::uint64_t lo, std::uint64_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
    ASSERT_EQ(total.load(), 16);
  }
}

}  // namespace
}  // namespace qgnn
