// Conformance suite for the packed binary dataset format
// (dataset/packed.hpp): encode/decode roundtrip, mmap/stream equivalence,
// a committed golden file pinning the byte layout forever, and a
// corruption matrix proving that truncation, bit flips, bad CRCs, and
// wrong versions surface as descriptive IoErrors — never as UB.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/dataset.hpp"
#include "dataset/packed.hpp"
#include "dataset/storage.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

namespace fs = std::filesystem;

/// The generation config behind tests/golden/dataset_v1.qds. Regenerating
/// the golden file (only after a deliberate, version-bumped format change)
/// must use exactly this config.
DatasetGenConfig golden_config() {
  DatasetGenConfig config;
  config.num_instances = 6;
  config.min_nodes = 2;
  config.max_nodes = 8;
  config.optimizer_evaluations = 50;
  config.seed = 777;
  return config;
}

fs::path golden_path() {
  return fs::path(QGNN_GOLDEN_DIR) / "dataset_v1.qds";
}

fs::path temp_file(const std::string& name) {
  return fs::temp_directory_path() /
         ("qgnn_packed_" + std::to_string(::getpid()) + "_" + name);
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::uint8_t> out;
  char c;
  while (in.get(c)) out.push_back(static_cast<std::uint8_t>(c));
  return out;
}

void write_bytes(const fs::path& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

void expect_entries_equal(const std::vector<DatasetEntry>& a,
                          const std::vector<DatasetEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].graph.num_nodes(), b[i].graph.num_nodes()) << i;
    ASSERT_EQ(a[i].graph.edges().size(), b[i].graph.edges().size()) << i;
    for (std::size_t e = 0; e < a[i].graph.edges().size(); ++e) {
      EXPECT_EQ(a[i].graph.edges()[e].u, b[i].graph.edges()[e].u);
      EXPECT_EQ(a[i].graph.edges()[e].v, b[i].graph.edges()[e].v);
      EXPECT_EQ(a[i].graph.edges()[e].weight, b[i].graph.edges()[e].weight);
    }
    EXPECT_EQ(a[i].degree, b[i].degree) << i;
    EXPECT_EQ(a[i].label.gammas, b[i].label.gammas) << i;
    EXPECT_EQ(a[i].label.betas, b[i].label.betas) << i;
    EXPECT_EQ(a[i].expectation, b[i].expectation) << i;
    EXPECT_EQ(a[i].optimum, b[i].optimum) << i;
    EXPECT_EQ(a[i].approximation_ratio, b[i].approximation_ratio) << i;
  }
}

TEST(Crc32, KnownVectors) {
  // IEEE 802.3 check value for the ASCII digits "123456789".
  EXPECT_EQ(crc32_ieee("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32_ieee("", 0), 0x00000000u);
  // Chaining: crc(a ++ b) == crc(b, crc(a)).
  EXPECT_EQ(crc32_ieee("56789", 5, crc32_ieee("1234", 4)),
            crc32_ieee("123456789", 9));
}

TEST(PackedDataset, RoundTripsThroughFileAndImage) {
  const auto entries = generate_dataset(golden_config());
  const fs::path path = temp_file("roundtrip.qds");
  save_packed_dataset(path.string(), entries);

  // The on-disk bytes are exactly pack_dataset's image.
  EXPECT_EQ(read_bytes(path), pack_dataset(entries));
  EXPECT_TRUE(is_packed_dataset_file(path.string()));

  const auto loaded = load_packed_dataset(path.string());
  expect_entries_equal(entries, loaded);

  // Re-encoding the decoded entries reproduces the same bytes: decode
  // loses nothing, which is what lets resume rebuild byte-identical files
  // from shards.
  EXPECT_EQ(pack_dataset(loaded), pack_dataset(entries));
  fs::remove(path);
}

TEST(PackedDataset, MmapAndStreamReadersAgree) {
  const auto entries = generate_dataset(golden_config());
  const fs::path path = temp_file("modes.qds");
  save_packed_dataset(path.string(), entries);

  PackedDatasetReader mm(path.string(), PackedDatasetReader::Mode::kMmap);
  PackedDatasetReader st(path.string(), PackedDatasetReader::Mode::kStream);
  ASSERT_EQ(mm.size(), entries.size());
  ASSERT_EQ(st.size(), entries.size());
  EXPECT_EQ(mm.info().index_crc32, st.info().index_crc32);
  EXPECT_EQ(mm.info().records_crc32, st.info().records_crc32);
  expect_entries_equal(mm.read_all(), st.read_all());
  fs::remove(path);
}

TEST(PackedDataset, LoadDatasetDispatchesOnFormat) {
  const auto entries = generate_dataset(golden_config());

  const fs::path packed = temp_file("dispatch.qds");
  save_packed_dataset(packed.string(), entries);
  expect_entries_equal(load_dataset(packed.string()), entries);
  fs::remove(packed);

  const fs::path dir = temp_file("dispatch_dir");
  fs::remove_all(dir);
  save_dataset(dir.string(), entries);
  expect_entries_equal(load_dataset(dir.string()), entries);
  fs::remove_all(dir);
}

TEST(PackedDataset, EmptyAndWeightedAndDeepDatasetsRoundTrip) {
  // Zero records still writes a valid, loadable file.
  const fs::path path = temp_file("edge.qds");
  save_packed_dataset(path.string(), {});
  EXPECT_EQ(load_packed_dataset(path.string()).size(), 0u);

  // Non-unit weights and depth > 1 labels survive exactly.
  DatasetEntry e;
  e.graph = Graph(4);
  e.graph.add_edge(0, 1, 0.125);
  e.graph.add_edge(2, 3, -2.75);
  e.degree = 1;
  e.label = QaoaParams({0.1, 0.2, 0.3}, {-0.4, 0.5, -0.6});
  e.expectation = 1.25;
  e.optimum = 2.5;
  e.approximation_ratio = 0.5;
  save_packed_dataset(path.string(), {e});
  const auto loaded = load_packed_dataset(path.string());
  expect_entries_equal({e}, loaded);
  EXPECT_EQ(PackedDatasetReader(path.string()).depth(), 3);
  fs::remove(path);
}

TEST(PackedDataset, MixedDepthIsRejectedAtPackTime) {
  DatasetEntry a;
  a.graph = Graph(2);
  a.graph.add_edge(0, 1);
  a.degree = 1;
  a.label = QaoaParams({0.1}, {0.2});
  DatasetEntry b = a;
  b.label = QaoaParams({0.1, 0.3}, {0.2, 0.4});
  EXPECT_THROW(pack_dataset({a, b}), Error);
}

TEST(PackedDataset, GoldenFileStaysByteStable) {
  // The committed golden file pins the byte format: if encoding, CRC, the
  // labelling pipeline, or the RNG derivation drift, this fails. Changing
  // the format deliberately means bumping kPackedVersion, regenerating
  // with golden_config(), and updating DESIGN.md §10.
  const auto entries = generate_dataset(golden_config());
  const std::vector<std::uint8_t> expect = read_bytes(golden_path());
  ASSERT_FALSE(expect.empty()) << "missing golden file " << golden_path();
  EXPECT_EQ(pack_dataset(entries), expect)
      << "packed encoding of golden_config() drifted from the committed "
         "golden file";

  PackedDatasetReader reader(golden_path().string());
  EXPECT_EQ(reader.info().version, kPackedVersion);
  EXPECT_EQ(reader.size(), 6u);
  EXPECT_EQ(reader.depth(), 1);
  expect_entries_equal(reader.read_all(), entries);
}

// --- Corruption matrix -----------------------------------------------------
// Every mutation of a valid file must produce IoError with the file name in
// the message, and must never crash, hang, or return garbage (the dataset
// label runs under ASan/UBSan in CI).

class PackedCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetGenConfig config = golden_config();
    config.num_instances = 3;
    image_ = pack_dataset(generate_dataset(config));
    path_ = temp_file("corrupt.qds");
  }
  void TearDown() override { fs::remove(path_); }

  void expect_rejected(std::vector<std::uint8_t> bytes,
                       const std::string& what) {
    write_bytes(path_, bytes);
    try {
      (void)load_packed_dataset(path_.string());
      FAIL() << "corrupt file accepted: " << what;
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find(path_.string()), std::string::npos)
          << what << ": error message should name the file: " << e.what();
    }
    // The stream reader must reject it identically.
    EXPECT_THROW(PackedDatasetReader(path_.string(),
                                     PackedDatasetReader::Mode::kStream),
                 IoError)
        << what;
  }

  std::vector<std::uint8_t> image_;
  fs::path path_;
};

TEST_F(PackedCorruption, TruncatedHeader) {
  expect_rejected({image_.begin(), image_.begin() + 40}, "truncated header");
}

TEST_F(PackedCorruption, TruncatedBody) {
  expect_rejected({image_.begin(), image_.end() - 5}, "truncated body");
}

TEST_F(PackedCorruption, EmptyFile) { expect_rejected({}, "empty file"); }

TEST_F(PackedCorruption, BadMagic) {
  auto bytes = image_;
  bytes[0] ^= 0xFF;
  expect_rejected(bytes, "bad magic");
}

TEST_F(PackedCorruption, UnsupportedVersion) {
  auto bytes = image_;
  bytes[8] = 99;  // version field; header CRC updated to match
  const std::uint32_t crc = crc32_ieee(bytes.data(), 64);
  for (int i = 0; i < 4; ++i) {
    bytes[64 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  expect_rejected(bytes, "unsupported version");
}

TEST_F(PackedCorruption, FlippedHeaderByte) {
  auto bytes = image_;
  bytes[16] ^= 0x01;  // record count, breaks the header CRC
  expect_rejected(bytes, "flipped header byte");
}

TEST_F(PackedCorruption, FlippedIndexByte) {
  auto bytes = image_;
  bytes[kPackedHeaderBytes] ^= 0x80;
  expect_rejected(bytes, "flipped index byte");
}

TEST_F(PackedCorruption, FlippedRecordByte) {
  auto bytes = image_;
  bytes[bytes.size() - 3] ^= 0x40;
  expect_rejected(bytes, "flipped record byte");
}

TEST_F(PackedCorruption, TrailingGarbage) {
  auto bytes = image_;
  bytes.push_back(0xAB);
  expect_rejected(bytes, "trailing garbage");
}

TEST_F(PackedCorruption, MissingFileIsDescriptive) {
  const std::string missing = temp_file("does_not_exist.qds").string();
  try {
    (void)load_packed_dataset(missing);
    FAIL() << "missing file accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(is_packed_dataset_file(missing));
}

}  // namespace
}  // namespace qgnn
