#include <gtest/gtest.h>

#include <cmath>

#include "gnn/layers.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace qgnn {
namespace {

using ag::Var;

constexpr FeatureConfig kFeatures{NodeFeatureKind::kDegreeScaledOneHot, 15};

Var input_var(const GraphBatch& batch) { return Var(batch.features, false); }

TEST(ArchNames, RoundTrip) {
  for (GnnArch arch : all_gnn_archs()) {
    EXPECT_EQ(gnn_arch_from_string(to_string(arch)), arch);
  }
  EXPECT_EQ(gnn_arch_from_string("sage"), GnnArch::kSAGE);
  EXPECT_THROW(gnn_arch_from_string("transformer"), InvalidArgument);
  EXPECT_EQ(all_gnn_archs().size(), 4u);
}

TEST(Linear, AffineMap) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  EXPECT_EQ(lin.in_dim(), 3);
  EXPECT_EQ(lin.out_dim(), 2);
  EXPECT_EQ(lin.params().size(), 2u);
  const Var x(Matrix::ones(4, 3), false);
  const Var y = lin.forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  // All rows identical for identical inputs.
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_DOUBLE_EQ(y.value()(0, j), y.value()(3, j));
  }
}

class LayerShapeTest : public ::testing::TestWithParam<GnnArch> {};

TEST_P(LayerShapeTest, OutputShapeIsNodesByOutDim) {
  Rng rng(5);
  const auto layer = make_gnn_layer(GetParam(), 15, 8, rng);
  Rng grng(2);
  const Graph g = random_regular_graph(7, 2, grng);
  const GraphBatch batch = make_graph_batch(g, kFeatures);
  const Var out = layer->forward(batch, input_var(batch));
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 8u);
}

TEST_P(LayerShapeTest, ParamsReceiveGradients) {
  Rng rng(5);
  const auto layer = make_gnn_layer(GetParam(), 15, 4, rng);
  const Graph g = cycle_graph(5);
  const GraphBatch batch = make_graph_batch(g, kFeatures);
  Var out = ag::sum_all(layer->forward(batch, input_var(batch)));
  out.backward();
  bool any_nonzero = false;
  for (const Var& p : layer->params()) {
    if (p.grad().max_abs() > 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero) << to_string(GetParam());
}

TEST_P(LayerShapeTest, DeterministicForward) {
  Rng rng(5);
  const auto layer = make_gnn_layer(GetParam(), 15, 4, rng);
  const Graph g = cycle_graph(6);
  const GraphBatch batch = make_graph_batch(g, kFeatures);
  const Var a = layer->forward(batch, input_var(batch));
  const Var b = layer->forward(batch, input_var(batch));
  EXPECT_TRUE(a.value().approx_equal(b.value(), 1e-14));
}

TEST_P(LayerShapeTest, PermutationEquivariant) {
  // Relabeling nodes permutes layer outputs the same way. Requires
  // permutation-equivariant features: use degree one-hot position... the
  // kDegreeScaledOneHot features are ID-dependent, so build ID-free
  // features (all-ones column replicated) instead.
  Rng rng(9);
  const auto layer = make_gnn_layer(GetParam(), 3, 5, rng);
  Rng grng(4);
  const Graph g = random_regular_graph(8, 3, grng);
  const std::vector<int> perm{3, 7, 1, 0, 5, 2, 6, 4};
  const Graph gp = g.permuted(perm);

  GraphBatch batch = make_graph_batch(g, {NodeFeatureKind::kOneHotId, 8});
  GraphBatch batch_p = make_graph_batch(gp, {NodeFeatureKind::kOneHotId, 8});
  // ID-free 3-dim features: f(v) = [1, deg(v), deg(v)^2] (deg constant
  // here, but weights make columns distinct).
  auto set_features = [](GraphBatch& b, const Graph& graph) {
    b.features = Matrix(static_cast<std::size_t>(graph.num_nodes()), 3);
    for (int v = 0; v < graph.num_nodes(); ++v) {
      const double d = static_cast<double>(graph.degree(v));
      b.features(static_cast<std::size_t>(v), 0) = 1.0;
      b.features(static_cast<std::size_t>(v), 1) = d;
      b.features(static_cast<std::size_t>(v), 2) =
          0.1 * static_cast<double>(graph.neighbors(v).size());
    }
  };
  set_features(batch, g);
  set_features(batch_p, gp);

  const Matrix out = layer->forward(batch, input_var(batch)).value();
  const Matrix out_p = layer->forward(batch_p, input_var(batch_p)).value();
  for (int v = 0; v < 8; ++v) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(out(static_cast<std::size_t>(v), c),
                  out_p(static_cast<std::size_t>(perm[static_cast<std::size_t>(
                            v)]),
                        c),
                  1e-10)
          << to_string(GetParam()) << " node " << v << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, LayerShapeTest,
                         ::testing::ValuesIn(all_gnn_archs()),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(GCNConv, MatchesHandComputedAggregation) {
  // Identity-like weight: choose in_dim == out_dim and overwrite W = I,
  // b = 0, so the layer computes pure D~^{-1/2} A~ D~^{-1/2} X.
  Rng rng(3);
  GCNConv layer(3, 3, rng);
  auto params = layer.params();
  params[0].set_value(Matrix::identity(3));
  params[1].set_value(Matrix::zeros(1, 3));

  const Graph g = path_graph(3);
  GraphBatch batch = make_graph_batch(g, {NodeFeatureKind::kOneHotId, 3});
  const Matrix out = layer.forward(batch, input_var(batch)).value();

  // Expected: row v = sum_u A~_norm[v][u] * X[u]. X = I so out = A~_norm.
  // d~ = (2, 3, 2).
  const double s22 = 1.0 / 2.0;             // self loop on deg-1 nodes
  const double s33 = 1.0 / 3.0;             // self loop on middle node
  const double c = 1.0 / std::sqrt(6.0);    // 1/sqrt(2*3)
  EXPECT_NEAR(out(0, 0), s22, 1e-12);
  EXPECT_NEAR(out(0, 1), c, 1e-12);
  EXPECT_NEAR(out(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(out(1, 0), c, 1e-12);
  EXPECT_NEAR(out(1, 1), s33, 1e-12);
  EXPECT_NEAR(out(1, 2), c, 1e-12);
  EXPECT_NEAR(out(2, 2), s22, 1e-12);
}

TEST(GINConv, SumAggregationWithIdentityMlp) {
  Rng rng(3);
  GINConv layer(3, 3, rng);
  auto params = layer.params();
  params[0].set_value(Matrix::identity(3));  // mlp1 W
  params[1].set_value(Matrix::zeros(1, 3));  // mlp1 b
  params[2].set_value(Matrix::identity(3));  // mlp2 W
  params[3].set_value(Matrix::zeros(1, 3));  // mlp2 b

  // Features chosen non-negative so ReLU inside the MLP is transparent.
  const Graph g = path_graph(3);
  GraphBatch batch = make_graph_batch(g, {NodeFeatureKind::kOneHotId, 3});
  const Matrix out = layer.forward(batch, input_var(batch)).value();
  // GIN-0: out[v] = x[v] + sum_{u ~ v} x[u]. X = I.
  EXPECT_NEAR(out(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(out(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(out(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(out(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(out(1, 2), 1.0, 1e-12);
  EXPECT_NEAR(out(0, 2), 0.0, 1e-12);
}

TEST(GATConv, AttentionIsConvexCombinationWithSelfLoop) {
  // With W = I and zero attention vectors, alpha is uniform over the
  // neighborhood + self: out[v] = mean of x over N(v) u {v}.
  Rng rng(3);
  GATConv layer(3, 3, rng);
  auto params = layer.params();
  params[0].set_value(Matrix::identity(3));  // W
  params[1].set_value(Matrix::zeros(3, 1));  // a_src
  params[2].set_value(Matrix::zeros(3, 1));  // a_dst

  const Graph g = path_graph(3);
  GraphBatch batch = make_graph_batch(g, {NodeFeatureKind::kOneHotId, 3});
  const Matrix out = layer.forward(batch, input_var(batch)).value();
  // Node 0: neighbors {1} + self -> (x0 + x1)/2.
  EXPECT_NEAR(out(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(out(0, 1), 0.5, 1e-12);
  // Node 1: neighbors {0,2} + self -> average of three one-hots.
  EXPECT_NEAR(out(1, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(out(1, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(out(1, 2), 1.0 / 3.0, 1e-12);
}

TEST(SAGEConv, MaxPoolingSelectsLargestNeighbor) {
  Rng rng(3);
  SAGEConv layer(2, 2, rng);
  auto params = layer.params();
  params[0].set_value(Matrix::identity(2));  // pool W
  params[1].set_value(Matrix::zeros(1, 2));  // pool b
  // combine: [h || a] W2 with W2 = [[0,0],[0,0],[1,0],[0,1]] keeps only a.
  Matrix w2(4, 2);
  w2(2, 0) = 1.0;
  w2(3, 1) = 1.0;
  params[2].set_value(w2);
  params[3].set_value(Matrix::zeros(1, 2));

  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  GraphBatch batch = make_graph_batch(g, {NodeFeatureKind::kOneHotId, 3});
  batch.features = Matrix{{0.0, 0.0}, {3.0, 1.0}, {2.0, 5.0}};
  const Matrix out = layer.forward(batch, input_var(batch)).value();
  // Node 0 aggregates max over neighbors 1, 2 elementwise: (3, 5).
  EXPECT_NEAR(out(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(out(0, 1), 5.0, 1e-12);
}

TEST(GATConv, MultiHeadShapesAndGradients) {
  Rng rng(5);
  GATConv layer(15, 8, rng, /*heads=*/4);
  EXPECT_EQ(layer.heads(), 4);
  EXPECT_EQ(layer.params().size(), 12u);  // 3 tensors per head
  const Graph g = cycle_graph(6);
  const GraphBatch batch = make_graph_batch(g, kFeatures);
  Var out = layer.forward(batch, input_var(batch));
  EXPECT_EQ(out.rows(), 6u);
  EXPECT_EQ(out.cols(), 8u);
  Var loss = ag::sum_all(out);
  loss.backward();
  for (const Var& p : layer.params()) {
    EXPECT_GT(p.grad().max_abs(), 0.0);
  }
}

TEST(GATConv, RejectsIndivisibleHeadCount) {
  Rng rng(1);
  EXPECT_THROW(GATConv(4, 6, rng, 4), InvalidArgument);
  EXPECT_THROW(GATConv(4, 6, rng, 0), InvalidArgument);
}

TEST(GATConv, MultiHeadUniformAttentionStillAverages) {
  // Two heads with W = [I; 0-padded] analog: set each head's W so head h
  // reproduces columns of the identity; zero attention => uniform alpha.
  Rng rng(2);
  GATConv layer(2, 2, rng, 2);  // head_dim = 1
  auto params = layer.params();
  Matrix w0(2, 1);
  w0(0, 0) = 1.0;  // head 0 picks feature 0
  Matrix w1(2, 1);
  w1(1, 0) = 1.0;  // head 1 picks feature 1
  params[0].set_value(w0);
  params[1].set_value(Matrix::zeros(1, 1));
  params[2].set_value(Matrix::zeros(1, 1));
  params[3].set_value(w1);
  params[4].set_value(Matrix::zeros(1, 1));
  params[5].set_value(Matrix::zeros(1, 1));

  Graph g(2);
  g.add_edge(0, 1);
  GraphBatch batch = make_graph_batch(g, {NodeFeatureKind::kOneHotId, 2});
  const Matrix out = layer.forward(batch, input_var(batch)).value();
  // Node 0: mean over {x0, x1} per head => (0.5, 0.5).
  EXPECT_NEAR(out(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(out(0, 1), 0.5, 1e-12);
}

TEST(MakeGnnLayer, NamesMatchArch) {
  Rng rng(0);
  EXPECT_EQ(make_gnn_layer(GnnArch::kGCN, 4, 4, rng)->name(), "GCN");
  EXPECT_EQ(make_gnn_layer(GnnArch::kGAT, 4, 4, rng)->name(), "GAT");
  EXPECT_EQ(make_gnn_layer(GnnArch::kGIN, 4, 4, rng)->name(), "GIN");
  EXPECT_EQ(make_gnn_layer(GnnArch::kSAGE, 4, 4, rng)->name(), "GraphSAGE");
}

}  // namespace
}  // namespace qgnn
