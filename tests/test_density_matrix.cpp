#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/noise.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace qgnn {
namespace {

constexpr double kTol = 1e-10;

TEST(DensityMatrix, PureZeroState) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(rho.probability(0), 1.0, kTol);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(DensityMatrix, FromStateMatchesOuterProduct) {
  StateVector psi = StateVector::plus_state(2);
  const DensityMatrix rho = DensityMatrix::from_state(psi);
  for (std::uint64_t r = 0; r < 4; ++r) {
    for (std::uint64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::abs(rho.element(r, c) - Amplitude{0.25, 0.0}), 0.0,
                  kTol);
    }
  }
  EXPECT_NEAR(rho.fidelity(psi), 1.0, kTol);
}

TEST(DensityMatrix, MaximallyMixed) {
  const DensityMatrix rho = DensityMatrix::maximally_mixed(3);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0 / 8.0, kTol);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStateVector) {
  // Same random circuit on both simulators; fidelity must stay 1.
  Rng rng(3);
  StateVector psi = StateVector::plus_state(3);
  DensityMatrix rho = DensityMatrix::from_state(psi);
  for (int step = 0; step < 15; ++step) {
    const int q = rng.uniform_int(0, 2);
    const int q2 = (q + 1 + rng.uniform_int(0, 1)) % 3;
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        const auto gate = gates::rx(rng.uniform(0, 6.28));
        psi.apply_single_qubit(gate, q);
        rho.apply_single_qubit(gate, q);
        break;
      }
      case 1: {
        psi.apply_rzz(1.1, q, q2);
        rho.apply_rzz(1.1, q, q2);
        break;
      }
      default: {
        psi.apply_controlled(gates::pauli_x(), q, q2);
        rho.apply_controlled(gates::pauli_x(), q, q2);
        break;
      }
    }
  }
  EXPECT_NEAR(rho.fidelity(psi), 1.0, 1e-9);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(DensityMatrix, DiagonalPhaseMatchesStateVector) {
  const Graph g = cycle_graph(4);
  const CostHamiltonian cost(g);
  StateVector psi = StateVector::plus_state(4);
  DensityMatrix rho = DensityMatrix::from_state(psi);
  cost.apply_phase(psi, 0.73);
  rho.apply_diagonal_phase(cost.diagonal(), 0.73);
  EXPECT_NEAR(rho.fidelity(psi), 1.0, 1e-9);
}

TEST(DensityMatrix, DepolarizingDrivesTowardMixed) {
  DensityMatrix rho(1);  // |0><0|
  EXPECT_NEAR(rho.probability(0), 1.0, kTol);
  // Full depolarizing (p = 3/4) sends any state to I/2.
  rho.apply_depolarizing(0, 0.75);
  EXPECT_NEAR(rho.probability(0), 0.5, kTol);
  EXPECT_NEAR(rho.probability(1), 0.5, kTol);
  EXPECT_NEAR(rho.purity(), 0.5, kTol);
}

TEST(DensityMatrix, DepolarizingReducesPurityMonotonically) {
  DensityMatrix rho = DensityMatrix::from_state(StateVector::plus_state(2));
  double previous = rho.purity();
  for (int step = 0; step < 5; ++step) {
    rho.apply_depolarizing(0, 0.1);
    rho.apply_depolarizing(1, 0.1);
    const double p = rho.purity();
    EXPECT_LT(p, previous);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
    previous = p;
  }
}

TEST(DensityMatrix, DephasingKillsCoherencesKeepsPopulations) {
  // Phase-flip channel: coherences scale by (1 - 2p); p = 1/2 dephases
  // completely, p = 1 is a deterministic Z (coherence sign flip).
  StateVector psi(1);
  psi.apply_single_qubit(gates::hadamard(), 0);

  DensityMatrix partial = DensityMatrix::from_state(psi);
  partial.apply_dephasing(0, 0.25);
  EXPECT_NEAR(partial.element(0, 1).real(), 0.5 * (1.0 - 2.0 * 0.25), kTol);

  DensityMatrix full = DensityMatrix::from_state(psi);
  full.apply_dephasing(0, 0.5);  // complete dephasing
  EXPECT_NEAR(full.probability(0), 0.5, kTol);
  EXPECT_NEAR(full.probability(1), 0.5, kTol);
  EXPECT_NEAR(std::abs(full.element(0, 1)), 0.0, kTol);

  DensityMatrix flip = DensityMatrix::from_state(psi);
  flip.apply_dephasing(0, 1.0);  // pure Z: coherence magnitude preserved
  EXPECT_NEAR(std::abs(flip.element(0, 1)), 0.5, kTol);
}

TEST(DensityMatrix, AmplitudeDampingDecaysToGround) {
  StateVector psi = StateVector::basis_state(1, 1);  // |1>
  DensityMatrix rho = DensityMatrix::from_state(psi);
  rho.apply_amplitude_damping(0, 0.3);
  EXPECT_NEAR(rho.probability(1), 0.7, kTol);
  EXPECT_NEAR(rho.probability(0), 0.3, kTol);
  rho.apply_amplitude_damping(0, 1.0);
  EXPECT_NEAR(rho.probability(0), 1.0, kTol);
}

TEST(DensityMatrix, ChannelValidation) {
  DensityMatrix rho(1);
  // Non-trace-preserving "channel" (just a projector) must be rejected.
  std::vector<std::array<Amplitude, 4>> bad{
      {Amplitude{1, 0}, Amplitude{0, 0}, Amplitude{0, 0}, Amplitude{0, 0}}};
  EXPECT_THROW(rho.apply_channel(bad, 0), InvalidArgument);
  EXPECT_THROW(depolarizing_kraus(1.5), InvalidArgument);
  EXPECT_THROW(DensityMatrix(13), InvalidArgument);
}

TEST(DensityMatrix, KrausSetsAreTracePreserving) {
  for (const auto& kraus :
       {depolarizing_kraus(0.3), dephasing_kraus(0.4),
        amplitude_damping_kraus(0.25)}) {
    std::array<Amplitude, 4> sum{};
    for (const auto& k : kraus) {
      const auto p = gates::multiply(gates::adjoint(k), k);
      for (std::size_t i = 0; i < 4; ++i) sum[i] += p[i];
    }
    EXPECT_NEAR(std::abs(sum[0] - Amplitude{1, 0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(sum[3] - Amplitude{1, 0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(sum[1]), 0.0, kTol);
    EXPECT_NEAR(std::abs(sum[2]), 0.0, kTol);
  }
}

TEST(NoiseCrossValidation, TrajectoryAverageMatchesDensityMatrix) {
  // The headline cross-check: the stochastic Pauli trajectory sampler and
  // the exact Kraus-channel density matrix must agree on <C>.
  Rng rng(21);
  const Graph g = random_regular_graph(6, 3, rng);
  const QaoaParams params = *fixed_angles(3, 1);
  NoiseModel noise;
  noise.two_qubit_error = 0.05;
  noise.single_qubit_error = 0.01;

  const double exact = exact_noisy_expectation(g, params, noise);

  Rng traj_rng(5);
  const double mc = noisy_expectation(g, params, noise, 3000, traj_rng);
  // MC error ~ sigma/sqrt(3000); generous tolerance.
  EXPECT_NEAR(mc, exact, 0.08);

  // And the noiseless limits agree with the pure-state fast path.
  NoiseModel clean;
  clean.single_qubit_error = 0.0;
  clean.two_qubit_error = 0.0;
  const QaoaAnsatz ansatz(g);
  EXPECT_NEAR(exact_noisy_expectation(g, params, clean),
              ansatz.expectation(params), 1e-9);
}

TEST(NoiseCrossValidation, ExactNoisyExpectationBelowClean) {
  Rng rng(9);
  const Graph g = random_regular_graph(8, 3, rng);
  const QaoaParams params = *fixed_angles(3, 1);
  const QaoaAnsatz ansatz(g);
  NoiseModel noise;
  noise.two_qubit_error = 0.02;
  noise.single_qubit_error = 0.002;
  EXPECT_LT(exact_noisy_expectation(g, params, noise),
            ansatz.expectation(params));
}

}  // namespace
}  // namespace qgnn
