#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace qgnn {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  RunningStats s;
  for (double x : xs) s.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(11);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 1.5, 1e-12);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, ThrowsOnEmptyOrBadQ) {
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 1.5), InvalidArgument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(FrequencyTable, CountsKeys) {
  FrequencyTable t;
  t.add(3);
  t.add(3);
  t.add(5);
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.counts().at(3), 2u);
  EXPECT_EQ(t.counts().at(5), 1u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 500; ++i) {
    const int x = rng.uniform_int(0, 4);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 4);
    ++seen[static_cast<std::size_t>(x)];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Rng, ChildStreamsIndependent) {
  Rng parent(7);
  Rng c1 = parent.child();
  Rng c2 = parent.child();
  // Children derived in sequence should produce distinct streams.
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (c1.uniform() == c2.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(13);
  const auto p = rng.permutation(20);
  std::vector<char> seen(20, 0);
  for (std::size_t v : p) {
    ASSERT_LT(v, 20u);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(CliArgs, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "2.5", "positional",
                        "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 2.5);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(CliArgs, BadIntegerThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("n", 0), InvalidArgument);
}

TEST(CliArgs, FullScaleFlagAndEnv) {
  {
    const char* argv[] = {"prog", "--full"};
    CliArgs args(2, argv);
    EXPECT_TRUE(full_scale_requested(args));
  }
  {
    const char* argv[] = {"prog"};
    CliArgs args(1, argv);
    // Env-var path.
    ::setenv("QGNN_FULL", "1", 1);
    EXPECT_TRUE(full_scale_requested(args));
    ::setenv("QGNN_FULL", "0", 1);
    EXPECT_FALSE(full_scale_requested(args));
    ::unsetenv("QGNN_FULL");
    EXPECT_FALSE(full_scale_requested(args));
  }
}

TEST(Table, WriteCsvToFile) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/qgnn_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  EXPECT_THROW(t.write_csv("/nonexistent-dir/t.csv"), IoError);
}

TEST(Table, PrintsAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_numeric("beta", {2.5}, 2);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.50"), std::string::npos);

  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1\nbeta,2.50\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a"});
  t.add_row({"x,y"});
  t.add_row({"he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(FormatHelpers, MeanStdFormat) {
  EXPECT_EQ(format_mean_std(3.276, 9.99, 2), "3.28 +/- 9.99");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
}

TEST(ErrorMacro, RequireThrowsWithContext) {
  try {
    QGNN_REQUIRE(1 == 2, "must be equal");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("must be equal"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace qgnn
