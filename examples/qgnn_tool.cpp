// qgnn_tool: command-line driver for the whole library, the entry point a
// downstream user scripts against.
//
//   qgnn_tool generate --dir DATA [--instances N] [--seed S]
//       generate + label a dataset and save it (manifest + graph files)
//   qgnn_tool train --dir DATA --model MODEL.txt [--arch GCN] [--epochs N]
//       train a GNN on a saved dataset and write the model file
//   qgnn_tool predict --model MODEL.txt --graph GRAPH.txt
//       print the predicted (gamma, beta) for one graph file
//   qgnn_tool solve --graph GRAPH.txt [--model MODEL.txt] [--evals N]
//       run QAOA on a graph (warm-started when a model is given)
//   qgnn_tool evaluate --dir DATA --model MODEL.txt [--test-count N]
//       fixed-parameter comparison of the model vs random init
//   qgnn_tool landscape --graph GRAPH.txt [--grid N]
//       render the p=1 (gamma, beta) landscape of a graph as ASCII art

#include <iostream>
#include <memory>

#include "core/pipeline.hpp"
#include "dataset/storage.hpp"
#include "graph/io.hpp"
#include "qaoa/landscape.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace qgnn;

int cmd_generate(const CliArgs& args) {
  const std::string dir = args.get("dir", "");
  QGNN_REQUIRE(!dir.empty(), "generate requires --dir");
  DatasetGenConfig config;
  config.num_instances = args.get_int("instances", 300);
  config.min_nodes = args.get_int("min-nodes", 3);
  config.max_nodes = args.get_int("max-nodes", 12);
  config.optimizer_evaluations = args.get_int("label-evals", 150);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "generating " << config.num_instances << " instances...\n";
  auto entries = generate_dataset(config, [](int done, int total) {
    if (done % 50 == 0 || done == total) {
      std::cout << "  " << done << "/" << total << "\n";
    }
  });
  if (args.get_bool("audit", true)) {
    const auto audit = fixed_angle_label_audit(entries, 1);
    std::cout << "fixed-angle audit improved " << audit.improved
              << " labels\n";
  }
  save_dataset(dir, entries);
  std::cout << "saved " << entries.size() << " entries to " << dir << "\n";
  return 0;
}

int cmd_train(const CliArgs& args) {
  const std::string dir = args.get("dir", "");
  const std::string model_path = args.get("model", "");
  QGNN_REQUIRE(!dir.empty() && !model_path.empty(),
               "train requires --dir and --model");
  const auto entries = load_dataset(dir);
  std::cout << "loaded " << entries.size() << " entries\n";

  GnnModelConfig model_config;
  model_config.arch = gnn_arch_from_string(args.get("arch", "GCN"));
  model_config.hidden_dim = args.get_int("hidden-dim", 32);
  model_config.dropout = args.get_double("dropout", 0.5);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2)));
  GnnModel model(model_config, rng);

  TrainerConfig trainer;
  trainer.epochs = args.get_int("epochs", 100);
  trainer.learning_rate = args.get_double("lr", 1e-2);
  trainer.verbose = args.get_bool("verbose", false);
  const TrainReport report = train_gnn(
      model, to_train_samples(entries, model_config.features), trainer, rng);
  std::cout << "final train loss " << report.final_train_loss << " (val "
            << report.final_validation_loss << ")\n";
  model.save(model_path);
  std::cout << "wrote " << model_path << " (" << model.parameter_count()
            << " parameters)\n";
  return 0;
}

int cmd_predict(const CliArgs& args) {
  const std::string model_path = args.get("model", "");
  const std::string graph_path = args.get("graph", "");
  QGNN_REQUIRE(!model_path.empty() && !graph_path.empty(),
               "predict requires --model and --graph");
  const GnnModel model = GnnModel::load(model_path);
  const Graph g = load_graph(graph_path);
  const QaoaParams params = target_to_params(model.predict(g));
  std::cout << g.describe() << "\n";
  for (int l = 0; l < params.depth(); ++l) {
    std::cout << "layer " << l << ": gamma = "
              << params.gammas[static_cast<std::size_t>(l)]
              << ", beta = " << params.betas[static_cast<std::size_t>(l)]
              << "\n";
  }
  return 0;
}

int cmd_solve(const CliArgs& args) {
  const std::string graph_path = args.get("graph", "");
  QGNN_REQUIRE(!graph_path.empty(), "solve requires --graph");
  const Graph g = load_graph(graph_path);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  std::unique_ptr<ParameterInitializer> init;
  const std::string model_path = args.get("model", "");
  if (!model_path.empty()) {
    auto model = std::make_shared<GnnModel>(GnnModel::load(model_path));
    init = std::make_unique<GnnInitializer>(std::move(model));
  } else if (g.is_regular() && g.num_edges() > 0) {
    init = std::make_unique<FixedAngleInitializer>();
  } else {
    init = std::make_unique<RandomInitializer>(rng.child());
  }

  QaoaRunConfig config;
  config.max_evaluations = args.get_int("evals", 200);
  config.sample_shots = args.get_int("shots", 256);
  const QaoaResult result = run_qaoa(g, *init, config, rng);

  std::cout << g.describe() << "\n";
  std::cout << "initializer: " << init->name() << "\n";
  std::cout << "initial AR " << format_double(result.initial_ar, 4)
            << " -> optimized AR " << format_double(result.best_ar, 4)
            << " in " << result.evaluations << " circuit evaluations\n";
  std::cout << "best sampled cut " << result.sampled_cut.value << " / "
            << result.optimum << " (assignment bits ";
  for (int v = 0; v < g.num_nodes(); ++v) {
    std::cout << ((result.sampled_cut.assignment >> v) & 1);
  }
  std::cout << ")\n";
  return 0;
}

int cmd_evaluate(const CliArgs& args) {
  const std::string dir = args.get("dir", "");
  const std::string model_path = args.get("model", "");
  QGNN_REQUIRE(!dir.empty() && !model_path.empty(),
               "evaluate requires --dir and --model");
  auto entries = load_dataset(dir);
  const int test_count =
      std::min<int>(args.get_int("test-count", 50),
                    static_cast<int>(entries.size()) - 1);
  auto [train, test] = train_test_split(
      std::move(entries), test_count,
      static_cast<std::uint64_t>(args.get_int("seed", 4)));

  const GnnModel model = GnnModel::load(model_path);
  const auto ar_random = random_baseline_ar(
      test, 1, static_cast<std::uint64_t>(args.get_int("seed", 4)));
  const auto ar_gnn = gnn_ar_series(model, test);

  RunningStats improvement;
  for (std::size_t i = 0; i < ar_gnn.size(); ++i) {
    improvement.add((ar_gnn[i] - ar_random[i]) * 100.0);
  }
  std::cout << "test graphs: " << test.size() << "\n";
  std::cout << "mean AR improvement over random init: "
            << format_mean_std(improvement.mean(), improvement.stddev(), 2)
            << " pp\n";
  return 0;
}

int cmd_landscape(const CliArgs& args) {
  const std::string graph_path = args.get("graph", "");
  QGNN_REQUIRE(!graph_path.empty(), "landscape requires --graph");
  const Graph g = load_graph(graph_path);
  const QaoaAnsatz ansatz(g);
  const int grid = args.get_int("grid", 64);
  const Landscape ls = evaluate_landscape(ansatz, grid, grid / 2);
  std::cout << g.describe() << "\n";
  std::cout << render_landscape(ls, grid) << "\n";
  const LandscapeStats stats = analyze_landscape(ls, 0.05 * ls.max_value());
  std::cout << "global max <C> = " << format_double(ls.max_value(), 4)
            << " | local maxima " << stats.local_maxima
            << " | good-start fraction "
            << format_double(stats.good_start_fraction, 3) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const qgnn::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::cerr << "usage: qgnn_tool <generate|train|predict|solve|evaluate> "
                 "[flags]\n(see the header comment of qgnn_tool.cpp)\n";
    return 2;
  }
  const std::string& command = args.positional()[0];
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "train") return cmd_train(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "landscape") return cmd_landscape(args);
    std::cerr << "unknown command: " << command << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
