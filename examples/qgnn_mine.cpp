// qgnn_mine: offline companion to the online hard-example mining loop
// (DESIGN.md §12). The serving binary runs the closed loop; this tool
// works on its artifacts after the fact.
//
// Commands:
//   qgnn_mine inspect --shard <file.qds>
//       Print one line per mined record: nodes, edges, degree, depth, and
//       the serving-time approximation ratio that got it mined.
//   qgnn_mine relabel --shard <file.qds> [--evals n] [--workers n]
//                     [--seed s] [--symmetrize]
//       Re-label a mined shard with the full-budget Adam optimizer and
//       commit <file>.labelled.qds atomically (resumable: an existing
//       valid output is reused).
//   qgnn_mine gate --candidate <model> --incumbent <model>
//                  --panel <file.qds> [--min-improvement x]
//       Score both models' predicted angles on the panel graphs with the
//       exact simulator and print the promotion verdict. Exit code 0 when
//       the candidate would be promoted, 2 when the incumbent stays.

#include <cstdio>
#include <string>
#include <vector>

#include "dataset/packed.hpp"
#include "gnn/model.hpp"
#include "mine/gate.hpp"
#include "mine/relabel.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace qgnn;

std::string require_flag(const CliArgs& args, const std::string& key) {
  const std::string value = args.get(key, "");
  if (value.empty()) {
    throw InvalidArgument("missing required --" + key + " <value>");
  }
  return value;
}

int cmd_inspect(const CliArgs& args) {
  const std::string shard = require_flag(args, "shard");
  const std::vector<DatasetEntry> entries = load_packed_dataset(shard);
  std::printf("%s: %zu record(s)\n", shard.c_str(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const DatasetEntry& e = entries[i];
    std::printf("  [%4zu] n=%2d m=%3zu degree=%2d depth=%d ar=%.4f\n", i,
                e.graph.num_nodes(), e.graph.edges().size(), e.degree,
                e.label.depth(), e.approximation_ratio);
  }
  return 0;
}

int cmd_relabel(const CliArgs& args) {
  const std::string shard = require_flag(args, "shard");
  mine::RelabelConfig config;
  {
    // The shard carries its own depth; read it off the first record so
    // the optimizer searches the right parameter space.
    const std::vector<DatasetEntry> peek = load_packed_dataset(shard);
    QGNN_REQUIRE(!peek.empty(), "shard is empty");
    config.depth = peek.front().label.depth();
  }
  config.optimizer_evaluations = args.get_int("evals", 500);
  config.workers = args.get_int("workers", 1);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.symmetrize_labels = args.get_bool("symmetrize", false);

  const std::vector<DatasetEntry> labelled =
      mine::relabel_shard(config, shard);
  double mean_ar = 0.0;
  for (const DatasetEntry& e : labelled) mean_ar += e.approximation_ratio;
  mean_ar /= static_cast<double>(labelled.size());
  std::printf("%s: %zu record(s) relabelled, mean AR %.4f -> %s\n",
              shard.c_str(), labelled.size(), mean_ar,
              mine::labelled_shard_path(shard).c_str());
  return 0;
}

int cmd_gate(const CliArgs& args) {
  const GnnModel candidate = GnnModel::load(require_flag(args, "candidate"));
  const GnnModel incumbent = GnnModel::load(require_flag(args, "incumbent"));
  const std::vector<DatasetEntry> panel =
      load_packed_dataset(require_flag(args, "panel"));
  mine::GateConfig config;
  config.min_improvement = args.get_double("min-improvement", 0.0);

  const mine::GateVerdict verdict =
      mine::evaluate_gate(candidate, incumbent, panel, config);
  std::printf("panel of %zu: candidate mean AR %.6f, incumbent %.6f -> %s\n",
              panel.size(), verdict.candidate_mean_ar,
              verdict.incumbent_mean_ar,
              verdict.promote ? "PROMOTE" : "KEEP INCUMBENT");
  return verdict.promote ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    QGNN_REQUIRE(!args.positional().empty(),
                 "usage: qgnn_mine <inspect|relabel|gate> [flags]");
    const std::string command = args.positional().front();
    if (command == "inspect") return cmd_inspect(args);
    if (command == "relabel") return cmd_relabel(args);
    if (command == "gate") return cmd_gate(args);
    throw InvalidArgument("unknown command '" + command +
                          "' (inspect, relabel, gate)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qgnn_mine: error: %s\n", e.what());
    return 1;
  }
}
