// qgnn_serve: warm-start inference server speaking newline-delimited JSON
// over stdin/stdout.
//
// Each input line is one request:
//   {"id": 1, "model": "default", "nodes": 5,
//    "edges": [[0,1],[1,2],[2,3],[3,4],[4,0]]}
// and each output line is the matching response:
//   {"id": 1, "ok": true, "model": "default", "generation": 1,
//    "cached": false, "batch_size": 3, "latency_us": 412.0,
//    "values": [0.41, -0.12, ...]}
// Malformed lines produce {"id": ..., "ok": false, "error": "..."} and the
// stream keeps going. Responses are flushed per line so the binary can sit
// behind a pipe.
//
// A line of {"cmd": "stats", "id": 99} returns the live ServeStats —
// request/cache counters plus the per-stage latency histograms (queue
// wait, batch formation, forward, cache lookup, batch size) — instead of
// a prediction.
//
// Usage:
//   qgnn_serve --models <dir>              load every *.txt / *.model file
//   qgnn_serve --demo                      register a fresh random model
//   qgnn_serve --demo --arch gat           ... with a specific architecture
// Options:
//   --default-model <name>   model used when a request omits "model"
//   --max-batch <n>          micro-batch size cap            (default 16)
//   --max-delay-us <n>       batching window in microseconds (default 500)
//   --cache <n>              LRU cache capacity, 0 disables  (default 4096)
//   --workers <n>            request pipeline width; >1 lets concurrent
//                            lines coalesce into one forward (default 4)
//   --trace-out <file>       record trace spans while serving and write a
//                            Chrome trace_event JSON file at EOF; open it
//                            in about://tracing or ui.perfetto.dev
// Final serving stats are printed to stderr at EOF.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "gnn/layers.hpp"
#include "gnn/model.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

std::string lowercase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

qgnn::GnnArch parse_arch(const std::string& name) {
  const std::string wanted = lowercase(name);
  for (const qgnn::GnnArch arch : qgnn::all_gnn_archs()) {
    if (lowercase(qgnn::to_string(arch)) == wanted) return arch;
  }
  if (wanted == "sage") return qgnn::GnnArch::kSAGE;
  throw qgnn::InvalidArgument("unknown --arch '" + name +
                              "' (try gcn, graphsage, gat, gin)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);
  try {
    serve::ServeConfig config;
    config.max_batch = args.get_int("max-batch", config.max_batch);
    config.max_queue_delay = std::chrono::microseconds(
        args.get_int("max-delay-us",
                     static_cast<int>(config.max_queue_delay.count())));
    config.cache_capacity = static_cast<std::size_t>(
        args.get_int("cache", static_cast<int>(config.cache_capacity)));
    config.default_model = args.get("default-model", config.default_model);

    serve::ServeHandle serve(config);
    if (args.has("models")) {
      const std::size_t n = serve.load_models(args.get("models", ""));
      std::fprintf(stderr, "qgnn_serve: loaded %zu model(s) from %s\n", n,
                   args.get("models", "").c_str());
    }
    if (args.has("demo") || !args.has("models")) {
      GnnModelConfig model_config;
      model_config.arch = parse_arch(args.get("arch", "gcn"));
      Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
      serve.register_model(config.default_model,
                           GnnModel(model_config, rng));
      std::fprintf(stderr,
                   "qgnn_serve: registered demo model '%s' (arch=%s)\n",
                   config.default_model.c_str(),
                   to_string(model_config.arch).c_str());
    }

    const std::string trace_out = args.get("trace-out", "");
    if (!trace_out.empty()) obs::TraceCollector::global().start();

    const int workers = args.get_int("workers", 4);
    const std::size_t handled =
        serve::run_ndjson_server(std::cin, std::cout, serve, workers);

    if (!trace_out.empty()) {
      obs::TraceCollector::global().stop();
      obs::TraceCollector::global().write_chrome_trace_file(trace_out);
      std::fprintf(stderr, "qgnn_serve: wrote %zu trace event(s) to %s\n",
                   obs::TraceCollector::global().event_count(),
                   trace_out.c_str());
    }

    const serve::ServeStats stats = serve.stats();
    std::fprintf(stderr,
                 "qgnn_serve: %zu line(s), %zu request(s), "
                 "%zu batch(es), mean batch %.2f, cache %zu/%zu hit/miss, "
                 "p50 %.0f us, p99 %.0f us, %.0f req/s\n",
                 handled, stats.requests, stats.batches,
                 stats.mean_batch_size, stats.cache_hits, stats.cache_misses,
                 stats.latency_us_p50, stats.latency_us_p99,
                 stats.requests_per_second);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "qgnn_serve: error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // e.g. an unwritable --trace-out path
    std::fprintf(stderr, "qgnn_serve: error: %s\n", e.what());
    return 1;
  }
}
