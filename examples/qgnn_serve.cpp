// qgnn_serve: warm-start inference server speaking newline-delimited JSON
// over stdin/stdout or TCP.
//
// Each input line is one request:
//   {"id": 1, "model": "default", "nodes": 5,
//    "edges": [[0,1],[1,2],[2,3],[3,4],[4,0]]}
// and each output line is the matching response:
//   {"id": 1, "ok": true, "model": "default", "generation": 1,
//    "cached": false, "batch_size": 3, "latency_us": 412.0,
//    "values": [0.41, -0.12, ...]}
// Malformed lines produce {"id": ..., "ok": false, "error": "..."} and the
// stream keeps going. Responses are flushed per line so the binary can sit
// behind a pipe. Control lines: {"cmd":"stats","id":99} returns live
// serving stats, {"cmd":"ping"} answers {"pong":true}. SIGINT/SIGTERM
// drain in-flight requests, flush --trace-out, and exit cleanly in every
// mode.
//
// Serving modes:
//   (default)            NDJSON over stdin/stdout
//   --listen <port>      NDJSON over TCP (port 0 = ephemeral; the bound
//                        port is printed to stderr as "listening on ...")
//   --listen <port> --shards <n>
//                        TCP front end routing to <n> shard worker
//                        processes (spawned from this binary) by
//                        consistent-hashing the canonical graph hash, so
//                        each shard's prediction cache stays hot and
//                        disjoint. The router answers {"cmd":"health"},
//                        {"cmd":"drain","shard":k} and
//                        {"cmd":"undrain","shard":k} in addition to the
//                        standard commands.
//
// Usage:
//   qgnn_serve --models <dir>              load every *.txt / *.model file
//   qgnn_serve --demo                      register a fresh random model
//   qgnn_serve --demo --arch gat           ... with a specific architecture
// Options:
//   --default-model <name>   model used when a request omits "model"
//   --max-batch <n>          micro-batch size cap            (default 16)
//   --max-delay-us <n>       batching window in microseconds (default 500)
//   --cache <n>              LRU cache capacity, 0 disables  (default 4096)
//   --workers <n>            request pipeline width; >1 lets concurrent
//                            lines coalesce into one forward (default 4)
//   --slo-ms <n>             queue-wait p99 target; breaches shed load
//                            (TCP modes; 0 = no shedding, the default)
//   --shed-policy <p>        reject (default) or degrade (answer with
//                            depth-1 fixed angles instead of rejecting)
//   --max-conns <n>          open TCP connection cap         (default 256)
//   --trace-out <file>       record trace spans while serving and write a
//                            Chrome trace_event JSON file at exit; open it
//                            in about://tracing or ui.perfetto.dev
//   --verify-ar              score every answer against the exact simulator
//                            (implied by --mine with an AR threshold)
// Online hard-example mining (DESIGN.md §12) — closed loop that harvests
// low-quality / novel production requests, re-labels them with the full
// optimizer budget, fine-tunes a candidate, and hot-swaps it in when it
// beats the incumbent on a held-out panel:
//   --mine                   enable the mining loop
//   --mine-ar-threshold <x>  mine requests whose verified AR is below x
//   --mine-novel             also mine never-seen graph structures
//   --mine-dir <dir>         shard/checkpoint directory   (default mined;
//                            router mode appends /shard_<k> per worker)
//   --mine-capacity <n>      buffer ring capacity         (default 1024)
//   --mine-min-spill <n>     samples per mining cycle     (default 8)
//   --mine-epochs <n>        fine-tune epochs per cycle   (default 30)
//   --mine-evals <n>         relabel optimizer budget     (default 500)
//   --mine-interval-ms <n>   mining loop poll cadence     (default 500)
//   --mine-seed <s>          mining determinism seed
//   --mine-panel-fraction <f> held-out gate panel fraction (default 0.25)
// Final serving stats are printed to stderr at exit.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "gnn/layers.hpp"
#include "gnn/model.hpp"
#include "mine/serve_hook.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/shard_worker.hpp"
#include "serve/tcp_service.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

std::string lowercase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

qgnn::GnnArch parse_arch(const std::string& name) {
  const std::string wanted = lowercase(name);
  for (const qgnn::GnnArch arch : qgnn::all_gnn_archs()) {
    if (lowercase(qgnn::to_string(arch)) == wanted) return arch;
  }
  if (wanted == "sage") return qgnn::GnnArch::kSAGE;
  throw qgnn::InvalidArgument("unknown --arch '" + name +
                              "' (try gcn, graphsage, gat, gin)");
}

qgnn::serve::SloConfig parse_slo(const qgnn::CliArgs& args) {
  qgnn::serve::SloConfig slo;
  slo.slo_us = args.get_double("slo-ms", 0.0) * 1000.0;
  const std::string policy = args.get("shed-policy", "reject");
  if (policy == "degrade") {
    slo.policy = qgnn::serve::ShedPolicy::kDegrade;
  } else if (policy == "reject") {
    slo.policy = qgnn::serve::ShedPolicy::kReject;
  } else {
    throw qgnn::InvalidArgument("unknown --shed-policy '" + policy +
                                "' (reject or degrade)");
  }
  return slo;
}

/// Block until SIGINT/SIGTERM.
void wait_for_shutdown_signal() {
  qgnn::net::Fd watch(qgnn::net::install_shutdown_signal_pipe());
  while (!qgnn::net::shutdown_signal_received()) {
    qgnn::net::wait_readable(watch, 200);
  }
  watch.release();  // the fd belongs to the signal machinery, keep it open
}

void print_final_stats(const qgnn::serve::ServeStats& stats,
                       std::size_t handled) {
  std::fprintf(stderr,
               "qgnn_serve: %zu line(s), %zu request(s), "
               "%zu batch(es), mean batch %.2f, cache %zu/%zu hit/miss, "
               "p50 %.0f us, p99 %.0f us, %.0f req/s\n",
               handled, stats.requests, stats.batches,
               stats.mean_batch_size, stats.cache_hits, stats.cache_misses,
               stats.latency_us_p50, stats.latency_us_p99,
               stats.requests_per_second);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qgnn;
  // Shard workers must know how to interpret --mine* flags before they
  // take over (serve cannot link mine, so the hook is installed here).
  mine::install_shard_worker_mining();
  // Re-exec'd shard workers take over here and never return.
  serve::maybe_run_shard_worker(argc, argv);

  const CliArgs args(argc, argv);
  try {
    const std::string trace_out = args.get("trace-out", "");
    if (!trace_out.empty()) obs::TraceCollector::global().start();
    auto flush_trace = [&trace_out] {
      if (trace_out.empty()) return;
      obs::TraceCollector::global().stop();
      obs::TraceCollector::global().write_chrome_trace_file(trace_out);
      std::fprintf(stderr, "qgnn_serve: wrote %zu trace event(s) to %s\n",
                   obs::TraceCollector::global().event_count(),
                   trace_out.c_str());
    };

    const int shards = args.get_int("shards", 0);
    const bool tcp_mode = args.has("listen");

    if (shards > 0) {
      QGNN_REQUIRE(tcp_mode, "--shards requires --listen");
      // Router mode: spawn the shard workers, then front them.
      serve::ShardWorkerOptions worker;
      worker.models_dir = args.get("models", "");
      worker.demo_seed =
          static_cast<std::uint64_t>(args.get_int("seed", 42));
      worker.arch = args.get("arch", "gcn");
      worker.default_model = args.get("default-model", "default");
      worker.max_batch = args.get_int("max-batch", 16);
      worker.max_delay_us = args.get_int("max-delay-us", 500);
      worker.cache_capacity =
          static_cast<std::size_t>(args.get_int("cache", 4096));
      worker.submit_workers = args.get_int("workers", 4);
      worker.mine = args.get_bool("mine", false);
      worker.mine_ar_threshold = args.get_double("mine-ar-threshold", 0.0);
      worker.mine_novel = args.get_bool("mine-novel", false);
      worker.mine_capacity =
          static_cast<std::size_t>(args.get_int("mine-capacity", 1024));
      worker.mine_min_spill =
          static_cast<std::size_t>(args.get_int("mine-min-spill", 8));
      worker.mine_epochs = args.get_int("mine-epochs", 30);
      worker.mine_evals = args.get_int("mine-evals", 500);
      worker.mine_interval_ms = args.get_int("mine-interval-ms", 500);
      worker.mine_seed =
          static_cast<std::uint64_t>(args.get_int("mine-seed", 42));
      worker.mine_panel_fraction =
          args.get_double("mine-panel-fraction", 0.25);
      // Low-AR mining needs the exact-simulator score on every answer.
      worker.verify_ar =
          args.get_bool("verify-ar", false) ||
          (worker.mine && worker.mine_ar_threshold > 0.0);
      const std::string mine_dir = args.get("mine-dir", "mined");

      std::vector<serve::ShardProcess> procs;
      std::vector<serve::ShardAddress> addrs;
      procs.reserve(static_cast<std::size_t>(shards));
      for (int i = 0; i < shards; ++i) {
        // Each shard mines into its own directory: the workers are
        // separate processes and must not contend for shard sequence
        // numbers or checkpoint files.
        worker.mine_dir = mine_dir + "/shard_" + std::to_string(i);
        procs.push_back(serve::ShardProcess::spawn(worker));
        addrs.push_back(serve::ShardAddress{"127.0.0.1",
                                            procs.back().port()});
        std::fprintf(stderr, "qgnn_serve: shard %d on port %u (pid %d)\n",
                     i, procs.back().port(),
                     static_cast<int>(procs.back().pid()));
      }

      serve::RouterConfig config;
      config.net.host = args.get("host", "127.0.0.1");
      config.net.port =
          static_cast<std::uint16_t>(args.get_int("listen", 0));
      config.net.max_connections = args.get_int("max-conns", 256);
      config.slo = parse_slo(args);
      serve::ShardRouter router(config, addrs);
      router.start();
      std::fprintf(stderr,
                   "qgnn_serve: routing %d shard(s), listening on %s:%u\n",
                   shards, config.net.host.c_str(), router.port());

      wait_for_shutdown_signal();
      std::fprintf(stderr, "qgnn_serve: draining...\n");
      router.graceful_shutdown(std::chrono::milliseconds(5000));
      const auto slo = router.slo_counters();
      const auto net = router.net_stats();
      std::fprintf(stderr,
                   "qgnn_serve: %llu line(s), %llu admitted, %llu shed, "
                   "%llu degraded\n",
                   static_cast<unsigned long long>(net.lines_in),
                   static_cast<unsigned long long>(slo.admitted),
                   static_cast<unsigned long long>(slo.shed),
                   static_cast<unsigned long long>(slo.degraded));
      for (auto& p : procs) p.terminate();
      flush_trace();
      return 0;
    }

    // Single-process modes share one in-process handle.
    serve::ServeConfig config;
    config.max_batch = args.get_int("max-batch", config.max_batch);
    config.max_queue_delay = std::chrono::microseconds(
        args.get_int("max-delay-us",
                     static_cast<int>(config.max_queue_delay.count())));
    config.cache_capacity = static_cast<std::size_t>(
        args.get_int("cache", static_cast<int>(config.cache_capacity)));
    config.default_model = args.get("default-model", config.default_model);
    config.submit_workers = args.get_int("workers", config.submit_workers);
    config.verify_ar =
        args.get_bool("verify-ar", false) ||
        (args.get_bool("mine", false) &&
         args.get_double("mine-ar-threshold", 0.0) > 0.0);

    serve::ServeHandle serve(config);
    if (args.has("models")) {
      const std::size_t n = serve.load_models(args.get("models", ""));
      std::fprintf(stderr, "qgnn_serve: loaded %zu model(s) from %s\n", n,
                   args.get("models", "").c_str());
    }
    if (args.has("demo") || !args.has("models")) {
      GnnModelConfig model_config;
      model_config.arch = parse_arch(args.get("arch", "gcn"));
      Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
      serve.register_model(config.default_model,
                           GnnModel(model_config, rng));
      std::fprintf(stderr,
                   "qgnn_serve: registered demo model '%s' (arch=%s)\n",
                   config.default_model.c_str(),
                   to_string(model_config.arch).c_str());
    }

    // Attach the mining loop (if requested) before any request is served;
    // the handle keeps running while cycles fine-tune and hot-swap.
    const std::shared_ptr<mine::Miner> miner =
        mine::make_miner_from_cli(serve, args);
    if (miner) {
      std::fprintf(stderr,
                   "qgnn_serve: mining to %s (ar<%.3f%s, min spill %zu)\n",
                   miner->config().dir.c_str(),
                   miner->config().buffer.ar_threshold,
                   miner->config().buffer.mine_novel ? ", novel" : "",
                   miner->config().min_spill);
    }

    std::size_t handled = 0;
    if (tcp_mode) {
      serve::TcpServiceConfig service_config;
      service_config.net.host = args.get("host", "127.0.0.1");
      service_config.net.port =
          static_cast<std::uint16_t>(args.get_int("listen", 0));
      service_config.net.max_connections = args.get_int("max-conns", 256);
      service_config.slo = parse_slo(args);
      serve::NdjsonTcpService service(serve, service_config);
      service.start();
      std::fprintf(stderr, "qgnn_serve: listening on %s:%u\n",
                   service_config.net.host.c_str(), service.port());

      wait_for_shutdown_signal();
      std::fprintf(stderr, "qgnn_serve: draining...\n");
      service.graceful_shutdown(std::chrono::milliseconds(5000));
      serve.drain_submits();
      handled = service.net_stats().lines_in;
    } else {
      // stdin mode: install the signal handlers so SIGINT/SIGTERM
      // interrupt the blocking read (no SA_RESTART) and the loop drains
      // what it already accepted instead of dying mid-request.
      net::install_shutdown_signal_pipe();
      const int workers = args.get_int("workers", 4);
      handled = serve::run_ndjson_server(std::cin, std::cout, serve,
                                         workers);
    }

    flush_trace();
    print_final_stats(serve.stats(), handled);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "qgnn_serve: error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // e.g. an unwritable --trace-out path
    std::fprintf(stderr, "qgnn_serve: error: %s\n", e.what());
    return 1;
  }
}
