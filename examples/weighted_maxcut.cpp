// Weighted Max-Cut (the paper's SS7 future-work item) through the whole
// stack: weighted graphs flow through the simulator, the cost Hamiltonian,
// QAOA optimization, and GNN-based warm starts trained on weighted
// instances.
//
// Run:  ./weighted_maxcut [--instances N] [--seed S]

#include <iostream>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace qgnn;

/// Weighted counterpart of the dataset generator: regular topology with
/// U[0.5, 1.5] edge weights.
std::vector<DatasetEntry> weighted_dataset(int count, std::uint64_t seed) {
  Rng master(seed);
  Rng graph_rng = master.child();
  Rng init_rng = master.child();
  Rng sample_rng = master.child();
  RandomInitializer init{init_rng};
  QaoaRunConfig run;
  run.max_evaluations = 150;
  run.sample_shots = 0;

  std::vector<DatasetEntry> entries;
  while (static_cast<int>(entries.size()) < count) {
    const int n = graph_rng.uniform_int(4, 12);
    const int d = (n % 2 == 0) ? 3 : 4;
    if (!regular_graph_exists(n, d)) continue;
    const Graph g = with_random_weights(random_regular_graph(n, d, graph_rng),
                                        0.5, 1.5, graph_rng);
    const QaoaResult r = run_qaoa(g, init, run, sample_rng);
    DatasetEntry e;
    e.graph = g;
    e.label = canonicalize_params(r.best_params);
    e.expectation = r.best_expectation;
    e.optimum = r.optimum;
    e.approximation_ratio = r.best_ar;
    e.degree = d;
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int instances = args.get_int("instances", 150);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 13));

  std::cout << "generating " << instances
            << " weighted regular instances (weights ~ U[0.5, 1.5])...\n";
  auto entries = weighted_dataset(instances, seed);

  auto [train, test] = train_test_split(std::move(entries), 20, seed + 1);
  std::cout << "train " << train.size() << " / test " << test.size() << "\n";

  GnnModelConfig model_config;
  model_config.arch = GnnArch::kGIN;
  Rng rng(seed + 2);
  GnnModel model(model_config, rng);
  TrainerConfig trainer;
  trainer.epochs = 60;
  trainer.validation_fraction = 0.1;
  PreparedData data;
  data.train = std::move(train);
  data.test = std::move(test);
  auto samples = to_train_samples(data.train, model_config.features);
  const TrainReport report = train_gnn(model, std::move(samples), trainer,
                                       rng);
  std::cout << "trained GIN, final loss "
            << format_double(report.final_train_loss, 4) << "\n\n";

  const auto ar_random = random_baseline_ar(data.test, 1, seed + 3);
  const auto ar_gnn = gnn_ar_series(model, data.test);
  RunningStats random_stats;
  RunningStats gnn_stats;
  RunningStats improvement;
  for (std::size_t i = 0; i < ar_gnn.size(); ++i) {
    random_stats.add(ar_random[i]);
    gnn_stats.add(ar_gnn[i]);
    improvement.add((ar_gnn[i] - ar_random[i]) * 100.0);
  }

  Table table({"initializer", "mean AR", "std AR"});
  table.add_row({"random", format_double(random_stats.mean(), 3),
                 format_double(random_stats.stddev(), 3)});
  table.add_row({"gnn:GIN", format_double(gnn_stats.mean(), 3),
                 format_double(gnn_stats.stddev(), 3)});
  table.print(std::cout);
  std::cout << "mean improvement: "
            << format_mean_std(improvement.mean(), improvement.stddev(), 2)
            << " pp on weighted graphs\n";
  std::cout << "\nthe paper (SS7) reports its unweighted-trained models "
               "perform inconsistently on weighted graphs; this example "
               "runs the whole stack on weighted instances so that "
               "limitation can be measured (expect a small or even "
               "negative improvement at this scale) and attacked with "
               "larger weighted training sets.\n";
  return 0;
}
