// Dataset factory CLI: generate QAOA training labels with the batched
// labelling engine and write them as one packed binary file
// (dataset/packed.hpp), with optional checkpoint/resume for long runs.
//
// Generate:   qgnn_dataset --out data.qds --count 600 --seed 42
// Resumable:  qgnn_dataset --out data.qds --checkpoint-dir ckpt \
//                 --checkpoint-every 50 [--resume]
// Inspect:    qgnn_dataset --inspect data.qds
//
// Output bytes depend only on the generation flags (count/nodes/degree/
// depth/evals/optimizer/symmetrize/seed) — never on --threads, --lanes,
// --checkpoint-every, or whether the run was interrupted and resumed.
//
// Exit codes: 0 success, 1 usage/config error, 2 I/O or data error,
// 3 stopped early via --stop-after-shards (resume to continue).

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "dataset/factory.hpp"
#include "dataset/packed.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

void print_usage(const char* prog) {
  std::cout
      << "usage: " << prog << " --out FILE [options]\n"
      << "       " << prog << " --inspect FILE\n\n"
      << "generation:\n"
      << "  --count N            instances to label (default 600)\n"
      << "  --min-nodes N        smallest graph (default 2)\n"
      << "  --max-nodes N        largest graph (default 15)\n"
      << "  --depth P            QAOA depth (default 1)\n"
      << "  --evals N            optimizer evaluations per graph (500)\n"
      << "  --optimizer NAME     nelder-mead | adam (default nelder-mead)\n"
      << "  --symmetrize         canonicalize labels into the symmetric cell\n"
      << "  --seed S             master seed (default 42)\n\n"
      << "scheduling (never changes the output bytes):\n"
      << "  --threads N          worker threads (default: hardware)\n"
      << "  --lanes K            statevector lanes per batch (default auto)\n"
      << "  --checkpoint-dir D   directory for shards + resume manifest\n"
      << "  --checkpoint-every N records per committed shard (default 50\n"
      << "                       when --checkpoint-dir is set)\n"
      << "  --resume             continue from the manifest in the dir\n"
      << "  --stop-after-shards N  commit N shards then exit 3 (CI hook)\n";
}

int inspect(const std::string& path) {
  qgnn::PackedDatasetReader reader(path);
  const qgnn::PackedDatasetInfo& info = reader.info();
  std::printf("%s: packed dataset v%u\n", path.c_str(), info.version);
  std::printf("  records      %llu\n",
              static_cast<unsigned long long>(info.num_records));
  std::printf("  depth        %d\n", info.depth);
  std::printf("  file bytes   %llu\n",
              static_cast<unsigned long long>(info.file_bytes));
  std::printf("  index crc32  %08x\n", info.index_crc32);
  std::printf("  records crc32 %08x\n", info.records_crc32);
  if (reader.size() == 0) return 0;

  qgnn::RunningStats ar;
  qgnn::RunningStats gamma;
  qgnn::RunningStats beta;
  qgnn::FrequencyTable sizes;
  for (std::size_t i = 0; i < reader.size(); ++i) {
    const qgnn::DatasetEntry e = reader.read(i);
    ar.add(e.approximation_ratio);
    if (!e.label.gammas.empty()) gamma.add(e.label.gammas[0]);
    if (!e.label.betas.empty()) beta.add(e.label.betas[0]);
    sizes.add(e.graph.num_nodes());
  }

  qgnn::Table table({"statistic", "mean", "std", "min", "max"});
  auto row = [&table](const std::string& name,
                      const qgnn::RunningStats& s) {
    table.add_row({name, qgnn::format_double(s.mean(), 3),
                   qgnn::format_double(s.stddev(), 3),
                   qgnn::format_double(s.min(), 3),
                   qgnn::format_double(s.max(), 3)});
  };
  row("label approximation ratio", ar);
  row("label gamma", gamma);
  row("label beta", beta);
  std::printf("\n");
  table.print(std::cout);

  std::printf("\ngraph sizes: ");
  for (const auto& [k, c] : sizes.counts()) {
    std::printf("%d:%llu ", k, static_cast<unsigned long long>(c));
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);

  if (args.has("help")) {
    print_usage(argv[0]);
    return 0;
  }

  try {
    if (args.has("inspect")) {
      return inspect(args.get("inspect", ""));
    }

    const std::string out = args.get("out", "");
    if (out.empty()) {
      print_usage(argv[0]);
      return 1;
    }

    DatasetGenConfig config;
    config.num_instances = args.get_int("count", config.num_instances);
    config.min_nodes = args.get_int("min-nodes", config.min_nodes);
    config.max_nodes = args.get_int("max-nodes", config.max_nodes);
    config.depth = args.get_int("depth", config.depth);
    config.optimizer_evaluations =
        args.get_int("evals", config.optimizer_evaluations);
    config.symmetrize_labels =
        args.get_bool("symmetrize", config.symmetrize_labels);
    config.seed =
        static_cast<std::uint64_t>(args.get_int("seed", 42));
    const std::string opt = args.get("optimizer", "nelder-mead");
    if (opt == "nelder-mead") {
      config.optimizer = QaoaOptimizer::kNelderMead;
    } else if (opt == "adam") {
      config.optimizer = QaoaOptimizer::kAdam;
    } else {
      std::cerr << "unknown --optimizer '" << opt << "'\n";
      return 1;
    }

    FactoryConfig factory;
    factory.lanes = args.get_int("lanes", 0);
    factory.checkpoint_dir = args.get("checkpoint-dir", "");
    factory.checkpoint_every = args.get_int(
        "checkpoint-every", factory.checkpoint_dir.empty() ? 0 : 50);
    factory.resume = args.get_bool("resume", false);
    factory.stop_after_shards = args.get_int("stop-after-shards", 0);

    const int threads = args.get_int("threads", 0);
    if (threads > 0) ThreadPool::set_global_threads(threads);

    int last_percent = -1;
    const bool quiet = args.get_bool("quiet", false);
    ProgressFn progress = [&](int done, int total) {
      const int percent = total > 0 ? done * 100 / total : 100;
      if (!quiet && percent != last_percent) {
        last_percent = percent;
        std::cerr << "\rlabelled " << done << "/" << total << " (" << percent
                  << "%)" << std::flush;
      }
    };

    const bool finished = run_dataset_factory(config, factory, out, progress);
    if (!quiet && last_percent >= 0) std::cerr << "\n";
    if (!finished) {
      std::cerr << "stopped after " << factory.stop_after_shards
                << " shard(s); rerun with --resume to continue\n";
      return 3;
    }
    std::cerr << "wrote " << out << "\n";
    return 0;
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
