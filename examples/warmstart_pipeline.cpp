// The paper's Figure-1 framework end to end:
//
//   1. generate a synthetic dataset of regular graphs labelled by
//      QAOA-optimized (gamma, beta),
//   2. improve label quality (fixed-angle audit + selective data pruning),
//   3. train a GNN to predict (gamma, beta) from the graph,
//   4. warm-start QAOA on unseen graphs with the prediction and compare
//      against random initialization - both at fixed parameters and in
//      convergence speed when the optimizer runs.
//
// Run:  ./warmstart_pipeline [--arch GCN|GAT|GIN|sage] [--instances N]

#include <iostream>

#include "core/pipeline.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);
  const GnnArch arch = gnn_arch_from_string(args.get("arch", "GCN"));

  PipelineConfig config;
  config.dataset.num_instances = args.get_int("instances", 300);
  config.dataset.min_nodes = 4;
  config.dataset.max_nodes = 12;
  config.dataset.optimizer_evaluations = 150;
  config.dataset.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  config.test_count = args.get_int("test-count", 30);
  config.trainer.epochs = args.get_int("epochs", 60);
  config.trainer.validation_fraction = 0.1;
  config.seed = config.dataset.seed + 1;

  std::cout << "step 1-2: generating + cleaning dataset ("
            << config.dataset.num_instances << " instances)...\n";
  const PreparedData data = prepare_data(config);
  std::cout << "  train " << data.train.size() << " / test "
            << data.test.size() << " graphs; fixed-angle audit improved "
            << data.audit_report.improved << " labels; SDP pruned "
            << data.sdp_report.pruned << "\n";

  std::cout << "step 3: training " << to_string(arch) << "...\n";
  const auto [model, train_report] = train_arch(arch, data, config);
  std::cout << "  " << model->parameter_count() << " parameters, final loss "
            << format_double(train_report.final_train_loss, 4)
            << " (val " << format_double(train_report.final_validation_loss, 4)
            << "), " << train_report.lr_reductions << " LR reductions\n";

  std::cout << "step 4a: fixed-parameter evaluation on unseen graphs...\n";
  const auto ar_random = random_baseline_ar(data.test, 1, config.seed);
  const auto ar_gnn = gnn_ar_series(*model, data.test);
  RunningStats improvement;
  for (std::size_t i = 0; i < ar_gnn.size(); ++i) {
    improvement.add((ar_gnn[i] - ar_random[i]) * 100.0);
  }
  std::cout << "  mean AR improvement over random init: "
            << format_mean_std(improvement.mean(), improvement.stddev(), 2)
            << " pp\n";

  std::cout << "step 4b: convergence comparison (optimizer on, target AR "
               "0.85 of optimum)...\n";
  const ConvergenceStats conv =
      convergence_comparison(model, data.test, 0.85, 300, config.seed + 7);
  Table table({"initializer", "graphs reaching target",
               "mean circuit evaluations to target"});
  table.add_row({"random",
                 std::to_string(conv.reached_random) + "/" +
                     std::to_string(conv.total),
                 format_double(conv.mean_evals_random, 1)});
  table.add_row({"gnn:" + to_string(arch),
                 std::to_string(conv.reached_gnn) + "/" +
                     std::to_string(conv.total),
                 format_double(conv.mean_evals_gnn, 1)});
  table.print(std::cout);

  std::cout << "\nfewer evaluations = less quantum hardware time: the "
               "classical GNN absorbs the search cost (the paper's "
               "motivation).\n";
  return 0;
}
