// Generate, persist, reload, and summarize a labelled dataset - the
// offline data workflow behind the paper's SS3.1 (one text file per graph
// plus a manifest with labels and metadata).
//
// Run:  ./dataset_inspect [--dir PATH] [--instances N]

#include <iostream>

#include "dataset/pruning.hpp"
#include "dataset/storage.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);
  const std::string dir = args.get("dir", "/tmp/qgnn_dataset_demo");

  DatasetGenConfig config;
  config.num_instances = args.get_int("instances", 100);
  config.min_nodes = 3;
  config.max_nodes = 12;
  config.optimizer_evaluations = 100;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::cout << "generating " << config.num_instances
            << " labelled instances...\n";
  auto entries = generate_dataset(config);

  const auto audit = fixed_angle_label_audit(entries, 1);
  std::cout << "fixed-angle audit: improved " << audit.improved << "/"
            << audit.covered << " labels\n";

  save_dataset(dir, entries);
  std::cout << "saved to " << dir << " (manifest.csv + graphs/*.txt)\n";

  const auto loaded = load_dataset(dir);
  std::cout << "reloaded " << loaded.size() << " entries\n\n";

  RunningStats ar;
  RunningStats gamma;
  RunningStats beta;
  FrequencyTable sizes;
  for (const DatasetEntry& e : loaded) {
    ar.add(e.approximation_ratio);
    gamma.add(e.label.gammas[0]);
    beta.add(e.label.betas[0]);
    sizes.add(e.graph.num_nodes());
  }

  Table table({"statistic", "mean", "std", "min", "max"});
  auto row = [&table](const std::string& name, const RunningStats& s) {
    table.add_row({name, format_double(s.mean(), 3),
                   format_double(s.stddev(), 3), format_double(s.min(), 3),
                   format_double(s.max(), 3)});
  };
  row("label approximation ratio", ar);
  row("label gamma", gamma);
  row("label beta", beta);
  table.print(std::cout);

  std::cout << "\ngraph sizes: ";
  for (const auto& [k, c] : sizes.counts()) {
    std::cout << k << ":" << c << " ";
  }
  std::cout << "\n";
  return 0;
}
