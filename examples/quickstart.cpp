// Quickstart: solve one Max-Cut instance with QAOA.
//
//   build a graph -> pick initial (gamma, beta) -> optimize the expected
//   cut with Nelder-Mead -> sample a concrete cut -> compare to the exact
//   optimum.
//
// Run:  ./quickstart [--nodes N] [--degree D] [--seed S]

#include <iostream>

#include "graph/generators.hpp"
#include "qaoa/qaoa.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);
  const int n = args.get_int("nodes", 10);
  const int d = args.get_int("degree", 3);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  // 1. A random 3-regular Max-Cut instance.
  const Graph g = random_regular_graph(n, d, rng);
  std::cout << "instance: " << g.describe() << "\n";

  // 2. Exact optimum for reference (the simulator keeps n small anyway).
  const Cut optimum = max_cut_brute_force(g);
  std::cout << "exact max cut: " << optimum.value << "\n\n";

  // 3. QAOA warm-started with the fixed-angle conjecture.
  FixedAngleInitializer init;
  QaoaRunConfig config;
  config.depth = 1;
  config.optimizer = QaoaOptimizer::kNelderMead;
  config.max_evaluations = 200;
  config.sample_shots = 256;
  const QaoaResult result = run_qaoa(g, init, config, rng);

  std::cout << "initial params: gamma=" << result.initial_params.gammas[0]
            << " beta=" << result.initial_params.betas[0] << "\n";
  std::cout << "initial <C> = " << result.initial_expectation
            << " (AR " << format_double(result.initial_ar, 3) << ")\n";
  std::cout << "after " << result.evaluations
            << " circuit evaluations: <C> = " << result.best_expectation
            << " (AR " << format_double(result.best_ar, 3) << ")\n";
  std::cout << "best sampled cut: value " << result.sampled_cut.value
            << " / " << optimum.value << " with assignment ";
  for (int v = 0; v < n; ++v) {
    std::cout << ((result.sampled_cut.assignment >> v) & 1);
  }
  std::cout << " (bit v = side of node v)\n";
  return 0;
}
