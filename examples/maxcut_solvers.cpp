// Compare every Max-Cut solver in the library on a set of instances:
// exact brute force, greedy, multi-start local search, random cuts, and
// QAOA (fixed angles / optimized). Shows where the quantum heuristic sits
// relative to the classical ones at depth 1.
//
// Run:  ./maxcut_solvers [--graphs N] [--nodes N] [--seed S]

#include <iostream>

#include "graph/generators.hpp"
#include "maxcut/maxcut.hpp"
#include "qaoa/qaoa.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);
  const int num_graphs = args.get_int("graphs", 8);
  const int n = args.get_int("nodes", 12);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 21)));

  RunningStats greedy_ar;
  RunningStats local_ar;
  RunningStats spectral_ar;
  RunningStats annealing_ar;
  RunningStats random_ar;
  RunningStats qaoa_fixed_ar;
  RunningStats qaoa_opt_ar;
  RunningStats qaoa_sampled_ar;

  QaoaRunConfig fixed_config;
  fixed_config.optimizer = QaoaOptimizer::kNone;
  QaoaRunConfig opt_config;
  opt_config.max_evaluations = 200;
  opt_config.sample_shots = 256;

  for (int i = 0; i < num_graphs; ++i) {
    const int d = 3 + 2 * (i % 3);  // degrees 3, 5, 7
    const Graph g = random_regular_graph(n, d, rng);
    const double opt = max_cut_brute_force(g).value;

    greedy_ar.add(max_cut_greedy(g).value / opt);
    local_ar.add(max_cut_local_search_multistart(g, 10, rng).value / opt);
    spectral_ar.add(max_cut_spectral_rounding(g, 10, rng).value / opt);
    annealing_ar.add(max_cut_simulated_annealing(g, 150, rng).value / opt);
    random_ar.add(random_cut_expectation(g) / opt);

    FixedAngleInitializer fixed;
    qaoa_fixed_ar.add(run_qaoa(g, fixed, fixed_config, rng).initial_ar);
    FixedAngleInitializer warm;
    const QaoaResult r = run_qaoa(g, warm, opt_config, rng);
    qaoa_opt_ar.add(r.best_ar);
    qaoa_sampled_ar.add(r.sampled_cut.value / opt);
  }

  std::cout << "Max-Cut solver comparison over " << num_graphs
            << " regular graphs (n=" << n << ", degrees 3/5/7)\n\n";
  Table table({"solver", "mean AR", "min AR", "max AR"});
  auto row = [&table](const std::string& name, const RunningStats& s) {
    table.add_row({name, format_double(s.mean(), 3),
                   format_double(s.min(), 3), format_double(s.max(), 3)});
  };
  row("random cut (expectation)", random_ar);
  row("greedy", greedy_ar);
  row("local search (10 starts)", local_ar);
  row("spectral rounding (10 hyperplanes)", spectral_ar);
  row("simulated annealing (150 sweeps)", annealing_ar);
  row("QAOA p=1 fixed angles, <C>", qaoa_fixed_ar);
  row("QAOA p=1 optimized, <C>", qaoa_opt_ar);
  row("QAOA p=1 optimized, best of 256 shots", qaoa_sampled_ar);
  table.print(std::cout);

  std::cout << "\nreading: depth-1 QAOA's expected cut sits between the "
               "random baseline and classical local search, but its sampled "
               "best-of-shots is competitive - and the GNN warm start "
               "removes most of its optimization cost.\n";
  return 0;
}
