// Beyond Max-Cut: the same QAOA machinery on a different NP-hard problem
// (the generalization the paper's conclusion points at). Number
// partitioning: split a set of numbers into two groups with minimal sum
// difference, encoded as an Ising ground-state problem
//   E(s) = (sum_i w_i s_i)^2.
//
// Run:  ./number_partitioning [--count N] [--seed S]

#include <cmath>
#include <iostream>

#include "ising/ising.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);
  const int count = args.get_int("count", 8);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 19)));

  // Random positive integers to partition.
  std::vector<double> weights;
  double total = 0.0;
  for (int i = 0; i < count; ++i) {
    weights.push_back(static_cast<double>(rng.uniform_int(1, 9)));
    total += weights.back();
  }
  std::cout << "numbers:";
  for (double w : weights) std::cout << ' ' << w;
  std::cout << "  (total " << total << ")\n";

  const IsingModel model = number_partitioning_ising(weights);
  std::cout << model.describe() << "\n";
  const auto gs = model.ground_state();
  std::cout << "exact minimal imbalance: " << std::sqrt(gs.energy)
            << " (ground energy " << gs.energy << ")\n\n";

  const IsingQaoaResult r = solve_ising_qaoa(model, /*depth=*/1,
                                             /*max_evaluations=*/250,
                                             /*shots=*/512, rng);
  std::cout << "QAOA (p=1, " << r.evaluations
            << " circuit evaluations): best sampled energy " << r.best_energy
            << " -> imbalance " << std::sqrt(std::max(0.0, r.best_energy))
            << "\n";

  Table table({"side A", "side B"});
  std::string a;
  std::string b;
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (int i = 0; i < count; ++i) {
    const bool side = (r.best_configuration >> i) & 1;
    std::string& target = side ? b : a;
    (side ? sum_b : sum_a) += weights[static_cast<std::size_t>(i)];
    if (!target.empty()) target += " + ";
    target += format_double(weights[static_cast<std::size_t>(i)], 0);
  }
  table.add_row({a + " = " + format_double(sum_a, 0),
                 b + " = " + format_double(sum_b, 0)});
  table.print(std::cout);

  std::cout << "\nthe identical warm-start machinery (fixed angles, GNN "
               "prediction) plugs into DiagonalQaoa for any Ising/QUBO "
               "instance.\n";
  return 0;
}
