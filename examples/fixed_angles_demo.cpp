// The fixed-angle conjecture in practice (Wurtz & Lykov): universal
// near-optimal p=1 angles per regular degree, checked against the closed
// form on triangle-free graphs and against full optimization on graphs
// with triangles.
//
// Run:  ./fixed_angles_demo

#include <iostream>

#include "graph/generators.hpp"
#include "qaoa/fixed_angles.hpp"
#include "qaoa/optimize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qgnn;
  const CliArgs args(argc, argv);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  std::cout << "p=1 fixed angles per regular degree "
               "(gamma* = atan(1/sqrt(d-1)), beta* = pi/8):\n\n";
  Table angles_table({"degree", "gamma*", "beta*",
                      "closed-form cut fraction"});
  for (int d = 1; d <= 14; ++d) {
    const auto angles = fixed_angles(d, 1);
    angles_table.add_row({std::to_string(d),
                          format_double(angles->gammas[0], 4),
                          format_double(angles->betas[0], 4),
                          format_double(p1_triangle_free_cut_fraction(d), 4)});
  }
  angles_table.print(std::cout);

  std::cout << "\nvalidation on random regular graphs (fixed angles vs "
               "grid-searched optimum of the same instance):\n\n";
  Table check({"graph", "<C>/m fixed", "<C>/m optimized", "gap"});
  for (const auto& [n, d] : std::vector<std::pair<int, int>>{
           {8, 3}, {10, 3}, {12, 4}, {10, 5}}) {
    const Graph g = random_regular_graph(n, d, rng);
    const QaoaAnsatz ansatz(g);
    const double fixed =
        ansatz.expectation(*fixed_angles(d, 1)) / g.num_edges();
    const Objective f = [&ansatz](const std::vector<double>& x) {
      return ansatz.expectation(QaoaParams::single(x[0], x[1]));
    };
    GridSearchConfig grid;
    grid.gamma_steps = 64;
    grid.beta_steps = 64;
    const double best =
        grid_search_maximize_2d(f, grid).best_value / g.num_edges();
    check.add_row({std::to_string(n) + "-node " + std::to_string(d) +
                       "-regular",
                   format_double(fixed, 4), format_double(best, 4),
                   format_double(best - fixed, 4)});
  }
  check.print(std::cout);

  std::cout << "\ndepth 2 and 3 for 3-regular graphs (transcribed "
               "Wurtz-Lykov angles):\n";
  const Graph g = random_regular_graph(10, 3, rng);
  const QaoaAnsatz ansatz(g);
  for (int p = 1; p <= 3; ++p) {
    const auto a = fixed_angles(3, p);
    std::cout << "  p=" << p << ": AR = "
              << format_double(ansatz.approximation_ratio(*a), 4) << "\n";
  }
  std::cout << "\nreading: fixed angles give near-optimal starts for free; "
               "the GNN generalizes the same idea beyond regular graphs.\n";
  return 0;
}
