#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace qgnn::net {

/// The one place in the library allowed to touch raw socket / file
/// descriptor syscalls (qgnn_lint's raw-socket check enforces this):
/// every other subsystem routes bytes through these wrappers so error
/// handling, non-blocking discipline, and EINTR retries stay in one
/// place.

/// Owning file descriptor. Closes on destruction; move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close now (idempotent).
  void reset();
  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking read/write attempt.
enum class IoStatus {
  kOk,          // >= 1 byte transferred
  kWouldBlock,  // EAGAIN/EWOULDBLOCK: retry when the fd is ready again
  kEof,         // peer closed (reads only)
  kError,       // unrecoverable; close the fd
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// Create a TCP listener bound to host:port (SO_REUSEADDR, non-blocking).
/// `port` 0 binds an ephemeral port — read it back with local_port().
/// Throws IoError on failure.
Fd tcp_listen(const std::string& host, std::uint16_t port, int backlog = 128);

/// Blocking connect to host:port. The returned fd is left in blocking
/// mode; call set_nonblocking() to use it with an event loop. Throws
/// IoError on failure.
Fd tcp_connect(const std::string& host, std::uint16_t port);

/// Accept one pending connection from a non-blocking listener. Returns an
/// invalid Fd when no connection is pending (EAGAIN); throws IoError on
/// unrecoverable accept failures. The accepted fd is non-blocking with
/// TCP_NODELAY set.
Fd tcp_accept(const Fd& listener);

/// Locally bound port of a socket (useful after binding port 0).
std::uint16_t local_port(const Fd& socket_fd);

void set_nonblocking(const Fd& fd);

/// One read(2) attempt, EINTR-retried. Works for sockets and pipes.
IoResult read_some(const Fd& fd, char* buf, std::size_t cap);
/// One send/write attempt, EINTR-retried, SIGPIPE-suppressed on sockets.
IoResult write_some(const Fd& fd, const char* buf, std::size_t len);

/// Blocking helpers for client-side code (the fd must be blocking):
/// write the whole buffer / read until '\n' (returned without the
/// terminator). read_line returns false on EOF before any byte.
void write_all(const Fd& fd, const std::string& data);
bool read_line(const Fd& fd, std::string& carry, std::string& line);

/// A unidirectional pipe; .first is the read end.
std::pair<Fd, Fd> make_pipe();

/// shutdown(2) both directions: wakes a thread blocked in read on the
/// same fd with EOF, without the close/reuse race of reset(). No-op on
/// invalid or non-socket fds.
void shutdown_socket(const Fd& fd);

/// Block until `fd` is readable or `timeout_ms` elapses (poll(2)).
/// Returns true when readable (including EOF/hup), false on timeout.
/// EINTR surfaces as false so callers can re-check shutdown flags.
bool wait_readable(const Fd& fd, int timeout_ms);

/// Install a process-wide SIGINT/SIGTERM handler (without SA_RESTART, so
/// blocking reads return EINTR) that writes one byte into an internal
/// self-pipe and sets a flag. Returns the read end of the pipe — watch it
/// in an event loop to observe shutdown requests. Also ignores SIGPIPE.
/// Safe to call more than once (the same pipe is reused).
int install_shutdown_signal_pipe();
/// True once SIGINT/SIGTERM has been delivered.
bool shutdown_signal_received();
/// Reset the flag (tests).
void reset_shutdown_signal();

}  // namespace qgnn::net
