#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/socket.hpp"
#include "util/annotations.hpp"

namespace qgnn::net {

/// Readiness bits passed to event callbacks (a platform-neutral subset of
/// epoll's): kReadable also covers peer-hangup so callbacks observe EOF
/// through their normal read path.
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;

/// Minimal epoll(7) event loop: level-triggered fd watching plus a
/// cross-thread wake channel and an optional periodic tick.
///
/// Threading contract: add/modify/remove/run are loop-thread-only (or
/// pre-run setup); wake() and request_stop() may be called from any
/// thread. Callbacks run on the loop thread and may add/remove fds,
/// including their own.
class EpollLoop {
 public:
  using EventFn = std::function<void(std::uint32_t events)>;
  using TickFn = std::function<void()>;

  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Watch `fd` for `events` (kReadable/kWritable ORed). The fd stays
  /// owned by the caller.
  void add(int fd, std::uint32_t events, EventFn on_event);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  bool watching(int fd) const { return handlers_.count(fd) > 0; }

  /// Run the periodic callback roughly every `interval` while the loop
  /// runs (coarse: bounded by epoll_wait timeout granularity).
  void set_tick(std::chrono::milliseconds interval, TickFn on_tick);

  /// Invoked on the loop thread after every dispatch round — the hook a
  /// server uses to move cross-thread work (queued via wake()) onto the
  /// loop. Set before run().
  void set_post_dispatch(TickFn fn) { post_dispatch_ = std::move(fn); }

  /// Dispatch events until request_stop(). Also invoked tick callbacks.
  void run() QGNN_EVENT_LOOP_ONLY;

  /// One dispatch round with the given wait bound; returns false when a
  /// stop was requested. Exposed for tests.
  bool poll_once(std::chrono::milliseconds timeout) QGNN_EVENT_LOOP_ONLY;

  /// Wake the loop if it is blocked in epoll_wait (any thread).
  void wake();
  /// Make run() return after the current dispatch round (any thread).
  void request_stop();
  bool stop_requested() const;

 private:
  void drain_wake_pipe();

  Fd epoll_fd_;
  Fd wake_read_;
  Fd wake_write_;
  std::unordered_map<int, EventFn> handlers_;
  std::chrono::milliseconds tick_interval_{250};
  TickFn on_tick_;
  TickFn post_dispatch_;
  std::chrono::steady_clock::time_point last_tick_;
  // Set from other threads; the wake pipe write makes it visible promptly.
  std::atomic<bool> stop_{false};
};

}  // namespace qgnn::net
