#include "net/framing.hpp"

#include <cstring>

namespace qgnn::net {

void LineFramer::feed(const char* data, std::size_t len,
                      const LineFn& on_line, const OverflowFn& on_overflow) {
  std::size_t pos = 0;
  while (pos < len) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + pos, '\n', len - pos));
    const std::size_t chunk_end =
        nl != nullptr ? static_cast<std::size_t>(nl - data) : len;
    const std::size_t chunk = chunk_end - pos;

    if (discarding_) {
      discarded_ += chunk;
      if (nl != nullptr) {
        on_overflow(discarded_);
        discarding_ = false;
        discarded_ = 0;
      }
      pos = chunk_end + (nl != nullptr ? 1 : 0);
      continue;
    }

    if (buffer_.size() + chunk > max_line_) {
      // The line crossed the bound: forget what we buffered and switch to
      // discard mode until its terminating newline.
      discarded_ = buffer_.size() + chunk;
      buffer_.clear();
      discarding_ = true;
      if (nl != nullptr) {
        on_overflow(discarded_);
        discarding_ = false;
        discarded_ = 0;
      }
      pos = chunk_end + (nl != nullptr ? 1 : 0);
      continue;
    }

    buffer_.append(data + pos, chunk);
    pos = chunk_end;
    if (nl != nullptr) {
      ++pos;  // consume the '\n'
      if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
      if (!buffer_.empty()) {
        std::string line;
        line.swap(buffer_);
        on_line(std::move(line));
      }
    }
  }
}

std::string LineFramer::take_partial() {
  std::string out;
  out.swap(buffer_);
  discarding_ = false;
  discarded_ = 0;
  return out;
}

}  // namespace qgnn::net
