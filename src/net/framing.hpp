#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace qgnn::net {

/// Upper bound on one NDJSON line (request or response) on any transport.
/// Generously above the largest legal request (a kMaxQubits-node dense
/// graph is ~6 KiB of edges) while keeping a hostile client from growing
/// a connection buffer without bound.
inline constexpr std::size_t kMaxLineBytes = 1 << 20;  // 1 MiB

/// Incremental NDJSON line framer.
///
/// Feed arbitrary byte chunks exactly as they come off a socket — split
/// mid-line, coalesced many-lines-per-read, or one byte at a time — and
/// get back complete lines (without the '\n'; a trailing '\r' is stripped
/// so CRLF clients work). Blank lines are dropped, matching the stdin
/// protocol loop.
///
/// Oversized lines are handled without buffering them: once the current
/// line exceeds max_line bytes the framer reports it via the overflow
/// callback (once per offending line), then discards bytes until the next
/// '\n' and resumes framing cleanly. The connection stays usable — the
/// caller answers with a protocol error rather than tearing down.
class LineFramer {
 public:
  using LineFn = std::function<void(std::string&&)>;
  using OverflowFn = std::function<void(std::size_t dropped_bytes)>;

  explicit LineFramer(std::size_t max_line = kMaxLineBytes)
      : max_line_(max_line) {}

  /// Consume `len` bytes, invoking on_line for each completed line and
  /// on_overflow when a line crosses the size bound.
  void feed(const char* data, std::size_t len, const LineFn& on_line,
            const OverflowFn& on_overflow);

  /// Bytes of the current, still-incomplete line ("trailing garbage"
  /// after the last newline). At EOF a non-empty partial is a protocol
  /// violation the caller may surface; take_partial() hands it over and
  /// resets the framer.
  std::size_t partial_bytes() const { return buffer_.size(); }
  std::string take_partial();

  /// True while discarding an oversized line (until its '\n' arrives).
  bool discarding() const { return discarding_; }

 private:
  std::size_t max_line_;
  std::string buffer_;
  bool discarding_ = false;
  std::size_t discarded_ = 0;
};

}  // namespace qgnn::net
