#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace qgnn::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

Fd::~Fd() { reset(); }

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd tcp_listen(const std::string& host, std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  set_nonblocking(fd);
  return fd;
}

Fd tcp_connect(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr = make_addr(host, port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Fd tcp_accept(const Fd& listener) {
  for (;;) {
    const int fd = ::accept4(listener.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      Fd out(fd);
      const int one = 1;
      ::setsockopt(out.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    // Transient per-connection failures (the peer raced away, fd
    // pressure): report "nothing accepted" rather than killing the
    // accept loop.
    if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
      return Fd();
    }
    throw_errno("accept");
  }
}

std::uint16_t local_port(const Fd& socket_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket_fd.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

void set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

IoResult read_some(const Fd& fd, char* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, cap);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult write_some(const Fd& fd, const char* buf, std::size_t len) {
  for (;;) {
    // MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE; fall back to
    // write(2) for pipes (send only works on sockets).
    ssize_t n = ::send(fd.get(), buf, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd.get(), buf, len);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

void write_all(const Fd& fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const IoResult r = write_some(fd, data.data() + off, data.size() - off);
    if (r.status == IoStatus::kOk) {
      off += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) continue;  // blocking fd: rare
    throw IoError("write failed after " + std::to_string(off) + " bytes");
  }
}

bool read_line(const Fd& fd, std::string& carry, std::string& line) {
  for (;;) {
    const std::size_t nl = carry.find('\n');
    if (nl != std::string::npos) {
      line.assign(carry, 0, nl);
      carry.erase(0, nl + 1);
      return true;
    }
    char buf[4096];
    const IoResult r = read_some(fd, buf, sizeof(buf));
    if (r.status == IoStatus::kOk) {
      carry.append(buf, r.bytes);
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) continue;  // blocking fd: rare
    return false;  // EOF or error with no complete line
  }
}

std::pair<Fd, Fd> make_pipe() {
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) throw_errno("pipe2");
  return {Fd(fds[0]), Fd(fds[1])};
}

void shutdown_socket(const Fd& fd) {
  if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
}

bool wait_readable(const Fd& fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd.get();
  pfd.events = POLLIN;
  const int n = ::poll(&pfd, 1, timeout_ms);
  return n > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

namespace {

// Signal handlers are process-global by nature; this is the one piece of
// state they may touch (async-signal-safe: lock-free atomics + write(2)).
// qgnn-lint: allow(mutable-global)
std::atomic<bool> g_shutdown_flag{false};
// qgnn-lint: allow(mutable-global)
std::atomic<int> g_signal_pipe_write{-1};

void on_shutdown_signal(int) {
  g_shutdown_flag.store(true, std::memory_order_relaxed);
  const int fd = g_signal_pipe_write.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // Best-effort wakeup; a full pipe already wakes the watcher.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

int install_shutdown_signal_pipe() {
  static std::pair<Fd, Fd> pipe_fds = [] {
    auto fds = make_pipe();
    set_nonblocking(fds.second);
    g_signal_pipe_write.store(fds.second.get(), std::memory_order_relaxed);

    struct sigaction sa{};
    sa.sa_handler = &on_shutdown_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: blocking reads must see EINTR
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
    return fds;
  }();
  return pipe_fds.first.get();
}

bool shutdown_signal_received() {
  return g_shutdown_flag.load(std::memory_order_relaxed);
}

void reset_shutdown_signal() {
  g_shutdown_flag.store(false, std::memory_order_relaxed);
}

}  // namespace qgnn::net
