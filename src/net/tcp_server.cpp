#include "net/tcp_server.hpp"

#include <cstdio>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/error.hpp"

namespace qgnn::net {

namespace {

constexpr std::chrono::milliseconds kLoopTick{50};

std::string default_oversized_response(std::size_t dropped) {
  return "{\"ok\":false,\"error\":\"request line exceeds " +
         std::to_string(kMaxLineBytes) + " bytes (got " +
         std::to_string(dropped) + ")\"}";
}

}  // namespace

TcpServer::TcpServer(TcpServerConfig config, LineHandler on_line)
    : config_(std::move(config)),
      on_line_(std::move(on_line)),
      on_oversized_(&default_oversized_response) {
  QGNN_REQUIRE(on_line_ != nullptr, "TcpServer needs a line handler");
  QGNN_REQUIRE(config_.max_connections >= 1,
               "max_connections must be >= 1");
  QGNN_REQUIRE(config_.max_pipeline >= 1, "max_pipeline must be >= 1");
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::set_oversized_handler(OversizedHandler fn) {
  QGNN_REQUIRE(!running_, "set_oversized_handler before start()");
  on_oversized_ = std::move(fn);
}

void TcpServer::start() {
  QGNN_REQUIRE(!running_, "TcpServer already started");
  if (config_.install_signal_handlers) {
    const int sig_fd = install_shutdown_signal_pipe();
    loop_.add(sig_fd, kReadable, [this](std::uint32_t) {
      // Leave the pipe readable-flagged; the post-dispatch hook below
      // notices shutdown_requested_ and starts the drain.
      std::lock_guard<std::mutex> lk(outbox_mutex_);
      shutdown_requested_ = true;
    });
  }
  listener_ = tcp_listen(config_.host, config_.port, config_.listen_backlog);
  port_ = local_port(listener_);
  loop_.add(listener_.get(), kReadable,
            [this](std::uint32_t) { on_acceptable(); });
  accepting_ = true;
  loop_.set_post_dispatch([this] { drain_outbox(); });
  loop_.set_tick(kLoopTick, [this] {
    if (draining_ && std::chrono::steady_clock::now() >= drain_deadline_) {
      // Timed out waiting for in-flight work; force what remains closed.
      std::lock_guard<std::mutex> lk(stats_mutex_);
      drained_cleanly_ = false;
      loop_.request_stop();
    }
  });
  running_ = true;
  loop_thread_ = std::thread([this] { loop_main(); });
}

void TcpServer::loop_main() {
  try {
    loop_.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "TcpServer loop error: %s\n", e.what());
    std::lock_guard<std::mutex> lk(stats_mutex_);
    drained_cleanly_ = false;
  }
  // Loop exited: tear down every remaining connection and the listener.
  conns_.clear();
  listener_.reset();
}

void TcpServer::on_acceptable() {
  while (accepting_) {
    if (static_cast<int>(conns_.size()) >= config_.max_connections) {
      // Accept backpressure: stop watching the listener; the kernel
      // backlog (and then the clients' connects) hold the overflow until
      // close_connection() frees a slot.
      loop_.remove(listener_.get());
      accepting_ = false;
      std::lock_guard<std::mutex> lk(stats_mutex_);
      ++stats_.accept_deferrals;
      return;
    }
    Fd fd = tcp_accept(listener_);
    if (!fd.valid()) return;  // pending queue drained

    const std::uint64_t id = next_conn_id_++;
    auto conn =
        std::make_unique<Connection>(std::move(fd), config_.max_line_bytes);
    const int raw_fd = conn->fd.get();
    conns_.emplace(id, std::move(conn));
    loop_.add(raw_fd, kReadable, [this, id](std::uint32_t events) {
      on_connection_event(id, events);
    });
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      ++stats_.connections_accepted;
      stats_.open_connections = static_cast<int>(conns_.size());
    }
    if (obs::enabled()) {
      static obs::Counter& accepted = obs::MetricsRegistry::global().counter(
          obs::names::kNetConnectionsAccepted);
      accepted.add(1);
    }
  }
}

void TcpServer::on_connection_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (events & kWritable) {
    flush_writes(id, conn);
    if (conns_.find(id) == conns_.end()) return;  // dropped mid-flush
  }
  if (events & kReadable) handle_readable(id, conn);
}

void TcpServer::handle_readable(std::uint64_t id, Connection& conn) {
  if (conn.paused || draining_) return;
  char buf[16 * 1024];
  for (;;) {
    const IoResult r = read_some(conn.fd, buf, sizeof(buf));
    if (r.status == IoStatus::kWouldBlock) return;
    if (r.status == IoStatus::kEof || r.status == IoStatus::kError) {
      // Responses still in flight are dropped when they arrive (post()
      // to a closed id is a no-op) — the peer walked away first.
      close_connection(id, r.status == IoStatus::kError);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      stats_.bytes_read += r.bytes;
    }
    bool over_pipeline = false;
    conn.framer.feed(
        buf, r.bytes,
        [&](std::string&& line) {
          ++conn.in_flight;
          {
            std::lock_guard<std::mutex> lk(stats_mutex_);
            ++stats_.lines_in;
          }
          on_line_(id, std::move(line));
          if (conn.in_flight >= config_.max_pipeline) over_pipeline = true;
        },
        [&](std::size_t dropped) {
          {
            std::lock_guard<std::mutex> lk(stats_mutex_);
            ++stats_.oversized_lines;
          }
          ++conn.in_flight;  // the posted error balances the decrement
          post(id, on_oversized_(dropped));
        });
    if (over_pipeline) {
      // Pipelining backpressure: stop reading this client until its
      // responses drain below half the cap (see drain_outbox()).
      conn.paused = true;
      update_interest(conn);
      return;
    }
    if (r.bytes < sizeof(buf)) return;  // likely drained the socket
  }
}

void TcpServer::flush_writes(std::uint64_t id, Connection& conn) {
  while (conn.write_off < conn.write_buf.size()) {
    const IoResult r =
        write_some(conn.fd, conn.write_buf.data() + conn.write_off,
                   conn.write_buf.size() - conn.write_off);
    if (r.status == IoStatus::kOk) {
      conn.write_off += r.bytes;
      std::lock_guard<std::mutex> lk(stats_mutex_);
      stats_.bytes_written += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) break;
    close_connection(id, /*dropped=*/true);
    return;
  }
  if (conn.write_off == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_off = 0;
  } else if (conn.write_off > (1u << 16)) {
    conn.write_buf.erase(0, conn.write_off);
    conn.write_off = 0;
  }
  update_interest(conn);
}

void TcpServer::update_interest(Connection& conn) {
  const bool want_write = conn.write_off < conn.write_buf.size();
  const bool want_read = !conn.paused && !draining_;
  std::uint32_t events = 0;
  if (want_read) events |= kReadable;
  if (want_write) events |= kWritable;
  conn.want_write = want_write;
  if (loop_.watching(conn.fd.get())) loop_.modify(conn.fd.get(), events);
}

void TcpServer::close_connection(std::uint64_t id, bool dropped) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.remove(it->second->fd.get());
  conns_.erase(it);
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    if (dropped) ++stats_.connections_dropped;
    stats_.open_connections = static_cast<int>(conns_.size());
  }
  maybe_resume_accepting();
}

void TcpServer::maybe_resume_accepting() {
  if (accepting_ || draining_ || !running_ || !listener_.valid()) return;
  if (static_cast<int>(conns_.size()) >= config_.max_connections) return;
  loop_.add(listener_.get(), kReadable,
            [this](std::uint32_t) { on_acceptable(); });
  accepting_ = true;
  on_acceptable();  // connections may have queued while paused
}

void TcpServer::post(std::uint64_t conn_id, std::string line) {
  {
    std::lock_guard<std::mutex> lk(outbox_mutex_);
    outbox_.emplace_back(conn_id, std::move(line));
  }
  loop_.wake();
}

void TcpServer::drain_outbox() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  bool want_shutdown = false;
  {
    std::lock_guard<std::mutex> lk(outbox_mutex_);
    batch.swap(outbox_);
    want_shutdown = shutdown_requested_;
    shutdown_requested_ = false;
  }
  for (auto& [id, line] : batch) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // client is gone; drop the reply
    Connection& conn = *it->second;
    if (conn.in_flight > 0) --conn.in_flight;
    conn.write_buf += line;
    conn.write_buf += '\n';
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      ++stats_.lines_out;
    }
    if (conn.write_buf.size() - conn.write_off > config_.max_write_buffer) {
      close_connection(id, /*dropped=*/true);
      continue;
    }
    flush_writes(id, conn);
    const auto still = conns_.find(id);
    if (still == conns_.end()) continue;
    Connection& c = *still->second;
    if (c.paused && !draining_ && c.in_flight < config_.max_pipeline / 2) {
      c.paused = false;
      update_interest(c);
    }
  }
  if (want_shutdown && !draining_ && running_) {
    draining_ = true;
    drain_deadline_ =
        std::chrono::steady_clock::now() + requested_drain_timeout_;
    if (accepting_) {
      loop_.remove(listener_.get());
      accepting_ = false;
    }
    listener_.reset();  // close the listening socket outright
    for (auto& [id, conn] : conns_) update_interest(*conn);
  }
  if (draining_ && drained()) loop_.request_stop();
}

bool TcpServer::drained() const {
  {
    std::lock_guard<std::mutex> lk(outbox_mutex_);
    if (!outbox_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    if (conn->in_flight > 0) return false;
    if (conn->write_off < conn->write_buf.size()) return false;
  }
  return true;
}

bool TcpServer::graceful_shutdown(std::chrono::milliseconds drain_timeout) {
  if (!running_) return true;
  {
    std::lock_guard<std::mutex> lk(outbox_mutex_);
    shutdown_requested_ = true;
    requested_drain_timeout_ = drain_timeout;
  }
  loop_.wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_ = false;
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return drained_cleanly_;
}

void TcpServer::stop() {
  if (!running_) return;
  loop_.request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_ = false;
}

TcpServerStats TcpServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return stats_;
}

}  // namespace qgnn::net
