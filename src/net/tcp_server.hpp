#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "util/annotations.hpp"

namespace qgnn::net {

struct TcpServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after start().
  std::uint16_t port = 0;
  /// Open-connection cap. At the cap the listener is unregistered from
  /// the event loop (accept backpressure: the kernel backlog, then the
  /// clients' connect calls, absorb the excess) and re-registered as
  /// soon as a connection closes.
  int max_connections = 256;
  int listen_backlog = 128;
  std::size_t max_line_bytes = kMaxLineBytes;
  /// Per-connection cap on requests handed to the handler but not yet
  /// answered via post(). At the cap the connection's fd stops being
  /// read (TCP backpressure on that client) until responses catch up —
  /// a pipelining client cannot queue unboundedly.
  int max_pipeline = 64;
  /// A connection whose un-flushed response backlog exceeds this is
  /// dropped (the peer stopped reading).
  std::size_t max_write_buffer = 8u << 20;
  /// When true, SIGINT/SIGTERM trigger graceful_shutdown() from inside
  /// the loop (listener closed, in-flight requests drained, buffers
  /// flushed) instead of killing the process mid-batch.
  bool install_signal_handlers = false;
};

struct TcpServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  // error/overflow closes
  std::uint64_t accept_deferrals = 0;     // cap reached, accept paused
  std::uint64_t lines_in = 0;
  std::uint64_t lines_out = 0;
  std::uint64_t oversized_lines = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  int open_connections = 0;
};

/// Line-oriented TCP front end: one epoll loop thread owns every socket;
/// request processing happens wherever the handler takes it (worker pool,
/// ServeHandle::submit, a shard router) and answers come back through the
/// thread-safe post(). Partial lines, coalesced packets, and pipelined
/// requests are handled by the per-connection LineFramer; oversized lines
/// are answered through the on_oversized callback and the stream resumes
/// at the next newline.
class TcpServer {
 public:
  /// Called on the loop thread for every complete request line. Must not
  /// block; hand the work off and post() the response later (or post()
  /// inline for cheap requests).
  using LineHandler =
      std::function<void(std::uint64_t conn_id, std::string&& line)>;
  /// Builds the error response for an oversized request line.
  using OversizedHandler =
      std::function<std::string(std::size_t dropped_bytes)>;

  TcpServer(TcpServerConfig config, LineHandler on_line);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void set_oversized_handler(OversizedHandler fn);

  /// Bind, listen, and spawn the loop thread. Throws IoError on bind
  /// failure.
  void start();
  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_; }

  /// Queue `line` (newline appended) for the connection; thread-safe.
  /// Lines posted to an already-closed connection are dropped silently —
  /// the client is gone.
  void post(std::uint64_t conn_id, std::string line);

  /// Stop accepting, let in-flight requests finish and their responses
  /// flush, then stop the loop. Returns true when fully drained, false
  /// when the timeout forced connections closed. Thread-safe; also what
  /// the signal path triggers.
  bool graceful_shutdown(std::chrono::milliseconds drain_timeout =
                             std::chrono::milliseconds(5000));
  /// Immediate stop: close everything now.
  void stop();

  TcpServerStats stats() const;

 private:
  struct Connection {
    Fd fd;
    LineFramer framer;
    std::string write_buf;
    std::size_t write_off = 0;
    int in_flight = 0;
    bool want_write = false;
    bool paused = false;  // reads suspended (pipeline cap)
    explicit Connection(Fd f, std::size_t max_line)
        : fd(std::move(f)), framer(max_line) {}
  };

  void loop_main();
  void on_acceptable();
  void on_connection_event(std::uint64_t id, std::uint32_t events);
  void handle_readable(std::uint64_t id, Connection& conn);
  void flush_writes(std::uint64_t id, Connection& conn);
  void update_interest(Connection& conn);
  void close_connection(std::uint64_t id, bool dropped);
  void drain_outbox();
  void maybe_resume_accepting();
  bool drained() const;

  const TcpServerConfig config_;
  const LineHandler on_line_;
  OversizedHandler on_oversized_;

  EpollLoop loop_;
  Fd listener_;
  std::uint16_t port_ = 0;
  bool running_ = false;
  bool accepting_ = false;
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_;
  std::thread loop_thread_;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;

  // Cross-thread response queue, moved onto connections by the loop.
  // Critical sections under outbox_mutex_ are a vector append or swap
  // plus a wakeup-pipe write — short enough that post() from the loop
  // thread itself (cache hits answered inline) cannot stall the loop.
  mutable std::mutex outbox_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> outbox_
      QGNN_GUARDED_BY(outbox_mutex_);
  bool shutdown_requested_ QGNN_GUARDED_BY(outbox_mutex_) = false;
  std::chrono::milliseconds requested_drain_timeout_{5000};

  mutable std::mutex stats_mutex_;
  TcpServerStats stats_ QGNN_GUARDED_BY(stats_mutex_);
  bool drained_cleanly_ QGNN_GUARDED_BY(stats_mutex_) = true;
};

}  // namespace qgnn::net
