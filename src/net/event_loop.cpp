#include "net/event_loop.hpp"

#include <sys/epoll.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace qgnn::net {

namespace {

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t out = 0;
  if (events & kReadable) out |= EPOLLIN | EPOLLRDHUP;
  if (events & kWritable) out |= EPOLLOUT;
  return out;
}

std::uint32_t from_epoll(std::uint32_t events) {
  std::uint32_t out = 0;
  // Hangups and errors surface as readability: the callback's next read
  // reports EOF/error and it tears the connection down on its own path.
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
    out |= kReadable;
  }
  if (events & EPOLLOUT) out |= kWritable;
  return out;
}

}  // namespace

EpollLoop::EpollLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_fd_.valid()) {
    throw IoError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  auto pipe_fds = make_pipe();
  wake_read_ = std::move(pipe_fds.first);
  wake_write_ = std::move(pipe_fds.second);
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
  add(wake_read_.get(), kReadable, [this](std::uint32_t) {
    drain_wake_pipe();
  });
  last_tick_ = std::chrono::steady_clock::now();
}

EpollLoop::~EpollLoop() = default;

void EpollLoop::add(int fd, std::uint32_t events, EventFn on_event) {
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw IoError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  handlers_[fd] = std::move(on_event);
}

void EpollLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw IoError(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void EpollLoop::remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  // The fd may already be closed (EBADF) — removal stays best-effort.
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

void EpollLoop::set_tick(std::chrono::milliseconds interval,
                         TickFn on_tick) {
  QGNN_REQUIRE(interval.count() > 0, "tick interval must be positive");
  tick_interval_ = interval;
  on_tick_ = std::move(on_tick);
}

void EpollLoop::run() {
  while (poll_once(tick_interval_)) {
  }
}

bool EpollLoop::poll_once(std::chrono::milliseconds timeout) {
  if (stop_.load(std::memory_order_acquire)) return false;

  std::array<epoll_event, 64> events;  // NOLINT(*-member-init)
  int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                       static_cast<int>(events.size()),
                       static_cast<int>(timeout.count()));
  if (n < 0) {
    if (errno == EINTR) n = 0;  // deliver the tick, then keep looping
    else throw IoError(std::string("epoll_wait: ") + std::strerror(errno));
  }

  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by an earlier callback
    // Copy the handler: the callback may remove (and invalidate) itself.
    const EventFn handler = it->second;
    handler(from_epoll(events[static_cast<std::size_t>(i)].events));
  }

  if (post_dispatch_) post_dispatch_();

  if (on_tick_) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_tick_ >= tick_interval_) {
      last_tick_ = now;
      on_tick_();
    }
  }
  return !stop_.load(std::memory_order_acquire);
}

void EpollLoop::wake() {
  const char byte = 1;
  // A full pipe means a wake is already pending.
  (void)write_some(wake_write_, &byte, 1);
}

void EpollLoop::request_stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

bool EpollLoop::stop_requested() const {
  return stop_.load(std::memory_order_acquire);
}

void EpollLoop::drain_wake_pipe() {
  char buf[256];
  while (read_some(wake_read_, buf, sizeof(buf)).status == IoStatus::kOk) {
  }
}

}  // namespace qgnn::net
