#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "quantum/statevector.hpp"

namespace qgnn {

/// Exact density-matrix simulator for n-qubit mixed states (n <= 12;
/// memory is 2^{2n} amplitudes). Complements StateVector: where the
/// trajectory sampler in qaoa/noise.hpp approximates channels
/// stochastically, this simulator applies them exactly, so the two can be
/// cross-validated (tests/test_density_matrix.cpp does).
///
/// Same qubit convention as StateVector: qubit 0 is the least-significant
/// bit of a basis index.
class DensityMatrix {
 public:
  /// |0...0><0...0|.
  explicit DensityMatrix(int num_qubits);

  /// Pure state rho = |psi><psi|.
  static DensityMatrix from_state(const StateVector& psi);

  /// Maximally mixed state I / 2^n.
  static DensityMatrix maximally_mixed(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }

  /// Element <row| rho |col>.
  Amplitude element(std::uint64_t row, std::uint64_t col) const;

  /// Apply unitary 2x2 gate `m` on `target`: rho -> U rho U^dag.
  void apply_single_qubit(const std::array<Amplitude, 4>& m, int target);

  /// Apply 2x2 gate on `target` controlled on `control`.
  void apply_controlled(const std::array<Amplitude, 4>& m, int control,
                        int target);

  /// exp(-i theta/2 Z_a Z_b) conjugation (the QAOA cost primitive).
  void apply_rzz(double theta, int a, int b);

  /// rho -> e^{-i gamma D} rho e^{+i gamma D} for diagonal D.
  void apply_diagonal_phase(std::span<const double> diag, double gamma);

  /// Single-qubit Kraus channel: rho -> sum_k K_k rho K_k^dag. The Kraus
  /// set must be trace preserving (checked to tolerance).
  void apply_channel(std::span<const std::array<Amplitude, 4>> kraus,
                     int target);

  /// Convenience channels on one qubit.
  void apply_depolarizing(int target, double p);
  void apply_dephasing(int target, double p);
  void apply_amplitude_damping(int target, double gamma);

  /// Probability of measuring basis state |k>: the diagonal entry.
  double probability(std::uint64_t k) const;

  /// tr(rho D) for a diagonal observable.
  double expectation_diagonal(std::span<const double> diag) const;

  /// tr(rho): 1 for any valid state.
  double trace() const;

  /// tr(rho^2): 1 for pure states, 1/2^n for maximally mixed.
  double purity() const;

  /// <psi| rho |psi>: fidelity against a pure state.
  double fidelity(const StateVector& psi) const;

  /// True when rho is Hermitian within `tol`.
  bool is_hermitian(double tol = 1e-10) const;

 private:
  void check_qubit(int q) const;
  Amplitude& at(std::uint64_t row, std::uint64_t col);
  const Amplitude& at(std::uint64_t row, std::uint64_t col) const;
  /// Apply gate to row indices only (left multiplication by U on target).
  void left_apply(const std::array<Amplitude, 4>& m, int target);
  /// Apply gate^dagger to column indices (right multiplication).
  void right_apply_adjoint(const std::array<Amplitude, 4>& m, int target);

  int num_qubits_;
  std::vector<Amplitude> rho_;  // row-major dense dim x dim
};

/// Kraus sets for the convenience channels (exposed for tests).
std::vector<std::array<Amplitude, 4>> depolarizing_kraus(double p);
std::vector<std::array<Amplitude, 4>> dephasing_kraus(double p);
std::vector<std::array<Amplitude, 4>> amplitude_damping_kraus(double gamma);

}  // namespace qgnn
