#pragma once

#include <array>

#include "quantum/statevector.hpp"

namespace qgnn::gates {

using Gate2x2 = std::array<Amplitude, 4>;

/// Standard single-qubit gate matrices (row-major 2x2).
Gate2x2 identity();
Gate2x2 pauli_x();
Gate2x2 pauli_y();
Gate2x2 pauli_z();
Gate2x2 hadamard();
Gate2x2 s_gate();
Gate2x2 t_gate();

/// Rotation gates: exp(-i theta/2 P) for P in {X, Y, Z}.
Gate2x2 rx(double theta);
Gate2x2 ry(double theta);
Gate2x2 rz(double theta);

/// Phase gate diag(1, e^{i phi}).
Gate2x2 phase(double phi);

/// Matrix product a*b (apply b first, then a).
Gate2x2 multiply(const Gate2x2& a, const Gate2x2& b);

/// Conjugate transpose.
Gate2x2 adjoint(const Gate2x2& g);

/// True when g†g = I within `tol`.
bool is_unitary(const Gate2x2& g, double tol = 1e-12);

}  // namespace qgnn::gates
