#include "quantum/pauli.hpp"

#include <bit>
#include <sstream>

#include "quantum/gates.hpp"
#include "util/error.hpp"

namespace qgnn {

PauliString::PauliString(int num_qubits, double coefficient)
    : ops_(static_cast<std::size_t>(num_qubits), Pauli::I),
      coefficient_(coefficient) {
  QGNN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
               "qubit count out of range");
}

PauliString PauliString::parse(const std::string& text, double coefficient) {
  QGNN_REQUIRE(!text.empty(), "empty Pauli string");
  PauliString p(static_cast<int>(text.size()), coefficient);
  for (std::size_t i = 0; i < text.size(); ++i) {
    // Leftmost character is the highest qubit (ket order).
    const int qubit = static_cast<int>(text.size() - 1 - i);
    switch (text[i]) {
      case 'I': case 'i': break;
      case 'X': case 'x': p.set(qubit, Pauli::X); break;
      case 'Y': case 'y': p.set(qubit, Pauli::Y); break;
      case 'Z': case 'z': p.set(qubit, Pauli::Z); break;
      default:
        throw InvalidArgument(std::string("bad Pauli character: ") + text[i]);
    }
  }
  return p;
}

Pauli PauliString::op(int qubit) const {
  QGNN_REQUIRE(qubit >= 0 && qubit < num_qubits(), "qubit out of range");
  return ops_[static_cast<std::size_t>(qubit)];
}

PauliString& PauliString::set(int qubit, Pauli p) {
  QGNN_REQUIRE(qubit >= 0 && qubit < num_qubits(), "qubit out of range");
  ops_[static_cast<std::size_t>(qubit)] = p;
  return *this;
}

int PauliString::weight() const {
  int w = 0;
  for (Pauli p : ops_) {
    if (p != Pauli::I) ++w;
  }
  return w;
}

bool PauliString::is_diagonal() const {
  for (Pauli p : ops_) {
    if (p == Pauli::X || p == Pauli::Y) return false;
  }
  return true;
}

bool PauliString::commutes_with(const PauliString& other) const {
  QGNN_REQUIRE(num_qubits() == other.num_qubits(),
               "Pauli strings act on different register sizes");
  int anticommuting = 0;
  for (int q = 0; q < num_qubits(); ++q) {
    const Pauli a = op(q);
    const Pauli b = other.op(q);
    if (a != Pauli::I && b != Pauli::I && a != b) ++anticommuting;
  }
  return anticommuting % 2 == 0;
}

void PauliString::apply_to(StateVector& state) const {
  QGNN_REQUIRE(state.num_qubits() == num_qubits(), "state size mismatch");
  for (int q = 0; q < num_qubits(); ++q) {
    switch (op(q)) {
      case Pauli::I: break;
      case Pauli::X: state.apply_single_qubit(gates::pauli_x(), q); break;
      case Pauli::Y: state.apply_single_qubit(gates::pauli_y(), q); break;
      case Pauli::Z: state.apply_single_qubit(gates::pauli_z(), q); break;
    }
  }
  if (coefficient_ != 1.0) {
    for (Amplitude& a : state.mutable_amplitudes()) a *= coefficient_;
  }
}

double PauliString::expectation(const StateVector& state) const {
  QGNN_REQUIRE(state.num_qubits() == num_qubits(), "state size mismatch");
  if (is_diagonal()) {
    // <psi| P |psi> = sum_k |a_k|^2 * (-1)^{parity of Z bits in k}.
    std::uint64_t zmask = 0;
    for (int q = 0; q < num_qubits(); ++q) {
      if (op(q) == Pauli::Z) zmask |= std::uint64_t{1} << q;
    }
    double acc = 0.0;
    for (std::uint64_t k = 0; k < state.dimension(); ++k) {
      const double p = std::norm(state.amplitude(k));
      const bool odd = std::popcount(k & zmask) % 2 == 1;
      acc += odd ? -p : p;
    }
    return coefficient_ * acc;
  }
  StateVector transformed = state;
  apply_to(transformed);
  return state.inner_product(transformed).real();
}

std::string PauliString::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << coefficient_ << " *";
  bool any = false;
  for (int q = 0; q < num_qubits(); ++q) {
    switch (op(q)) {
      case Pauli::I: continue;
      case Pauli::X: os << " X" << q; break;
      case Pauli::Y: os << " Y" << q; break;
      case Pauli::Z: os << " Z" << q; break;
    }
    any = true;
  }
  if (!any) os << " I";
  return os.str();
}

PauliSum::PauliSum(int num_qubits) : num_qubits_(num_qubits) {
  QGNN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
               "qubit count out of range");
}

void PauliSum::add(PauliString term) {
  QGNN_REQUIRE(term.num_qubits() == num_qubits_,
               "term register size mismatch");
  terms_.push_back(std::move(term));
}

double PauliSum::expectation(const StateVector& state) const {
  double acc = 0.0;
  for (const PauliString& t : terms_) acc += t.expectation(state);
  return acc;
}

bool PauliSum::is_diagonal() const {
  for (const PauliString& t : terms_) {
    if (!t.is_diagonal()) return false;
  }
  return true;
}

std::vector<double> PauliSum::diagonal() const {
  QGNN_REQUIRE(is_diagonal(), "diagonal() requires a diagonal observable");
  const std::uint64_t dim = std::uint64_t{1} << num_qubits_;
  std::vector<double> diag(dim, 0.0);
  for (const PauliString& t : terms_) {
    std::uint64_t zmask = 0;
    for (int q = 0; q < num_qubits_; ++q) {
      if (t.op(q) == Pauli::Z) zmask |= std::uint64_t{1} << q;
    }
    for (std::uint64_t k = 0; k < dim; ++k) {
      const bool odd = std::popcount(k & zmask) % 2 == 1;
      diag[k] += odd ? -t.coefficient() : t.coefficient();
    }
  }
  return diag;
}

std::string PauliSum::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) os << " + ";
    os << terms_[i].to_string();
  }
  return os.str();
}

PauliSum maxcut_pauli_sum(const Graph& g) {
  PauliSum sum(g.num_nodes());
  for (const Edge& e : g.edges()) {
    // w/2 * I  -  w/2 * Z_u Z_v
    sum.add(PauliString(g.num_nodes(), e.weight / 2.0));
    PauliString zz(g.num_nodes(), -e.weight / 2.0);
    zz.set(e.u, Pauli::Z).set(e.v, Pauli::Z);
    sum.add(std::move(zz));
  }
  return sum;
}

}  // namespace qgnn
