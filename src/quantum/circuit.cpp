#include "quantum/circuit.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace qgnn {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  QGNN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
               "qubit count out of supported range [1, kMaxQubits]");
}

void Circuit::check_qubit(int q) const {
  QGNN_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
}

void Circuit::add_single(std::string name, const gates::Gate2x2& g, int q) {
  check_qubit(q);
  ops_.push_back(SingleOp{std::move(name), g, q});
}

void Circuit::cnot(int control, int target) {
  check_qubit(control);
  check_qubit(target);
  QGNN_REQUIRE(control != target, "cnot needs distinct qubits");
  ops_.push_back(ControlledOp{"cnot", gates::pauli_x(), control, target});
}

void Circuit::cz(int control, int target) {
  check_qubit(control);
  check_qubit(target);
  QGNN_REQUIRE(control != target, "cz needs distinct qubits");
  ops_.push_back(ControlledOp{"cz", gates::pauli_z(), control, target});
}

void Circuit::rzz(int a, int b, double theta) {
  check_qubit(a);
  check_qubit(b);
  QGNN_REQUIRE(a != b, "rzz needs distinct qubits");
  ops_.push_back(RzzOp{theta, a, b});
}

void Circuit::apply_to(StateVector& state) const {
  QGNN_REQUIRE(state.num_qubits() == num_qubits_,
               "state size does not match circuit");
  for (const Op& op : ops_) {
    std::visit(
        [&state](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, SingleOp>) {
            state.apply_single_qubit(o.gate, o.target);
          } else if constexpr (std::is_same_v<T, ControlledOp>) {
            state.apply_controlled(o.gate, o.control, o.target);
          } else {
            state.apply_rzz(o.theta, o.a, o.b);
          }
        },
        op);
  }
}

StateVector Circuit::simulate() const {
  StateVector s(num_qubits_);
  apply_to(s);
  return s;
}

StateVector Circuit::simulate_from_plus() const {
  StateVector s = StateVector::plus_state(num_qubits_);
  apply_to(s);
  return s;
}

std::size_t Circuit::two_qubit_gate_count() const {
  std::size_t count = 0;
  for (const Op& op : ops_) {
    if (!std::holds_alternative<SingleOp>(op)) ++count;
  }
  return count;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  for (const Op& op : ops_) {
    std::visit(
        [&os](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, SingleOp>) {
            os << o.name << " q" << o.target << '\n';
          } else if constexpr (std::is_same_v<T, ControlledOp>) {
            os << o.name << " q" << o.control << ", q" << o.target << '\n';
          } else {
            os << "rzz(" << o.theta << ") q" << o.a << ", q" << o.b << '\n';
          }
        },
        op);
  }
  return os.str();
}

}  // namespace qgnn
