#include "quantum/density_matrix.hpp"

#include <cmath>

#include "quantum/gates.hpp"
#include "util/error.hpp"

namespace qgnn {

DensityMatrix::DensityMatrix(int num_qubits) : num_qubits_(num_qubits) {
  QGNN_REQUIRE(num_qubits >= 1 && num_qubits <= 12,
               "density matrix limited to 12 qubits");
  const std::uint64_t dim = dimension();
  rho_.assign(dim * dim, Amplitude{0.0, 0.0});
  rho_[0] = Amplitude{1.0, 0.0};
}

DensityMatrix DensityMatrix::from_state(const StateVector& psi) {
  DensityMatrix rho(psi.num_qubits());
  const std::uint64_t dim = rho.dimension();
  for (std::uint64_t r = 0; r < dim; ++r) {
    for (std::uint64_t c = 0; c < dim; ++c) {
      rho.at(r, c) = psi.amplitude(r) * std::conj(psi.amplitude(c));
    }
  }
  return rho;
}

DensityMatrix DensityMatrix::maximally_mixed(int num_qubits) {
  DensityMatrix rho(num_qubits);
  const std::uint64_t dim = rho.dimension();
  rho.rho_.assign(dim * dim, Amplitude{0.0, 0.0});
  const double p = 1.0 / static_cast<double>(dim);
  for (std::uint64_t k = 0; k < dim; ++k) rho.at(k, k) = Amplitude{p, 0.0};
  return rho;
}

void DensityMatrix::check_qubit(int q) const {
  QGNN_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
}

Amplitude& DensityMatrix::at(std::uint64_t row, std::uint64_t col) {
  return rho_[row * dimension() + col];
}

const Amplitude& DensityMatrix::at(std::uint64_t row,
                                   std::uint64_t col) const {
  return rho_[row * dimension() + col];
}

Amplitude DensityMatrix::element(std::uint64_t row, std::uint64_t col) const {
  QGNN_REQUIRE(row < dimension() && col < dimension(),
               "density matrix index out of range");
  return at(row, col);
}

void DensityMatrix::left_apply(const std::array<Amplitude, 4>& m,
                               int target) {
  const std::uint64_t bit = std::uint64_t{1} << target;
  const std::uint64_t dim = dimension();
  for (std::uint64_t row = 0; row < dim; ++row) {
    if (row & bit) continue;
    const std::uint64_t hi = row | bit;
    for (std::uint64_t col = 0; col < dim; ++col) {
      const Amplitude a0 = at(row, col);
      const Amplitude a1 = at(hi, col);
      at(row, col) = m[0] * a0 + m[1] * a1;
      at(hi, col) = m[2] * a0 + m[3] * a1;
    }
  }
}

void DensityMatrix::right_apply_adjoint(const std::array<Amplitude, 4>& m,
                                        int target) {
  // rho -> rho U^dag: columns mix with conj-transposed coefficients.
  const std::uint64_t bit = std::uint64_t{1} << target;
  const std::uint64_t dim = dimension();
  const Amplitude m00 = std::conj(m[0]);
  const Amplitude m01 = std::conj(m[1]);
  const Amplitude m10 = std::conj(m[2]);
  const Amplitude m11 = std::conj(m[3]);
  for (std::uint64_t col = 0; col < dim; ++col) {
    if (col & bit) continue;
    const std::uint64_t hi = col | bit;
    for (std::uint64_t row = 0; row < dim; ++row) {
      const Amplitude a0 = at(row, col);
      const Amplitude a1 = at(row, hi);
      // (rho U^dag)_{r,c} = sum_k rho_{r,k} conj(U_{c,k}).
      at(row, col) = a0 * m00 + a1 * m01;
      at(row, hi) = a0 * m10 + a1 * m11;
    }
  }
}

void DensityMatrix::apply_single_qubit(const std::array<Amplitude, 4>& m,
                                       int target) {
  check_qubit(target);
  left_apply(m, target);
  right_apply_adjoint(m, target);
}

void DensityMatrix::apply_controlled(const std::array<Amplitude, 4>& m,
                                     int control, int target) {
  check_qubit(control);
  check_qubit(target);
  QGNN_REQUIRE(control != target, "control equals target");
  // Build the full 4x4 controlled unitary action implicitly: rows/cols
  // with control bit set transform, others pass through. Reuse the
  // statevector trick on both sides.
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  const std::uint64_t dim = dimension();
  // Left: U rho.
  for (std::uint64_t row = 0; row < dim; ++row) {
    if ((row & tbit) || !(row & cbit)) continue;
    const std::uint64_t hi = row | tbit;
    for (std::uint64_t col = 0; col < dim; ++col) {
      const Amplitude a0 = at(row, col);
      const Amplitude a1 = at(hi, col);
      at(row, col) = m[0] * a0 + m[1] * a1;
      at(hi, col) = m[2] * a0 + m[3] * a1;
    }
  }
  // Right: rho U^dag.
  const Amplitude m00 = std::conj(m[0]);
  const Amplitude m01 = std::conj(m[1]);
  const Amplitude m10 = std::conj(m[2]);
  const Amplitude m11 = std::conj(m[3]);
  for (std::uint64_t col = 0; col < dim; ++col) {
    if ((col & tbit) || !(col & cbit)) continue;
    const std::uint64_t hi = col | tbit;
    for (std::uint64_t row = 0; row < dim; ++row) {
      const Amplitude a0 = at(row, col);
      const Amplitude a1 = at(row, hi);
      at(row, col) = a0 * m00 + a1 * m01;
      at(row, hi) = a0 * m10 + a1 * m11;
    }
  }
}

void DensityMatrix::apply_rzz(double theta, int a, int b) {
  check_qubit(a);
  check_qubit(b);
  QGNN_REQUIRE(a != b, "rzz needs distinct qubits");
  const std::uint64_t abit = std::uint64_t{1} << a;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  const std::uint64_t dim = dimension();
  auto phase_of = [&](std::uint64_t k) {
    const bool parity = ((k & abit) != 0) != ((k & bbit) != 0);
    const double half = parity ? theta / 2.0 : -theta / 2.0;
    return Amplitude{std::cos(half), std::sin(half)};
  };
  for (std::uint64_t row = 0; row < dim; ++row) {
    const Amplitude pr = phase_of(row);
    for (std::uint64_t col = 0; col < dim; ++col) {
      at(row, col) *= pr * std::conj(phase_of(col));
    }
  }
}

void DensityMatrix::apply_diagonal_phase(std::span<const double> diag,
                                         double gamma) {
  QGNN_REQUIRE(diag.size() == dimension(),
               "diagonal length must equal dimension");
  const std::uint64_t dim = dimension();
  for (std::uint64_t row = 0; row < dim; ++row) {
    for (std::uint64_t col = 0; col < dim; ++col) {
      const double phi = -gamma * (diag[row] - diag[col]);
      at(row, col) *= Amplitude{std::cos(phi), std::sin(phi)};
    }
  }
}

void DensityMatrix::apply_channel(
    std::span<const std::array<Amplitude, 4>> kraus, int target) {
  check_qubit(target);
  QGNN_REQUIRE(!kraus.empty(), "empty Kraus set");
  // Trace preservation: sum_k K^dag K == I.
  std::array<Amplitude, 4> sum{};
  for (const auto& k : kraus) {
    const auto p = gates::multiply(gates::adjoint(k), k);
    for (int i = 0; i < 4; ++i) sum[static_cast<std::size_t>(i)] += p[static_cast<std::size_t>(i)];
  }
  QGNN_REQUIRE(std::abs(sum[0] - Amplitude{1.0, 0.0}) < 1e-9 &&
                   std::abs(sum[3] - Amplitude{1.0, 0.0}) < 1e-9 &&
                   std::abs(sum[1]) < 1e-9 && std::abs(sum[2]) < 1e-9,
               "Kraus set is not trace preserving");

  const std::uint64_t dim = dimension();
  std::vector<Amplitude> result(dim * dim, Amplitude{0.0, 0.0});
  for (const auto& k : kraus) {
    DensityMatrix branch = *this;
    branch.left_apply(k, target);
    branch.right_apply_adjoint(k, target);
    for (std::uint64_t i = 0; i < dim * dim; ++i) {
      result[i] += branch.rho_[i];
    }
  }
  rho_ = std::move(result);
}

std::vector<std::array<Amplitude, 4>> depolarizing_kraus(double p) {
  QGNN_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  const double s0 = std::sqrt(1.0 - p);
  const double s = std::sqrt(p / 3.0);
  auto scale = [](const std::array<Amplitude, 4>& g, double c) {
    std::array<Amplitude, 4> out = g;
    for (auto& v : out) v *= c;
    return out;
  };
  return {scale(gates::identity(), s0), scale(gates::pauli_x(), s),
          scale(gates::pauli_y(), s), scale(gates::pauli_z(), s)};
}

std::vector<std::array<Amplitude, 4>> dephasing_kraus(double p) {
  QGNN_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  auto scale = [](const std::array<Amplitude, 4>& g, double c) {
    std::array<Amplitude, 4> out = g;
    for (auto& v : out) v *= c;
    return out;
  };
  return {scale(gates::identity(), std::sqrt(1.0 - p)),
          scale(gates::pauli_z(), std::sqrt(p))};
}

std::vector<std::array<Amplitude, 4>> amplitude_damping_kraus(double gamma) {
  QGNN_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "damping rate out of [0,1]");
  const Amplitude zero{0.0, 0.0};
  return {{Amplitude{1.0, 0.0}, zero, zero,
           Amplitude{std::sqrt(1.0 - gamma), 0.0}},
          {zero, Amplitude{std::sqrt(gamma), 0.0}, zero, zero}};
}

void DensityMatrix::apply_depolarizing(int target, double p) {
  const auto kraus = depolarizing_kraus(p);
  apply_channel(kraus, target);
}

void DensityMatrix::apply_dephasing(int target, double p) {
  const auto kraus = dephasing_kraus(p);
  apply_channel(kraus, target);
}

void DensityMatrix::apply_amplitude_damping(int target, double gamma) {
  const auto kraus = amplitude_damping_kraus(gamma);
  apply_channel(kraus, target);
}

double DensityMatrix::probability(std::uint64_t k) const {
  QGNN_REQUIRE(k < dimension(), "basis index out of range");
  return at(k, k).real();
}

double DensityMatrix::expectation_diagonal(
    std::span<const double> diag) const {
  QGNN_REQUIRE(diag.size() == dimension(),
               "diagonal length must equal dimension");
  double acc = 0.0;
  for (std::uint64_t k = 0; k < dimension(); ++k) {
    acc += at(k, k).real() * diag[k];
  }
  return acc;
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (std::uint64_t k = 0; k < dimension(); ++k) t += at(k, k).real();
  return t;
}

double DensityMatrix::purity() const {
  // tr(rho^2) = sum_{r,c} |rho_{r,c}|^2 for Hermitian rho.
  double p = 0.0;
  for (const Amplitude& a : rho_) p += std::norm(a);
  return p;
}

double DensityMatrix::fidelity(const StateVector& psi) const {
  QGNN_REQUIRE(psi.num_qubits() == num_qubits_, "qubit count mismatch");
  Amplitude acc{0.0, 0.0};
  const std::uint64_t dim = dimension();
  for (std::uint64_t r = 0; r < dim; ++r) {
    for (std::uint64_t c = 0; c < dim; ++c) {
      acc += std::conj(psi.amplitude(r)) * at(r, c) * psi.amplitude(c);
    }
  }
  return acc.real();
}

bool DensityMatrix::is_hermitian(double tol) const {
  const std::uint64_t dim = dimension();
  for (std::uint64_t r = 0; r < dim; ++r) {
    for (std::uint64_t c = r; c < dim; ++c) {
      if (std::abs(at(r, c) - std::conj(at(c, r))) > tol) return false;
    }
  }
  return true;
}

}  // namespace qgnn
