#include "quantum/statevector.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "simd/kernels.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {

namespace {

/// Registry handles cached once; kernels run thousands of times per
/// optimization and must not take the registry mutex per call.
obs::Counter& amps_touched_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter(obs::names::kQuantumAmpsTouched);
  return c;
}

obs::LatencyHistogram& kernel_histogram() {
  static obs::LatencyHistogram& h =
      obs::MetricsRegistry::global().histogram(obs::names::kQuantumKernelUs);
  return h;
}

/// States at or above this dimension run their kernels on the global
/// thread pool; smaller states stay serial because the per-job wakeup
/// cost exceeds the loop itself. 2^14 amplitudes (~256 KiB) is where the
/// crossover sits on commodity cores.
constexpr std::uint64_t kParallelDim = std::uint64_t{1} << 14;

/// Elements per chunk. Large enough that a chunk amortizes scheduling,
/// small enough that 4-8 lanes stay busy at the threshold dimension.
constexpr std::uint64_t kGrain = std::uint64_t{1} << 12;

/// Run body(lo, hi) over [0, dim), parallel above the threshold.
/// Elementwise bodies produce bit-identical amplitudes at any lane count.
template <typename Body>
void for_each_index(std::uint64_t dim, const Body& body) {
  const bool obs_on = obs::enabled();
  if (obs_on) amps_touched_counter().add(dim);
  if (dim >= kParallelDim) {
    // Only the pool-dispatched kernels are worth a clock read: serial
    // kernels below the threshold finish in a few microseconds each.
    obs::ScopedTimer timer(obs_on ? &kernel_histogram() : nullptr);
    ThreadPool::global().parallel_for(0, dim, kGrain, body);
  } else {
    body(0, dim);
  }
}

/// Chunked sum of chunk_sum(lo, hi) over [0, dim). Below the threshold the
/// range is a single serial chunk; above it, parallel_reduce combines the
/// fixed-boundary partials in chunk order — either way the result for a
/// given dimension is bit-identical at any lane count.
template <typename T, typename ChunkFn>
T reduce_index(std::uint64_t dim, T zero, const ChunkFn& chunk_sum) {
  const bool obs_on = obs::enabled();
  if (obs_on) amps_touched_counter().add(dim);
  if (dim >= kParallelDim) {
    obs::ScopedTimer timer(obs_on ? &kernel_histogram() : nullptr);
    return ThreadPool::global().parallel_reduce(0, dim, kGrain, zero,
                                                chunk_sum);
  }
  return chunk_sum(0, dim);
}

}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  QGNN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
               "qubit count out of supported range [1, kMaxQubits]");
  amps_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
  amps_[0] = Amplitude{1.0, 0.0};
}

StateVector StateVector::plus_state(int num_qubits) {
  StateVector s(num_qubits);
  s.set_plus_state();
  return s;
}

void StateVector::set_plus_state() {
  const double amp = 1.0 / std::sqrt(static_cast<double>(dimension()));
  for_each_index(dimension(), [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t k = lo; k < hi; ++k) amps_[k] = Amplitude{amp, 0.0};
  });
}

StateVector StateVector::basis_state(int num_qubits, std::uint64_t index) {
  StateVector s(num_qubits);
  QGNN_REQUIRE(index < s.dimension(), "basis state index out of range");
  s.amps_[0] = Amplitude{0.0, 0.0};
  s.amps_[index] = Amplitude{1.0, 0.0};
  return s;
}

void StateVector::check_qubit(int q) const {
  QGNN_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
}

const Amplitude& StateVector::amplitude(std::uint64_t index) const {
  QGNN_REQUIRE(index < dimension(), "amplitude index out of range");
  return amps_[index];
}

void StateVector::apply_single_qubit(const std::array<Amplitude, 4>& m,
                                     int target) {
  check_qubit(target);
  const std::uint64_t bit = std::uint64_t{1} << target;
  // Each pair is owned by the chunk containing its low index; the high
  // index is skipped wherever it falls, so chunks never share a pair.
  for_each_index(dimension(), [&](std::uint64_t lo, std::uint64_t hi_end) {
    for (std::uint64_t base = lo; base < hi_end; ++base) {
      if (base & bit) continue;  // visit each |..0..>, |..1..> pair once
      const std::uint64_t hi = base | bit;
      const Amplitude a0 = amps_[base];
      const Amplitude a1 = amps_[hi];
      amps_[base] = m[0] * a0 + m[1] * a1;
      amps_[hi] = m[2] * a0 + m[3] * a1;
    }
  });
}

void StateVector::apply_controlled(const std::array<Amplitude, 4>& m,
                                   int control, int target) {
  check_qubit(control);
  check_qubit(target);
  QGNN_REQUIRE(control != target, "control equals target");
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  for_each_index(dimension(), [&](std::uint64_t lo, std::uint64_t hi_end) {
    for (std::uint64_t base = lo; base < hi_end; ++base) {
      if ((base & tbit) || !(base & cbit)) continue;
      const std::uint64_t hi = base | tbit;
      const Amplitude a0 = amps_[base];
      const Amplitude a1 = amps_[hi];
      amps_[base] = m[0] * a0 + m[1] * a1;
      amps_[hi] = m[2] * a0 + m[3] * a1;
    }
  });
}

void StateVector::apply_rzz(double theta, int a, int b) {
  check_qubit(a);
  check_qubit(b);
  QGNN_REQUIRE(a != b, "rzz needs distinct qubits");
  const std::uint64_t abit = std::uint64_t{1} << a;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  // exp(-i theta/2) on even parity, exp(+i theta/2) on odd parity.
  const Amplitude even{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
  const Amplitude odd{std::cos(theta / 2.0), std::sin(theta / 2.0)};
  for_each_index(dimension(), [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t k = lo; k < hi; ++k) {
      const bool parity = ((k & abit) != 0) != ((k & bbit) != 0);
      amps_[k] *= parity ? odd : even;
    }
  });
}

void StateVector::apply_diagonal_phase(std::span<const double> diag,
                                       double gamma) {
  QGNN_REQUIRE(diag.size() == dimension(),
               "diagonal length must equal state dimension");
  for_each_index(dimension(), [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t k = lo; k < hi; ++k) {
      const double phi = -gamma * diag[k];
      amps_[k] *= Amplitude{std::cos(phi), std::sin(phi)};
    }
  });
}

void StateVector::apply_phase_table(std::span<const std::uint16_t> index,
                                    std::span<const Amplitude> table) {
  QGNN_REQUIRE(index.size() == dimension(),
               "phase-table index length must equal state dimension");
  // Dispatched per-chunk kernel; std::complex<double> arrays are
  // array-oriented-access compatible with interleaved doubles.
  const auto kernel = simd::phase_table();
  auto* amps = reinterpret_cast<double*>(amps_.data());
  const auto* tab = reinterpret_cast<const double*>(table.data());
  for_each_index(dimension(), [&](std::uint64_t lo, std::uint64_t hi) {
    kernel(amps, index.data(), tab, lo, hi);
  });
}

void StateVector::apply_rx_layer(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  const std::uint64_t dim = dimension();
  // RX = [[c, -is], [-is, c]] on the pair (lo, hi):
  //   lo' = c*lo - i*s*hi,  hi' = -i*s*lo + c*hi
  // expanded into 4 real multiply-adds per amplitude component inside the
  // dispatched kernels (simd/kernels_impl.hpp holds the scalar reference).
  // The operand order matches what the generic complex 2x2 path computes
  // for this matrix, so the fused kernel agrees with n apply_single_qubit
  // calls to the last ulp (equivalence is fuzz-tested at 1e-12 regardless).
  const auto block_kernel = simd::rx_block();
  const auto pairs_kernel = simd::rx_pairs();
  auto* amps = reinterpret_cast<double*>(amps_.data());

  const bool obs_on = obs::enabled();
  if (obs_on) {
    amps_touched_counter().add(dim *
                               static_cast<std::uint64_t>(num_qubits_));
  }
  obs::ScopedTimer timer(
      obs_on && dim >= kParallelDim ? &kernel_histogram() : nullptr);

  // Qubits below kRxBlockQubits pair up inside a 2^kRxBlockQubits-amplitude
  // block (64 KiB), so one memory sweep applies all of them while the block
  // stays cache-resident. Blocks are disjoint, so the block loop
  // parallelizes with bit-identical results at any lane count.
  constexpr int kRxBlockQubits = 12;
  const int nb = std::min(num_qubits_, kRxBlockQubits);
  const std::uint64_t bsize = std::uint64_t{1} << nb;
  const std::uint64_t nblocks = dim >> nb;
  auto block_body = [&](std::uint64_t blo, std::uint64_t bhi) {
    for (std::uint64_t b = blo; b < bhi; ++b) {
      block_kernel(amps + 2 * b * bsize, nb, c, s);
    }
  };
  if (dim >= kParallelDim) {
    ThreadPool::global().parallel_for(0, nblocks, 1, block_body);
  } else {
    block_body(0, nblocks);
  }

  // Qubits at or above the block size pair across blocks: one strided,
  // branch-free pass each (at most n - kRxBlockQubits of them). A chunk
  // [lo, hi) of pair indices decomposes into maximal runs of consecutive
  // low addresses (all sharing one high-side offset), each handed to the
  // pair kernel as a contiguous span.
  for (int q = nb; q < num_qubits_; ++q) {
    const std::uint64_t bit = std::uint64_t{1} << q;
    auto body = [&](std::uint64_t lo, std::uint64_t hi) {
      std::uint64_t i = lo;
      while (i < hi) {
        const std::uint64_t base =
            ((i >> q) << (q + 1)) | (i & (bit - 1));
        const std::uint64_t run =
            std::min(hi - i, bit - (i & (bit - 1)));
        pairs_kernel(amps + 2 * base, amps + 2 * (base | bit), run, c, s);
        i += run;
      }
    };
    if (dim >= kParallelDim) {
      ThreadPool::global().parallel_for(0, dim >> 1, kGrain, body);
    } else {
      body(0, dim >> 1);
    }
  }
}

void StateVector::assign_scaled(const StateVector& src,
                                std::span<const double> scale) {
  QGNN_REQUIRE(num_qubits_ == src.num_qubits_,
               "assign_scaled needs same-size states");
  QGNN_REQUIRE(scale.size() == dimension(),
               "scale length must equal state dimension");
  const auto kernel = simd::scaled_assign();
  auto* dst = reinterpret_cast<double*>(amps_.data());
  const auto* in = reinterpret_cast<const double*>(src.amps_.data());
  for_each_index(dimension(), [&](std::uint64_t lo, std::uint64_t hi) {
    kernel(dst, in, scale.data(), lo, hi);
  });
}

double StateVector::phase_grad_overlap(const StateVector& phi,
                                       std::span<const double> diag) const {
  QGNN_REQUIRE(num_qubits_ == phi.num_qubits_,
               "phase_grad_overlap needs same-size states");
  QGNN_REQUIRE(diag.size() == dimension(),
               "diagonal length must equal state dimension");
  return 2.0 * reduce_index(dimension(), 0.0,
                            [&](std::uint64_t lo, std::uint64_t hi) {
                              double acc = 0.0;
                              for (std::uint64_t k = lo; k < hi; ++k) {
                                const Amplitude p = phi.amps_[k];
                                const Amplitude a = amps_[k];
                                acc += diag[k] * (p.real() * a.imag() -
                                                  p.imag() * a.real());
                              }
                              return acc;
                            });
}

double StateVector::mixer_grad_overlap(const StateVector& phi) const {
  QGNN_REQUIRE(num_qubits_ == phi.num_qubits_,
               "mixer_grad_overlap needs same-size states");
  // <phi|B|psi> = sum_q sum_pairs conj(phi_k) psi_{k^bit} +
  //                              conj(phi_{k^bit}) psi_k, summed per qubit
  // in a stride-friendly pair sweep; qubit partials combine serially so the
  // result is bit-identical at any lane count.
  double total = 0.0;
  for (int q = 0; q < num_qubits_; ++q) {
    const std::uint64_t bit = std::uint64_t{1} << q;
    total += reduce_index(
        dimension() >> 1, 0.0, [&](std::uint64_t lo, std::uint64_t hi) {
          double acc = 0.0;
          for (std::uint64_t i = lo; i < hi; ++i) {
            const std::uint64_t base =
                ((i >> q) << (q + 1)) | (i & (bit - 1));
            const Amplitude pl = phi.amps_[base];
            const Amplitude ph = phi.amps_[base | bit];
            const Amplitude al = amps_[base];
            const Amplitude ah = amps_[base | bit];
            // Im(conj(pl)*ah + conj(ph)*al)
            acc += pl.real() * ah.imag() - pl.imag() * ah.real() +
                   ph.real() * al.imag() - ph.imag() * al.real();
          }
          return acc;
        });
  }
  return 2.0 * total;
}

double StateVector::probability(std::uint64_t index) const {
  QGNN_REQUIRE(index < dimension(), "basis state index out of range");
  return std::norm(amps_[index]);
}

double StateVector::expectation_diagonal(std::span<const double> diag) const {
  QGNN_REQUIRE(diag.size() == dimension(),
               "diagonal length must equal state dimension");
  return reduce_index(dimension(), 0.0,
                      [&](std::uint64_t lo, std::uint64_t hi) {
                        double acc = 0.0;
                        for (std::uint64_t k = lo; k < hi; ++k) {
                          acc += std::norm(amps_[k]) * diag[k];
                        }
                        return acc;
                      });
}

double StateVector::expectation_z(int qubit) const {
  check_qubit(qubit);
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  return reduce_index(dimension(), 0.0,
                      [&](std::uint64_t lo, std::uint64_t hi) {
                        double acc = 0.0;
                        for (std::uint64_t k = lo; k < hi; ++k) {
                          const double p = std::norm(amps_[k]);
                          acc += (k & bit) ? -p : p;
                        }
                        return acc;
                      });
}

std::uint64_t StateVector::sample(Rng& rng) const {
  double r = rng.uniform();
  const std::uint64_t dim = dimension();
  for (std::uint64_t k = 0; k < dim; ++k) {
    r -= std::norm(amps_[k]);
    if (r <= 0.0) return k;
  }
  return dim - 1;  // guard against rounding
}

std::map<std::uint64_t, std::size_t> StateVector::sample_counts(
    Rng& rng, std::size_t shots) const {
  std::map<std::uint64_t, std::size_t> counts;
  for (std::size_t s = 0; s < shots; ++s) ++counts[sample(rng)];
  return counts;
}

double StateVector::norm() const {
  const double acc =
      reduce_index(dimension(), 0.0,
                   [&](std::uint64_t lo, std::uint64_t hi) {
                     double sum = 0.0;
                     for (std::uint64_t k = lo; k < hi; ++k) {
                       sum += std::norm(amps_[k]);
                     }
                     return sum;
                   });
  return std::sqrt(acc);
}

Amplitude StateVector::inner_product(const StateVector& other) const {
  QGNN_REQUIRE(num_qubits_ == other.num_qubits_,
               "inner product of different-size states");
  return reduce_index(dimension(), Amplitude{0.0, 0.0},
                      [&](std::uint64_t lo, std::uint64_t hi) {
                        Amplitude acc{0.0, 0.0};
                        for (std::uint64_t k = lo; k < hi; ++k) {
                          acc += std::conj(amps_[k]) * other.amps_[k];
                        }
                        return acc;
                      });
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

}  // namespace qgnn
