#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "quantum/statevector.hpp"

namespace qgnn {

/// Single-qubit Pauli operator label.
enum class Pauli : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/// A weighted tensor product of Pauli operators on n qubits, e.g.
/// 0.5 * Z0 Z3. Identity factors are implicit.
class PauliString {
 public:
  PauliString(int num_qubits, double coefficient = 1.0);

  /// Parse "ZZ" style dense strings (leftmost char = qubit n-1, matching
  /// ket notation) or return via the factory below.
  static PauliString parse(const std::string& text, double coefficient = 1.0);

  int num_qubits() const { return static_cast<int>(ops_.size()); }
  double coefficient() const { return coefficient_; }
  void set_coefficient(double c) { coefficient_ = c; }

  Pauli op(int qubit) const;
  PauliString& set(int qubit, Pauli p);

  /// Number of non-identity factors.
  int weight() const;

  /// True when every factor is I or Z (diagonal in the computational
  /// basis), enabling the fast expectation path.
  bool is_diagonal() const;

  /// Two Pauli strings commute iff they anticommute on an even number of
  /// qubits.
  bool commutes_with(const PauliString& other) const;

  /// Apply to a state: |psi> -> coefficient * P |psi>. The coefficient is
  /// folded into the amplitudes; note the result is generally unnormalized
  /// when |coefficient| != 1.
  void apply_to(StateVector& state) const;

  /// <psi| coefficient * P |psi>.
  double expectation(const StateVector& state) const;

  /// "0.50 * Z0 Z3" style human-readable form.
  std::string to_string() const;

 private:
  std::vector<Pauli> ops_;
  double coefficient_;
};

/// A sum of Pauli strings (a Hermitian observable with real weights).
class PauliSum {
 public:
  explicit PauliSum(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  void add(PauliString term);
  const std::vector<PauliString>& terms() const { return terms_; }
  std::size_t size() const { return terms_.size(); }

  /// <psi| H |psi> = sum of term expectations.
  double expectation(const StateVector& state) const;

  /// True when every term is diagonal.
  bool is_diagonal() const;

  /// Dense diagonal (length 2^n). Only valid when is_diagonal().
  std::vector<double> diagonal() const;

  std::string to_string() const;

 private:
  int num_qubits_;
  std::vector<PauliString> terms_;
};

/// The Max-Cut cost Hamiltonian as an explicit Pauli sum:
///   C = sum_{(u,v)} w/2 * (I - Z_u Z_v).
/// Equals CostHamiltonian's diagonal (verified in tests); exists so the
/// library exposes a general observable path alongside the fast one.
PauliSum maxcut_pauli_sum(const Graph& g);

}  // namespace qgnn
