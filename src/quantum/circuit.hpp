#pragma once

#include <string>
#include <variant>
#include <vector>

#include "quantum/gates.hpp"
#include "quantum/statevector.hpp"

namespace qgnn {

/// A recorded quantum circuit: an ordered list of gate operations that can
/// be replayed onto a StateVector. Useful for composing QAOA ansatz layers,
/// counting gate resources, and round-trip testing.
class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t size() const { return ops_.size(); }

  void h(int q) { add_single("h", gates::hadamard(), q); }
  void x(int q) { add_single("x", gates::pauli_x(), q); }
  void y(int q) { add_single("y", gates::pauli_y(), q); }
  void z(int q) { add_single("z", gates::pauli_z(), q); }
  void rx(int q, double theta) { add_single("rx", gates::rx(theta), q); }
  void ry(int q, double theta) { add_single("ry", gates::ry(theta), q); }
  void rz(int q, double theta) { add_single("rz", gates::rz(theta), q); }
  void cnot(int control, int target);
  void cz(int control, int target);
  void rzz(int a, int b, double theta);

  /// Apply all recorded operations to `state` in order.
  void apply_to(StateVector& state) const;

  /// Run the circuit starting from |0...0>.
  StateVector simulate() const;

  /// Run the circuit starting from |+>^n (the QAOA convention).
  StateVector simulate_from_plus() const;

  /// Number of two-qubit operations (the NISQ cost proxy).
  std::size_t two_qubit_gate_count() const;

  /// One line per op, e.g. "rx(0.500) q2" — for debugging and examples.
  std::string to_string() const;

 private:
  struct SingleOp {
    std::string name;
    gates::Gate2x2 gate;
    int target;
  };
  struct ControlledOp {
    std::string name;
    gates::Gate2x2 gate;
    int control;
    int target;
  };
  struct RzzOp {
    double theta;
    int a;
    int b;
  };
  using Op = std::variant<SingleOp, ControlledOp, RzzOp>;

  void add_single(std::string name, const gates::Gate2x2& g, int q);
  void check_qubit(int q) const;

  int num_qubits_;
  std::vector<Op> ops_;
};

}  // namespace qgnn
