#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "util/annotations.hpp"
#include "util/rng.hpp"

namespace qgnn {

using Amplitude = std::complex<double>;

/// Hard cap on simulable qubit counts, shared by every 2^n-sized component
/// (StateVector, Circuit, CostHamiltonian, DiagonalQaoa, PauliString,
/// IsingModel, dataset generation). 2^20 amplitudes is 16 MiB per state —
/// large enough for every experiment in the repo (benches sweep to n = 18)
/// while keeping per-thread evaluation workspaces cheap enough to cache.
/// The bitmask-based Max-Cut brute-force solver has its own, higher cap
/// (26) because it never materializes a statevector.
inline constexpr int kMaxQubits = 20;

/// Exact statevector simulator for n-qubit pure states (n <= kMaxQubits).
///
/// Convention: qubit 0 is the least-significant bit of the basis-state
/// index, so |q_{n-1} ... q_1 q_0> maps to index sum q_k 2^k. This matches
/// the usual little-endian simulator convention (Qiskit-style).
///
/// QAOA on Max-Cut only needs product-state preparation, single-qubit
/// rotations, two-qubit ZZ rotations, and diagonal observables, all of
/// which have dedicated fast paths; general single-qubit and controlled
/// gates are provided for completeness and for testing.
class StateVector {
 public:
  /// |0...0> on `num_qubits` qubits.
  explicit StateVector(int num_qubits);

  /// Uniform superposition |+>^n (the QAOA initial state).
  static StateVector plus_state(int num_qubits);

  /// Computational basis state |index>.
  static StateVector basis_state(int num_qubits, std::uint64_t index);

  /// Reset this state to |+>^n in place, reusing the existing buffer. The
  /// workspace-reuse fast path: optimization loops re-prepare thousands of
  /// QAOA states and must not reallocate 2^n amplitudes each time.
  void set_plus_state();

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dimension() const { return std::uint64_t{1} << num_qubits_; }

  const Amplitude& amplitude(std::uint64_t index) const;
  std::span<const Amplitude> amplitudes() const { return amps_; }
  std::span<Amplitude> mutable_amplitudes() { return amps_; }

  /// Apply an arbitrary 2x2 gate `m` (row-major: m00 m01 m10 m11) to
  /// `target`.
  void apply_single_qubit(const std::array<Amplitude, 4>& m, int target);

  /// Apply 2x2 gate `m` on `target` controlled on `control` being |1>.
  void apply_controlled(const std::array<Amplitude, 4>& m, int control,
                        int target);

  /// exp(-i theta/2 Z_a Z_b): the QAOA cost-layer primitive for one edge.
  void apply_rzz(double theta, int a, int b);

  /// Multiply each amplitude k by exp(-i gamma * diag[k]). `diag` must have
  /// `dimension()` entries. This is the whole-cost-layer fast path.
  void apply_diagonal_phase(std::span<const double> diag, double gamma);

  /// Multiply each amplitude k by table[index[k]]: the phase-table cost
  /// layer. `index` maps each basis state to its quantized diagonal level;
  /// the caller precomputes `table[l] = exp(-i gamma * level_l)` once per
  /// gamma, replacing 2^n sincos calls with 2^n table lookups.
  void apply_phase_table(std::span<const std::uint16_t> index,
                         std::span<const Amplitude> table)
      QGNN_BIT_IDENTICAL_PATH;

  /// Apply RX(theta) to EVERY qubit in one fused, cache-blocked sweep:
  /// the whole QAOA mixer layer e^{-i (theta/2) sum_v X_v}. Equivalent to
  /// n apply_single_qubit(rx(theta), q) calls (qubit order 0..n-1) but
  /// specialized to RX's [[c, -is], [-is, c]] structure (4 real FMAs per
  /// pair) and traversed block-wise so low-qubit passes stay L1-resident.
  void apply_rx_layer(double theta) QGNN_BIT_IDENTICAL_PATH;

  /// amps[k] = scale[k] * src[k] for all k: builds the adjoint-gradient
  /// seed lambda = D|psi> without a temporary.
  void assign_scaled(const StateVector& src, std::span<const double> scale);

  /// 2 * sum_k diag[k] * Im(conj(phi[k]) * amps[k]) = 2 Im<phi|D|psi>:
  /// the adjoint-gradient cost-layer overlap d<C>/dgamma.
  double phase_grad_overlap(const StateVector& phi,
                            std::span<const double> diag) const;

  /// 2 * Im<phi| B |psi> with B = sum_v X_v: the adjoint-gradient mixer
  /// overlap d<C>/dbeta.
  double mixer_grad_overlap(const StateVector& phi) const;

  /// Probability of measuring basis state `index`.
  double probability(std::uint64_t index) const;

  /// <psi| D |psi> for a diagonal observable D given by its diagonal.
  double expectation_diagonal(std::span<const double> diag) const;

  /// <psi| Z_q |psi>.
  double expectation_z(int qubit) const;

  /// Draw one measurement outcome in the computational basis.
  std::uint64_t sample(Rng& rng) const;

  /// Histogram of `shots` measurement outcomes.
  std::map<std::uint64_t, std::size_t> sample_counts(Rng& rng,
                                                     std::size_t shots) const;

  /// L2 norm of the state (1 for any valid state).
  double norm() const;

  /// <this|other>.
  Amplitude inner_product(const StateVector& other) const;

  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;

 private:
  void check_qubit(int q) const;

  int num_qubits_;
  std::vector<Amplitude> amps_;
};

}  // namespace qgnn
