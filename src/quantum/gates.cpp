#include "quantum/gates.hpp"

#include <cmath>

namespace qgnn::gates {

namespace {
constexpr Amplitude kZero{0.0, 0.0};
constexpr Amplitude kOne{1.0, 0.0};
const Amplitude kI{0.0, 1.0};
}  // namespace

Gate2x2 identity() { return {kOne, kZero, kZero, kOne}; }

Gate2x2 pauli_x() { return {kZero, kOne, kOne, kZero}; }

Gate2x2 pauli_y() { return {kZero, -kI, kI, kZero}; }

Gate2x2 pauli_z() { return {kOne, kZero, kZero, -kOne}; }

Gate2x2 hadamard() {
  const double s = 1.0 / std::sqrt(2.0);
  return {Amplitude{s, 0}, Amplitude{s, 0}, Amplitude{s, 0},
          Amplitude{-s, 0}};
}

Gate2x2 s_gate() { return {kOne, kZero, kZero, kI}; }

Gate2x2 t_gate() {
  const double s = 1.0 / std::sqrt(2.0);
  return {kOne, kZero, kZero, Amplitude{s, s}};
}

Gate2x2 rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Amplitude{c, 0}, Amplitude{0, -s}, Amplitude{0, -s},
          Amplitude{c, 0}};
}

Gate2x2 ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Amplitude{c, 0}, Amplitude{-s, 0}, Amplitude{s, 0},
          Amplitude{c, 0}};
}

Gate2x2 rz(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Amplitude{c, -s}, kZero, kZero, Amplitude{c, s}};
}

Gate2x2 phase(double phi) {
  return {kOne, kZero, kZero, Amplitude{std::cos(phi), std::sin(phi)}};
}

Gate2x2 multiply(const Gate2x2& a, const Gate2x2& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Gate2x2 adjoint(const Gate2x2& g) {
  return {std::conj(g[0]), std::conj(g[2]), std::conj(g[1]),
          std::conj(g[3])};
}

bool is_unitary(const Gate2x2& g, double tol) {
  const Gate2x2 p = multiply(adjoint(g), g);
  return std::abs(p[0] - kOne) < tol && std::abs(p[1]) < tol &&
         std::abs(p[2]) < tol && std::abs(p[3] - kOne) < tol;
}

}  // namespace qgnn::gates
