#include "util/thread_pool.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/error.hpp"

namespace qgnn {

namespace {

/// Set while a thread is executing chunk bodies, so nested parallel_for
/// calls (from a worker or from the caller's own participation) run
/// serially instead of re-entering the pool.
thread_local bool tl_in_parallel_region = false;

// The process-wide pool singleton: intentional shared state, guarded by
// g_global_mutex and sized once from QGNN_NUM_THREADS. Work scheduled on
// it stays thread-count invariant by construction (fixed chunk
// decomposition), so the usual objection to mutable globals does not bite.
// qgnn-lint: allow(mutable-global)
std::mutex g_global_mutex;
// qgnn-lint: allow(mutable-global)
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  QGNN_REQUIRE(num_threads >= 1, "thread pool needs at least one lane");
  auto& registry = obs::MetricsRegistry::global();
  obs_jobs_ = &registry.counter(obs::names::kPoolJobs);
  obs_chunks_ = &registry.counter(obs::names::kPoolChunks);
  obs_idle_us_ = &registry.counter(obs::names::kPoolWorkerIdleUs);
  obs_max_chunks_ = &registry.gauge(obs::names::kPoolMaxChunksInJob);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 0; t < num_threads - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::participate(Job& job) {
  const bool was_in_region = tl_in_parallel_region;
  tl_in_parallel_region = true;
  std::uint64_t c;
  while ((c = job.next.fetch_add(1, std::memory_order_relaxed)) <
         job.chunks) {
    if (!job.failed.load(std::memory_order_relaxed)) {
      const std::uint64_t lo = job.begin + c * job.grain;
      const std::uint64_t hi = std::min(job.end, lo + job.grain);
      try {
        (*job.body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.chunks) {
      std::lock_guard<std::mutex> lk(mutex_);
      done_.notify_all();
    }
  }
  tl_in_parallel_region = was_in_region;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      // Idle accounting reads the clock only when observability is on.
      const bool timed = obs::enabled();
      const auto idle_begin = timed ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
      std::unique_lock<std::mutex> lk(mutex_);
      wake_.wait(lk, [&] {
        return stop_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (timed) {
        const auto idle_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - idle_begin)
                .count();
        worker_idle_us_.fetch_add(static_cast<std::uint64_t>(idle_us),
                                  std::memory_order_relaxed);
        obs_idle_us_->add(static_cast<std::uint64_t>(idle_us));
      }
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    participate(*job);
  }
}

void ThreadPool::parallel_for(std::uint64_t begin, std::uint64_t end,
                              std::uint64_t grain, const RangeBody& body) {
  if (end <= begin) return;
  const std::uint64_t g = std::max<std::uint64_t>(1, grain);
  const std::uint64_t chunks = (end - begin + g - 1) / g;
  jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) obs_jobs_->add(1);
  if (num_threads_ <= 1 || chunks <= 1 || tl_in_parallel_region) {
    chunks_executed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) obs_chunks_->add(1);
    body(begin, end);
    return;
  }

  parallel_jobs_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen_max = max_chunks_in_job_.load(std::memory_order_relaxed);
  while (chunks > seen_max &&
         !max_chunks_in_job_.compare_exchange_weak(
             seen_max, chunks, std::memory_order_relaxed)) {
  }
  if (obs::enabled()) {
    obs_max_chunks_->record_max(static_cast<double>(chunks));
  }

  std::lock_guard<std::mutex> submit_lk(submit_mutex_);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = g;
  job->chunks = chunks;
  job->body = &body;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    job_ = job;
    ++job_epoch_;
  }
  wake_.notify_all();

  participate(*job);

  {
    std::unique_lock<std::mutex> lk(mutex_);
    done_.wait(lk, [&] {
      return job->completed.load(std::memory_order_acquire) == job->chunks;
    });
    job_ = nullptr;
  }
  chunks_executed_.fetch_add(chunks, std::memory_order_relaxed);
  if (obs::enabled()) obs_chunks_->add(chunks);
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool::Counters ThreadPool::counters() const {
  Counters c;
  c.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  c.parallel_jobs = parallel_jobs_.load(std::memory_order_relaxed);
  c.chunks_executed = chunks_executed_.load(std::memory_order_relaxed);
  c.max_chunks_in_job = max_chunks_in_job_.load(std::memory_order_relaxed);
  c.worker_idle_us = worker_idle_us_.load(std::memory_order_relaxed);
  return c;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(configured_threads());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_threads(int num_threads) {
  QGNN_REQUIRE(num_threads >= 1, "thread pool needs at least one lane");
  std::lock_guard<std::mutex> lk(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

int ThreadPool::configured_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(std::min(hw, 256u));
  const char* env = std::getenv("QGNN_NUM_THREADS");
  if (!env) return fallback;

  // Strict parse: the whole value must be one integer in [1, 256]. Anything
  // else ("8cores", "0", "99999", "") falls back to the hardware default
  // with a warning — silently clamping or truncating would hide typos.
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(env, &end, 10);
  const bool parsed = end != env && *end == '\0' && errno == 0;
  if (parsed && n >= 1 && n <= 256) return static_cast<int>(n);

  std::fprintf(stderr,
               "qgnn: warning: QGNN_NUM_THREADS='%s' is not an integer in "
               "[1, 256]; using default of %d threads\n",
               env, fallback);
  return fallback;
}

}  // namespace qgnn
