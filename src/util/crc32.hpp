#pragma once

#include <cstddef>
#include <cstdint>

namespace qgnn {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). `crc` chains a
/// previous result: crc32_ieee(b, crc32_ieee(a)) == crc32_ieee(a ++ b).
/// Shared by the packed dataset format (src/dataset/packed), the model
/// checkpoint trailer (src/gnn/model) and the trainer checkpoint frame
/// (src/gnn/checkpoint) so every on-disk artifact uses one polynomial.
std::uint32_t crc32_ieee(const void* data, std::size_t size,
                         std::uint32_t crc = 0);

}  // namespace qgnn
