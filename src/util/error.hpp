#pragma once

#include <stdexcept>
#include <string>

namespace qgnn {

/// Base exception for all qgnn errors. Thrown on precondition violations
/// (bad arguments, malformed files, numerical failures).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a file cannot be read/written or has an unexpected format.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or produces NaN/Inf.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_requirement_failed(const char* expr, const char* file,
                                           int line, const std::string& msg);
}  // namespace detail

}  // namespace qgnn

/// Precondition check that is always on (not an assert): throws
/// qgnn::InvalidArgument with file/line context when `expr` is false.
#define QGNN_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::qgnn::detail::throw_requirement_failed(#expr, __FILE__, __LINE__,   \
                                               (msg));                      \
    }                                                                       \
  } while (false)
