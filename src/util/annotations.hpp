#pragma once

// Concurrency and determinism annotation vocabulary (DESIGN.md §14).
//
// The serving stack spans a thread pool, an epoll event loop, re-exec'd
// shard workers, and background mining threads; these macros let a
// declaration state the invariant it depends on, and tools/qgnn_lint's
// project-wide flow checkers enforce it on every build:
//
//   QGNN_GUARDED_BY(m)       member is only read/written while mutex
//                            member `m` is held (lock-discipline check)
//   QGNN_REQUIRES(m)         function must be called with `m` held; its
//                            body may touch members guarded by `m`
//   QGNN_EXCLUDES(m)         function must NOT be called with `m` held
//                            (it acquires `m` itself)
//   QGNN_EVENT_LOOP_ONLY     function runs on the epoll loop thread and
//                            everything reachable from it must stay
//                            non-blocking (event-loop-blocking check)
//   QGNN_BIT_IDENTICAL_PATH  function is on a byte-determinism surface
//                            (statevector, packed writer, canonical
//                            hash, checkpoints): no FMA contraction, no
//                            unordered-container iteration into output,
//                            no ISA-dependent state reads
//                            (bit-identical-path check)
//
// Placement: after the declarator, before the terminating `;` or body —
// the same position Clang's thread-safety attributes use:
//
//   std::deque<Job> queue_ QGNN_GUARDED_BY(mutex_);
//   void start_workers_locked() QGNN_REQUIRES(mutex_);
//   void on_line(std::uint64_t id, std::string&& l) QGNN_EVENT_LOOP_ONLY;
//
// Expansion tiers:
//   - Clang with the thread-safety opt-in (-DQGNN_CLANG_THREAD_SAFETY,
//     the CI clang job): the lock annotations expand to the Clang
//     thread-safety attributes so -Wthread-safety compiler-checks the
//     same contracts qgnn_lint enforces. Pair with libc++'s
//     _LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS so std::mutex and the
//     guard types are capability-annotated.
//   - everywhere else: the macros expand to nothing.
// qgnn_lint reads the macro spellings straight from source tokens, so
// the lint-time contracts hold regardless of compiler or build flags.

#if defined(__clang__) && defined(QGNN_CLANG_THREAD_SAFETY)
#define QGNN_TS_ATTR(x) __attribute__((x))
#else
#define QGNN_TS_ATTR(x)
#endif

#define QGNN_GUARDED_BY(m) QGNN_TS_ATTR(guarded_by(m))
#define QGNN_REQUIRES(...) QGNN_TS_ATTR(exclusive_locks_required(__VA_ARGS__))
#define QGNN_EXCLUDES(...) QGNN_TS_ATTR(locks_excluded(__VA_ARGS__))

// Lint-only markers: no compiler-attribute equivalent exists for "runs
// on the event loop" or "byte-deterministic output path".
#define QGNN_EVENT_LOOP_ONLY
#define QGNN_BIT_IDENTICAL_PATH
