#include "util/error.hpp"

#include <sstream>

namespace qgnn::detail {

void throw_requirement_failed(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << msg << " [" << expr << " at " << file << ':'
     << line << ']';
  throw InvalidArgument(os.str());
}

}  // namespace qgnn::detail
