#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qgnn {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  QGNN_REQUIRE(!values.empty(), "percentile of empty sample");
  QGNN_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  QGNN_REQUIRE(bins > 0, "histogram needs at least one bin");
  QGNN_REQUIRE(lo < hi, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  QGNN_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::size_t FrequencyTable::total() const {
  std::size_t t = 0;
  for (const auto& [k, c] : counts_) t += c;
  return t;
}

}  // namespace qgnn
