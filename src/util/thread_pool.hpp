#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace qgnn::obs {
class Counter;
class Gauge;
}  // namespace qgnn::obs

namespace qgnn {

/// Fixed pool of worker threads running chunked parallel-for loops.
///
/// Design goals, in order:
///  1. Determinism: chunk boundaries depend only on the range and the
///     grain, never on the pool size, so any per-chunk combination step
///     (see parallel_reduce) is bit-identical at 1, 2, or N threads.
///  2. Safety: exceptions thrown by a body are captured and rethrown on
///     the calling thread; re-entrant calls from inside a worker degrade
///     to serial execution instead of deadlocking.
///  3. Low overhead: workers are started once and woken per job; the
///     calling thread participates, so a pool of size 1 spawns no threads
///     at all and runs every body inline.
///
/// The process-wide instance (global()) is sized by the QGNN_NUM_THREADS
/// environment variable, defaulting to std::thread::hardware_concurrency().
class ThreadPool {
 public:
  using RangeBody = std::function<void(std::uint64_t, std::uint64_t)>;

  /// Spawns `num_threads - 1` workers (the caller is the remaining lane).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, including the calling thread.
  int size() const { return num_threads_; }

  /// Lifetime counters for this pool, monotonic since construction.
  /// Mirrored into the process-wide metrics registry under pool.* names
  /// (pool.jobs, pool.chunks, pool.worker_idle_us, pool.max_chunks_in_job)
  /// when observability is enabled; these per-pool values are always
  /// maintained — they cost one relaxed increment per job, not per chunk.
  struct Counters {
    std::uint64_t jobs_submitted = 0;   // non-empty parallel_for calls
    std::uint64_t parallel_jobs = 0;    // jobs that fanned out to workers
    std::uint64_t chunks_executed = 0;  // serial jobs count as one chunk
    std::uint64_t max_chunks_in_job = 0;
    std::uint64_t worker_idle_us = 0;   // workers' time blocked waiting
  };
  Counters counters() const;

  /// Split [begin, end) into chunks of at most `grain` elements and run
  /// body(chunk_begin, chunk_end) across the pool. Blocks until every
  /// chunk has finished. The first exception thrown by a body is rethrown
  /// here (remaining chunks are skipped). Calls made from inside a worker
  /// run the whole range serially on that worker.
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, const RangeBody& body);

  /// Deterministic chunked sum: chunk_sum(chunk_begin, chunk_end) returns
  /// one partial per chunk; partials are combined serially in chunk order,
  /// so the result is bit-identical for every pool size, including 1.
  template <typename T, typename ChunkFn>
  T parallel_reduce(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t grain, T zero, const ChunkFn& chunk_sum) {
    if (end <= begin) return zero;
    const std::uint64_t g = std::max<std::uint64_t>(1, grain);
    const std::uint64_t chunks = (end - begin + g - 1) / g;
    std::vector<T> partial(chunks, zero);
    parallel_for(0, chunks, 1,
                 [&](std::uint64_t cb, std::uint64_t ce) {
                   for (std::uint64_t c = cb; c < ce; ++c) {
                     const std::uint64_t lo = begin + c * g;
                     const std::uint64_t hi = std::min(end, lo + g);
                     partial[c] = chunk_sum(lo, hi);
                   }
                 });
    T acc = zero;
    for (const T& p : partial) acc += p;
    return acc;
  }

  /// Process-wide pool, created on first use with configured_threads().
  static ThreadPool& global();

  /// Replace the global pool with one of `num_threads` lanes. Intended for
  /// tests and benchmarks; must not race with parallel work in flight.
  static void set_global_threads(int num_threads);

  /// Lane count from QGNN_NUM_THREADS. The value must be a whole integer
  /// in [1, 256]; non-numeric, partial, or out-of-range values emit a
  /// warning on stderr and fall back to hardware_concurrency() (which
  /// itself falls back to 1).
  static int configured_threads();

 private:
  struct Job {
    std::uint64_t begin = 0;
    std::uint64_t grain = 1;
    std::uint64_t end = 0;
    std::uint64_t chunks = 0;
    const RangeBody* body = nullptr;
    std::atomic<std::uint64_t> next{0};       // next chunk to claim
    std::atomic<std::uint64_t> completed{0};  // chunks fully accounted for
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  /// Claim and run chunks of `job` until none remain. Every claimed chunk
  /// is counted in `completed` even when skipped after a failure.
  void participate(Job& job);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  /// Job being executed, null when idle.
  std::shared_ptr<Job> job_ QGNN_GUARDED_BY(mutex_);
  /// Bumped per job so workers never re-join one.
  std::uint64_t job_epoch_ QGNN_GUARDED_BY(mutex_) = 0;
  bool stop_ QGNN_GUARDED_BY(mutex_) = false;

  std::mutex submit_mutex_;  // serializes parallel_for calls across threads

  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> parallel_jobs_{0};
  std::atomic<std::uint64_t> chunks_executed_{0};
  std::atomic<std::uint64_t> max_chunks_in_job_{0};
  std::atomic<std::uint64_t> worker_idle_us_{0};

  // Registry mirrors, resolved once in the constructor so the registry
  // outlives the pool's worker threads (static destruction order).
  obs::Counter* obs_jobs_ = nullptr;
  obs::Counter* obs_chunks_ = nullptr;
  obs::Counter* obs_idle_us_ = nullptr;
  obs::Gauge* obs_max_chunks_ = nullptr;
};

}  // namespace qgnn
