#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace qgnn {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  QGNN_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  QGNN_REQUIRE(row.size() == header_.size(),
               "row width does not match header");
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << std::left << row[c];
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      // Quote cells containing commas or quotes.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << to_csv();
  if (!out) throw IoError("write failed: " + path);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_mean_std(double mean, double stddev, int precision) {
  return format_double(mean, precision) + " +/- " +
         format_double(stddev, precision);
}

}  // namespace qgnn
