#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qgnn {

/// Console/CSV table formatter used by the reproduction benches so every
/// table and figure prints in a uniform, diff-friendly layout.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Numeric helper: formats each value with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 4);

  /// Render aligned, pipe-separated text to `os`.
  void print(std::ostream& os) const;

  /// Comma-separated values (no alignment padding), for file export.
  std::string to_csv() const;

  /// Write to_csv() to the given path; throws IoError on failure.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (trailing zeros kept).
std::string format_double(double v, int precision = 4);

/// "mean ± std" formatting used by Table 1.
std::string format_mean_std(double mean, double stddev, int precision = 2);

}  // namespace qgnn
