#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/error.hpp"

namespace qgnn {

/// Stateless seed derivation for parallel work: mixes (seed, index) through
/// a splitmix64-style finalizer so each unit of work (graph, sample, ...)
/// gets its own independent stream. Unlike Rng::child(), the result does
/// not depend on how many streams were derived before it, so work items
/// can be seeded identically regardless of scheduling order or thread
/// count.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic random number generator used by every stochastic component
/// in the library. Wraps std::mt19937_64 with convenience draws and a
/// `child()` derivation scheme so independent subsystems can be seeded from
/// one master seed without correlated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Derive an independent child generator. Successive calls yield distinct
  /// streams; deterministic given the parent's current state.
  Rng child() { return Rng(engine_() ^ 0xd1b54a32d192ed03ULL); }

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    QGNN_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
    return lo + (hi - lo) * unit_(engine_);
  }

  /// Standard normal draw.
  double normal() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal_(engine_);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int uniform_int(int lo, int hi) {
    QGNN_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t index in [0, n).
  std::size_t index(std::size_t n) {
    QGNN_REQUIRE(n > 0, "index(n) needs n > 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    QGNN_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli probability out of [0,1]");
    return unit_(engine_) < p;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace qgnn
