#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <vector>

namespace qgnn {

/// Streaming mean/variance/extrema accumulator (Welford's algorithm).
/// Numerically stable for long streams; O(1) memory.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (divides by n-1); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample by linear interpolation between closest ranks.
/// `q` in [0, 1]. Copies and sorts internally; fine for the small samples
/// used in reports.
double percentile(std::vector<double> values, double q);

double mean_of(const std::vector<double>& values);
double stddev_of(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi] with `bins` buckets. Values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  std::size_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Integer-keyed frequency counter (used for degree / graph-size frequency
/// plots like the paper's Figure 2).
class FrequencyTable {
 public:
  void add(int key) { ++counts_[key]; }
  const std::map<int, std::size_t>& counts() const { return counts_; }
  std::size_t total() const;

 private:
  std::map<int, std::size_t> counts_;
};

}  // namespace qgnn
