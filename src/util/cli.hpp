#pragma once

#include <map>
#include <string>
#include <vector>

namespace qgnn {

/// Minimal command-line flag parser for the bench/example binaries.
/// Accepts `--key=value`, `--key value`, and bare `--flag` (boolean true).
/// Unknown positional arguments are collected in order.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// True when the environment requests paper-scale runs (QGNN_FULL=1) or the
/// command line contains --full.
bool full_scale_requested(const CliArgs& args);

}  // namespace qgnn
