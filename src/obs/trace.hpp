#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qgnn::obs {

/// Scoped trace spans recorded into per-thread ring buffers and exported
/// as Chrome trace_event JSON — load the file in about://tracing (or
/// ui.perfetto.dev) to see the per-thread timeline.
///
/// Usage:
///   void ServeHandle::execute_batch(...) {
///     QGNN_TRACE_SPAN("serve.forward");
///     ...
///   }
/// When the collector is inactive (the default), a span costs one relaxed
/// atomic load; no clock is read and nothing is stored. When active, each
/// span records one complete ("ph":"X") event at scope exit under its
/// thread's buffer mutex — uncontended except during export.
///
/// Span names must have static storage duration (string literals): the
/// collector stores the pointer, not a copy.
///
/// Activation: call TraceCollector::global().start() (the `--trace-out`
/// flag of qgnn_serve / serve_bench / perf_microbench does this), or set
/// the QGNN_TRACE=<path> environment variable to trace any binary in the
/// repo — the collector starts at first use and writes <path> at process
/// exit.
class TraceCollector {
 public:
  /// Events kept per thread; older events are overwritten ring-style and
  /// counted in dropped_events(). 64k spans x 40 B ~ 2.5 MiB per thread.
  static constexpr std::size_t kRingCapacity = 1 << 16;

  struct Event {
    const char* name;  // static storage (string literal)
    double ts_us;      // begin, relative to the collector epoch
    double dur_us;
    int tid;
  };

  static TraceCollector& global();

  /// Discard previously recorded events and begin recording.
  void start();
  void stop();
  bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Record one complete span (normally via TraceSpan, not directly).
  void record(const char* name,
              std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end);

  std::size_t event_count() const;
  std::uint64_t dropped_events() const;

  /// Write every recorded event as Chrome trace-format JSON:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,
  ///   "pid":...,"tid":...},...]}. Safe to call while spans are still
  /// being recorded (each thread buffer is locked in turn), though a
  /// quiescent stop() first gives a consistent file.
  void write_chrome_trace(std::ostream& out) const;
  /// Same, to a file. Throws std::runtime_error if the file cannot be
  /// written.
  void write_chrome_trace_file(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<Event> ring;
    std::size_t next = 0;       // ring write cursor
    std::size_t size = 0;       // valid events (<= kRingCapacity)
    std::uint64_t dropped = 0;  // overwritten events
    int tid = 0;
  };

  TraceCollector();
  ThreadBuffer& buffer_for_this_thread();

  std::atomic<bool> active_{false};
  /// start() time as nanoseconds on the steady clock; atomic so record()
  /// can read it without taking the buffers mutex.
  std::atomic<std::int64_t> epoch_ns_{0};

  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<int> next_tid_{0};
};

/// RAII span: records [construction, destruction) into the global
/// collector when it is active. See QGNN_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), active_(TraceCollector::global().active()) {
    if (active_) begin_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() {
    if (active_) {
      TraceCollector::global().record(name_, begin_,
                                      std::chrono::steady_clock::now());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point begin_;
};

#define QGNN_OBS_CONCAT_INNER(a, b) a##b
#define QGNN_OBS_CONCAT(a, b) QGNN_OBS_CONCAT_INNER(a, b)

/// Open a trace span covering the rest of the enclosing scope.
/// `name` must be a string literal, conventionally "<subsystem>.<what>".
#define QGNN_TRACE_SPAN(name) \
  ::qgnn::obs::TraceSpan QGNN_OBS_CONCAT(qgnn_obs_span_, __LINE__){name}

}  // namespace qgnn::obs
