#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace qgnn::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Path from QGNN_TRACE, written at process exit when set.
std::string& env_trace_path() {
  static std::string path;
  return path;
}

void write_env_trace_at_exit() {
  try {
    TraceCollector::global().write_chrome_trace_file(env_trace_path());
    std::fprintf(stderr, "qgnn: wrote trace to %s (%zu event(s))\n",
                 env_trace_path().c_str(),
                 TraceCollector::global().event_count());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qgnn: failed to write QGNN_TRACE file: %s\n",
                 e.what());
  }
}

void append_escaped_name(std::string& out, const char* name) {
  out.push_back('"');
  for (const char* c = name; *c != '\0'; ++c) {
    if (*c == '"' || *c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(*c) < 0x20) {
      out.push_back('?');  // control chars never appear in span literals
    } else {
      out.push_back(*c);
    }
  }
  out.push_back('"');
}

}  // namespace

TraceCollector::TraceCollector() {
  const char* env = std::getenv("QGNN_TRACE");
  if (env != nullptr && env[0] != '\0') {
    env_trace_path() = env;
    start();
    std::atexit(write_env_trace_at_exit);
  }
}

TraceCollector& TraceCollector::global() {
  // Intentionally leaked: the constructor registers an atexit writer when
  // QGNN_TRACE is set, and atexit handlers run after the destructor of a
  // function-local static registered from inside its own constructor —
  // the writer would lock a destroyed mutex. A leaked singleton has no
  // destruction order to get wrong.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::start() {
  std::lock_guard<std::mutex> lk(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> blk(buffer->mutex);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->size = 0;
    buffer->dropped = 0;
  }
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void TraceCollector::stop() {
  active_.store(false, std::memory_order_relaxed);
}

TraceCollector::ThreadBuffer& TraceCollector::buffer_for_this_thread() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    fresh->tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lk(buffers_mutex_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void TraceCollector::record(const char* name,
                            std::chrono::steady_clock::time_point begin,
                            std::chrono::steady_clock::time_point end) {
  if (!active()) return;
  const std::int64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  const std::int64_t begin_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          begin.time_since_epoch())
          .count();

  ThreadBuffer& buffer = buffer_for_this_thread();
  Event event;
  event.name = name;
  event.ts_us = static_cast<double>(begin_ns - epoch) * 1e-3;
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin)
                     .count();
  event.tid = buffer.tid;

  std::lock_guard<std::mutex> lk(buffer.mutex);
  if (buffer.ring.size() < kRingCapacity) {
    buffer.ring.push_back(event);
    buffer.next = buffer.ring.size() % kRingCapacity;
    buffer.size = buffer.ring.size();
  } else {
    buffer.ring[buffer.next] = event;  // overwrite oldest
    buffer.next = (buffer.next + 1) % kRingCapacity;
    ++buffer.dropped;
  }
}

std::size_t TraceCollector::event_count() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> lk(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> blk(buffer->mutex);
    total += buffer->size;
  }
  return total;
}

std::uint64_t TraceCollector::dropped_events() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lk(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> blk(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lk(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> blk(buffer->mutex);
      events.insert(events.end(), buffer->ring.begin(),
                    buffer->ring.begin() +
                        static_cast<std::ptrdiff_t>(buffer->size));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  std::string body;
  body.reserve(events.size() * 96 + 64);
  body += "{\"traceEvents\":[";
  char scratch[160];
  bool first = true;
  for (const Event& e : events) {
    if (!first) body.push_back(',');
    first = false;
    body += "{\"name\":";
    append_escaped_name(body, e.name);
    std::snprintf(scratch, sizeof(scratch),
                  ",\"cat\":\"qgnn\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
                  e.ts_us, e.dur_us, e.tid);
    body += scratch;
  }
  body += "]}";
  out << body << '\n';
}

void TraceCollector::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    throw std::runtime_error("failed writing trace output file: " + path);
  }
}

}  // namespace qgnn::obs
