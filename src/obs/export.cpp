#include "obs/export.hpp"

#include <cmath>
#include <cstdio>

namespace qgnn::obs {

namespace {

void append_number(std::string& out, double x) {
  char buf[40];
  if (!std::isfinite(x)) {
    out += "null";
  } else if (x == std::floor(x) && std::fabs(x) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", x);
    out += buf;
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    out += buf;
  }
}

void append_quoted(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

void append_summary_json(std::string& out, const HistogramSummary& h) {
  out += "{\"count\":";
  append_number(out, static_cast<double>(h.count));
  out += ",\"sum\":";
  append_number(out, h.sum);
  out += ",\"mean\":";
  append_number(out, h.mean);
  out += ",\"min\":";
  append_number(out, h.min);
  out += ",\"max\":";
  append_number(out, h.max);
  out += ",\"p50\":";
  append_number(out, h.p50);
  out += ",\"p90\":";
  append_number(out, h.p90);
  out += ",\"p99\":";
  append_number(out, h.p99);
  out += "}";
}

}  // namespace

std::string render_text(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "counter  %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "gauge    %-32s %.6g\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "hist     %-32s count=%llu mean=%.6g min=%.6g max=%.6g "
                  "p50=%.6g p90=%.6g p99=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean, h.min, h.max, h.p50, h.p90, h.p99);
    out += line;
  }
  return out;
}

std::string render_json(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    append_quoted(out, name);
    out.push_back(':');
    append_number(out, static_cast<double>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_quoted(out, name);
    out.push_back(':');
    append_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_quoted(out, name);
    out.push_back(':');
    append_summary_json(out, h);
  }
  out += "}}";
  return out;
}

}  // namespace qgnn::obs
