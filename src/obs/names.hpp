#pragma once

/// Central registry of every metric and trace-span name in the library.
///
/// Instrumentation sites must name metrics through these constants (or, in
/// tests, through literals that still follow the convention); `qgnn_lint`
/// parses this file and rejects any string literal passed to
/// MetricsRegistry::counter/gauge/histogram or QGNN_TRACE_SPAN inside src/
/// that is not registered here, so a typo'd name fails the build instead of
/// silently splitting a metric in two.
///
/// Naming convention (DESIGN.md §7): `<subsystem>.<metric>[_<unit>]` —
/// lower-case, one dot, unit suffix on anything that is not a plain count
/// (`_us` microseconds, `_bytes`, ...). qgnn_lint enforces the shape of
/// every constant below as well as of ad-hoc literals.
///
/// Parsing contract for qgnn_lint: each registered name is declared on a
/// single line as `inline constexpr const char* k<Name> = "<value>";`.

namespace qgnn::obs::names {

// SIMD kernel dispatch (src/simd/dispatch.cpp). Gauge value is the
// numeric simd::Isa the kernels resolve to (0 generic, 1 avx2,
// 2 avx512).
inline constexpr const char* kKernelIsa = "kernel.isa";

// Thread pool (src/util/thread_pool.cpp).
inline constexpr const char* kPoolJobs = "pool.jobs";
inline constexpr const char* kPoolChunks = "pool.chunks";
inline constexpr const char* kPoolWorkerIdleUs = "pool.worker_idle_us";
inline constexpr const char* kPoolMaxChunksInJob = "pool.max_chunks_in_job";

// Statevector kernels (src/quantum/statevector.cpp).
inline constexpr const char* kQuantumAmpsTouched = "quantum.amps_touched";
inline constexpr const char* kQuantumKernelUs = "quantum.kernel_us";

// GNN trainer (src/gnn/trainer.cpp).
inline constexpr const char* kTrainEpochUs = "train.epoch_us";
inline constexpr const char* kTrainForwardUs = "train.forward_us";
inline constexpr const char* kTrainBackwardUs = "train.backward_us";
inline constexpr const char* kTrainOptimizerUs = "train.optimizer_us";
inline constexpr const char* kTrainEpochSpan = "train.epoch";

// QAOA optimizers and evaluation engine (src/qaoa).
inline constexpr const char* kQaoaEvaluations = "qaoa.evaluations";
inline constexpr const char* kQaoaOptimizations = "qaoa.optimizations";
inline constexpr const char* kQaoaPhaseTableUs = "qaoa.phase_table_us";
inline constexpr const char* kQaoaGradPasses = "qaoa.grad_passes";

// Batched dataset factory (src/dataset/factory.cpp).
inline constexpr const char* kDatasetGraphsLabeled = "dataset.graphs_labeled";
inline constexpr const char* kDatasetBatchFill = "dataset.batch_fill";
inline constexpr const char* kDatasetLabelWaveUs = "dataset.label_wave_us";
inline constexpr const char* kDatasetShardCommitUs = "dataset.shard_commit_us";

// Networked front end (src/net/tcp_server.cpp).
inline constexpr const char* kNetConnectionsAccepted = "net.connections_accepted";
inline constexpr const char* kNetLinesIn = "net.lines_in";
inline constexpr const char* kNetLinesOut = "net.lines_out";
inline constexpr const char* kNetOversizedLines = "net.oversized_lines";
inline constexpr const char* kNetQueueWaitUs = "net.queue_wait_us";

// Shard router (src/serve/router.cpp).
inline constexpr const char* kRouterRequests = "router.requests";
inline constexpr const char* kRouterShed = "router.shed";
inline constexpr const char* kRouterDegraded = "router.degraded";
inline constexpr const char* kRouterShardErrors = "router.shard_errors";
inline constexpr const char* kRouterHealthChecks = "router.health_checks";
inline constexpr const char* kRouterForwardUs = "router.forward_us";

// Serving (src/serve/service.cpp). Stage *histograms* are per-handle
// members (see ServeStats); only the trace spans go through the global
// collector, but their names are registered here all the same.
inline constexpr const char* kServePredictSpan = "serve.predict";
inline constexpr const char* kServeBatchFormSpan = "serve.batch_form";
inline constexpr const char* kServeForwardSpan = "serve.forward";

// Online hard-example mining (src/mine, DESIGN.md §12).
inline constexpr const char* kMineObserved = "mine.observed";
inline constexpr const char* kMineMinedLowAr = "mine.mined_low_ar";
inline constexpr const char* kMineMinedNovel = "mine.mined_novel";
inline constexpr const char* kMineDeduped = "mine.deduped";
inline constexpr const char* kMineDropped = "mine.dropped";
inline constexpr const char* kMineSpilled = "mine.spilled";
inline constexpr const char* kMineBufferDepth = "mine.buffer_depth";
inline constexpr const char* kMineRelabeled = "mine.relabeled";
inline constexpr const char* kMineRelabelUs = "mine.relabel_us";
inline constexpr const char* kMineFineTuneUs = "mine.fine_tune_us";
inline constexpr const char* kMineGateEvalUs = "mine.gate_eval_us";
inline constexpr const char* kMineGatePromoted = "mine.gate_promoted";
inline constexpr const char* kMineGateRejected = "mine.gate_rejected";
inline constexpr const char* kMineCycles = "mine.cycles";
inline constexpr const char* kMineCycleErrors = "mine.cycle_errors";

}  // namespace qgnn::obs::names
