#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qgnn::obs {

/// Low-overhead process metrics: counters, gauges, and log-bucketed
/// latency histograms, optionally grouped in a process-wide registry.
///
/// Hot-path contract:
///  - Counter::add / Gauge ops / LatencyHistogram::record write relaxed
///    atomics in a thread-indexed shard — no locks, no cross-thread
///    cache-line sharing in steady state, TSan-clean by construction.
///  - The primitives are always live. The process-wide on/off switch
///    (enabled(), QGNN_OBS=0) is honored by the INSTRUMENTATION SITES:
///    they check enabled() once and skip clock reads and record calls
///    entirely, so disabled mode costs one relaxed load per site.
///  - Reads (value(), summary(), snapshot()) merge the shards; they are
///    meant for exporters and tests, not for hot paths.

/// Process-wide instrumentation switch. Initialized from the QGNN_OBS
/// environment variable ("0", "false", or "off" disable; anything else,
/// including unset, enables) and overridable at runtime.
bool enabled();
void set_enabled(bool on);

namespace detail {

/// Shard count for per-thread striping. Threads are assigned shards
/// round-robin; two threads sharing a shard stay correct (the slots are
/// atomic), they just contend a little.
inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
std::size_t shard_index();

struct alignas(64) ShardU64 {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) ShardF64 {
  std::atomic<double> value{0.0};
};

}  // namespace detail

/// Monotonic event counter. add() is wait-free; value() sums the shards
/// (and may miss adds that race with it, like any statistical counter).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[detail::shard_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  std::array<detail::ShardU64, detail::kShards> shards_;
};

/// Last-value-wins instantaneous metric with an atomic max variant for
/// high-water marks (queue depths, in-flight counts).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  /// Raise the gauge to v if v is larger (high-water mark).
  void record_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of a LatencyHistogram at one point in time.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Log-bucketed histogram for non-negative values (latencies in
/// microseconds, batch sizes, amplitude counts — any positive magnitude).
///
/// Buckets are 8 linear sub-buckets per power of two across [2^-10, 2^30),
/// plus underflow/overflow buckets, so quantiles carry at most ~7%
/// relative error (half of the widest sub-bucket) regardless of how many
/// samples stream in; memory is fixed at buckets x shards slots. record()
/// is one relaxed fetch_add in the caller's shard plus sum/min/max
/// bookkeeping; percentiles interpolate linearly inside the target bucket,
/// clamped to the observed [min, max].
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 8;   // per power of two
  static constexpr int kMinExp = -10;     // 2^-10 ~ 1e-3
  static constexpr int kMaxExp = 30;      // 2^30 ~ 1.07e9
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  LatencyHistogram();

  void record(double value);

  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Quantile q in [0, 1] by rank walk over the merged buckets.
  double percentile(double q) const;
  HistogramSummary summary() const;
  /// Merge another histogram's buckets and extrema into this one.
  void merge(const LatencyHistogram& other);
  void reset();

  /// Bucket index for a value; exposed for tests and exporters.
  static std::size_t bucket_of(double value);
  /// Inclusive lower / exclusive upper value bound of a bucket.
  static double bucket_lo(std::size_t bucket);
  static double bucket_hi(std::size_t bucket);

 private:
  std::uint64_t merged_bucket(std::size_t bucket) const;

  /// counts_[bucket][shard]; bucket-major so a rank walk touches
  /// contiguous memory per bucket.
  std::vector<std::array<detail::ShardU64, detail::kShards>> counts_;
  std::array<detail::ShardF64, detail::kShards> sums_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// RAII timer recording elapsed microseconds into a histogram on scope
/// exit. Pass nullptr (e.g. when obs::enabled() is false) for a strict
/// no-op that never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist),
        start_(hist ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    hist_->record(
        std::chrono::duration<double, std::micro>(end - start_).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Name -> metric map with stable references: a metric, once created, is
/// never moved or destroyed, so hot paths can cache the reference (the
/// usual pattern is a function-local `static Counter& c = ...`). Lookup
/// takes a mutex — do it once, not per event.
///
/// Naming scheme (see DESIGN.md §7): `<subsystem>.<metric>[_<unit>]`,
/// e.g. `pool.chunks`, `quantum.kernel_us`, `train.epoch_us`.
class MetricsRegistry {
 public:
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSummary> histograms;
  };

  /// The process-wide registry used by the built-in instrumentation.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Point-in-time merged view of every metric, sorted by name.
  Snapshot snapshot() const;

  /// Zero every metric without invalidating references. Intended for
  /// tests and for delimiting measurement windows.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace qgnn::obs
