#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace qgnn::obs {

namespace {

bool env_enables_obs() {
  const char* env = std::getenv("QGNN_OBS");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0 &&
         std::strcmp(env, "off") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enables_obs()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

}  // namespace detail

// ---- Counter ------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Gauge --------------------------------------------------------------

void Gauge::record_max(double v) {
  double current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v,
                                       std::memory_order_relaxed)) {
  }
}

// ---- LatencyHistogram ---------------------------------------------------

LatencyHistogram::LatencyHistogram()
    : counts_(kBuckets),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t LatencyHistogram::bucket_of(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;  // incl. NaN
  int exp = 0;
  // frexp: value = mantissa * 2^exp with mantissa in [0.5, 1).
  const double mantissa = std::frexp(value, &exp);
  const int octave = exp - 1 - kMinExp;  // 2^(exp-1) <= value < 2^exp
  if (octave < 0) return 0;
  if (octave >= kMaxExp - kMinExp) return kBuckets - 1;
  // Linear sub-bucketing of the mantissa range [0.5, 1).
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets));
  return 1 + static_cast<std::size_t>(octave * kSubBuckets + sub);
}

double LatencyHistogram::bucket_lo(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  if (bucket >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t linear = bucket - 1;
  const int octave = static_cast<int>(linear) / kSubBuckets;
  const int sub = static_cast<int>(linear) % kSubBuckets;
  const double base = std::ldexp(1.0, kMinExp + octave);
  return base * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double LatencyHistogram::bucket_hi(std::size_t bucket) {
  if (bucket == 0) return std::ldexp(1.0, kMinExp);
  if (bucket >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return bucket_lo(bucket + 1);
}

void LatencyHistogram::record(double value) {
  if (std::isnan(value)) return;
  const std::size_t shard = detail::shard_index();
  counts_[bucket_of(value)][shard].value.fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].value.fetch_add(value, std::memory_order_relaxed);

  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::merged_bucket(std::size_t bucket) const {
  std::uint64_t total = 0;
  for (const auto& shard : counts_[bucket]) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) total += merged_bucket(b);
  return total;
}

double LatencyHistogram::sum() const {
  double total = 0.0;
  for (const auto& shard : sums_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double LatencyHistogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double LatencyHistogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t total = count();
  if (total == 0) return 0.0;

  // Rank walk: find the bucket holding the ceil(q * total)-th sample
  // (1-based), then interpolate linearly inside it.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = merged_bucket(b);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      const double lo = bucket_lo(b);
      const double hi = std::isfinite(bucket_hi(b)) ? bucket_hi(b) : lo;
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(in_bucket);
      const double value = lo + (hi - lo) * frac;
      // The true extrema are tracked exactly; never report beyond them.
      return std::clamp(value, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

HistogramSummary LatencyHistogram::summary() const {
  HistogramSummary s;
  s.count = count();
  s.sum = sum();
  s.mean = s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0;
  s.min = min();
  s.max = max();
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  const std::size_t shard = detail::shard_index();
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.merged_bucket(b);
    if (n > 0) {
      counts_[b][shard].value.fetch_add(n, std::memory_order_relaxed);
    }
  }
  sums_[shard].value.fetch_add(other.sum(), std::memory_order_relaxed);
  const double other_min = other.min_.load(std::memory_order_relaxed);
  const double other_max = other.max_.load(std::memory_order_relaxed);
  if (std::isfinite(other_min)) {
    double seen = min_.load(std::memory_order_relaxed);
    while (other_min < seen &&
           !min_.compare_exchange_weak(seen, other_min,
                                       std::memory_order_relaxed)) {
    }
  }
  if (std::isfinite(other_max)) {
    double seen = max_.load(std::memory_order_relaxed);
    while (other_max > seen &&
           !max_.compare_exchange_weak(seen, other_max,
                                       std::memory_order_relaxed)) {
    }
  }
}

void LatencyHistogram::reset() {
  for (auto& bucket : counts_) {
    for (auto& shard : bucket) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& shard : sums_) {
    shard.value.store(0.0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---- MetricsRegistry ----------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->summary();
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace qgnn::obs
