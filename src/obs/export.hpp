#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace qgnn::obs {

/// Human-readable metrics dump, one metric per line:
///   counter  pool.chunks                 182934
///   gauge    pool.max_chunks_in_job      64
///   hist     serve.forward_us            count=812 mean=412.1 p50=...
std::string render_text(const MetricsRegistry::Snapshot& snapshot);

/// The same snapshot as a single-line JSON object:
///   {"counters":{...},"gauges":{...},"histograms":{"name":
///    {"count":N,"sum":...,"mean":...,"min":...,"max":...,
///     "p50":...,"p90":...,"p99":...},...}}
/// Self-contained (no dependency on the serve JSON layer) so any binary
/// can dump metrics.
std::string render_json(const MetricsRegistry::Snapshot& snapshot);

}  // namespace qgnn::obs
