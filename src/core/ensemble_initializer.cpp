#include "core/ensemble_initializer.hpp"

#include <cmath>

#include "dataset/features.hpp"
#include "util/error.hpp"

namespace qgnn {

namespace {
constexpr double kTwoPi = 6.283185307179586;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

EnsembleInitializer::EnsembleInitializer(
    std::vector<std::shared_ptr<const GnnModel>> models)
    : models_(std::move(models)) {
  QGNN_REQUIRE(!models_.empty(), "ensemble needs at least one model");
  for (const auto& m : models_) {
    QGNN_REQUIRE(m != nullptr, "null model in ensemble");
  }
  const int out = models_.front()->config().output_dim;
  for (const auto& m : models_) {
    QGNN_REQUIRE(m->config().output_dim == out,
                 "ensemble models disagree on output dimension");
  }
}

double EnsembleInitializer::circular_mean(const std::vector<double>& angles,
                                          double period) {
  QGNN_REQUIRE(!angles.empty(), "circular mean of nothing");
  QGNN_REQUIRE(period > 0.0, "period must be positive");
  const double w = kTwoPi / period;
  double s = 0.0;
  double c = 0.0;
  for (double a : angles) {
    s += std::sin(w * a);
    c += std::cos(w * a);
  }
  // Degenerate (perfectly spread) inputs: fall back to the first angle.
  if (std::abs(s) < 1e-12 && std::abs(c) < 1e-12) return angles.front();
  double mean = std::atan2(s, c) / w;
  if (mean < 0.0) mean += period;
  return mean;
}

QaoaParams EnsembleInitializer::initialize(const Graph& g, int depth) {
  QGNN_REQUIRE(models_.front()->config().output_dim == 2 * depth,
               "ensemble output dim does not match requested depth");
  const auto p = static_cast<std::size_t>(depth);
  std::vector<std::vector<double>> per_output(2 * p);
  for (const auto& model : models_) {
    const Matrix pred = model->predict(g);
    const QaoaParams params = target_to_params(pred);
    for (std::size_t l = 0; l < p; ++l) {
      per_output[l].push_back(params.gammas[l]);
      per_output[p + l].push_back(params.betas[l]);
    }
  }
  std::vector<double> gammas(p);
  std::vector<double> betas(p);
  for (std::size_t l = 0; l < p; ++l) {
    gammas[l] = circular_mean(per_output[l], kTwoPi);
    betas[l] = circular_mean(per_output[p + l], kPi);
  }
  return QaoaParams(std::move(gammas), std::move(betas));
}

std::string EnsembleInitializer::name() const {
  return "gnn-ensemble(" + std::to_string(models_.size()) + ")";
}

}  // namespace qgnn
