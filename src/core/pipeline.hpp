#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/gnn_initializer.hpp"
#include "dataset/dataset.hpp"
#include "dataset/features.hpp"
#include "dataset/pruning.hpp"
#include "gnn/trainer.hpp"

namespace qgnn {

/// End-to-end configuration of the paper's framework (Figure 1):
/// generate dataset -> improve label quality -> train GNN -> predict
/// (gamma, beta) for unseen graphs -> evaluate against random init.
struct PipelineConfig {
  DatasetGenConfig dataset{};
  bool apply_fixed_angle_audit = true;
  bool apply_sdp = true;
  SdpConfig sdp{};
  /// Held-out evaluation graphs (paper: 100).
  int test_count = 100;
  GnnModelConfig model{};
  TrainerConfig trainer{};
  std::uint64_t seed = 1234;
};

/// Dataset after quality improvement, split for evaluation.
struct PreparedData {
  std::vector<DatasetEntry> train;
  std::vector<DatasetEntry> test;
  SdpReport sdp_report{};
  FixedAngleAuditReport audit_report{};
};

/// Per-architecture evaluation on the held-out graphs under the paper's
/// fixed-parameter setting: approximation ratio AT the initial parameters,
/// no further optimization.
struct ArchEvaluation {
  GnnArch arch = GnnArch::kGCN;
  std::vector<double> ar_gnn;       // per test graph
  std::vector<double> improvement;  // (ar_gnn - ar_random) * 100, pp
  double mean_improvement = 0.0;
  double std_improvement = 0.0;
  double mean_ar = 0.0;
  double std_ar = 0.0;
  TrainReport train_report{};
};

/// Everything the reproduction benches print.
struct PipelineReport {
  PreparedData data;
  std::vector<double> ar_random;  // baseline series over test graphs
  std::vector<ArchEvaluation> archs;
};

/// Step 1-2: generate the dataset, improve label quality (fixed-angle
/// audit then SDP, matching §3.3), and split train/test.
PreparedData prepare_data(const PipelineConfig& config,
                          const ProgressFn& progress = {});

/// Step 3: train one GNN architecture on the prepared training set.
/// Returns the trained model and its training report.
std::pair<std::shared_ptr<GnnModel>, TrainReport> train_arch(
    GnnArch arch, const PreparedData& data, const PipelineConfig& config);

/// Random-initialization baseline AR series over the test graphs (one
/// fresh random draw per graph, evaluated without refinement).
std::vector<double> random_baseline_ar(const std::vector<DatasetEntry>& test,
                                       int depth, std::uint64_t seed);

/// AR series of a trained model over the test graphs (fixed-parameter
/// setting).
std::vector<double> gnn_ar_series(const GnnModel& model,
                                  const std::vector<DatasetEntry>& test);

/// Full pipeline over the given architectures (defaults to all four).
PipelineReport run_pipeline(const PipelineConfig& config,
                            std::vector<GnnArch> archs = all_gnn_archs(),
                            const ProgressFn& progress = {});

/// Convergence comparison (extension): refine parameters with the
/// configured optimizer from both inits and report how many circuit
/// evaluations each needs to reach `target_ar` of its own optimum.
struct ConvergenceStats {
  double mean_evals_random = 0.0;
  double mean_evals_gnn = 0.0;
  int reached_random = 0;  // graphs where random init reached the target
  int reached_gnn = 0;
  int total = 0;
};

ConvergenceStats convergence_comparison(std::shared_ptr<const GnnModel> model,
                                        const std::vector<DatasetEntry>& test,
                                        double target_ar, int max_evaluations,
                                        std::uint64_t seed);

}  // namespace qgnn
