#include "core/pipeline.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {

PreparedData prepare_data(const PipelineConfig& config,
                          const ProgressFn& progress) {
  PreparedData data;
  std::vector<DatasetEntry> entries =
      generate_dataset(config.dataset, progress);

  if (config.apply_fixed_angle_audit) {
    data.audit_report = fixed_angle_label_audit(entries, config.dataset.depth);
  }

  auto [train, test] =
      train_test_split(std::move(entries), config.test_count, config.seed);
  // SDP cleans only the training labels; the held-out graphs stay as-is
  // (their labels are not used for evaluation, only their structure).
  if (config.apply_sdp) {
    train = selective_data_pruning(std::move(train), config.sdp,
                                   &data.sdp_report);
  }
  data.train = std::move(train);
  data.test = std::move(test);
  return data;
}

std::pair<std::shared_ptr<GnnModel>, TrainReport> train_arch(
    GnnArch arch, const PreparedData& data, const PipelineConfig& config) {
  QGNN_REQUIRE(!data.train.empty(), "no training data");
  GnnModelConfig model_config = config.model;
  model_config.arch = arch;
  model_config.output_dim = 2 * config.dataset.depth;

  // Derive per-arch seeds so architectures are independent but the whole
  // pipeline stays deterministic.
  Rng rng(config.seed ^ (0x9e37ULL + static_cast<std::uint64_t>(arch) * 31));
  auto model = std::make_shared<GnnModel>(model_config, rng);

  std::vector<TrainSample> samples =
      to_train_samples(data.train, model_config.features);
  TrainReport report = train_gnn(*model, std::move(samples), config.trainer,
                                 rng);
  return {std::move(model), std::move(report)};
}

std::vector<double> random_baseline_ar(const std::vector<DatasetEntry>& test,
                                       int depth, std::uint64_t seed) {
  // Each test graph draws from its own (seed, index) stream, so the series
  // is identical at any thread count and independent of evaluation order.
  std::vector<double> ars(test.size(), 0.0);
  ThreadPool::global().parallel_for(
      0, test.size(), 1, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const DatasetEntry& e = test[i];
          Rng rng(derive_seed(seed, i));
          RandomInitializer init(rng.child());
          QaoaAnsatz ansatz(e.graph);
          const QaoaParams params = init.initialize(e.graph, depth);
          ars[i] = ansatz.approximation_ratio(params);
        }
      });
  return ars;
}

std::vector<double> gnn_ar_series(const GnnModel& model,
                                  const std::vector<DatasetEntry>& test) {
  // predict() is a pure read of the trained weights, so the test set can
  // be scored concurrently.
  std::vector<double> ars(test.size(), 0.0);
  ThreadPool::global().parallel_for(
      0, test.size(), 1, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const DatasetEntry& e = test[i];
          QaoaAnsatz ansatz(e.graph);
          const QaoaParams params = target_to_params(model.predict(e.graph));
          ars[i] = ansatz.approximation_ratio(params);
        }
      });
  return ars;
}

PipelineReport run_pipeline(const PipelineConfig& config,
                            std::vector<GnnArch> archs,
                            const ProgressFn& progress) {
  PipelineReport report;
  report.data = prepare_data(config, progress);
  report.ar_random = random_baseline_ar(report.data.test,
                                        config.dataset.depth, config.seed);

  for (GnnArch arch : archs) {
    auto [model, train_report] = train_arch(arch, report.data, config);

    ArchEvaluation eval;
    eval.arch = arch;
    eval.train_report = std::move(train_report);
    eval.ar_gnn = gnn_ar_series(*model, report.data.test);

    RunningStats imp_stats;
    RunningStats ar_stats;
    for (std::size_t i = 0; i < eval.ar_gnn.size(); ++i) {
      const double imp = (eval.ar_gnn[i] - report.ar_random[i]) * 100.0;
      eval.improvement.push_back(imp);
      imp_stats.add(imp);
      ar_stats.add(eval.ar_gnn[i]);
    }
    eval.mean_improvement = imp_stats.mean();
    eval.std_improvement = imp_stats.stddev();
    eval.mean_ar = ar_stats.mean();
    eval.std_ar = ar_stats.stddev();
    report.archs.push_back(std::move(eval));
  }
  return report;
}

ConvergenceStats convergence_comparison(std::shared_ptr<const GnnModel> model,
                                        const std::vector<DatasetEntry>& test,
                                        double target_ar, int max_evaluations,
                                        std::uint64_t seed) {
  QGNN_REQUIRE(target_ar > 0.0 && target_ar <= 1.0,
               "target AR out of (0, 1]");
  QGNN_REQUIRE(model != nullptr, "null GNN model");
  GnnInitializer gnn_init(model);

  QaoaRunConfig run;
  run.depth = model->config().output_dim / 2;
  run.optimizer = QaoaOptimizer::kNelderMead;
  run.max_evaluations = max_evaluations;
  run.sample_shots = 0;

  // Per-entry results, collected in parallel (both QAOA optimizations per
  // entry are expensive) and folded into the stats serially in index order
  // so the means are thread-count invariant.
  std::vector<std::optional<int>> reach_random(test.size());
  std::vector<std::optional<int>> reach_gnn(test.size());
  ThreadPool::global().parallel_for(
      0, test.size(), 1, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const DatasetEntry& e = test[i];
          Rng item_rng(derive_seed(seed, i));
          RandomInitializer random_init(item_rng.child());
          Rng sample_rng = item_rng.child();
          const double target_value = target_ar * e.optimum;
          const QaoaResult r_rand =
              run_qaoa(e.graph, random_init, run, sample_rng);
          const QaoaResult r_gnn = run_qaoa(e.graph, gnn_init, run, sample_rng);
          reach_random[i] = evaluations_to_reach(r_rand.trace, target_value);
          reach_gnn[i] = evaluations_to_reach(r_gnn.trace, target_value);
        }
      });

  ConvergenceStats stats;
  RunningStats evals_random;
  RunningStats evals_gnn;
  for (std::size_t i = 0; i < test.size(); ++i) {
    ++stats.total;
    if (reach_random[i]) {
      ++stats.reached_random;
      evals_random.add(static_cast<double>(*reach_random[i]));
    }
    if (reach_gnn[i]) {
      ++stats.reached_gnn;
      evals_gnn.add(static_cast<double>(*reach_gnn[i]));
    }
  }
  stats.mean_evals_random = evals_random.mean();
  stats.mean_evals_gnn = evals_gnn.mean();
  return stats;
}

}  // namespace qgnn
