#pragma once

#include <memory>

#include "gnn/model.hpp"
#include "qaoa/initializers.hpp"

namespace qgnn {

/// The paper's contribution as an initializer: a trained GNN predicts
/// (gamma, beta) for an unseen graph, and QAOA starts from the prediction
/// instead of a random point ("warm start", Figure 1).
class GnnInitializer final : public ParameterInitializer {
 public:
  /// Takes shared ownership so one trained model can serve many runs.
  explicit GnnInitializer(std::shared_ptr<const GnnModel> model);

  QaoaParams initialize(const Graph& g, int depth) override;
  std::string name() const override;

  const GnnModel& model() const { return *model_; }

 private:
  std::shared_ptr<const GnnModel> model_;
};

}  // namespace qgnn
