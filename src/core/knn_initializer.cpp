#include "core/knn_initializer.hpp"

#include <cmath>
#include <limits>

#include "graph/analytics.hpp"
#include "util/error.hpp"

namespace qgnn {

std::vector<double> NearestNeighborInitializer::descriptor(const Graph& g) {
  const double n = static_cast<double>(g.num_nodes());
  const double m = static_cast<double>(g.num_edges());
  const double mean_degree = n > 0.0 ? 2.0 * m / n : 0.0;
  const double density = n > 1.0 ? 2.0 * m / (n * (n - 1.0)) : 0.0;
  // Normalize size against the dataset's 15-node cap so no single feature
  // dominates the L2 distance.
  return {n / 15.0, mean_degree / 15.0, density, clustering_coefficient(g)};
}

NearestNeighborInitializer::NearestNeighborInitializer(
    const std::vector<DatasetEntry>& training_set) {
  QGNN_REQUIRE(!training_set.empty(),
               "nearest-neighbor initializer needs a training set");
  descriptors_.reserve(training_set.size());
  labels_.reserve(training_set.size());
  for (const DatasetEntry& e : training_set) {
    descriptors_.push_back(descriptor(e.graph));
    labels_.push_back(e.label);
  }
}

std::size_t NearestNeighborInitializer::nearest_index(const Graph& g) const {
  const std::vector<double> d = descriptor(g);
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < descriptors_.size(); ++i) {
    double dist = 0.0;
    for (std::size_t k = 0; k < d.size(); ++k) {
      const double delta = d[k] - descriptors_[i][k];
      dist += delta * delta;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

QaoaParams NearestNeighborInitializer::initialize(const Graph& g,
                                                  int depth) {
  const QaoaParams& label = labels_[nearest_index(g)];
  QGNN_REQUIRE(label.depth() == depth,
               "training labels do not match requested QAOA depth");
  return label;
}

}  // namespace qgnn
