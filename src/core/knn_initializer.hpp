#pragma once

#include <vector>

#include "dataset/dataset.hpp"
#include "qaoa/initializers.hpp"

namespace qgnn {

/// Parameter-transfer baseline (extension beyond the paper): initialize
/// QAOA with the label of the most structurally similar training graph.
/// Similarity is the L2 distance over a small normalized descriptor
/// (size, mean degree, edge density, clustering coefficient).
///
/// This is the natural "non-learned" competitor to the GNN: if a lookup
/// does as well, the GNN isn't adding value. Benchmarked against all
/// four GNNs in bench/ext_initializer_comparison.
class NearestNeighborInitializer final : public ParameterInitializer {
 public:
  /// Copies the labels and descriptors of the training entries. Throws on
  /// an empty training set.
  explicit NearestNeighborInitializer(
      const std::vector<DatasetEntry>& training_set);

  QaoaParams initialize(const Graph& g, int depth) override;
  std::string name() const override { return "knn-transfer"; }

  /// Index of the training entry a graph maps to (exposed for tests).
  std::size_t nearest_index(const Graph& g) const;

  static std::vector<double> descriptor(const Graph& g);

 private:
  std::vector<std::vector<double>> descriptors_;
  std::vector<QaoaParams> labels_;
};

}  // namespace qgnn
