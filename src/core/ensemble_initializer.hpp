#pragma once

#include <memory>
#include <vector>

#include "gnn/model.hpp"
#include "qaoa/initializers.hpp"

namespace qgnn {

/// Ensemble of trained GNNs (extension): each model predicts (gamma,
/// beta) and the predictions are combined with the CIRCULAR mean per
/// output — the correct average for periodic quantities (an arithmetic
/// mean of 0.1 and 2*pi - 0.1 is pi, maximally wrong; the circular mean
/// is 0). Gamma components use period 2*pi, beta components period pi.
class EnsembleInitializer final : public ParameterInitializer {
 public:
  explicit EnsembleInitializer(
      std::vector<std::shared_ptr<const GnnModel>> models);

  QaoaParams initialize(const Graph& g, int depth) override;
  std::string name() const override;

  std::size_t size() const { return models_.size(); }

  /// Circular mean of `angles` with the given period (exposed for tests).
  static double circular_mean(const std::vector<double>& angles,
                              double period);

 private:
  std::vector<std::shared_ptr<const GnnModel>> models_;
};

}  // namespace qgnn
