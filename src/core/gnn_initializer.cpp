#include "core/gnn_initializer.hpp"

#include "dataset/features.hpp"
#include "util/error.hpp"

namespace qgnn {

GnnInitializer::GnnInitializer(std::shared_ptr<const GnnModel> model)
    : model_(std::move(model)) {
  QGNN_REQUIRE(model_ != nullptr, "null GNN model");
}

QaoaParams GnnInitializer::initialize(const Graph& g, int depth) {
  QGNN_REQUIRE(model_->config().output_dim == 2 * depth,
               "model output dim does not match requested QAOA depth");
  const Matrix prediction = model_->predict(g);
  return target_to_params(prediction);
}

std::string GnnInitializer::name() const {
  return "gnn:" + to_string(model_->config().arch);
}

}  // namespace qgnn
