#pragma once

#include <algorithm>
#include <cstdint>

// Shared loop skeleton for the mixer-layer kernels. Each translation
// unit (generic / AVX2 / AVX-512) instantiates mixer_sweep with its own
// pair-run body; the skeleton fixes the traversal so every variant
// applies qubits in ascending order to each amplitude and the only
// difference between variants is the register width of the arithmetic.

namespace qgnn::batchkern::impl {

/// Visit every RX pair group of an n-qubit lane. run(start, bit) must
/// update the pairs (x, x + bit) for x in [start, start + bit).
///
/// Qubits below kMixerBlockQubits are applied block by block so a
/// 2^kMixerBlockQubits-amplitude slab (32 KiB of re plus 32 KiB of im)
/// is swept through all of them while cache-resident; higher qubits
/// pair across blocks in one strided pass each. Blocking is pure
/// scheduling: each amplitude still sees qubits 0..n-1 in order, so the
/// block size never changes the bytes.
inline constexpr int kMixerBlockQubits = 12;

template <typename Run>
inline void mixer_sweep(int n, Run&& run) {
  const std::uint64_t dim = std::uint64_t{1} << n;
  const int nb = std::min(n, kMixerBlockQubits);
  const std::uint64_t bsize = std::uint64_t{1} << nb;
  for (std::uint64_t base = 0; base < dim; base += bsize) {
    for (int q = 0; q < nb; ++q) {
      const std::uint64_t bit = std::uint64_t{1} << q;
      for (std::uint64_t g0 = 0; g0 < bsize; g0 += bit << 1) {
        run(base + g0, bit);
      }
    }
  }
  for (int q = nb; q < n; ++q) {
    const std::uint64_t bit = std::uint64_t{1} << q;
    for (std::uint64_t g0 = 0; g0 < dim; g0 += bit << 1) {
      run(g0, bit);
    }
  }
}

/// mixer_sweep with the lowest `fq` qubits handed to the caller as one
/// fused pass: run_low(start, len) must apply qubits 0..fq-1, in
/// ascending order, to every aligned group of 2^fq amplitudes in
/// [start, start + len). The wide kernels use this to butterfly the
/// qubits whose pair stride is below their vector width entirely in
/// registers (lane permutes) instead of falling back to scalar passes.
/// Pairs for those qubits never cross a 2^fq-aligned group, and run_low
/// keeps the per-amplitude qubit order ascending, so fusing is pure
/// scheduling and the bytes match mixer_sweep exactly. Requires
/// 0 < fq <= min(n, kMixerBlockQubits).
template <typename RunLow, typename Run>
inline void mixer_sweep_fused(int n, int fq, RunLow&& run_low, Run&& run) {
  const std::uint64_t dim = std::uint64_t{1} << n;
  const int nb = std::min(n, kMixerBlockQubits);
  const std::uint64_t bsize = std::uint64_t{1} << nb;
  for (std::uint64_t base = 0; base < dim; base += bsize) {
    run_low(base, bsize);
    for (int q = fq; q < nb; ++q) {
      const std::uint64_t bit = std::uint64_t{1} << q;
      for (std::uint64_t g0 = 0; g0 < bsize; g0 += bit << 1) {
        run(base + g0, bit);
      }
    }
  }
  for (int q = nb; q < n; ++q) {
    const std::uint64_t bit = std::uint64_t{1} << q;
    for (std::uint64_t g0 = 0; g0 < dim; g0 += bit << 1) {
      run(g0, bit);
    }
  }
}

/// Scalar pair-run body; the wide kernels fall back to it for runs
/// shorter than their vector width. Expressions match
/// StateVector::apply_rx_layer's pair_update exactly.
inline void mixer_run_scalar(double* re, double* im, std::uint64_t start,
                             std::uint64_t bit, double c, double s) {
  double* lre = re + start;
  double* lim = im + start;
  double* hre = lre + bit;
  double* him = lim + bit;
  for (std::uint64_t x = 0; x < bit; ++x) {
    const double lr = lre[x];
    const double li = lim[x];
    const double hr = hre[x];
    const double hm = him[x];
    lre[x] = c * lr + s * hm;
    lim[x] = c * li - s * hr;
    hre[x] = c * hr + s * li;
    him[x] = c * hm - s * lr;
  }
}

/// Scalar cost-layer body shared by the generic kernel and the wide
/// kernels' short-lane fallback.
inline void cost_run_scalar(double* re, double* im,
                            const std::uint16_t* lev, const double* tab_re,
                            const double* tab_im, std::uint64_t lo,
                            std::uint64_t hi) {
  for (std::uint64_t k = lo; k < hi; ++k) {
    const double tr = tab_re[lev[k]];
    const double ti = tab_im[lev[k]];
    const double nr = re[k] * tr - im[k] * ti;
    const double ni = re[k] * ti + im[k] * tr;
    re[k] = nr;
    im[k] = ni;
  }
}

}  // namespace qgnn::batchkern::impl
