#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/dataset.hpp"

namespace qgnn {

/// Scheduling knobs for the batched labelling factory. None of these
/// affect the labels or the bytes of the output file — only how the work
/// is batched, parallelized, and checkpointed. Byte-identity across every
/// setting here is pinned by the `dataset` test label.
struct FactoryConfig {
  /// Statevector lanes evaluated per batch pass. 0 sizes the batch by
  /// qubit count (wide batches on tiny states, narrow at n = 14..15 where
  /// the working set must stay cache-resident).
  int lanes = 0;

  /// Records per checkpoint shard; <= 0 disables checkpointing (the whole
  /// run is labelled in memory and written once).
  int checkpoint_every = 0;

  /// Directory for shards + resume manifest. Required when
  /// checkpoint_every > 0.
  std::string checkpoint_dir;

  /// Resume from checkpoint_dir's manifest: records covered by committed
  /// shards are loaded back instead of re-labelled, and the final file
  /// comes out byte-identical to an uninterrupted run.
  bool resume = false;

  /// Test/CI hook simulating a killed run: stop (returning false) after
  /// committing this many shards in this process. 0 = run to completion.
  int stop_after_shards = 0;
};

/// Fingerprint of every generation-relevant field of `config` (instance
/// count, node/degree ranges, depth, budget, optimizer, symmetrization,
/// seed). Scheduling fields are deliberately excluded: a resumed run may
/// change threads, lanes, or shard size and still continue a manifest.
std::uint64_t dataset_config_fingerprint(const DatasetGenConfig& config);

/// Label one entry in place exactly the way generate_dataset would label
/// item `index` of a run seeded with config.seed: the same
/// derive_seed(seed, index) stream, the same run_qaoa call, the same label
/// canonicalization. Exposed for the online mining relabel job (src/mine),
/// which labels mined production graphs one at a time with the full
/// optimizer budget; determinism is per (config, graph, index), never
/// per thread or call order.
void label_dataset_entry(const DatasetGenConfig& config, DatasetEntry& entry,
                         std::size_t index);

/// Batched drop-in for generate_dataset: same graph sequence (same
/// phase-1 RNG stream), same per-item derive_seed(seed, index) streams,
/// same Nelder-Mead evaluation sequence — but K optimizations advance in
/// lockstep through one structure-of-arrays workspace per batch, so the
/// phase-table setup and the memory sweeps are amortized across graphs.
/// Deterministic: entries are bit-identical at any thread count and any
/// lane count. Optimizers other than kNelderMead fall back to the
/// per-item sequential path inside the same scheduling (still
/// deterministic, still checkpointable via run_dataset_factory).
std::vector<DatasetEntry> generate_dataset_batched(
    const DatasetGenConfig& config, const FactoryConfig& factory = {},
    const ProgressFn& progress = {});

/// Full factory run: label `config.num_instances` graphs (batched, on the
/// global thread pool) and write the packed dataset to `out_path`. With
/// checkpointing enabled, every completed wave is committed as a packed
/// shard plus a resume manifest, so a killed run restarts from the last
/// committed shard (factory.resume = true) and the final file is
/// byte-identical to an uninterrupted run.
///
/// Returns true when `out_path` was written; false when the run stopped
/// early via factory.stop_after_shards (the manifest is committed, the
/// final file is not).
bool run_dataset_factory(const DatasetGenConfig& config,
                         const FactoryConfig& factory,
                         const std::string& out_path,
                         const ProgressFn& progress = {});

}  // namespace qgnn
