#include "dataset/packed.hpp"

#include <sys/mman.h>
#include <sys/stat.h>

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/error.hpp"

namespace qgnn {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Little-endian field helpers. Alignment-safe (memcpy, never pointer casts)
// and endian-explicit, so the on-disk bytes are identical on every host.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

[[noreturn]] void fail(const std::string& path, std::uint64_t offset,
                       const std::string& reason) {
  throw IoError(path + ": " + reason + " (at byte offset " +
                std::to_string(offset) + ")");
}

std::size_t record_encoded_bytes(const DatasetEntry& e) {
  return 16 + std::size_t{16} * e.graph.num_edges() +
         8 * (2 * e.label.gammas.size() + 3);
}

}  // namespace

std::vector<std::uint8_t> pack_dataset(
    const std::vector<DatasetEntry>& entries) {
  std::size_t depth = entries.empty() ? 0 : entries[0].label.gammas.size();
  for (const DatasetEntry& e : entries) {
    QGNN_REQUIRE(e.label.gammas.size() == e.label.betas.size(),
                 "entry label has mismatched gamma/beta depth");
    QGNN_REQUIRE(e.label.gammas.size() == depth,
                 "packed datasets require a uniform label depth");
  }

  std::vector<std::uint8_t> index;
  std::vector<std::uint8_t> records;
  index.reserve(entries.size() * kPackedIndexEntryBytes);
  for (const DatasetEntry& e : entries) {
    const std::size_t bytes = record_encoded_bytes(e);
    put_u64(index, records.size());
    put_u64(index, bytes);

    records.reserve(records.size() + bytes);
    put_u32(records, static_cast<std::uint32_t>(bytes));
    put_u32(records, static_cast<std::uint32_t>(e.graph.num_nodes()));
    put_u32(records, static_cast<std::uint32_t>(e.degree));
    put_u32(records, static_cast<std::uint32_t>(e.graph.num_edges()));
    for (const Edge& edge : e.graph.edges()) {
      put_u32(records, static_cast<std::uint32_t>(edge.u));
      put_u32(records, static_cast<std::uint32_t>(edge.v));
      put_f64(records, edge.weight);
    }
    for (double g : e.label.gammas) put_f64(records, g);
    for (double b : e.label.betas) put_f64(records, b);
    put_f64(records, e.expectation);
    put_f64(records, e.optimum);
    put_f64(records, e.approximation_ratio);
  }

  std::vector<std::uint8_t> out;
  out.reserve(kPackedHeaderBytes + index.size() + records.size());
  for (const char c : kPackedMagic) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  put_u32(out, kPackedVersion);
  put_u32(out, static_cast<std::uint32_t>(depth));
  put_u64(out, entries.size());
  put_u64(out, kPackedHeaderBytes);
  put_u64(out, index.size());
  put_u64(out, kPackedHeaderBytes + index.size());
  put_u64(out, records.size());
  put_u32(out, crc32_ieee(index.data(), index.size()));
  put_u32(out, crc32_ieee(records.data(), records.size()));
  put_u32(out, crc32_ieee(out.data(), 64));
  put_u32(out, 0);  // reserved
  out.insert(out.end(), index.begin(), index.end());
  out.insert(out.end(), records.begin(), records.end());
  return out;
}

void save_packed_dataset(const std::string& path,
                         const std::vector<DatasetEntry>& entries) {
  const std::vector<std::uint8_t> image = pack_dataset(entries);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw IoError("cannot create file: " + tmp);
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != image.size() || !flushed) {
    std::remove(tmp.c_str());
    throw IoError("short write to: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename " + tmp + " to " + path + ": " +
                  ec.message());
  }
}

bool is_packed_dataset_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof(kPackedMagic)] = {};
  const std::size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return got == sizeof(magic) &&
         std::memcmp(magic, kPackedMagic, sizeof(magic)) == 0;
}

// ---------------------------------------------------------------------------
// Reader

struct PackedDatasetReader::Impl {
  std::string path;
  PackedDatasetInfo info;
  // Exactly one of these owns the bytes `data` points into.
  std::vector<std::uint8_t> owned;  // kStream
  void* mapping = nullptr;          // kMmap
  std::size_t mapping_bytes = 0;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  const std::uint8_t* index = nullptr;    // index section start
  const std::uint8_t* records = nullptr;  // records section start
  std::uint64_t records_offset = 0;
  std::uint64_t records_bytes = 0;

  ~Impl() {
    if (mapping != nullptr) ::munmap(mapping, mapping_bytes);
  }

  void open_stream() {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw IoError("cannot open file: " + path);
    if (std::fseek(f, 0, SEEK_END) != 0) {
      std::fclose(f);
      throw IoError("cannot seek in file: " + path);
    }
    const long end = std::ftell(f);
    if (end < 0) {
      std::fclose(f);
      throw IoError("cannot determine size of file: " + path);
    }
    std::rewind(f);
    owned.resize(static_cast<std::size_t>(end));
    const std::size_t got = std::fread(owned.data(), 1, owned.size(), f);
    std::fclose(f);
    if (got != owned.size()) {
      fail(path, got, "short read");
    }
    data = owned.data();
    size = owned.size();
  }

  void open_mmap() {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IoError("cannot open file: " + path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw IoError("cannot stat file: " + path);
    }
    size = static_cast<std::size_t>(st.st_size);
    if (size < kPackedHeaderBytes) {
      ::close(fd);
      fail(path, size, "file too small for packed header");
    }
    void* m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (m == MAP_FAILED) throw IoError("cannot mmap file: " + path);
    mapping = m;
    mapping_bytes = size;
    data = static_cast<const std::uint8_t*>(m);
  }

  void validate() {
    if (size < kPackedHeaderBytes) {
      fail(path, size, "file too small for packed header");
    }
    if (std::memcmp(data, kPackedMagic, sizeof(kPackedMagic)) != 0) {
      fail(path, 0, "bad magic (not a packed dataset file)");
    }
    const std::uint32_t stored_header_crc = get_u32(data + 64);
    if (crc32_ieee(data, 64) != stored_header_crc) {
      fail(path, 64, "header CRC mismatch");
    }
    info.version = get_u32(data + 8);
    if (info.version != kPackedVersion) {
      fail(path, 8,
           "unsupported format version " + std::to_string(info.version) +
               " (reader supports " + std::to_string(kPackedVersion) + ")");
    }
    info.depth = static_cast<int>(get_u32(data + 12));
    info.num_records = get_u64(data + 16);
    const std::uint64_t index_offset = get_u64(data + 24);
    const std::uint64_t index_bytes = get_u64(data + 32);
    records_offset = get_u64(data + 40);
    records_bytes = get_u64(data + 48);
    info.index_crc32 = get_u32(data + 56);
    info.records_crc32 = get_u32(data + 60);
    info.file_bytes = size;

    if (index_offset != kPackedHeaderBytes ||
        index_bytes != info.num_records * kPackedIndexEntryBytes) {
      fail(path, 24, "index section does not match record count");
    }
    if (records_offset != index_offset + index_bytes) {
      fail(path, 40, "records section does not follow index section");
    }
    if (records_offset + records_bytes < records_offset ||
        records_offset + records_bytes != size) {
      fail(path, 48, "section sizes do not match file size (truncated?)");
    }
    index = data + index_offset;
    records = data + records_offset;
    if (crc32_ieee(index, static_cast<std::size_t>(index_bytes)) !=
        info.index_crc32) {
      fail(path, index_offset, "index section CRC mismatch");
    }
    if (crc32_ieee(records, static_cast<std::size_t>(records_bytes)) !=
        info.records_crc32) {
      fail(path, records_offset, "records section CRC mismatch");
    }
  }

  DatasetEntry decode(std::size_t i) const {
    const std::uint8_t* ie = index + i * kPackedIndexEntryBytes;
    const std::uint64_t rel = get_u64(ie);
    const std::uint64_t bytes = get_u64(ie + 8);
    const std::uint64_t abs = records_offset + rel;
    if (rel + bytes < rel || rel + bytes > records_bytes) {
      fail(path, abs, "record " + std::to_string(i) + " out of bounds");
    }
    const std::uint8_t* r = records + rel;
    auto need = [&](std::uint64_t upto) {
      if (upto > bytes) {
        fail(path, abs, "record " + std::to_string(i) + " truncated");
      }
    };
    need(16);
    if (get_u32(r) != bytes) {
      fail(path, abs,
           "record " + std::to_string(i) + " size field disagrees with index");
    }
    const std::uint32_t nodes = get_u32(r + 4);
    const std::uint32_t degree = get_u32(r + 8);
    const std::uint32_t edges = get_u32(r + 12);
    const std::uint64_t body =
        16 + std::uint64_t{16} * edges +
        8 * (2 * static_cast<std::uint64_t>(info.depth) + 3);
    if (body != bytes) {
      fail(path, abs,
           "record " + std::to_string(i) + " edge count disagrees with size");
    }

    DatasetEntry e;
    e.degree = static_cast<int>(degree);
    e.graph = Graph(static_cast<int>(nodes));
    const std::uint8_t* p = r + 16;
    try {
      for (std::uint32_t k = 0; k < edges; ++k) {
        const std::uint32_t u = get_u32(p);
        const std::uint32_t v = get_u32(p + 4);
        const double w = get_f64(p + 8);
        e.graph.add_edge(static_cast<int>(u), static_cast<int>(v), w);
        p += 16;
      }
    } catch (const Error& ex) {
      // add_edge rejects self-loops/duplicates/out-of-range endpoints;
      // surface that as a file problem, not an argument problem.
      fail(path, abs,
           "record " + std::to_string(i) + " has invalid edges: " + ex.what());
    }
    std::vector<double> gammas(static_cast<std::size_t>(info.depth));
    std::vector<double> betas(static_cast<std::size_t>(info.depth));
    for (double& g : gammas) {
      g = get_f64(p);
      p += 8;
    }
    for (double& b : betas) {
      b = get_f64(p);
      p += 8;
    }
    e.label = QaoaParams(std::move(gammas), std::move(betas));
    e.expectation = get_f64(p);
    e.optimum = get_f64(p + 8);
    e.approximation_ratio = get_f64(p + 16);
    return e;
  }
};

PackedDatasetReader::PackedDatasetReader(const std::string& path, Mode mode)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  if (mode == Mode::kMmap) {
    impl_->open_mmap();
  } else {
    impl_->open_stream();
  }
  impl_->validate();
}

PackedDatasetReader::~PackedDatasetReader() = default;
PackedDatasetReader::PackedDatasetReader(PackedDatasetReader&&) noexcept =
    default;
PackedDatasetReader& PackedDatasetReader::operator=(
    PackedDatasetReader&&) noexcept = default;

const PackedDatasetInfo& PackedDatasetReader::info() const {
  return impl_->info;
}

std::size_t PackedDatasetReader::size() const {
  return static_cast<std::size_t>(impl_->info.num_records);
}

int PackedDatasetReader::depth() const { return impl_->info.depth; }

DatasetEntry PackedDatasetReader::read(std::size_t index) const {
  QGNN_REQUIRE(index < size(), "record index out of range");
  return impl_->decode(index);
}

std::vector<DatasetEntry> PackedDatasetReader::read_all() const {
  std::vector<DatasetEntry> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(impl_->decode(i));
  return out;
}

std::vector<DatasetEntry> load_packed_dataset(const std::string& path) {
  return PackedDatasetReader(path).read_all();
}

}  // namespace qgnn
