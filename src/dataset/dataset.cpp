#include "dataset/dataset.hpp"

#include <cmath>
#include <mutex>
#include <utility>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

double wrap(double x, double period) {
  const double w = std::fmod(x, period);
  return w < 0.0 ? w + period : w;
}

/// Degrees d for which a d-regular simple graph on n nodes exists, within
/// the configured bounds.
std::vector<int> valid_degrees(int n, const DatasetGenConfig& c) {
  std::vector<int> ds;
  for (int d = c.min_degree; d <= std::min(c.max_degree, n - 1); ++d) {
    if (regular_graph_exists(n, d)) ds.push_back(d);
  }
  return ds;
}

/// One draw from the instance distribution: size, then a valid degree,
/// then a random regular graph. Returns degree -1 when no valid degree
/// exists for the drawn size (caller redraws).
std::pair<Graph, int> sample_instance(const DatasetGenConfig& config,
                                      Rng& graph_rng) {
  const int n = graph_rng.uniform_int(config.min_nodes, config.max_nodes);
  const auto ds = valid_degrees(n, config);
  if (ds.empty()) return {Graph(0), -1};
  const int d = ds[graph_rng.index(ds.size())];
  return {random_regular_graph(n, d, graph_rng), d};
}

}  // namespace

QaoaParams canonicalize_params(const QaoaParams& params) {
  QaoaParams out = params;
  for (double& g : out.gammas) g = wrap(g, kTwoPi);
  for (double& b : out.betas) b = wrap(b, kPi);
  return out;
}

QaoaParams canonicalize_params_symmetric(const QaoaParams& params) {
  QaoaParams out = canonicalize_params(params);
  // Time reversal negates every angle simultaneously; use it when it
  // brings the first gamma into [0, pi].
  if (out.gammas[0] > kPi) {
    for (double& g : out.gammas) g = wrap(-g, kTwoPi);
    for (double& b : out.betas) b = wrap(-b, kPi);
  }
  return out;
}

std::vector<DatasetEntry> generate_dataset(const DatasetGenConfig& config,
                                           const ProgressFn& progress) {
  QGNN_REQUIRE(config.num_instances >= 1, "need at least one instance");
  QGNN_REQUIRE(config.min_nodes >= 2, "graphs need at least two nodes");
  QGNN_REQUIRE(config.max_nodes <= kMaxQubits,
               "max nodes exceeds simulator range");
  QGNN_REQUIRE(config.min_nodes <= config.max_nodes, "node range inverted");
  QGNN_REQUIRE(config.depth >= 1, "QAOA depth must be at least 1");

  // Phase 1 (serial, cheap): draw the graph sequence. This consumes
  // exactly the same RNG stream as generate_graphs, so the two functions
  // keep producing matching instance sequences.
  Rng master(config.seed);
  Rng graph_rng = master.child();
  std::vector<DatasetEntry> entries;
  entries.resize(static_cast<std::size_t>(config.num_instances));
  {
    std::size_t filled = 0;
    while (filled < entries.size()) {
      auto [g, d] = sample_instance(config, graph_rng);
      if (d < 0 || g.num_edges() == 0) continue;
      entries[filled].graph = std::move(g);
      entries[filled].degree = d;
      ++filled;
    }
  }

  QaoaRunConfig run;
  run.depth = config.depth;
  run.optimizer = config.optimizer;
  run.max_evaluations = config.optimizer_evaluations;
  run.sample_shots = 0;  // labels only need <C>; skip sampling cost

  // Phase 2 (parallel, dominant): label each graph. Every instance seeds
  // its own streams from (config.seed, index), so labels are bit-identical
  // at any thread count and independent of completion order.
  std::mutex progress_mutex;
  int labelled = 0;
  ThreadPool::global().parallel_for(
      0, entries.size(), 1, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          DatasetEntry& entry = entries[i];
          Rng item_rng(derive_seed(config.seed, i));
          RandomInitializer initializer(item_rng.child());
          Rng sample_rng = item_rng.child();
          const QaoaResult result =
              run_qaoa(entry.graph, initializer, run, sample_rng);
          entry.label =
              config.symmetrize_labels
                  ? canonicalize_params_symmetric(result.best_params)
                  : canonicalize_params(result.best_params);
          entry.expectation = result.best_expectation;
          entry.optimum = result.optimum;
          entry.approximation_ratio = result.best_ar;
          if (progress) {
            std::lock_guard<std::mutex> lk(progress_mutex);
            progress(++labelled, config.num_instances);
          }
        }
      });
  return entries;
}

std::vector<Graph> generate_graphs(const DatasetGenConfig& config) {
  QGNN_REQUIRE(config.num_instances >= 1, "need at least one instance");
  QGNN_REQUIRE(config.min_nodes >= 2, "graphs need at least two nodes");
  QGNN_REQUIRE(config.min_nodes <= config.max_nodes, "node range inverted");

  Rng master(config.seed);
  Rng graph_rng = master.child();
  std::vector<Graph> graphs;
  graphs.reserve(static_cast<std::size_t>(config.num_instances));
  while (static_cast<int>(graphs.size()) < config.num_instances) {
    auto [g, d] = sample_instance(config, graph_rng);
    if (d < 0 || g.num_edges() == 0) continue;
    graphs.push_back(std::move(g));
  }
  return graphs;
}

std::pair<std::vector<DatasetEntry>, std::vector<DatasetEntry>>
train_test_split(std::vector<DatasetEntry> entries, int test_count,
                 std::uint64_t seed) {
  QGNN_REQUIRE(test_count >= 0, "negative test count");
  QGNN_REQUIRE(static_cast<std::size_t>(test_count) < entries.size(),
               "test split larger than dataset");
  Rng rng(seed);
  rng.shuffle(entries);
  std::vector<DatasetEntry> test(
      entries.end() - test_count, entries.end());
  entries.resize(entries.size() - static_cast<std::size_t>(test_count));
  return {std::move(entries), std::move(test)};
}

}  // namespace qgnn
