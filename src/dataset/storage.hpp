#pragma once

#include <string>
#include <vector>

#include "dataset/dataset.hpp"

namespace qgnn {

/// Persist a dataset the way the paper describes (§3.1): one text file per
/// graph plus a manifest CSV carrying the labels and metadata
/// (gamma/beta per layer, approximation ratio, optimum cut value, degree).
///
/// Layout under `dir`:
///   manifest.csv
///   graphs/graph_000000.txt, graph_000001.txt, ...
void save_dataset(const std::string& dir,
                  const std::vector<DatasetEntry>& entries);

std::vector<DatasetEntry> load_dataset(const std::string& dir);

}  // namespace qgnn
