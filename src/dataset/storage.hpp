#pragma once

#include <string>
#include <vector>

#include "dataset/dataset.hpp"

namespace qgnn {

/// Persist a dataset the way the paper describes (§3.1): one text file per
/// graph plus a manifest CSV carrying the labels and metadata
/// (gamma/beta per layer, approximation ratio, optimum cut value, degree).
///
/// Layout under `dir`:
///   manifest.csv
///   graphs/graph_000000.txt, graph_000001.txt, ...
void save_dataset(const std::string& dir,
                  const std::vector<DatasetEntry>& entries);

/// Load a dataset from either storage format, dispatching on what `path`
/// is: a regular file starting with the packed magic loads through
/// load_packed_dataset (see dataset/packed.hpp); a directory loads the
/// legacy manifest.csv + graphs/ layout. Parse errors name the file and
/// the manifest line (or byte offset, for packed files) that failed.
std::vector<DatasetEntry> load_dataset(const std::string& path);

}  // namespace qgnn
