#pragma once

#include <cstdint>
#include <vector>

#include "dataset/dataset.hpp"

namespace qgnn {

/// Selective Data Pruning (paper §3.3): entries whose label approximation
/// ratio falls below `ar_threshold` are candidates for removal; of those,
/// a `selective_rate` fraction is *kept* anyway (preserving data diversity)
/// and the rest are pruned.
///
///   selective_rate = 1.0  -> keep everything (no pruning)
///   selective_rate = 0.0  -> hard threshold (drop all below-threshold data)
struct SdpConfig {
  double ar_threshold = 0.7;
  double selective_rate = 0.7;
  std::uint64_t seed = 7;
};

struct SdpReport {
  std::size_t input_count = 0;
  std::size_t below_threshold = 0;
  std::size_t pruned = 0;
  std::size_t kept = 0;
  double mean_ar_before = 0.0;
  double mean_ar_after = 0.0;
};

/// Apply SDP; returns the retained entries and fills `report` if non-null.
std::vector<DatasetEntry> selective_data_pruning(
    std::vector<DatasetEntry> entries, const SdpConfig& config,
    SdpReport* report = nullptr);

/// Fixed-angle label audit (paper §3.3 "Fixed Parameter Conjecture"): for
/// each entry whose regular degree has fixed angles available, evaluate
/// the fixed angles; when they beat the stored label's approximation
/// ratio, upgrade the label in place.
struct FixedAngleAuditReport {
  std::size_t covered = 0;    // entries with fixed angles available
  std::size_t improved = 0;   // labels replaced
  double mean_ar_delta = 0.0; // mean AR improvement over replaced labels
};

FixedAngleAuditReport fixed_angle_label_audit(
    std::vector<DatasetEntry>& entries, int depth = 1);

}  // namespace qgnn
