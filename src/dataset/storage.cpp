#include "dataset/storage.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "dataset/packed.hpp"
#include "graph/io.hpp"
#include "util/error.hpp"

namespace qgnn {

namespace fs = std::filesystem;

namespace {

std::string graph_filename(std::size_t index) {
  std::ostringstream os;
  os << "graph_" << std::setw(6) << std::setfill('0') << index << ".txt";
  return os.str();
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

std::string join_angles(const std::vector<double>& v) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ';';
    os << v[i];
  }
  return os.str();
}

/// IoError pinned to a manifest line: "<file>:<line>: <reason>", so a
/// corrupt row in a 600-row manifest names itself instead of making the
/// user bisect.
IoError manifest_error(const std::string& path, std::size_t line_no,
                       const std::string& reason) {
  return IoError(path + ":" + std::to_string(line_no) + ": " + reason);
}

std::vector<double> parse_angles(const std::string& path, std::size_t line_no,
                                 const std::string& s) {
  std::vector<double> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ';')) {
    try {
      out.push_back(std::stod(tok));
    } catch (const std::exception&) {
      throw manifest_error(path, line_no, "bad angle value '" + tok + "'");
    }
  }
  return out;
}

}  // namespace

void save_dataset(const std::string& dir,
                  const std::vector<DatasetEntry>& entries) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "graphs", ec);
  if (ec) throw IoError("cannot create dataset directory: " + dir);

  std::ofstream manifest(fs::path(dir) / "manifest.csv");
  if (!manifest) throw IoError("cannot write manifest in: " + dir);
  manifest.precision(17);
  manifest << "id,file,nodes,edges,degree,gammas,betas,expectation,optimum,"
              "approximation_ratio\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const DatasetEntry& e = entries[i];
    const std::string fname = graph_filename(i);
    save_graph((fs::path(dir) / "graphs" / fname).string(), e.graph);
    manifest << i << ',' << fname << ',' << e.graph.num_nodes() << ','
             << e.graph.num_edges() << ',' << e.degree << ','
             << join_angles(e.label.gammas) << ','
             << join_angles(e.label.betas) << ',' << e.expectation << ','
             << e.optimum << ',' << e.approximation_ratio << '\n';
  }
  if (!manifest) throw IoError("manifest write failed in: " + dir);
}

std::vector<DatasetEntry> load_dataset(const std::string& path) {
  // Transparent format dispatch: a packed file loads through the binary
  // reader; a directory is the legacy one-text-file-per-graph layout.
  if (!fs::is_directory(path) && is_packed_dataset_file(path)) {
    return load_packed_dataset(path);
  }

  const std::string manifest_path =
      (fs::path(path) / "manifest.csv").string();
  std::ifstream manifest(manifest_path);
  if (!manifest) throw IoError("cannot open manifest: " + manifest_path);

  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(manifest, line)) {
    throw manifest_error(manifest_path, 1, "empty manifest");
  }

  std::vector<DatasetEntry> entries;
  while (std::getline(manifest, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    if (f.size() != 10) {
      throw manifest_error(manifest_path, line_no,
                           "expected 10 fields, got " +
                               std::to_string(f.size()) + " in row: " + line);
    }
    DatasetEntry e;
    e.graph = load_graph((fs::path(path) / "graphs" / f[1]).string());
    try {
      e.degree = std::stoi(f[4]);
      e.label = QaoaParams(parse_angles(manifest_path, line_no, f[5]),
                           parse_angles(manifest_path, line_no, f[6]));
      e.expectation = std::stod(f[7]);
      e.optimum = std::stod(f[8]);
      e.approximation_ratio = std::stod(f[9]);
    } catch (const IoError&) {
      throw;
    } catch (const std::exception& ex) {
      throw manifest_error(manifest_path, line_no,
                           std::string("bad row (") + ex.what() +
                               "): " + line);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace qgnn
