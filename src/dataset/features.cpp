#include "dataset/features.hpp"

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {

Matrix label_to_target(const QaoaParams& label) {
  const auto p = static_cast<std::size_t>(label.depth());
  Matrix row(1, 2 * p);
  for (std::size_t l = 0; l < p; ++l) {
    row(0, l) = label.gammas[l];
    row(0, p + l) = label.betas[l];
  }
  return row;
}

QaoaParams target_to_params(const Matrix& row) {
  QGNN_REQUIRE(row.rows() == 1 && row.cols() >= 2 && row.cols() % 2 == 0,
               "prediction row must be 1 x 2p");
  const std::size_t p = row.cols() / 2;
  std::vector<double> gammas(p);
  std::vector<double> betas(p);
  for (std::size_t l = 0; l < p; ++l) {
    gammas[l] = row(0, l);
    betas[l] = row(0, p + l);
  }
  return canonicalize_params(QaoaParams(std::move(gammas), std::move(betas)));
}

std::vector<double> qaoa_angle_periods(int depth) {
  QGNN_REQUIRE(depth >= 1, "depth must be at least 1");
  constexpr double kPi = 3.14159265358979323846;
  std::vector<double> periods(static_cast<std::size_t>(2 * depth), kPi);
  for (int l = 0; l < depth; ++l) {
    periods[static_cast<std::size_t>(l)] = 2.0 * kPi;
  }
  return periods;
}

std::vector<TrainSample> to_train_samples(
    const std::vector<DatasetEntry>& entries, const FeatureConfig& config) {
  // Feature extraction is independent per entry (spectral features cost
  // an eigendecomposition each), so build samples in place in parallel.
  std::vector<TrainSample> samples(entries.size());
  ThreadPool::global().parallel_for(
      0, entries.size(), 4, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          samples[i].batch = make_graph_batch(entries[i].graph, config);
          samples[i].target = label_to_target(entries[i].label);
        }
      });
  return samples;
}

}  // namespace qgnn
