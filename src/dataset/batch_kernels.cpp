#include "dataset/batch_kernels.hpp"

#include "dataset/batch_kernels_impl.hpp"

namespace qgnn::batchkern {

namespace detail {
#if defined(QGNN_BATCH_KERNELS_AVX2)
void cost_layer_avx2(double* re, double* im, const std::uint16_t* lev,
                     const double* tab_re, const double* tab_im,
                     std::uint64_t dim);
void mixer_layer_avx2(double* re, double* im, int n, double c, double s);
#endif
#if defined(QGNN_BATCH_KERNELS_AVX512)
void cost_layer_avx512(double* re, double* im, const std::uint16_t* lev,
                       const double* tab_re, const double* tab_im,
                       std::uint64_t dim);
void mixer_layer_avx512(double* re, double* im, int n, double c, double s);
#endif
}  // namespace detail

namespace {

void cost_layer_generic(double* re, double* im, const std::uint16_t* lev,
                        const double* tab_re, const double* tab_im,
                        std::uint64_t dim) {
  impl::cost_run_scalar(re, im, lev, tab_re, tab_im, 0, dim);
}

void mixer_layer_generic(double* re, double* im, int n, double c, double s) {
  impl::mixer_sweep(n, [&](std::uint64_t start, std::uint64_t bit) {
    impl::mixer_run_scalar(re, im, start, bit, c, s);
  });
}

struct Selected {
  CostLayerFn cost = &cost_layer_generic;
  MixerLayerFn mixer = &mixer_layer_generic;
  const char* isa = "generic";
};

Selected select() {
  Selected pick;
#if defined(QGNN_BATCH_KERNELS_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    pick.cost = &detail::cost_layer_avx2;
    pick.mixer = &detail::mixer_layer_avx2;
    pick.isa = "avx2";
  }
#endif
#if defined(QGNN_BATCH_KERNELS_AVX512)
  if (__builtin_cpu_supports("avx512f")) {
    pick.cost = &detail::cost_layer_avx512;
    pick.mixer = &detail::mixer_layer_avx512;
    pick.isa = "avx512f";
  }
#endif
  return pick;
}

const Selected& selected() {
  static const Selected pick = select();
  return pick;
}

}  // namespace

CostLayerFn cost_layer() { return selected().cost; }

MixerLayerFn mixer_layer() { return selected().mixer; }

const char* kernel_isa() { return selected().isa; }

}  // namespace qgnn::batchkern
