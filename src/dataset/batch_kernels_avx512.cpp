// AVX-512F variants of the batch-workspace kernels. Same contract as
// the AVX2 file: explicit mul/add/sub intrinsics only (no FMA), so the
// 8-wide arithmetic rounds exactly like the scalar reference and the
// emitted dataset bytes do not depend on the selected instruction set.

#if defined(QGNN_BATCH_KERNELS_AVX512)

#include <immintrin.h>

#include <cstdint>

#include "dataset/batch_kernels_impl.hpp"

namespace qgnn::batchkern::detail {

namespace {

// RX butterflies for qubits 0..2, whose pairs live within one 8-double
// register, as lane permutes plus the usual mul/add — no scalar
// fallback passes. For a pair (l, h) the reference updates are
//   re: l -> c*lr + s*him   h -> c*hr + s*lim
//   im: l -> c*li - s*hre   h -> c*hm - s*lre
// i.e. every lane computes c*x + s*partner(y) (re, both signs +) or
// c*y - s*partner(x) (im, both signs -), so one permuted operand per
// register covers both halves of the butterfly with the exact scalar
// rounding sequence. The permutes are the masked forms with a full
// mask and explicit zero source: same shuffles as the plain forms,
// which use the undefined-source intrinsic that GCC 12 flags with
// -Wmaybe-uninitialized.
inline void butterflies012(__m512d r0, __m512d i0, __m512d vc, __m512d vs,
                           __m512d* out_r, __m512d* out_i) {
  const __m512d zero = _mm512_setzero_pd();
  constexpr __mmask8 all = static_cast<__mmask8>(0xff);
  // Qubit 0: partner lane differs in bit 0 (swap adjacent lanes).
  __m512d pr = _mm512_mask_permute_pd(zero, all, r0, 0x55);
  __m512d pi = _mm512_mask_permute_pd(zero, all, i0, 0x55);
  const __m512d r1 = _mm512_add_pd(_mm512_mul_pd(vc, r0), _mm512_mul_pd(vs, pi));
  const __m512d i1 = _mm512_sub_pd(_mm512_mul_pd(vc, i0), _mm512_mul_pd(vs, pr));
  // Qubit 1: swap lane pairs within each 256-bit half.
  pr = _mm512_mask_permutex_pd(zero, all, r1, 0x4E);
  pi = _mm512_mask_permutex_pd(zero, all, i1, 0x4E);
  const __m512d r2 = _mm512_add_pd(_mm512_mul_pd(vc, r1), _mm512_mul_pd(vs, pi));
  const __m512d i2 = _mm512_sub_pd(_mm512_mul_pd(vc, i1), _mm512_mul_pd(vs, pr));
  // Qubit 2: swap the 256-bit halves.
  pr = _mm512_mask_shuffle_f64x2(zero, all, r2, r2, 0x4E);
  pi = _mm512_mask_shuffle_f64x2(zero, all, i2, i2, 0x4E);
  *out_r = _mm512_add_pd(_mm512_mul_pd(vc, r2), _mm512_mul_pd(vs, pi));
  *out_i = _mm512_sub_pd(_mm512_mul_pd(vc, i2), _mm512_mul_pd(vs, pr));
}

// Pair run for qubit 3 and up (bit >= 8, a full vector per side).
inline void pair_run(double* re, double* im, std::uint64_t start,
                     std::uint64_t bit, __m512d vc, __m512d vs) {
  double* lre = re + start;
  double* lim = im + start;
  double* hre = lre + bit;
  double* him = lim + bit;
  for (std::uint64_t x = 0; x < bit; x += 8) {
    const __m512d lr = _mm512_loadu_pd(lre + x);
    const __m512d li = _mm512_loadu_pd(lim + x);
    const __m512d hr = _mm512_loadu_pd(hre + x);
    const __m512d hm = _mm512_loadu_pd(him + x);
    _mm512_storeu_pd(lre + x, _mm512_add_pd(_mm512_mul_pd(vc, lr),
                                            _mm512_mul_pd(vs, hm)));
    _mm512_storeu_pd(lim + x, _mm512_sub_pd(_mm512_mul_pd(vc, li),
                                            _mm512_mul_pd(vs, hr)));
    _mm512_storeu_pd(hre + x, _mm512_add_pd(_mm512_mul_pd(vc, hr),
                                            _mm512_mul_pd(vs, li)));
    _mm512_storeu_pd(him + x, _mm512_sub_pd(_mm512_mul_pd(vc, hm),
                                            _mm512_mul_pd(vs, lr)));
  }
}

// Gather the phase-table entries for 8 consecutive states. Masked
// gather with a full mask and explicit zero source: same loads as the
// plain form, but avoids the undefined-source intrinsic that GCC 12
// flags with -Wmaybe-uninitialized.
inline void gather_phases(const std::uint16_t* lev, std::uint64_t k,
                          const double* tab_re, const double* tab_im,
                          __m512d* tr, __m512d* ti) {
  const __m128i lev16 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(lev + k));
  const __m256i idx = _mm256_cvtepu16_epi32(lev16);
  *tr = _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                 static_cast<__mmask8>(0xff), idx, tab_re, 8);
  *ti = _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                 static_cast<__mmask8>(0xff), idx, tab_im, 8);
}

}  // namespace

void cost_layer_avx512(double* re, double* im, const std::uint16_t* lev,
                       const double* tab_re, const double* tab_im,
                       std::uint64_t dim) {
  std::uint64_t k = 0;
  for (; k + 8 <= dim; k += 8) {
    __m512d tr;
    __m512d ti;
    gather_phases(lev, k, tab_re, tab_im, &tr, &ti);
    const __m512d r = _mm512_loadu_pd(re + k);
    const __m512d i = _mm512_loadu_pd(im + k);
    const __m512d nr =
        _mm512_sub_pd(_mm512_mul_pd(r, tr), _mm512_mul_pd(i, ti));
    const __m512d ni =
        _mm512_add_pd(_mm512_mul_pd(r, ti), _mm512_mul_pd(i, tr));
    _mm512_storeu_pd(re + k, nr);
    _mm512_storeu_pd(im + k, ni);
  }
  impl::cost_run_scalar(re, im, lev, tab_re, tab_im, k, dim);
}

void mixer_layer_avx512(double* re, double* im, int n, double c, double s) {
  const __m512d vc = _mm512_set1_pd(c);
  const __m512d vs = _mm512_set1_pd(s);
  if (n < 3) {
    // Too few qubits for an in-register butterfly over a full vector.
    impl::mixer_sweep(n, [&](std::uint64_t start, std::uint64_t bit) {
      impl::mixer_run_scalar(re, im, start, bit, c, s);
    });
    return;
  }
  impl::mixer_sweep_fused(
      n, 3,
      [&](std::uint64_t start, std::uint64_t len) {
        for (std::uint64_t x = start; x < start + len; x += 8) {
          __m512d r;
          __m512d i;
          butterflies012(_mm512_loadu_pd(re + x), _mm512_loadu_pd(im + x), vc,
                         vs, &r, &i);
          _mm512_storeu_pd(re + x, r);
          _mm512_storeu_pd(im + x, i);
        }
      },
      [&](std::uint64_t start, std::uint64_t bit) {
        pair_run(re, im, start, bit, vc, vs);
      });
}

}  // namespace qgnn::batchkern::detail

#endif  // QGNN_BATCH_KERNELS_AVX512
