#pragma once

#include <vector>

#include "dataset/dataset.hpp"
#include "gnn/trainer.hpp"

namespace qgnn {

/// Convert labelled dataset entries into GNN training samples: node
/// features via `config`, regression target = [gammas..., betas...] as a
/// (1 x 2*depth) row. Entries larger than config.max_nodes are rejected.
std::vector<TrainSample> to_train_samples(
    const std::vector<DatasetEntry>& entries, const FeatureConfig& config);

/// Target row for one entry (exposed for tests).
Matrix label_to_target(const QaoaParams& label);

/// Inverse of label_to_target: reshape a (1 x 2p) prediction row into
/// QaoaParams, wrapping angles into the canonical domain.
QaoaParams target_to_params(const Matrix& row);

/// Periods of the [gamma_0..gamma_{p-1}, beta_0..beta_{p-1}] target layout
/// for the periodic training loss: gammas repeat every 2*pi (integer-
/// weight graphs), betas every pi.
std::vector<double> qaoa_angle_periods(int depth);

}  // namespace qgnn
