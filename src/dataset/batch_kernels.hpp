#pragma once

#include <cstdint>

namespace qgnn::batchkern {

/// SIMD-dispatched kernels for the dataset factory's batch workspace.
///
/// The workspace stores each lane's amplitudes as two contiguous
/// double arrays (re[dim], im[dim]) instead of interleaved
/// std::complex, so the per-amplitude update expressions vectorize at
/// any register width without shuffles. Every kernel is elementwise
/// (cost layer) or pair-elementwise (mixer layer): each output element
/// is produced by the same scalar IEEE expression regardless of vector
/// width, so the AVX2/AVX-512 variants are bit-identical to the
/// generic loop. The wide variants use explicit mul/add intrinsics —
/// never FMA — because the scalar reference rounds after every
/// multiply. Reductions are NOT dispatched here: summation order is
/// pinned by the evaluator (it mirrors reduce_index), and changing the
/// combine tree would change the labels.

/// Multiply amplitude s by the unit phase table[lev[s]]:
///   re' = re * tr - im * ti,  im' = re * ti + im * tr.
using CostLayerFn = void (*)(double* re, double* im,
                             const std::uint16_t* lev, const double* tab_re,
                             const double* tab_im, std::uint64_t dim);

/// Apply one RX mixer layer (all n qubits, rotation cosine c / sine s)
/// to the 2^n-amplitude lane, cache-blocked. Per pair (lo, hi):
///   lo_re' = c*lo_re + s*hi_im,  lo_im' = c*lo_im - s*hi_re,
///   hi_re' = c*hi_re + s*lo_im,  hi_im' = c*hi_im - s*lo_re.
using MixerLayerFn = void (*)(double* re, double* im, int n, double c,
                              double s);

/// Kernels resolved once per process from CPU features (AVX-512F, then
/// AVX2, then the portable loop). All variants produce identical bytes.
CostLayerFn cost_layer();
MixerLayerFn mixer_layer();

/// Name of the selected instruction set ("avx512f", "avx2", or
/// "generic"); surfaced by benchmarks and the qgnn_dataset CLI.
const char* kernel_isa();

}  // namespace qgnn::batchkern
