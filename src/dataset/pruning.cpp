#include "dataset/pruning.hpp"

#include "qaoa/fixed_angles.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace qgnn {

std::vector<DatasetEntry> selective_data_pruning(
    std::vector<DatasetEntry> entries, const SdpConfig& config,
    SdpReport* report) {
  QGNN_REQUIRE(config.ar_threshold >= 0.0 && config.ar_threshold <= 1.0,
               "AR threshold out of [0,1]");
  QGNN_REQUIRE(config.selective_rate >= 0.0 && config.selective_rate <= 1.0,
               "selective rate out of [0,1]");

  Rng rng(config.seed);
  SdpReport r;
  r.input_count = entries.size();
  RunningStats before;
  RunningStats after;
  for (const DatasetEntry& e : entries) before.add(e.approximation_ratio);

  std::vector<DatasetEntry> kept;
  kept.reserve(entries.size());
  for (DatasetEntry& e : entries) {
    const bool low_quality = e.approximation_ratio < config.ar_threshold;
    if (low_quality) {
      ++r.below_threshold;
      if (!rng.bernoulli(config.selective_rate)) {
        ++r.pruned;
        continue;
      }
    }
    after.add(e.approximation_ratio);
    kept.push_back(std::move(e));
  }
  r.kept = kept.size();
  r.mean_ar_before = before.mean();
  r.mean_ar_after = after.mean();
  if (report) *report = r;
  return kept;
}

FixedAngleAuditReport fixed_angle_label_audit(
    std::vector<DatasetEntry>& entries, int depth) {
  FixedAngleAuditReport report;
  RunningStats deltas;
  for (DatasetEntry& e : entries) {
    if (!e.graph.is_regular()) continue;
    const auto angles = fixed_angles(e.degree, depth);
    if (!angles) continue;
    ++report.covered;
    QaoaAnsatz ansatz(e.graph);
    const double expectation = ansatz.expectation(*angles);
    const double ar =
        e.optimum > 0.0 ? expectation / e.optimum : 1.0;
    if (ar > e.approximation_ratio) {
      deltas.add(ar - e.approximation_ratio);
      e.label = canonicalize_params(*angles);
      e.expectation = expectation;
      e.approximation_ratio = ar;
      ++report.improved;
    }
  }
  report.mean_ar_delta = deltas.mean();
  return report;
}

}  // namespace qgnn
