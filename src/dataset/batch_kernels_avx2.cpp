// AVX2 variants of the batch-workspace kernels (compiled with -mavx2
// only — no -mfma, and every operation is an explicit mul/add/sub
// intrinsic, so each element follows the exact rounding sequence of the
// scalar reference and the results are bit-identical).

#if defined(QGNN_BATCH_KERNELS_AVX2)

#include <immintrin.h>

#include <cstdint>

#include "dataset/batch_kernels_impl.hpp"

namespace qgnn::batchkern::detail {

namespace {

// RX butterflies for qubits 0..1, whose pairs live within one 4-double
// register, as lane permutes plus the usual mul/add — no scalar
// fallback passes. Every lane computes c*x + s*partner(y) (re) or
// c*y - s*partner(x) (im), the exact scalar rounding sequence (see the
// AVX-512 twin for the derivation).
inline void butterflies01(__m256d r0, __m256d i0, __m256d vc, __m256d vs,
                          __m256d* out_r, __m256d* out_i) {
  // Qubit 0: partner lane differs in bit 0 (swap adjacent lanes).
  __m256d pr = _mm256_permute_pd(r0, 0x5);
  __m256d pi = _mm256_permute_pd(i0, 0x5);
  const __m256d r1 = _mm256_add_pd(_mm256_mul_pd(vc, r0), _mm256_mul_pd(vs, pi));
  const __m256d i1 = _mm256_sub_pd(_mm256_mul_pd(vc, i0), _mm256_mul_pd(vs, pr));
  // Qubit 1: swap the 128-bit halves.
  pr = _mm256_permute2f128_pd(r1, r1, 0x01);
  pi = _mm256_permute2f128_pd(i1, i1, 0x01);
  *out_r = _mm256_add_pd(_mm256_mul_pd(vc, r1), _mm256_mul_pd(vs, pi));
  *out_i = _mm256_sub_pd(_mm256_mul_pd(vc, i1), _mm256_mul_pd(vs, pr));
}

// Pair run for qubit 2 and up (bit >= 4, a full vector per side).
inline void pair_run(double* re, double* im, std::uint64_t start,
                     std::uint64_t bit, __m256d vc, __m256d vs) {
  double* lre = re + start;
  double* lim = im + start;
  double* hre = lre + bit;
  double* him = lim + bit;
  for (std::uint64_t x = 0; x < bit; x += 4) {
    const __m256d lr = _mm256_loadu_pd(lre + x);
    const __m256d li = _mm256_loadu_pd(lim + x);
    const __m256d hr = _mm256_loadu_pd(hre + x);
    const __m256d hm = _mm256_loadu_pd(him + x);
    _mm256_storeu_pd(lre + x, _mm256_add_pd(_mm256_mul_pd(vc, lr),
                                            _mm256_mul_pd(vs, hm)));
    _mm256_storeu_pd(lim + x, _mm256_sub_pd(_mm256_mul_pd(vc, li),
                                            _mm256_mul_pd(vs, hr)));
    _mm256_storeu_pd(hre + x, _mm256_add_pd(_mm256_mul_pd(vc, hr),
                                            _mm256_mul_pd(vs, li)));
    _mm256_storeu_pd(him + x, _mm256_sub_pd(_mm256_mul_pd(vc, hm),
                                            _mm256_mul_pd(vs, lr)));
  }
}

// Gather the phase-table entries for 4 consecutive states. Masked
// gather with an all-ones mask and explicit zero source: same loads as
// the plain form, but avoids _mm256_undefined_pd, which GCC 12 flags
// with -Wmaybe-uninitialized.
inline void gather_phases(const std::uint16_t* lev, std::uint64_t k,
                          const double* tab_re, const double* tab_im,
                          __m256d* tr, __m256d* ti) {
  const __m128i lev16 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(lev + k));
  const __m128i idx = _mm_cvtepu16_epi32(lev16);
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  *tr = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), tab_re, idx, ones, 8);
  *ti = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), tab_im, idx, ones, 8);
}

}  // namespace

void cost_layer_avx2(double* re, double* im, const std::uint16_t* lev,
                     const double* tab_re, const double* tab_im,
                     std::uint64_t dim) {
  std::uint64_t k = 0;
  for (; k + 4 <= dim; k += 4) {
    __m256d tr;
    __m256d ti;
    gather_phases(lev, k, tab_re, tab_im, &tr, &ti);
    const __m256d r = _mm256_loadu_pd(re + k);
    const __m256d i = _mm256_loadu_pd(im + k);
    const __m256d nr =
        _mm256_sub_pd(_mm256_mul_pd(r, tr), _mm256_mul_pd(i, ti));
    const __m256d ni =
        _mm256_add_pd(_mm256_mul_pd(r, ti), _mm256_mul_pd(i, tr));
    _mm256_storeu_pd(re + k, nr);
    _mm256_storeu_pd(im + k, ni);
  }
  impl::cost_run_scalar(re, im, lev, tab_re, tab_im, k, dim);
}

void mixer_layer_avx2(double* re, double* im, int n, double c, double s) {
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  if (n < 2) {
    // Too few qubits for an in-register butterfly over a full vector.
    impl::mixer_sweep(n, [&](std::uint64_t start, std::uint64_t bit) {
      impl::mixer_run_scalar(re, im, start, bit, c, s);
    });
    return;
  }
  impl::mixer_sweep_fused(
      n, 2,
      [&](std::uint64_t start, std::uint64_t len) {
        for (std::uint64_t x = start; x < start + len; x += 4) {
          __m256d r;
          __m256d i;
          butterflies01(_mm256_loadu_pd(re + x), _mm256_loadu_pd(im + x), vc,
                        vs, &r, &i);
          _mm256_storeu_pd(re + x, r);
          _mm256_storeu_pd(im + x, i);
        }
      },
      [&](std::uint64_t start, std::uint64_t bit) {
        pair_run(re, im, start, bit, vc, vs);
      });
}

}  // namespace qgnn::batchkern::detail

#endif  // QGNN_BATCH_KERNELS_AVX2
