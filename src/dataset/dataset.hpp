#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "qaoa/qaoa.hpp"

namespace qgnn {

/// One labelled instance of the paper's synthetic dataset: a random
/// regular graph plus the (gamma, beta) found by optimizing QAOA from a
/// random start, with quality metadata.
struct DatasetEntry {
  Graph graph;
  QaoaParams label{{0.0}, {0.0}};
  double expectation = 0.0;   // <C> at the label parameters
  double optimum = 0.0;       // exact Max-Cut value (brute force)
  double approximation_ratio = 0.0;
  int degree = 0;             // regular degree of the instance
};

/// Generation parameters following §3.1: graphs with 2..15 nodes and
/// degrees 2..14, labelled by a 500-evaluation optimization from random
/// initial parameters. The default instance count is scaled down for
/// single-core runs; pass 9598 to regenerate at paper scale.
struct DatasetGenConfig {
  int num_instances = 600;
  int min_nodes = 2;
  int max_nodes = 15;
  int min_degree = 1;   // degree 1 only occurs when n = 2 allows nothing else
  int max_degree = 14;
  int depth = 1;
  int optimizer_evaluations = 500;
  QaoaOptimizer optimizer = QaoaOptimizer::kNelderMead;
  /// Fold labels through the time-reversal symmetry (see
  /// canonicalize_params_symmetric). Off by default to match the paper's
  /// raw-label setup; bench/ext_label_symmetry measures the effect.
  bool symmetrize_labels = false;
  std::uint64_t seed = 42;
};

/// Progress hook: (instances_done, instances_total).
using ProgressFn = std::function<void(int, int)>;

/// Generate the labelled dataset. Deterministic for a fixed config.
std::vector<DatasetEntry> generate_dataset(const DatasetGenConfig& config,
                                           const ProgressFn& progress = {});

/// Sample only the graphs (no QAOA labelling) with the same distribution
/// the labelled generator uses. Cheap path for distribution plots
/// (Figure 2) and for inference-only workloads. Deterministic for a fixed
/// config; the graph sequence matches generate_dataset's.
std::vector<Graph> generate_graphs(const DatasetGenConfig& config);

/// Wrap gamma into [0, 2*pi) and beta into [0, pi), the canonical QAOA
/// parameter domain for integer-weight graphs (angles outside it are
/// gauge-equivalent).
QaoaParams canonicalize_params(const QaoaParams& params);

/// Stronger canonicalization (extension): additionally fold through the
/// time-reversal symmetry <C>(gamma, beta) = <C>(2*pi - gamma, pi - beta)
/// (complex conjugation of the state; holds for any real cost diagonal),
/// mapping the leading gamma into [0, pi]. Halves the label space the GNN
/// must learn, removing one source of the multimodal-target problem.
QaoaParams canonicalize_params_symmetric(const QaoaParams& params);

/// Split off `test_count` entries (random, seeded) for evaluation; the
/// paper holds out 100 test graphs. Returns {train, test}.
std::pair<std::vector<DatasetEntry>, std::vector<DatasetEntry>>
train_test_split(std::vector<DatasetEntry> entries, int test_count,
                 std::uint64_t seed);

}  // namespace qgnn
