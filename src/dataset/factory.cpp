#include "dataset/factory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <utility>

#include "simd/kernels.hpp"
#include "dataset/packed.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qaoa/cost_hamiltonian.hpp"
#include "qaoa/optimize.hpp"
#include "qaoa/qaoa.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qgnn {

namespace fs = std::filesystem;

namespace {

// Registry handles cached once; the labelling loops run hundreds of
// thousands of passes and must not take the registry mutex per event.
obs::Counter& graphs_labeled_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      obs::names::kDatasetGraphsLabeled);
  return c;
}

obs::LatencyHistogram& batch_fill_histogram() {
  static obs::LatencyHistogram& h = obs::MetricsRegistry::global().histogram(
      obs::names::kDatasetBatchFill);
  return h;
}

obs::LatencyHistogram& label_wave_histogram() {
  static obs::LatencyHistogram& h = obs::MetricsRegistry::global().histogram(
      obs::names::kDatasetLabelWaveUs);
  return h;
}

obs::LatencyHistogram& shard_commit_histogram() {
  static obs::LatencyHistogram& h = obs::MetricsRegistry::global().histogram(
      obs::names::kDatasetShardCommitUs);
  return h;
}

/// Default batch width by qubit count: the lane count sets the lockstep
/// Nelder-Mead wave width and the workspace footprint (K * 2^n * 16
/// bytes of amplitudes) — kernels run lane-at-a-time, so width is a
/// scheduling choice, never a results choice. Wide lanes on tiny
/// statevectors keep refill churn low; at n >= 13 each lane's rotating
/// set (amplitudes + levels + diagonal) is hundreds of KB, so two lanes
/// is all that stays resident in a 1-2 MB L2 — wider widths measured
/// slower there.
int auto_lanes(int num_qubits) {
  if (num_qubits <= 8) return 32;
  if (num_qubits <= 10) return 16;
  if (num_qubits <= 12) return 8;
  return 2;
}

/// K statevectors labelled in lockstep through one workspace. Each lane
/// owns a contiguous pair of arrays (re[dim], im[dim]) — separated real
/// and imaginary components instead of interleaved std::complex — so
/// the split-layout SIMD kernels in simd/kernels.hpp run at full register
/// width with no shuffles. The per-amplitude arithmetic replicates the
/// scalar StateVector/QaoaEvalEngine expressions operation for
/// operation (the wide kernels use explicit mul/add, never FMA), so
/// each lane's result is bit-identical to a scalar evaluation of the
/// same engine — and therefore independent of K, the selected
/// instruction set, scheduling, and thread count.
class BatchEvaluator {
 public:
  BatchEvaluator(int num_qubits, int lanes, int depth)
      : n_(num_qubits),
        lanes_(lanes),
        depth_(depth),
        dim_(std::uint64_t{1} << num_qubits),
        cost_fn_(simd::cost_layer_split()),
        mixer_fn_(simd::mixer_layer_split()) {
    QGNN_REQUIRE(lanes_ >= 1, "batch evaluator needs at least one lane");
    const std::size_t total = static_cast<std::size_t>(dim_) * lanes_;
    re_.assign(total, 0.0);
    im_.assign(total, 0.0);
    engines_.assign(static_cast<std::size_t>(lanes_), nullptr);
  }

  int lanes() const { return lanes_; }

  /// Bind `engine` (which must have an active phase table) to `lane`.
  /// The lane reads the engine's level index and diagonal in place, so
  /// the engine must outlive the binding.
  void bind(int lane, const QaoaEvalEngine* engine) {
    QGNN_REQUIRE(engine->num_qubits() == n_,
                 "engine qubit count does not match batch evaluator");
    QGNN_REQUIRE(engine->phase_table_active(),
                 "batch evaluator requires the phase-table fast path");
    engines_[static_cast<std::size_t>(lane)] = engine;
    const std::size_t levels = engine->num_levels();
    if (levels > tab_re_.size()) {
      tab_re_.resize(levels);
      tab_im_.resize(levels);
    }
  }

  /// One full ansatz-plus-expectation pass for every active lane.
  /// flats[k] points at lane k's flat parameters [gamma_0.., beta_0..];
  /// inactive lanes are skipped entirely. On return out[k] holds <D_k>
  /// for every active lane.
  void evaluate(const std::vector<const double*>& flats,
                const std::vector<char>& active, std::vector<double>& out) {
    for (int k = 0; k < lanes_; ++k) {
      if (active[static_cast<std::size_t>(k)]) {
        out[static_cast<std::size_t>(k)] =
            evaluate_lane(k, flats[static_cast<std::size_t>(k)]);
      }
    }
  }

 private:
  double evaluate_lane(int k, const double* flat) {
    const QaoaEvalEngine& eng = *engines_[static_cast<std::size_t>(k)];
    double* re = re_.data() + static_cast<std::size_t>(k) * dim_;
    double* im = im_.data() + static_cast<std::size_t>(k) * dim_;
    // Same expression as StateVector::set_plus_state.
    const double amp = 1.0 / std::sqrt(static_cast<double>(dim_));
    std::fill(re, re + dim_, amp);
    std::fill(im, im + dim_, 0.0);
    const std::span<const double> levels = eng.levels();
    const std::uint16_t* lev = eng.level_index().data();
    for (int layer = 0; layer < depth_; ++layer) {
      const double gamma = flat[layer];
      for (std::size_t l = 0; l < levels.size(); ++l) {
        // Same expression as QaoaEvalEngine::build_phase_table.
        const double phi = -gamma * levels[l];
        tab_re_[l] = std::cos(phi);
        tab_im_[l] = std::sin(phi);
      }
      cost_fn_(re, im, lev, tab_re_.data(), tab_im_.data(), dim_);
      // theta = 2*beta and the scalar kernel takes cos/sin of theta/2;
      // (2.0*beta)/2.0 == beta exactly, so use beta directly.
      const double beta = flat[depth_ + layer];
      mixer_fn_(re, im, n_, std::cos(beta), std::sin(beta));
    }
    return expectation_lane(re, im, eng.diagonal().data());
  }

  /// Mirror reduce_index's summation shape: a single sequential chunk
  /// below kParallelDim, and 2^12-state chunk partials combined in chunk
  /// order from zero at or above it — so the lane's sum matches the
  /// scalar engine bit-for-bit at every qubit count. Summation order is
  /// pinned; this loop is deliberately not SIMD-dispatched.
  double expectation_lane(const double* re, const double* im,
                          const double* diag) const {
    constexpr std::uint64_t kParallelDim = std::uint64_t{1} << 14;
    constexpr std::uint64_t kGrain = std::uint64_t{1} << 12;
    auto chunk = [&](std::uint64_t lo, std::uint64_t hi) {
      double acc = 0.0;
      for (std::uint64_t s = lo; s < hi; ++s) {
        // Same expression order as expectation_diagonal's chunk body:
        // norm(amp) * diag, accumulated in state order.
        const double p = re[s] * re[s] + im[s] * im[s];
        acc += p * diag[s];
      }
      return acc;
    };
    if (dim_ >= kParallelDim) {
      double total = 0.0;
      for (std::uint64_t lo = 0; lo < dim_; lo += kGrain) {
        total += chunk(lo, std::min(dim_, lo + kGrain));
      }
      return total;
    }
    return chunk(0, dim_);
  }

  int n_;
  int lanes_;
  int depth_;
  std::uint64_t dim_;
  simd::CostLayerSplitFn cost_fn_;
  simd::MixerLayerSplitFn mixer_fn_;
  std::vector<double> re_, im_;          // [lane * dim + state]
  std::vector<double> tab_re_, tab_im_;  // phase-table scratch (one lane)
  std::vector<const QaoaEvalEngine*> engines_;
};

/// Label one item exactly the way generate_dataset does (same RNG
/// derivation, same run_qaoa call), so non-batchable items — non-NM
/// optimizers, or diagonals without a phase table — produce byte-identical
/// entries to the sequential generator.
void label_item_sequential(const DatasetGenConfig& config, DatasetEntry& entry,
                           std::size_t index) {
  QaoaRunConfig run;
  run.depth = config.depth;
  run.optimizer = config.optimizer;
  run.max_evaluations = config.optimizer_evaluations;
  run.sample_shots = 0;  // labels only need <C>; skip sampling cost
  Rng item_rng(derive_seed(config.seed, index));
  RandomInitializer initializer(item_rng.child());
  Rng sample_rng = item_rng.child();
  const QaoaResult result =
      run_qaoa(entry.graph, initializer, run, sample_rng);
  entry.label = config.symmetrize_labels
                    ? canonicalize_params_symmetric(result.best_params)
                    : canonicalize_params(result.best_params);
  entry.expectation = result.best_expectation;
  entry.optimum = result.optimum;
  entry.approximation_ratio = result.best_ar;
}

struct NmLane {
  std::size_t item = 0;
  std::unique_ptr<CostHamiltonian> cost;
  std::unique_ptr<NelderMeadStepper> stepper;
  bool active = false;
};

/// Lockstep Nelder-Mead over one task's items (all the same qubit count):
/// every pass evaluates each live lane's pending simplex point in one
/// batched sweep; finished lanes refill from the task queue. Each lane's
/// evaluation sequence is exactly the sequence nelder_mead_maximize would
/// request, fed with bit-identical objective values, so the labels do not
/// depend on lane count, refill order, or what the other lanes compute.
void label_items_nm(const DatasetGenConfig& config,
                    std::vector<DatasetEntry>& entries,
                    std::span<const std::size_t> items, int lanes,
                    bool obs_on) {
  const int n = entries[items.front()].graph.num_nodes();
  BatchEvaluator be(n, lanes, config.depth);
  NelderMeadConfig nm;
  nm.max_evaluations = config.optimizer_evaluations;

  std::vector<NmLane> lane(static_cast<std::size_t>(lanes));
  std::vector<const double*> flats(static_cast<std::size_t>(lanes), nullptr);
  std::vector<char> active(static_cast<std::size_t>(lanes), 0);
  std::vector<double> out(static_cast<std::size_t>(lanes), 0.0);

  std::size_t next = 0;
  int num_active = 0;

  auto finalize = [&](NmLane& slot) {
    OptResult r = slot.stepper->take_result();
    DatasetEntry& e = entries[slot.item];
    const QaoaParams best = QaoaParams::from_flat(r.best_params);
    e.label = config.symmetrize_labels ? canonicalize_params_symmetric(best)
                                       : canonicalize_params(best);
    e.expectation = r.best_value;
    e.optimum = slot.cost->max_value();
    e.approximation_ratio =
        e.optimum > 0.0 ? e.expectation / e.optimum : 1.0;
  };

  auto load = [&](int k) {
    NmLane& slot = lane[static_cast<std::size_t>(k)];
    while (next < items.size()) {
      const std::size_t item = items[next++];
      auto cost = std::make_unique<CostHamiltonian>(entries[item].graph);
      if (!cost->engine().phase_table_active()) {
        // No quantized cost layer (pathological weighted diagonal): label
        // through the scalar path right here and keep refilling.
        label_item_sequential(config, entries[item], item);
        continue;
      }
      // Same per-item stream derivation as generate_dataset: initializer
      // stream first, then the (unused) sampling stream.
      Rng item_rng(derive_seed(config.seed, item));
      RandomInitializer initializer(item_rng.child());
      Rng sample_rng = item_rng.child();
      (void)sample_rng;  // labels skip sampling; kept for stream parity
      const QaoaParams start =
          initializer.initialize(entries[item].graph, config.depth);
      be.bind(k, &cost->engine());
      slot.item = item;
      slot.cost = std::move(cost);  // old engine (if any) freed after rebind
      slot.stepper =
          std::make_unique<NelderMeadStepper>(start.flatten(), nm);
      slot.active = true;
      active[static_cast<std::size_t>(k)] = 1;
      flats[static_cast<std::size_t>(k)] = slot.stepper->ask()->data();
      ++num_active;
      return;
    }
    // Queue drained: the lane idles. Inactive lanes are skipped by the
    // evaluator, so the slot can release its engine and stepper now.
    slot.active = false;
    slot.cost.reset();
    slot.stepper.reset();
    active[static_cast<std::size_t>(k)] = 0;
    flats[static_cast<std::size_t>(k)] = nullptr;
  };

  for (int k = 0; k < lanes; ++k) load(k);

  while (num_active > 0) {
    if (obs_on) {
      batch_fill_histogram().record(static_cast<double>(num_active));
    }
    be.evaluate(flats, active, out);
    for (int k = 0; k < lanes; ++k) {
      NmLane& slot = lane[static_cast<std::size_t>(k)];
      if (!slot.active) continue;
      slot.stepper->tell(out[static_cast<std::size_t>(k)]);
      if (slot.stepper->done()) {
        finalize(slot);
        --num_active;
        load(k);
      } else {
        flats[static_cast<std::size_t>(k)] = slot.stepper->ask()->data();
      }
    }
  }
}

/// Label entries[lo, hi) on the global thread pool: group by qubit count,
/// slice each group into tasks of a few batches' worth, and run tasks in
/// parallel. Task boundaries depend only on the index range and the lane
/// width — never on the pool size — and items are labelled from
/// per-index seeds, so the results are bit-identical at any thread count.
void label_range(const DatasetGenConfig& config, const FactoryConfig& factory,
                 std::vector<DatasetEntry>& entries, std::size_t lo,
                 std::size_t hi,
                 const std::function<void(int)>& on_labelled) {
  std::map<int, std::vector<std::size_t>> by_nodes;
  for (std::size_t i = lo; i < hi; ++i) {
    by_nodes[entries[i].graph.num_nodes()].push_back(i);
  }

  struct Task {
    const std::size_t* items = nullptr;
    std::size_t count = 0;
    int lanes = 1;
  };
  std::vector<Task> tasks;
  for (const auto& [n, idx] : by_nodes) {
    const int lanes = factory.lanes > 0 ? factory.lanes : auto_lanes(n);
    // A task holds several batches' worth of items so finished lanes
    // refill locally (keeping batches full) while mixed-size waves still
    // split into enough tasks to keep every pool lane busy.
    const std::size_t per_task = static_cast<std::size_t>(lanes) * 4;
    for (std::size_t b = 0; b < idx.size(); b += per_task) {
      tasks.push_back({idx.data() + b, std::min(per_task, idx.size() - b),
                       lanes});
    }
  }

  const bool obs_on = obs::enabled();
  ThreadPool::global().parallel_for(
      0, tasks.size(), 1, [&](std::uint64_t tlo, std::uint64_t thi) {
        for (std::uint64_t t = tlo; t < thi; ++t) {
          const Task& task = tasks[static_cast<std::size_t>(t)];
          const std::span<const std::size_t> items(task.items, task.count);
          if (config.optimizer == QaoaOptimizer::kNelderMead) {
            label_items_nm(config, entries, items, task.lanes, obs_on);
          } else {
            for (const std::size_t i : items) {
              label_item_sequential(config, entries[i], i);
            }
          }
          if (obs_on) {
            graphs_labeled_counter().add(task.count);
          }
          if (on_labelled) on_labelled(static_cast<int>(task.count));
        }
      });
}

void check_gen_config(const DatasetGenConfig& config) {
  QGNN_REQUIRE(config.num_instances >= 1, "need at least one instance");
  QGNN_REQUIRE(config.min_nodes >= 2, "graphs need at least two nodes");
  QGNN_REQUIRE(config.max_nodes <= kMaxQubits,
               "max nodes exceeds simulator range");
  QGNN_REQUIRE(config.min_nodes <= config.max_nodes, "node range inverted");
  QGNN_REQUIRE(config.depth >= 1, "QAOA depth must be at least 1");
}

/// Phase 1: the graph sequence, via the same RNG stream as
/// generate_dataset / generate_graphs. Regular degree is recovered from
/// the graph itself (every kept instance is d-regular with d >= 1).
std::vector<DatasetEntry> draw_instances(const DatasetGenConfig& config) {
  std::vector<Graph> graphs = generate_graphs(config);
  std::vector<DatasetEntry> entries(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    entries[i].degree = graphs[i].degree(0);
    entries[i].graph = std::move(graphs[i]);
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Resume manifest: a small line-oriented text file committed (atomically,
// temp + rename) after every shard, recording which record ranges are
// already on disk.

struct ManifestShard {
  std::string file;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

struct Manifest {
  std::uint64_t fingerprint = 0;
  std::uint64_t total = 0;
  std::uint64_t committed = 0;
  std::vector<ManifestShard> shards;
};

constexpr const char* kManifestHeader = "qgnn-factory-manifest v1";
constexpr const char* kManifestName = "manifest.txt";

void write_manifest(const fs::path& dir, const Manifest& m) {
  const fs::path path = dir / kManifestName;
  const fs::path tmp = dir / (std::string(kManifestName) + ".tmp");
  {
    std::ofstream out(tmp);
    if (!out) throw IoError("cannot write manifest: " + tmp.string());
    out << kManifestHeader << '\n';
    out << "fingerprint " << m.fingerprint << '\n';
    out << "total " << m.total << '\n';
    out << "committed " << m.committed << '\n';
    for (const ManifestShard& s : m.shards) {
      out << "shard " << s.file << ' ' << s.begin << ' ' << s.end << '\n';
    }
    if (!out.flush()) {
      throw IoError("manifest write failed: " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw IoError("cannot rename " + tmp.string() + " to " + path.string() +
                  ": " + ec.message());
  }
}

Manifest read_manifest(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open manifest: " + path.string());
  auto bad = [&](int line_no, const std::string& reason) -> IoError {
    return IoError(path.string() + ":" + std::to_string(line_no) + ": " +
                   reason);
  };

  Manifest m;
  std::string line;
  int line_no = 1;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw bad(1, "bad manifest header (expected '" +
                     std::string(kManifestHeader) + "')");
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "fingerprint") {
      if (!(is >> m.fingerprint)) throw bad(line_no, "bad fingerprint line");
    } else if (key == "total") {
      if (!(is >> m.total)) throw bad(line_no, "bad total line");
    } else if (key == "committed") {
      if (!(is >> m.committed)) throw bad(line_no, "bad committed line");
    } else if (key == "shard") {
      ManifestShard s;
      if (!(is >> s.file >> s.begin >> s.end) || s.end < s.begin) {
        throw bad(line_no, "bad shard line");
      }
      m.shards.push_back(std::move(s));
    } else {
      throw bad(line_no, "unknown manifest key '" + key + "'");
    }
  }
  return m;
}

/// Validate a resumed manifest against the current run and load every
/// committed record back into `entries`. Throws IoError with a pointed
/// message on any inconsistency — resuming must never silently relabel or
/// mix configs.
void restore_from_manifest(const Manifest& m, const fs::path& dir,
                           const DatasetGenConfig& config,
                           std::vector<DatasetEntry>& entries) {
  const fs::path path = dir / kManifestName;
  if (m.fingerprint != dataset_config_fingerprint(config)) {
    throw IoError(path.string() +
                  ": manifest was written by a different generation config "
                  "(fingerprint mismatch); not resuming");
  }
  if (m.total != entries.size()) {
    throw IoError(path.string() + ": manifest total " +
                  std::to_string(m.total) + " does not match configured " +
                  std::to_string(entries.size()) + " instances");
  }
  std::uint64_t expect_begin = 0;
  for (const ManifestShard& s : m.shards) {
    if (s.begin != expect_begin || s.end > m.committed) {
      throw IoError(path.string() + ": shard list is not contiguous at '" +
                    s.file + "'");
    }
    expect_begin = s.end;
    const fs::path shard_path = dir / s.file;
    std::vector<DatasetEntry> shard = load_packed_dataset(shard_path.string());
    if (shard.size() != s.end - s.begin) {
      throw IoError(shard_path.string() + ": shard holds " +
                    std::to_string(shard.size()) + " records, manifest says " +
                    std::to_string(s.end - s.begin));
    }
    for (std::size_t i = 0; i < shard.size(); ++i) {
      entries[static_cast<std::size_t>(s.begin) + i] = std::move(shard[i]);
    }
  }
  if (expect_begin != m.committed) {
    throw IoError(path.string() + ": shards cover " +
                  std::to_string(expect_begin) + " records, manifest claims " +
                  std::to_string(m.committed) + " committed");
  }
}

std::string shard_filename(std::size_t index) {
  std::ostringstream os;
  os << "shard_";
  os.width(6);
  os.fill('0');
  os << index << ".qds";
  return os.str();
}

}  // namespace

void label_dataset_entry(const DatasetGenConfig& config, DatasetEntry& entry,
                         std::size_t index) {
  label_item_sequential(config, entry, index);
}

std::uint64_t dataset_config_fingerprint(const DatasetGenConfig& config) {
  std::ostringstream os;
  os << "qgnn-dataset-v1|" << config.num_instances << '|' << config.min_nodes
     << '|' << config.max_nodes << '|' << config.min_degree << '|'
     << config.max_degree << '|' << config.depth << '|'
     << config.optimizer_evaluations << '|'
     << static_cast<int>(config.optimizer) << '|'
     << (config.symmetrize_labels ? 1 : 0) << '|' << config.seed;
  const std::string s = os.str();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<DatasetEntry> generate_dataset_batched(
    const DatasetGenConfig& config, const FactoryConfig& factory,
    const ProgressFn& progress) {
  check_gen_config(config);
  std::vector<DatasetEntry> entries = draw_instances(config);

  std::mutex progress_mutex;
  int labelled = 0;
  const std::function<void(int)> on_labelled =
      progress ? std::function<void(int)>([&](int k) {
        std::lock_guard<std::mutex> lk(progress_mutex);
        labelled += k;
        progress(labelled, config.num_instances);
      })
               : std::function<void(int)>();

  label_range(config, factory, entries, 0, entries.size(), on_labelled);
  return entries;
}

bool run_dataset_factory(const DatasetGenConfig& config,
                         const FactoryConfig& factory,
                         const std::string& out_path,
                         const ProgressFn& progress) {
  check_gen_config(config);
  std::vector<DatasetEntry> entries = draw_instances(config);
  const std::size_t total = entries.size();
  const bool obs_on = obs::enabled();

  std::mutex progress_mutex;
  int labelled = 0;
  const std::function<void(int)> on_labelled =
      progress ? std::function<void(int)>([&](int k) {
        std::lock_guard<std::mutex> lk(progress_mutex);
        labelled += k;
        progress(labelled, static_cast<int>(total));
      })
               : std::function<void(int)>();

  if (factory.checkpoint_every <= 0) {
    obs::ScopedTimer wave_timer(obs_on ? &label_wave_histogram() : nullptr);
    label_range(config, factory, entries, 0, total, on_labelled);
    save_packed_dataset(out_path, entries);
    return true;
  }

  QGNN_REQUIRE(!factory.checkpoint_dir.empty(),
               "checkpointing requires FactoryConfig::checkpoint_dir");
  const fs::path dir(factory.checkpoint_dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create checkpoint directory: " + dir.string());
  }

  Manifest m;
  m.fingerprint = dataset_config_fingerprint(config);
  m.total = total;
  if (factory.resume && fs::exists(dir / kManifestName)) {
    m = read_manifest(dir / kManifestName);
    restore_from_manifest(m, dir, config, entries);
    labelled = static_cast<int>(m.committed);
  } else {
    write_manifest(dir, m);  // fresh run: commit the empty state up front
  }

  const auto every = static_cast<std::size_t>(factory.checkpoint_every);
  int committed_this_run = 0;
  for (std::size_t wave_lo = static_cast<std::size_t>(m.committed);
       wave_lo < total; wave_lo += every) {
    const std::size_t wave_hi = std::min(total, wave_lo + every);
    {
      obs::ScopedTimer wave_timer(obs_on ? &label_wave_histogram() : nullptr);
      label_range(config, factory, entries, wave_lo, wave_hi, on_labelled);
    }
    {
      obs::ScopedTimer commit_timer(obs_on ? &shard_commit_histogram()
                                           : nullptr);
      const std::string shard = shard_filename(m.shards.size());
      save_packed_dataset(
          (dir / shard).string(),
          std::vector<DatasetEntry>(
              entries.begin() + static_cast<std::ptrdiff_t>(wave_lo),
              entries.begin() + static_cast<std::ptrdiff_t>(wave_hi)));
      m.shards.push_back({shard, wave_lo, wave_hi});
      m.committed = wave_hi;
      write_manifest(dir, m);
    }
    ++committed_this_run;
    if (factory.stop_after_shards > 0 &&
        committed_this_run >= factory.stop_after_shards && wave_hi < total) {
      return false;  // simulated kill: manifest committed, final file not
    }
  }

  save_packed_dataset(out_path, entries);
  return true;
}

}  // namespace qgnn
