#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/dataset.hpp"
#include "util/annotations.hpp"
#include "util/crc32.hpp"

namespace qgnn {

/// Packed binary dataset container (DESIGN.md §10): the storage format the
/// batched factory emits and the trainer/serve loaders consume. One file
/// holds the whole dataset — a fixed header, an index section (one
/// offset/length pair per record), and a records section — so paper-scale
/// datasets load with two CRC sweeps and zero per-graph file opens, and
/// byte-identity across runs can be pinned by hashing a single file.
///
/// Layout (all integers little-endian; doubles are IEEE-754 bit patterns
/// stored little-endian):
///
///   [0,  8)  magic "qgnnpak1"
///   [8, 12)  u32 format version (currently 1)
///   [12,16)  u32 QAOA depth p shared by every record's label
///   [16,24)  u64 record count
///   [24,32)  u64 index section offset (= 72)
///   [32,40)  u64 index section size in bytes
///   [40,48)  u64 records section offset
///   [48,56)  u64 records section size in bytes
///   [56,60)  u32 CRC32 of the index section
///   [60,64)  u32 CRC32 of the records section
///   [64,68)  u32 CRC32 of header bytes [0, 64)
///   [68,72)  u32 reserved (zero)
///
/// Index entry (16 bytes per record): u64 offset relative to the records
/// section start, u64 record size in bytes. Record layout:
///
///   u32 record size (same value as the index entry, for stream skipping)
///   u32 node count
///   u32 regular degree
///   u32 edge count
///   edge count × { u32 u, u32 v, f64 weight }   (u < v, edge order)
///   p × f64 gammas, p × f64 betas
///   f64 expectation, f64 optimum, f64 approximation_ratio
///
/// Every reader validates magic, version, header CRC, section bounds and
/// both section CRCs before returning, and re-checks per-record bounds on
/// access, so truncation, bit flips, and future versions all surface as a
/// descriptive IoError (file name + byte offset) — never as UB.
inline constexpr char kPackedMagic[8] = {'q', 'g', 'n', 'n',
                                         'p', 'a', 'k', '1'};
inline constexpr std::uint32_t kPackedVersion = 1;
inline constexpr std::size_t kPackedHeaderBytes = 72;
inline constexpr std::size_t kPackedIndexEntryBytes = 16;

/// Header fields of an opened packed file, exposed for inspection tools
/// and golden-file tests.
struct PackedDatasetInfo {
  std::uint32_t version = 0;
  int depth = 0;
  std::uint64_t num_records = 0;
  std::uint64_t file_bytes = 0;
  std::uint32_t index_crc32 = 0;
  std::uint32_t records_crc32 = 0;
};

/// Serialize `entries` to the exact byte image save_packed_dataset writes.
/// All labels must share one depth. Deterministic: the bytes depend only
/// on the entries, never on allocator state or platform.
std::vector<std::uint8_t> pack_dataset(
    const std::vector<DatasetEntry>& entries) QGNN_BIT_IDENTICAL_PATH;

/// Write the packed image to `path` atomically (temp file + rename), so a
/// crash mid-write never leaves a half-valid file behind.
void save_packed_dataset(const std::string& path,
                         const std::vector<DatasetEntry>& entries);

/// True when `path` opens and starts with the packed magic. Used by
/// load_dataset to dispatch between packed files and the legacy text
/// layout without consuming the caller's error budget.
bool is_packed_dataset_file(const std::string& path);

/// Validated random-access view of one packed file. kMmap maps the file
/// read-only (zero-copy, the intended production path); kStream reads it
/// into memory through stdio (portability fallback, byte-equivalent by
/// test). Move-only; the mapping lives until destruction.
class PackedDatasetReader {
 public:
  enum class Mode { kMmap, kStream };

  explicit PackedDatasetReader(const std::string& path,
                               Mode mode = Mode::kMmap);
  ~PackedDatasetReader();
  PackedDatasetReader(PackedDatasetReader&&) noexcept;
  PackedDatasetReader& operator=(PackedDatasetReader&&) noexcept;
  PackedDatasetReader(const PackedDatasetReader&) = delete;
  PackedDatasetReader& operator=(const PackedDatasetReader&) = delete;

  const PackedDatasetInfo& info() const;
  std::size_t size() const;
  int depth() const;

  /// Decode record `index`. Throws IoError (with file + offset) when the
  /// record's index entry or body is inconsistent.
  DatasetEntry read(std::size_t index) const;
  std::vector<DatasetEntry> read_all() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Open (mmap), validate, and decode every record of a packed file.
std::vector<DatasetEntry> load_packed_dataset(const std::string& path);

}  // namespace qgnn
