#include "maxcut/maxcut.hpp"

#include <algorithm>
#include <cmath>

#include "graph/spectral.hpp"
#include "util/error.hpp"

namespace qgnn {

double cut_value(const Graph& g, std::uint64_t assignment) {
  double value = 0.0;
  for (const Edge& e : g.edges()) {
    const bool su = (assignment >> e.u) & 1;
    const bool sv = (assignment >> e.v) & 1;
    if (su != sv) value += e.weight;
  }
  return value;
}

Cut max_cut_brute_force(const Graph& g) {
  const int n = g.num_nodes();
  QGNN_REQUIRE(n >= 0 && n <= 26, "brute force limited to 26 nodes");
  if (n <= 1 || g.num_edges() == 0) return Cut{0, 0.0};

  Cut best{0, 0.0};
  // Fix node 0 on side 0: complementary assignments give equal cuts.
  const std::uint64_t limit = std::uint64_t{1} << (n - 1);
  for (std::uint64_t half = 0; half < limit; ++half) {
    const std::uint64_t assignment = half << 1;
    const double v = cut_value(g, assignment);
    if (v > best.value) best = Cut{assignment, v};
  }
  return best;
}

Cut max_cut_greedy(const Graph& g) {
  const int n = g.num_nodes();
  std::uint64_t assignment = 0;
  // Node v joins the side maximizing crossing weight to nodes < v.
  for (int v = 1; v < n; ++v) {
    double gain_side1 = 0.0;  // crossing weight if v goes to side 1
    for (int u : g.neighbors(v)) {
      if (u >= v) continue;
      const bool su = (assignment >> u) & 1;
      const double w = g.edge_weight(u, v);
      gain_side1 += su ? -w : w;
    }
    if (gain_side1 > 0.0) assignment |= std::uint64_t{1} << v;
  }
  return Cut{assignment, cut_value(g, assignment)};
}

Cut max_cut_local_search(const Graph& g, std::uint64_t start) {
  const int n = g.num_nodes();
  std::uint64_t assignment = start;
  bool improved = true;
  while (improved) {
    improved = false;
    for (int v = 0; v < n; ++v) {
      // Gain of flipping v = (non-crossing incident weight) - (crossing).
      double gain = 0.0;
      const bool sv = (assignment >> v) & 1;
      for (int u : g.neighbors(v)) {
        const bool su = (assignment >> u) & 1;
        const double w = g.edge_weight(u, v);
        gain += (su == sv) ? w : -w;
      }
      if (gain > 1e-12) {
        assignment ^= std::uint64_t{1} << v;
        improved = true;
      }
    }
  }
  return Cut{assignment, cut_value(g, assignment)};
}

Cut max_cut_local_search_multistart(const Graph& g, int restarts, Rng& rng) {
  QGNN_REQUIRE(restarts >= 1, "need at least one restart");
  const int n = g.num_nodes();
  Cut best{0, -1.0};
  for (int r = 0; r < restarts; ++r) {
    std::uint64_t start = 0;
    for (int v = 0; v < n; ++v) {
      if (rng.bernoulli(0.5)) start |= std::uint64_t{1} << v;
    }
    const Cut c = max_cut_local_search(g, start);
    if (c.value > best.value) best = c;
  }
  if (best.value < 0.0) best = Cut{0, cut_value(g, 0)};
  return best;
}

double random_cut_expectation(const Graph& g) { return g.total_weight() / 2.0; }

Cut max_cut_simulated_annealing(const Graph& g, int sweeps, Rng& rng,
                                double t_start, double t_end) {
  QGNN_REQUIRE(sweeps >= 1, "need at least one sweep");
  QGNN_REQUIRE(t_start >= t_end && t_end > 0.0,
               "temperatures must satisfy t_start >= t_end > 0");
  const int n = g.num_nodes();
  if (n <= 1 || g.num_edges() == 0) return Cut{0, 0.0};

  // Random initial assignment.
  std::uint64_t assignment = 0;
  for (int v = 0; v < n; ++v) {
    if (rng.bernoulli(0.5)) assignment |= std::uint64_t{1} << v;
  }
  double value = cut_value(g, assignment);
  Cut best{assignment, value};

  const double cooling =
      std::pow(t_end / t_start, 1.0 / static_cast<double>(sweeps));
  double temperature = t_start;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int step = 0; step < n; ++step) {
      const int v = rng.uniform_int(0, n - 1);
      // Gain of flipping v.
      double gain = 0.0;
      const bool sv = (assignment >> v) & 1;
      for (int u : g.neighbors(v)) {
        const bool su = (assignment >> u) & 1;
        const double w = g.edge_weight(u, v);
        gain += (su == sv) ? w : -w;
      }
      if (gain >= 0.0 || rng.uniform() < std::exp(gain / temperature)) {
        assignment ^= std::uint64_t{1} << v;
        value += gain;
        if (value > best.value) best = Cut{assignment, value};
      }
    }
    temperature *= cooling;
  }
  return best;
}

Cut max_cut_spectral_rounding(const Graph& g, int rounds, Rng& rng, int k) {
  QGNN_REQUIRE(rounds >= 1, "need at least one rounding");
  QGNN_REQUIRE(k >= 1, "need at least one eigenvector");
  const int n = g.num_nodes();
  if (n <= 1 || g.num_edges() == 0) return Cut{0, 0.0};

  // Most-negative adjacency eigenvectors: maximizing the cut is
  // minimizing x^T A x over +-1 vectors, so the bottom of A's spectrum
  // carries the cut structure.
  const EigenResult eigen = jacobi_eigen(adjacency_matrix(g), n);
  const int dims = std::min(k, n);

  Cut best{0, -1.0};
  for (int round = 0; round < rounds; ++round) {
    // Random hyperplane in the spectral embedding.
    std::vector<double> normal(static_cast<std::size_t>(dims));
    for (double& c : normal) c = rng.normal();
    std::uint64_t assignment = 0;
    for (int v = 0; v < n; ++v) {
      double dot = 0.0;
      for (int d = 0; d < dims; ++d) {
        dot += normal[static_cast<std::size_t>(d)] * eigen.vector_entry(v, d);
      }
      if (dot >= 0.0) assignment |= std::uint64_t{1} << v;
    }
    const Cut polished = max_cut_local_search(g, assignment);
    if (polished.value > best.value) best = polished;
  }
  if (best.value < 0.0) best = Cut{0, cut_value(g, 0)};
  return best;
}

double approximation_ratio(double value, double optimum) {
  QGNN_REQUIRE(optimum >= 0.0, "negative optimum");
  if (optimum == 0.0) return 1.0;
  return value / optimum;
}

}  // namespace qgnn
