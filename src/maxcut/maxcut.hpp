#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qgnn {

/// A cut given as a bitmask over nodes: bit v set => node v on side 1.
/// Matches the simulator's basis-state convention, so a measured QAOA
/// bitstring is directly a Cut.
struct Cut {
  std::uint64_t assignment = 0;
  double value = 0.0;
};

/// Sum of weights of edges crossing the cut encoded by `assignment`.
double cut_value(const Graph& g, std::uint64_t assignment);

/// Exact maximum cut by exhaustive search over 2^(n-1) assignments
/// (node 0 fixed to side 0 by symmetry). Requires n <= 26; edgeless graphs
/// return value 0 with assignment 0.
Cut max_cut_brute_force(const Graph& g);

/// Greedy constructive heuristic: place each node on the side that
/// maximizes its crossing weight to already-placed nodes.
Cut max_cut_greedy(const Graph& g);

/// Single-flip local search (hill climbing) from a given start assignment;
/// terminates at a local optimum where no single node flip improves.
Cut max_cut_local_search(const Graph& g, std::uint64_t start);

/// Randomized multi-start local search; `restarts` random starts, best kept.
Cut max_cut_local_search_multistart(const Graph& g, int restarts, Rng& rng);

/// Expected value of a uniformly random cut = total_weight / 2. The
/// classical do-nothing baseline.
double random_cut_expectation(const Graph& g);

/// Simulated annealing: single-flip Metropolis dynamics with a geometric
/// temperature schedule from `t_start` down to `t_end`. The strongest
/// classical heuristic in this library for its budget; `sweeps` full
/// passes over the nodes.
Cut max_cut_simulated_annealing(const Graph& g, int sweeps, Rng& rng,
                                double t_start = 2.0, double t_end = 0.01);

/// Goemans-Williamson-flavored spectral baseline (the paper's SS5 cites GW
/// rounding as a warm-start source): embed each node with its entries in
/// the `k` most-negative adjacency eigenvectors, round through `rounds`
/// random hyperplanes, and keep the best cut (each rounding is also
/// polished by single-flip local search). No SDP solve - the spectral
/// relaxation stands in for it.
Cut max_cut_spectral_rounding(const Graph& g, int rounds, Rng& rng,
                              int k = 3);

/// Approximation ratio of `value` against the exact optimum `optimum`.
/// By convention 1.0 when the optimum is 0 (edgeless graph).
double approximation_ratio(double value, double optimum);

}  // namespace qgnn
