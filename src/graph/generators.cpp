#include "graph/generators.hpp"

#include <set>
#include <utility>

#include "util/error.hpp"

namespace qgnn {

bool regular_graph_exists(int n, int d) {
  return n > d && d >= 0 && (static_cast<long long>(n) * d) % 2 == 0;
}

namespace {

/// Deterministic d-regular circulant graph: v ~ v +/- 1..k for d = 2k,
/// plus the antipodal chord v ~ v + n/2 when d is odd (n even then).
Graph circulant_regular_graph(int n, int d) {
  Graph g(n);
  const int k = d / 2;
  for (int v = 0; v < n; ++v) {
    for (int step = 1; step <= k; ++step) {
      const int u = (v + step) % n;
      if (!g.has_edge(v, u)) g.add_edge(v, u);
    }
  }
  if (d % 2 == 1) {
    for (int v = 0; v < n / 2; ++v) g.add_edge(v, v + n / 2);
  }
  return g;
}

/// Randomize a graph in place by degree-preserving double-edge swaps:
/// pick edges {a,b}, {c,d}, rewire to {a,c}, {b,d} when that keeps the
/// graph simple. Mixes toward the uniform distribution over graphs with
/// the same degree sequence.
Graph edge_switch_randomize(Graph g, Rng& rng, int swaps) {
  const int n = g.num_nodes();
  for (int s = 0; s < swaps; ++s) {
    const auto& edges = g.edges();
    if (edges.size() < 2) break;
    const Edge e1 = edges[rng.index(edges.size())];
    const Edge e2 = edges[rng.index(edges.size())];
    int a = e1.u, b = e1.v, c = e2.u, d2 = e2.v;
    if (rng.bernoulli(0.5)) std::swap(c, d2);
    // New edges {a,c} and {b,d2} must be loops-free, distinct, and new.
    if (a == c || b == d2) continue;
    if (g.has_edge(a, c) || g.has_edge(b, d2)) continue;
    if ((e1.u == e2.u && e1.v == e2.v)) continue;
    // Rebuild without e1, e2 and with the swapped pair. O(m) per accepted
    // swap; fine at dataset scale (n <= 15).
    Graph h(n);
    for (const Edge& e : edges) {
      const bool is_e1 = e.u == e1.u && e.v == e1.v;
      const bool is_e2 = e.u == e2.u && e.v == e2.v;
      if (!is_e1 && !is_e2) h.add_edge(e.u, e.v, e.weight);
    }
    h.add_edge(a, c);
    h.add_edge(b, d2);
    g = std::move(h);
  }
  return g;
}

}  // namespace

Graph random_regular_graph(int n, int d, Rng& rng) {
  QGNN_REQUIRE(regular_graph_exists(n, d),
               "no d-regular simple graph exists for these n, d");
  if (d == 0) return Graph(n);
  if (d == n - 1) return complete_graph(n);

  // The pairing model rejects whole samples containing loops/multi-edges,
  // which becomes hopeless for dense graphs; cap its use to sparse cases
  // and fall back to a randomized circulant otherwise.
  const int kMaxAttempts = (3 * d * d < n) ? 2000 : 200;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    // Configuration model: n*d stubs, paired uniformly at random.
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (int v = 0; v < n; ++v) {
      for (int k = 0; k < d; ++k) stubs.push_back(v);
    }
    rng.shuffle(stubs);

    std::set<std::pair<int, int>> used;
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && simple; i += 2) {
      int u = stubs[i];
      int v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!used.emplace(u, v).second) simple = false;
    }
    if (!simple) continue;

    Graph g(n);
    for (const auto& [u, v] : used) g.add_edge(u, v);
    return g;
  }
  // Dense fallback: start from a deterministic circulant and mix with
  // degree-preserving double-edge swaps.
  Graph g = circulant_regular_graph(n, d);
  const int swaps = 10 * g.num_edges();
  return edge_switch_randomize(std::move(g), rng, swaps);
}

Graph random_bipartite_regular_graph(int side, int d, Rng& rng) {
  QGNN_REQUIRE(side >= 1 && d >= 0 && d <= side,
               "bipartite regular graph needs 0 <= d <= side");
  // Union of d random perfect matchings between the sides. Each matching
  // is resampled independently until it avoids all earlier ones (whole-
  // graph rejection would need ~e^{d^2/2} attempts; per-matching retry
  // needs ~e^d).
  constexpr int kMaxMatchingAttempts = 20000;
  Graph g(2 * side);
  for (int m = 0; m < d; ++m) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxMatchingAttempts && !placed;
         ++attempt) {
      const auto perm = rng.permutation(static_cast<std::size_t>(side));
      bool collides = false;
      for (int u = 0; u < side; ++u) {
        const int v =
            side + static_cast<int>(perm[static_cast<std::size_t>(u)]);
        if (g.has_edge(u, v)) {
          collides = true;
          break;
        }
      }
      if (collides) continue;
      for (int u = 0; u < side; ++u) {
        g.add_edge(u,
                   side + static_cast<int>(perm[static_cast<std::size_t>(u)]));
      }
      placed = true;
    }
    if (!placed) {
      throw NumericalError(
          "random_bipartite_regular_graph: failed to place matching " +
          std::to_string(m) + " on side " + std::to_string(side));
    }
  }
  return g;
}

Graph erdos_renyi_graph(int n, double p, Rng& rng) {
  QGNN_REQUIRE(n >= 0, "negative node count");
  QGNN_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability out of [0,1]");
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph complete_graph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph cycle_graph(int n) {
  QGNN_REQUIRE(n >= 3, "cycle needs at least 3 nodes");
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph path_graph(int n) {
  QGNN_REQUIRE(n >= 1, "path needs at least 1 node");
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph star_graph(int n) {
  QGNN_REQUIRE(n >= 2, "star needs at least 2 nodes");
  Graph g(n);
  for (int v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph with_random_weights(const Graph& g, double lo, double hi, Rng& rng) {
  QGNN_REQUIRE(lo <= hi, "weight range inverted");
  Graph out(g.num_nodes());
  for (const Edge& e : g.edges()) {
    out.add_edge(e.u, e.v, rng.uniform(lo, hi));
  }
  return out;
}

}  // namespace qgnn
