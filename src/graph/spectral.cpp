#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace qgnn {

std::vector<double> adjacency_matrix(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> a(n * n, 0.0);
  for (const Edge& e : g.edges()) {
    a[static_cast<std::size_t>(e.u) * n + static_cast<std::size_t>(e.v)] =
        e.weight;
    a[static_cast<std::size_t>(e.v) * n + static_cast<std::size_t>(e.u)] =
        e.weight;
  }
  return a;
}

std::vector<double> laplacian_matrix(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> l = adjacency_matrix(g);
  for (std::size_t i = 0; i < n * n; ++i) l[i] = -l[i];
  for (int v = 0; v < g.num_nodes(); ++v) {
    double weighted_degree = 0.0;
    for (int u : g.neighbors(v)) weighted_degree += g.edge_weight(u, v);
    l[static_cast<std::size_t>(v) * n + static_cast<std::size_t>(v)] =
        weighted_degree;
  }
  return l;
}

EigenResult jacobi_eigen(std::vector<double> a, int n, int max_sweeps,
                         double tolerance) {
  QGNN_REQUIRE(n >= 1, "empty matrix");
  QGNN_REQUIRE(a.size() == static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n),
               "matrix size mismatch");
  const auto N = static_cast<std::size_t>(n);
  // Symmetry check (cheap insurance against caller bugs).
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = i + 1; j < N; ++j) {
      QGNN_REQUIRE(std::abs(a[i * N + j] - a[j * N + i]) < 1e-9,
                   "jacobi_eigen requires a symmetric matrix");
    }
  }

  std::vector<double> v(N * N, 0.0);
  for (std::size_t i = 0; i < N; ++i) v[i * N + i] = 1.0;

  auto off_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = i + 1; j < N; ++j) {
        s += a[i * N + j] * a[i * N + j];
      }
    }
    return std::sqrt(2.0 * s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_norm() > tolerance;
       ++sweep) {
    for (std::size_t p = 0; p + 1 < N; ++p) {
      for (std::size_t q = p + 1; q < N; ++q) {
        const double apq = a[p * N + q];
        if (std::abs(apq) < tolerance / static_cast<double>(N)) continue;
        const double app = a[p * N + p];
        const double aqq = a[q * N + q];
        // Rotation angle that annihilates a[p][q].
        const double theta = 0.5 * std::atan2(2.0 * apq, aqq - app);
        const double c = std::cos(theta);
        const double s = std::sin(theta);
        // A <- J^T A J applied to rows/cols p, q.
        for (std::size_t k = 0; k < N; ++k) {
          const double akp = a[k * N + p];
          const double akq = a[k * N + q];
          a[k * N + p] = c * akp - s * akq;
          a[k * N + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < N; ++k) {
          const double apk = a[p * N + k];
          const double aqk = a[q * N + k];
          a[p * N + k] = c * apk - s * aqk;
          a[q * N + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < N; ++k) {
          const double vkp = v[k * N + p];
          const double vkq = v[k * N + q];
          v[k * N + p] = c * vkp - s * vkq;
          v[k * N + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort by eigenvalue.
  std::vector<int> order(N);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return a[static_cast<std::size_t>(x) * N + static_cast<std::size_t>(x)] <
           a[static_cast<std::size_t>(y) * N + static_cast<std::size_t>(y)];
  });

  EigenResult result;
  result.n = n;
  result.values.resize(N);
  result.vectors.assign(N * N, 0.0);
  for (std::size_t k = 0; k < N; ++k) {
    const auto src = static_cast<std::size_t>(order[k]);
    result.values[k] = a[src * N + src];
    for (std::size_t row = 0; row < N; ++row) {
      result.vectors[row * N + k] = v[row * N + src];
    }
  }
  return result;
}

std::vector<double> laplacian_spectrum(const Graph& g) {
  QGNN_REQUIRE(g.num_nodes() >= 1, "empty graph");
  return jacobi_eigen(laplacian_matrix(g), g.num_nodes()).values;
}

double algebraic_connectivity(const Graph& g) {
  QGNN_REQUIRE(g.num_nodes() >= 2, "connectivity needs >= 2 nodes");
  return laplacian_spectrum(g)[1];
}

}  // namespace qgnn
