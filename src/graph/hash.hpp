#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace qgnn {

/// Isomorphism-invariant 64-bit hash of an unweighted graph via
/// Weisfeiler–Lehman color refinement. Two isomorphic graphs always hash
/// equal; non-isomorphic graphs *usually* differ (1-WL cannot separate
/// certain regular pairs — good enough for dataset dedup, which only needs
/// "probably new").
///
/// Edge weights are folded in by quantizing to 1e-9.
std::uint64_t wl_hash(const Graph& g, int iterations = 3);

}  // namespace qgnn
