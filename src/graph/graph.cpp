#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace qgnn {

Graph::Graph(int num_nodes) : num_nodes_(num_nodes) {
  QGNN_REQUIRE(num_nodes >= 0, "graph cannot have negative node count");
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

void Graph::check_node(int v) const {
  QGNN_REQUIRE(v >= 0 && v < num_nodes_, "node id out of range");
}

void Graph::add_edge(int u, int v, double weight) {
  check_node(u);
  check_node(v);
  QGNN_REQUIRE(u != v, "self-loops are not allowed");
  QGNN_REQUIRE(!has_edge(u, v), "duplicate edge");
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v, weight});
  auto& au = adjacency_[static_cast<std::size_t>(u)];
  auto& av = adjacency_[static_cast<std::size_t>(v)];
  au.insert(std::lower_bound(au.begin(), au.end(), v), v);
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
}

bool Graph::has_edge(int u, int v) const {
  check_node(u);
  check_node(v);
  const auto& adj = adjacency_[static_cast<std::size_t>(u)];
  return std::binary_search(adj.begin(), adj.end(), v);
}

double Graph::edge_weight(int u, int v) const {
  if (u > v) std::swap(u, v);
  for (const Edge& e : edges_) {
    if (e.u == u && e.v == v) return e.weight;
  }
  throw InvalidArgument("edge_weight: no such edge");
}

int Graph::degree(int v) const {
  check_node(v);
  return static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
}

const std::vector<int>& Graph::neighbors(int v) const {
  check_node(v);
  return adjacency_[static_cast<std::size_t>(v)];
}

double Graph::total_weight() const {
  double w = 0.0;
  for (const Edge& e : edges_) w += e.weight;
  return w;
}

int Graph::max_degree() const {
  int d = 0;
  for (int v = 0; v < num_nodes_; ++v) d = std::max(d, degree(v));
  return d;
}

int Graph::min_degree() const {
  if (num_nodes_ == 0) return 0;
  int d = degree(0);
  for (int v = 1; v < num_nodes_; ++v) d = std::min(d, degree(v));
  return d;
}

bool Graph::is_regular() const { return max_degree() == min_degree(); }

bool Graph::is_connected() const {
  if (num_nodes_ <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(num_nodes_), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  int visited = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int u : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == num_nodes_;
}

bool Graph::is_unweighted() const {
  return std::all_of(edges_.begin(), edges_.end(),
                     [](const Edge& e) { return e.weight == 1.0; });
}

std::vector<int> Graph::degree_sequence() const {
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(num_nodes_));
  for (int v = 0; v < num_nodes_; ++v) seq.push_back(degree(v));
  std::sort(seq.begin(), seq.end());
  return seq;
}

Graph Graph::permuted(const std::vector<int>& perm) const {
  QGNN_REQUIRE(perm.size() == static_cast<std::size_t>(num_nodes_),
               "permutation size mismatch");
  std::vector<char> seen(perm.size(), 0);
  for (int p : perm) {
    QGNN_REQUIRE(p >= 0 && p < num_nodes_ && !seen[static_cast<std::size_t>(p)],
                 "not a permutation");
    seen[static_cast<std::size_t>(p)] = 1;
  }
  Graph out(num_nodes_);
  for (const Edge& e : edges_) {
    out.add_edge(perm[static_cast<std::size_t>(e.u)],
                 perm[static_cast<std::size_t>(e.v)], e.weight);
  }
  return out;
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "Graph(n=" << num_nodes_ << ", m=" << num_edges();
  if (num_nodes_ > 0 && is_regular()) os << ", regular deg=" << max_degree();
  if (!is_unweighted()) os << ", weighted";
  os << ')';
  return os.str();
}

}  // namespace qgnn
