#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/annotations.hpp"

namespace qgnn {

/// Canonical, isomorphism-invariant 64-bit graph hash.
///
/// Strictly stronger than wl_hash: plain 1-WL color refinement leaves any
/// d-regular graph uniformly colored, so every pair of d-regular graphs on
/// the same node count collides — exactly the shape of the paper's dataset.
/// canonical_hash therefore runs sorted degree/neighborhood refinement to a
/// fixed point and then *individualizes* each node in turn (give it a
/// unique color, re-refine, record the resulting color multiset). The
/// sorted multiset of per-node signatures separates the classic 1-WL
/// failure pairs (C6 vs. two triangles, K3,3 vs. the triangular prism) and
/// every regular pair below the smallest strongly-regular twins (16 nodes,
/// Shrikhande vs. 4x4 rook) — beyond the dataset's 15-node ceiling.
///
/// Cost is O(n^2 * m) worst case; negligible for serving-sized graphs.
/// Edge weights are folded in by quantizing to 1e-9, matching wl_hash.
///
/// Guarantees:
///  - isomorphic graphs (any relabelling, any edge insertion order) hash
///    equal;
///  - non-isomorphic graphs hash differently unless they are
///    1-WL-with-individualization equivalent AND a 64-bit collision occurs.
std::uint64_t canonical_hash(const Graph& g) QGNN_BIT_IDENTICAL_PATH;

/// Stable refined node colors of `g` after sorted neighborhood refinement
/// with per-node individualization, sorted ascending. Two isomorphic
/// graphs produce the same vector; exposed for tests and diagnostics.
std::vector<std::uint64_t> canonical_colors(const Graph& g);

}  // namespace qgnn
