#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qgnn {

/// One undirected weighted edge. Endpoints are stored with u < v.
struct Edge {
  int u = 0;
  int v = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Undirected weighted graph on nodes 0..n-1.
///
/// This is the problem container for Max-Cut instances: the QAOA cost
/// Hamiltonian, the brute-force solver, and the GNN feature builder all
/// consume it. Parallel edges and self-loops are rejected; the adjacency
/// index is kept in sync with the edge list.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes);

  /// Add edge {u, v} with the given weight. Throws InvalidArgument on
  /// self-loops, out-of-range endpoints, or duplicate edges.
  void add_edge(int u, int v, double weight = 1.0);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  bool has_edge(int u, int v) const;
  /// Weight of edge {u, v}; throws if the edge does not exist.
  double edge_weight(int u, int v) const;

  int degree(int v) const;
  /// Neighbors of v, ascending.
  const std::vector<int>& neighbors(int v) const;

  /// Sum of all edge weights.
  double total_weight() const;

  int max_degree() const;
  int min_degree() const;
  /// True when every node has the same degree (also true for edgeless
  /// graphs, which are 0-regular).
  bool is_regular() const;
  bool is_connected() const;
  /// True when every edge weight equals 1.
  bool is_unweighted() const;

  /// Degree sequence, ascending. Useful as a cheap isomorphism invariant.
  std::vector<int> degree_sequence() const;

  /// Relabel nodes by `perm` (new_id = perm[old_id]); returns the relabelled
  /// graph. Used by permutation-invariance tests.
  Graph permuted(const std::vector<int>& perm) const;

  /// Short human-readable description: "Graph(n=5, m=6, regular deg=3)".
  std::string describe() const;

 private:
  void check_node(int v) const;

  int num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace qgnn
