#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace qgnn {

/// Text format used to persist graphs (the paper stores each instance as a
/// text file):
///
///   qgnn-graph v1
///   <num_nodes> <num_edges>
///   <u> <v> <weight>        (one line per edge)
///
/// Lines starting with '#' are comments and ignored.
void write_graph(std::ostream& os, const Graph& g);
Graph read_graph(std::istream& is);

void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

/// Compact single-line form "n=4;edges=0-1:1,1-2:1" used in manifests.
std::string graph_to_compact_string(const Graph& g);
Graph graph_from_compact_string(const std::string& s);

}  // namespace qgnn
