#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qgnn {

/// Random d-regular simple graph on n nodes via the configuration (pairing)
/// model with rejection of loops/multi-edges. Requires n > d >= 0 and n*d
/// even. Throws NumericalError if no simple pairing is found after many
/// retries (only possible for adversarial n, d combinations; all (n, d)
/// used by the dataset succeed).
Graph random_regular_graph(int n, int d, Rng& rng);

/// Random bipartite d-regular graph: two sides of `side` nodes each
/// (0..side-1 and side..2*side-1), built as a union of d random perfect
/// matchings. Triangle-free by construction; requires d <= side.
Graph random_bipartite_regular_graph(int side, int d, Rng& rng);

/// Erdős–Rényi G(n, p) graph.
Graph erdos_renyi_graph(int n, double p, Rng& rng);

/// Complete graph K_n.
Graph complete_graph(int n);

/// Cycle C_n (n >= 3).
Graph cycle_graph(int n);

/// Path P_n (n >= 2 gives n-1 edges).
Graph path_graph(int n);

/// Star graph: node 0 connected to 1..n-1.
Graph star_graph(int n);

/// Copy of `g` with each edge weight drawn uniformly from [lo, hi].
/// Used by the weighted Max-Cut extension (paper §7 future work).
Graph with_random_weights(const Graph& g, double lo, double hi, Rng& rng);

/// True when a d-regular simple graph on n nodes exists.
bool regular_graph_exists(int n, int d);

}  // namespace qgnn
