#include "graph/hash.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace qgnn {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t quantize_weight(double w) {
  return static_cast<std::uint64_t>(std::llround(w * 1e9));
}

}  // namespace

std::uint64_t wl_hash(const Graph& g, int iterations) {
  const int n = g.num_nodes();
  // Initial colors: node degree.
  std::vector<std::uint64_t> color(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    color[static_cast<std::size_t>(v)] =
        static_cast<std::uint64_t>(g.degree(v)) + 1;
  }

  for (int it = 0; it < iterations; ++it) {
    std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      // Multiset of (neighbor color, edge weight) signatures, order-free.
      std::vector<std::uint64_t> sig;
      sig.reserve(g.neighbors(v).size());
      for (int u : g.neighbors(v)) {
        std::uint64_t s = mix(color[static_cast<std::size_t>(u)],
                              quantize_weight(g.edge_weight(u, v)));
        sig.push_back(s);
      }
      std::sort(sig.begin(), sig.end());
      std::uint64_t h = color[static_cast<std::size_t>(v)];
      for (std::uint64_t s : sig) h = mix(h, s);
      next[static_cast<std::size_t>(v)] = h;
    }
    color = std::move(next);
  }

  // Order-independent final combine: sorted multiset of node colors.
  std::sort(color.begin(), color.end());
  std::uint64_t h = static_cast<std::uint64_t>(n) * 0x100000001b3ULL;
  for (std::uint64_t c : color) h = mix(h, c);
  return h;
}

}  // namespace qgnn
