#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace qgnn {

/// Dense row-major n x n adjacency matrix (weighted).
std::vector<double> adjacency_matrix(const Graph& g);

/// Dense row-major combinatorial Laplacian L = D - A (weighted degrees).
std::vector<double> laplacian_matrix(const Graph& g);

/// Eigendecomposition of a symmetric matrix.
struct EigenResult {
  /// Eigenvalues, ascending.
  std::vector<double> values;
  /// Row-major n x n matrix whose COLUMN k is the unit eigenvector for
  /// values[k].
  std::vector<double> vectors;
  int n = 0;

  double vector_entry(int row, int k) const {
    return vectors[static_cast<std::size_t>(row) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(k)];
  }
};

/// Cyclic Jacobi eigenvalue algorithm for symmetric matrices. Exact to
/// `tolerance` on the off-diagonal Frobenius norm; sized for the <= 15
/// node graphs this library works with (O(n^3) per sweep).
EigenResult jacobi_eigen(std::vector<double> sym, int n,
                         int max_sweeps = 100, double tolerance = 1e-12);

/// Laplacian eigenvalues of `g`, ascending (first is ~0).
std::vector<double> laplacian_spectrum(const Graph& g);

/// Algebraic connectivity: the second-smallest Laplacian eigenvalue.
/// Positive iff the graph is connected.
double algebraic_connectivity(const Graph& g);

}  // namespace qgnn
