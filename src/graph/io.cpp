#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace qgnn {

namespace {
constexpr const char* kMagic = "qgnn-graph v1";

std::string next_content_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  throw IoError("graph stream ended unexpectedly");
}
}  // namespace

void write_graph(std::ostream& os, const Graph& g) {
  os << kMagic << '\n';
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  os.precision(17);
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

Graph read_graph(std::istream& is) {
  std::string magic = next_content_line(is);
  // Trim trailing whitespace/CR.
  while (!magic.empty() && (magic.back() == '\r' || magic.back() == ' ')) {
    magic.pop_back();
  }
  if (magic != kMagic) throw IoError("bad graph header: '" + magic + "'");

  std::istringstream head(next_content_line(is));
  int n = 0;
  int m = 0;
  if (!(head >> n >> m)) throw IoError("bad graph size line");
  if (n < 0 || m < 0) throw IoError("negative graph dimensions");

  Graph g(n);
  for (int i = 0; i < m; ++i) {
    std::istringstream line(next_content_line(is));
    int u = 0;
    int v = 0;
    double w = 1.0;
    if (!(line >> u >> v)) throw IoError("bad edge line");
    if (!(line >> w)) w = 1.0;
    try {
      g.add_edge(u, v, w);
    } catch (const InvalidArgument& e) {
      throw IoError(std::string("bad edge in graph file: ") + e.what());
    }
  }
  return g;
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  write_graph(out, g);
  if (!out) throw IoError("write failed: " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path);
  return read_graph(in);
}

std::string graph_to_compact_string(const Graph& g) {
  std::ostringstream os;
  os.precision(17);
  os << "n=" << g.num_nodes() << ";edges=";
  bool first = true;
  for (const Edge& e : g.edges()) {
    if (!first) os << ',';
    first = false;
    os << e.u << '-' << e.v << ':' << e.weight;
  }
  return os.str();
}

Graph graph_from_compact_string(const std::string& s) {
  const auto n_pos = s.find("n=");
  const auto e_pos = s.find(";edges=");
  if (n_pos != 0 || e_pos == std::string::npos) {
    throw IoError("bad compact graph string: " + s);
  }
  int n = 0;
  try {
    n = std::stoi(s.substr(2, e_pos - 2));
  } catch (const std::exception&) {
    throw IoError("bad node count in compact graph string");
  }
  Graph g(n);
  std::string edges = s.substr(e_pos + 7);
  std::istringstream es(edges);
  std::string tok;
  while (std::getline(es, tok, ',')) {
    if (tok.empty()) continue;
    const auto dash = tok.find('-');
    const auto colon = tok.find(':');
    if (dash == std::string::npos || colon == std::string::npos) {
      throw IoError("bad edge token: " + tok);
    }
    try {
      const int u = std::stoi(tok.substr(0, dash));
      const int v = std::stoi(tok.substr(dash + 1, colon - dash - 1));
      const double w = std::stod(tok.substr(colon + 1));
      g.add_edge(u, v, w);
    } catch (const InvalidArgument& e) {
      throw IoError(std::string("bad edge in compact string: ") + e.what());
    } catch (const std::exception&) {
      throw IoError("unparsable edge token: " + tok);
    }
  }
  return g;
}

}  // namespace qgnn
