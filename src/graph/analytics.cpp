#include "graph/analytics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qgnn {

int edge_triangle_count(const Graph& g, int u, int v) {
  const auto& nu = g.neighbors(u);
  const auto& nv = g.neighbors(v);
  // Both lists are sorted: linear merge intersection.
  int count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

long triangle_count(const Graph& g) {
  // Sum of per-edge common neighbors counts each triangle 3 times.
  long total = 0;
  for (const Edge& e : g.edges()) {
    total += edge_triangle_count(g, e.u, e.v);
  }
  return total / 3;
}

double clustering_coefficient(const Graph& g) {
  long wedges = 0;
  for (int v = 0; v < g.num_nodes(); ++v) {
    const long d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) /
         static_cast<double>(wedges);
}

bool is_triangle_free(const Graph& g) { return triangle_count(g) == 0; }

double p1_expected_cut_closed_form(const Graph& g, double gamma,
                                   double beta) {
  QGNN_REQUIRE(g.is_unweighted(),
               "closed form implemented for unit edge weights");
  const double sg = std::sin(gamma);
  const double cg = std::cos(gamma);
  const double s4b = std::sin(4.0 * beta);
  const double s2b = std::sin(2.0 * beta);
  const double c2g = std::cos(2.0 * gamma);

  double total = 0.0;
  for (const Edge& e : g.edges()) {
    const int du = g.degree(e.u);
    const int dv = g.degree(e.v);
    const int t = edge_triangle_count(g, e.u, e.v);
    const double term1 =
        0.25 * s4b * sg *
        (std::pow(cg, du - 1) + std::pow(cg, dv - 1));
    const double term2 = 0.25 * s2b * s2b *
                         std::pow(cg, du + dv - 2 - 2 * t) *
                         (1.0 - std::pow(c2g, t));
    total += 0.5 + term1 - term2;
  }
  return total;
}

}  // namespace qgnn
