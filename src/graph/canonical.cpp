#include "graph/canonical.hpp"

#include <algorithm>
#include <cmath>

namespace qgnn {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t quantize_weight(double w) {
  return static_cast<std::uint64_t>(std::llround(w * 1e9));
}

/// Marker mixed into an individualized node's color; any constant works as
/// long as it is applied to exactly one node per run.
constexpr std::uint64_t kIndividualizeMark = 0xd1b54a32d192ed03ULL;

/// One round of sorted-neighborhood refinement: each node's new color
/// hashes its old color with the sorted multiset of (neighbor color, edge
/// weight) signatures. Old colors are folded in, so the partition only
/// ever gets finer.
std::vector<std::uint64_t> refine_round(const Graph& g,
                                        const std::vector<std::uint64_t>& c) {
  const int n = g.num_nodes();
  std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> sig;
  for (int v = 0; v < n; ++v) {
    sig.clear();
    sig.reserve(g.neighbors(v).size());
    for (int u : g.neighbors(v)) {
      sig.push_back(mix(c[static_cast<std::size_t>(u)],
                        quantize_weight(g.edge_weight(u, v))));
    }
    std::sort(sig.begin(), sig.end());
    std::uint64_t h = c[static_cast<std::size_t>(v)];
    for (std::uint64_t s : sig) h = mix(h, s);
    next[static_cast<std::size_t>(v)] = h;
  }
  return next;
}

/// Number of distinct values in `c`.
std::size_t distinct_count(std::vector<std::uint64_t> c) {
  std::sort(c.begin(), c.end());
  return static_cast<std::size_t>(
      std::unique(c.begin(), c.end()) - c.begin());
}

/// Refine to a fixed point: stop when a round no longer splits any color
/// class (the class count is monotone non-decreasing and bounded by n, so
/// this terminates within n rounds).
std::vector<std::uint64_t> refine_stable(const Graph& g,
                                         std::vector<std::uint64_t> c) {
  std::size_t classes = distinct_count(c);
  for (int round = 0; round < g.num_nodes(); ++round) {
    std::vector<std::uint64_t> next = refine_round(g, c);
    const std::size_t next_classes = distinct_count(next);
    c = std::move(next);
    if (next_classes == classes) break;
    classes = next_classes;
  }
  return c;
}

std::vector<std::uint64_t> initial_colors(const Graph& g) {
  std::vector<std::uint64_t> c(static_cast<std::size_t>(g.num_nodes()));
  for (int v = 0; v < g.num_nodes(); ++v) {
    c[static_cast<std::size_t>(v)] =
        static_cast<std::uint64_t>(g.degree(v)) + 1;
  }
  return c;
}

/// Order-free combine of a color multiset into one 64-bit value.
std::uint64_t combine_sorted(std::vector<std::uint64_t> colors) {
  std::sort(colors.begin(), colors.end());
  std::uint64_t h = static_cast<std::uint64_t>(colors.size()) *
                    0x100000001b3ULL;
  for (std::uint64_t c : colors) h = mix(h, c);
  return h;
}

}  // namespace

std::vector<std::uint64_t> canonical_colors(const Graph& g) {
  const int n = g.num_nodes();
  if (n == 0) return {};

  const std::vector<std::uint64_t> base = refine_stable(g, initial_colors(g));

  // Individualize every node in turn. For already-discrete partitions this
  // is redundant but harmless; for regular graphs it is what separates
  // 1-WL-equivalent non-isomorphic pairs.
  std::vector<std::uint64_t> node_sigs(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    std::vector<std::uint64_t> c = base;
    c[static_cast<std::size_t>(v)] =
        mix(c[static_cast<std::size_t>(v)], kIndividualizeMark);
    c = refine_stable(g, c);
    // The individualized node's own stable color is folded in separately:
    // it pins the signature to the chosen node's orbit, not just to the
    // whole-graph color distribution.
    node_sigs[static_cast<std::size_t>(v)] =
        mix(combine_sorted(c), c[static_cast<std::size_t>(v)]);
  }
  std::sort(node_sigs.begin(), node_sigs.end());
  return node_sigs;
}

std::uint64_t canonical_hash(const Graph& g) {
  std::uint64_t h = mix(static_cast<std::uint64_t>(g.num_nodes()) + 1,
                        static_cast<std::uint64_t>(g.num_edges()) + 1);
  for (std::uint64_t s : canonical_colors(g)) h = mix(h, s);
  return h;
}

}  // namespace qgnn
