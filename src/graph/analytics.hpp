#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace qgnn {

/// Number of triangles in the graph (each counted once).
long triangle_count(const Graph& g);

/// Number of triangles containing the edge {u, v} = common neighbors of u
/// and v. This is the lambda in the p=1 QAOA expectation formula; it
/// controls how far the triangle-free fixed angles are from optimal.
int edge_triangle_count(const Graph& g, int u, int v);

/// Global clustering coefficient: 3 * triangles / number of wedges
/// (paths of length 2). Zero for wedge-free graphs.
double clustering_coefficient(const Graph& g);

/// True when the graph contains no triangles (the regime where the p=1
/// fixed angles are provably optimal).
bool is_triangle_free(const Graph& g);

/// Exact depth-1 QAOA expected cut for Max-Cut on an arbitrary unweighted
/// graph, from the closed form of Wang, Hadfield, Jiang & Rieffel
/// (PRA 97, 022304, Eq. 14):
///   <C_uv> = 1/2 + (1/4) sin(4b) sin(g) (cos^{du-1} g + cos^{dv-1} g)
///          - (1/4) sin^2(2b) cos^{du+dv-2-2t} g (1 - cos^t(2g)),
/// where du, dv are endpoint degrees and t the edge triangle count.
/// Requires an unweighted graph. Validated against the simulator in
/// tests/test_analytics.cpp - an independent check of the whole quantum
/// stack.
double p1_expected_cut_closed_form(const Graph& g, double gamma, double beta);

}  // namespace qgnn
