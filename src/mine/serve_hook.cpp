#include "mine/serve_hook.hpp"

#include <cstdint>
#include <utility>

#include "serve/shard_worker.hpp"

namespace qgnn::mine {

std::shared_ptr<Miner> make_miner_from_cli(serve::ServeHandle& handle,
                                           const CliArgs& args) {
  if (!args.get_bool("mine", false)) return nullptr;

  MinerConfig config;
  config.buffer.ar_threshold = args.get_double("mine-ar-threshold", 0.0);
  config.buffer.mine_novel = args.get_bool("mine-novel", false);
  config.buffer.capacity = static_cast<std::size_t>(args.get_int(
      "mine-capacity", static_cast<int>(config.buffer.capacity)));
  config.dir = args.get("mine-dir", "mined");
  config.min_spill = static_cast<std::size_t>(
      args.get_int("mine-min-spill", static_cast<int>(config.min_spill)));
  config.relabel.optimizer_evaluations =
      args.get_int("mine-evals", config.relabel.optimizer_evaluations);
  config.fine_tune.epochs = args.get_int("mine-epochs", 30);
  config.fine_tune.validation_fraction = 0.0;
  // Mined labels are optimizer outputs, so equivalent angles can land on
  // different branches of the periodic domain; the periodic loss (periods
  // auto-filled by the miner from the serving depth) is the right default.
  config.fine_tune.loss = LossKind::kPeriodic;
  config.seed = static_cast<std::uint64_t>(
      args.get_int("mine-seed", static_cast<int>(config.seed & 0x7fffffff)));
  config.panel_fraction =
      args.get_double("mine-panel-fraction", config.panel_fraction);
  config.poll_interval =
      std::chrono::milliseconds(args.get_int("mine-interval-ms", 500));

  auto miner = std::make_shared<Miner>(handle, std::move(config));
  miner->attach();
  miner->start();
  return miner;
}

void install_shard_worker_mining() {
  serve::set_shard_worker_customizer(
      [](serve::ServeHandle& handle,
         const CliArgs& args) -> std::shared_ptr<void> {
        return make_miner_from_cli(handle, args);
      });
}

}  // namespace qgnn::mine
