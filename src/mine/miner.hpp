#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "gnn/trainer.hpp"
#include "mine/gate.hpp"
#include "mine/mining_buffer.hpp"
#include "mine/relabel.hpp"
#include "serve/service.hpp"

namespace qgnn::mine {

/// Closed-loop configuration: how traffic is harvested, how mined shards
/// are re-labelled, how the candidate is fine-tuned, and what it takes to
/// promote it.
struct MinerConfig {
  MiningConfig buffer;
  /// Working directory: mined shards (mined_NNNNNN.qds), their labelled
  /// outputs, the fine-tune checkpoint, and the candidate scratch file all
  /// live here. Created on demand.
  std::string dir;
  /// A cycle runs only once this many samples are pending; below it the
  /// background loop keeps waiting.
  std::size_t min_spill = 8;
  RelabelConfig relabel;
  /// Fine-tune hyperparameters. The checkpoint block is managed by the
  /// miner (path under `dir`, resume on); leave it empty.
  TrainerConfig fine_tune;
  GateConfig gate;
  /// Fraction of each cycle's relabelled examples held out as the eval
  /// panel (at least one example; the rest fine-tune).
  double panel_fraction = 0.25;
  /// Master seed: cycle k derives its relabel seed, split shuffle, and
  /// fine-tune RNG from derive_seed(seed, k)-style streams, so a cycle's
  /// outcome is a pure function of (seed, cycle index, mined shard).
  std::uint64_t seed = 0x6d696e65;  // "mine"
  /// Registry name to fine-tune and promote; empty = the handle's
  /// default model.
  std::string model_name;
  /// Background-loop poll cadence.
  std::chrono::milliseconds poll_interval{200};
};

/// What one mining cycle did, for tests, the CLI, and logs.
struct CycleReport {
  /// False when the cycle did not run (buffer below min_spill or nothing
  /// usable was drained).
  bool ran = false;
  std::size_t mined = 0;
  std::size_t relabeled = 0;
  std::string shard_path;
  GateVerdict verdict;
  bool promoted = false;
  std::uint64_t generation_before = 0;
  std::uint64_t generation_after = 0;
};

/// Orchestrates the serve -> mine -> relabel -> fine-tune -> gate ->
/// hot-swap loop around one ServeHandle (DESIGN.md §12). attach() hooks
/// the prediction tap; run_cycle() executes one synchronous pass;
/// start()/stop() run cycles on a background thread whenever the buffer
/// has enough pending samples. Promotion goes through
/// ServeHandle::register_model, i.e. the registry's generation-counted
/// hot-swap: in-flight batches keep their snapshot, so no request is
/// dropped, and a gate rejection simply leaves the incumbent serving.
class Miner {
 public:
  Miner(serve::ServeHandle& handle, MinerConfig config);
  ~Miner();

  Miner(const Miner&) = delete;
  Miner& operator=(const Miner&) = delete;

  /// Install the prediction tap on the handle. Call before serving
  /// (set_prediction_tap is not thread-safe against in-flight requests).
  void attach();

  /// Run one cycle now (synchronously, on the calling thread) if at least
  /// min_spill samples are pending. Thread-safe against concurrent
  /// predicts; cycles themselves are serialized.
  CycleReport run_cycle();

  /// Start/stop the background cycle loop.
  void start();
  void stop();

  MiningBuffer& buffer() { return buffer_; }
  std::uint64_t cycles_run() const;
  const MinerConfig& config() const { return config_; }
  /// Last cycle error message ("" when none) — background cycles must not
  /// take down the serving process, so failures land here and in the
  /// mine.cycle_errors counter instead of propagating.
  std::string last_error() const;

 private:
  CycleReport run_cycle_locked();
  std::string model_name() const;

  serve::ServeHandle& handle_;
  const MinerConfig config_;
  MiningBuffer buffer_;

  std::mutex cycle_mutex_;  // serializes cycles
  std::uint64_t next_shard_seq_ = 0;
  std::uint64_t cycles_run_ = 0;

  mutable std::mutex state_mutex_;  // guards last_error_/cycles for readers
  std::string last_error_;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool loop_stop_ = false;
  std::thread loop_thread_;
};

}  // namespace qgnn::mine
