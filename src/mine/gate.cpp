#include "mine/gate.hpp"

#include <chrono>

#include "dataset/features.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "qaoa/ansatz.hpp"
#include "util/error.hpp"

namespace qgnn::mine {

double panel_mean_ar(const GnnModel& model,
                     const std::vector<DatasetEntry>& panel) {
  QGNN_REQUIRE(!panel.empty(), "eval gate needs a non-empty panel");
  double total = 0.0;
  for (const DatasetEntry& e : panel) {
    QGNN_REQUIRE(e.graph.num_nodes() <= kMaxQubits,
                 "panel graph exceeds the exact-simulation cap");
    const Matrix row = model.predict(e.graph);
    const QaoaAnsatz ansatz(e.graph);
    total += ansatz.approximation_ratio(target_to_params(row));
  }
  return total / static_cast<double>(panel.size());
}

GateVerdict evaluate_gate(const GnnModel& candidate,
                          const GnnModel& incumbent,
                          const std::vector<DatasetEntry>& panel,
                          const GateConfig& config) {
  const bool obs_on = obs::enabled();
  const auto start = obs_on ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
  GateVerdict verdict;
  verdict.candidate_mean_ar = panel_mean_ar(candidate, panel);
  verdict.incumbent_mean_ar = panel_mean_ar(incumbent, panel);
  verdict.promote = verdict.candidate_mean_ar >
                    verdict.incumbent_mean_ar + config.min_improvement;
  auto& registry = obs::MetricsRegistry::global();
  if (obs_on) {
    registry.histogram(obs::names::kMineGateEvalUs)
        .record(std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count());
  }
  registry
      .counter(verdict.promote ? obs::names::kMineGatePromoted
                               : obs::names::kMineGateRejected)
      .add(1);
  return verdict;
}

}  // namespace qgnn::mine
