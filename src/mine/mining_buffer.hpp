#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "dataset/dataset.hpp"
#include "serve/service.hpp"
#include "util/annotations.hpp"

namespace qgnn::mine {

/// What the MiningBuffer considers a hard example worth harvesting from
/// live traffic (DESIGN.md §12).
struct MiningConfig {
  /// Mine requests whose verify_ar score came in below this threshold.
  /// 0 disables the low-AR criterion (then only novelty mines).
  double ar_threshold = 0.0;
  /// Mine cache-missing requests whose canonical hash has never been seen
  /// by this buffer — structure classes the training set did not cover.
  bool mine_novel = false;
  /// Bounded ring: when full, the oldest pending sample is dropped (and
  /// counted) rather than growing without bound under serve pressure.
  std::size_t capacity = 1024;
  /// Bound on the novelty seen-set; oldest hashes are forgotten first.
  std::size_t seen_capacity = 1 << 16;
  /// Graphs beyond this node count cannot be exactly re-labelled (the
  /// statevector cap) and are never mined.
  int max_mined_nodes = 20;
};

/// One harvested request: everything the relabel job needs to turn the
/// production graph into a training example, plus the serving-time
/// prediction for provenance.
struct MinedSample {
  std::uint64_t canonical = 0;
  Graph graph;
  Matrix predicted;  // the (1 x 2p) row the incumbent answered with
  double approximation_ratio = 0.0;
  bool ar_verified = false;
};

/// Bounded, dedup-by-canonical-hash ring fed from the ServeHandle
/// prediction tap. observe() is cheap and thread-safe (one mutex, no
/// simulation, no I/O) so it can run on request threads; drain() hands the
/// pending samples to the mining cycle.
class MiningBuffer {
 public:
  explicit MiningBuffer(MiningConfig config = {});

  /// The prediction-tap target: decide whether (g, p) is a hard example
  /// and enqueue it. Never throws.
  void observe(const Graph& g, const serve::Prediction& p);

  std::size_t size() const;

  /// Exact internal accounting (the same numbers are mirrored into the
  /// global obs registry under the mine.* names).
  struct Counters {
    std::uint64_t observed = 0;
    std::uint64_t mined_low_ar = 0;
    std::uint64_t mined_novel = 0;
    std::uint64_t deduped = 0;
    std::uint64_t dropped = 0;
  };
  Counters counters() const;

  /// Remove and return every pending sample (FIFO order).
  std::vector<MinedSample> drain();

  const MiningConfig& config() const { return config_; }

 private:
  bool seen_insert_locked(std::uint64_t hash) QGNN_REQUIRES(mutex_);

  const MiningConfig config_;
  mutable std::mutex mutex_;
  std::deque<MinedSample> ring_ QGNN_GUARDED_BY(mutex_);
  /// Hashes currently in ring_.
  std::unordered_set<std::uint64_t> pending_ QGNN_GUARDED_BY(mutex_);
  /// Novelty memory.
  std::unordered_set<std::uint64_t> seen_ QGNN_GUARDED_BY(mutex_);
  std::deque<std::uint64_t> seen_order_ QGNN_GUARDED_BY(mutex_);
  Counters counters_ QGNN_GUARDED_BY(mutex_);
};

/// Convert mined samples to provisional DatasetEntry rows for spilling:
/// label = the predicted angles (to be replaced by the relabel job),
/// approximation_ratio = the achieved serving-time AR. Samples whose
/// prediction width disagrees with the first sample's depth are skipped
/// (packed shards require a uniform depth).
std::vector<DatasetEntry> to_provisional_entries(
    const std::vector<MinedSample>& samples);

/// Write `entries` as packed shard `<dir>/mined_<seq>.qds` via the atomic
/// qgnnpak1 writer (creating `dir` if needed); returns the path.
std::string spill_shard(const std::string& dir, std::uint64_t seq,
                        const std::vector<DatasetEntry>& entries);

}  // namespace qgnn::mine
