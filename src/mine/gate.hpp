#pragma once

#include <vector>

#include "dataset/dataset.hpp"
#include "gnn/model.hpp"

namespace qgnn::mine {

/// Promotion policy for fine-tuned candidates.
struct GateConfig {
  /// Candidate mean AR must exceed incumbent mean AR by more than this
  /// margin on the held-out panel. 0 = any strict improvement promotes.
  double min_improvement = 0.0;
};

struct GateVerdict {
  double candidate_mean_ar = 0.0;
  double incumbent_mean_ar = 0.0;
  bool promote = false;
};

/// Mean exact-simulator approximation ratio of `model`'s predicted angles
/// over the panel graphs. Every panel graph must be simulable
/// (<= kMaxQubits nodes — guaranteed for mined graphs, which the buffer
/// caps at that size) and fit the model's feature config.
double panel_mean_ar(const GnnModel& model,
                     const std::vector<DatasetEntry>& panel);

/// Score candidate vs incumbent on the held-out panel and decide
/// promotion. Pure function of the models and the panel: the hot-swap /
/// rollback decision itself lives in the Miner, which owns the registry
/// handle.
GateVerdict evaluate_gate(const GnnModel& candidate,
                          const GnnModel& incumbent,
                          const std::vector<DatasetEntry>& panel,
                          const GateConfig& config);

}  // namespace qgnn::mine
