#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/dataset.hpp"

namespace qgnn::mine {

/// Labelling budget for mined graphs. Mirrors the dataset factory's
/// generation config, but with the full-budget Adam optimizer as the
/// default — mined examples are exactly the ones the incumbent got wrong,
/// so they deserve the strongest labels the labeller can produce.
struct RelabelConfig {
  int depth = 1;
  int optimizer_evaluations = 500;
  QaoaOptimizer optimizer = QaoaOptimizer::kAdam;
  bool symmetrize_labels = false;
  std::uint64_t seed = 42;
  /// Dedicated worker threads for the labelling sweep. The relabel job
  /// deliberately does NOT use ThreadPool::global(): serve's coalesced
  /// forward passes run there, and a multi-second labelling wave sharing
  /// that pool would starve live requests.
  int workers = 1;
};

/// Re-label `entries` in place through the dataset factory's per-item
/// labeller (label_dataset_entry): item i is labelled from the
/// derive_seed(config.seed, base_index + i) stream, so the result is
/// byte-identical at any worker count and across resumed runs.
void relabel_entries(const RelabelConfig& config,
                     std::vector<DatasetEntry>& entries,
                     std::size_t base_index = 0);

/// Checkpointed shard job: load the mined packed shard at `shard_path`,
/// relabel every record, and commit the result atomically as
/// `<shard_path minus .qds>.labelled.qds`. If that output already exists
/// and validates, it is loaded and returned instead of re-labelling —
/// the resume path a restarted miner takes after a crash mid-cycle.
std::vector<DatasetEntry> relabel_shard(const RelabelConfig& config,
                                        const std::string& shard_path);

/// The output path relabel_shard commits to for a given mined shard.
std::string labelled_shard_path(const std::string& shard_path);

}  // namespace qgnn::mine
