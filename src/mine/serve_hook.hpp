#pragma once

#include <memory>

#include "mine/miner.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"

namespace qgnn::mine {

/// Build, attach, and start a Miner on `handle` from the `--mine*` command
/// line flags (the spellings ShardProcess::spawn serializes):
///   --mine                  enable mining (absent -> returns nullptr)
///   --mine-ar-threshold X   mine verified requests with AR < X
///   --mine-novel            also mine never-seen canonical structures
///   --mine-dir DIR          working directory (shards, checkpoints)
///   --mine-capacity N       buffer ring capacity
///   --mine-min-spill N      samples required before a cycle runs
///   --mine-epochs N         fine-tune epoch budget per cycle
///   --mine-evals N          relabel optimizer evaluations per example
///   --mine-interval-ms N    background-loop poll cadence
///   --mine-seed S           master determinism seed
///   --mine-panel-fraction F held-out eval panel fraction
/// Call before the handle serves traffic (attach() installs the
/// prediction tap). The returned shared_ptr owns the running miner; its
/// destructor stops the background loop.
std::shared_ptr<Miner> make_miner_from_cli(serve::ServeHandle& handle,
                                           const CliArgs& args);

/// Register make_miner_from_cli as the serve ShardWorkerCustomizer so
/// spawned shard workers run their own mining loop when the router
/// forwards `--mine*` flags. Call first thing in main(), before
/// serve::maybe_run_shard_worker(). Idempotent.
void install_shard_worker_mining();

}  // namespace qgnn::mine
